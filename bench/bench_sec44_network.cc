// Reproduces paper §4.4: iperf-style 1 GB transfers and ping latencies for
// the three node pairs (Dell<->Dell, Dell<->Edison, Edison<->Edison) over
// the simulated fabric.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/table.h"
#include "hw/profiles.h"
#include "net/fabric.h"
#include "sim/process.h"

namespace {

namespace sim = wimpy::sim;
namespace hw = wimpy::hw;
namespace net = wimpy::net;
using wimpy::TextTable;

struct PairResult {
  double rate_mbps = 0;
  double latency_ms = 0;
};

PairResult Measure(bool src_dell, bool dst_dell) {
  sim::Scheduler sched;
  net::Fabric fabric(&sched);
  std::vector<std::unique_ptr<hw::ServerNode>> nodes;
  auto add = [&](bool dell, int id) {
    nodes.push_back(std::make_unique<hw::ServerNode>(
        &sched, dell ? hw::DellR620Profile() : hw::EdisonProfile(), id));
    fabric.AddNode(nodes.back().get(), dell ? "dell-room" : "edison-room");
    return nodes.back().get();
  };
  auto* src = add(src_dell, 0);
  auto* dst = add(dst_dell, 1);
  fabric.SetGroupLink("dell-room", "edison-room", wimpy::Gbps(1),
                      wimpy::Milliseconds(0.02));

  double done_at = -1;
  auto xfer = [&]() -> sim::Process {
    co_await fabric.Transfer(src->id(), dst->id(), wimpy::GB(1));
    done_at = sched.now();
  };
  sim::Spawn(sched, xfer());
  sched.Run();

  PairResult result;
  result.rate_mbps = wimpy::ToMbps(static_cast<double>(wimpy::GB(1)) /
                                   done_at);
  result.latency_ms =
      wimpy::ToMilliseconds(fabric.Latency(src->id(), dst->id()));
  return result;
}

}  // namespace

int main() {
  TextTable table("Section 4.4: network throughput and latency");
  table.SetHeader({"Pair", "1 GB transfer", "Paper (TCP)", "Ping",
                   "Paper ping"});

  struct Case {
    const char* name;
    bool a_dell, b_dell;
    const char* paper_rate;
    const char* paper_ping;
  };
  const Case cases[] = {
      {"Dell -> Dell", true, true, "942 Mbit/s", "0.24 ms"},
      {"Dell -> Edison", true, false, "93.9 Mbit/s", "0.8 ms"},
      {"Edison -> Edison", false, false, "93.9 Mbit/s", "1.3 ms"},
  };
  for (const auto& c : cases) {
    const PairResult r = Measure(c.a_dell, c.b_dell);
    table.AddRow({c.name, TextTable::Num(r.rate_mbps, 1) + " Mbit/s",
                  c.paper_rate, TextTable::Num(r.latency_ms, 2) + " ms",
                  c.paper_ping});
  }
  table.Print();
  std::printf(
      "\nShape: any path touching an Edison NIC caps at ~100 Mbit/s (a\n"
      "10x gap), and Edison<->Edison latency is ~5x the Dell rack's.\n");
  return 0;
}
