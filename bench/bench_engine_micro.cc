// google-benchmark microbenchmarks for the simulation engine and the
// host-executable kernels — the library's own performance envelope rather
// than a paper table. Useful for spotting regressions in the event loop
// and fair-share server that every experiment's wall time depends on.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "hw/profiles.h"
#include "kernels/dhrystone.h"
#include "kernels/sysbench.h"
#include "mapreduce/compute.h"
#include "mapreduce/textgen.h"
#include "obs/sketch.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/replication.h"
#include "sim/scheduler.h"

namespace {

using namespace wimpy;

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sched.ScheduleAt(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    sched.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerEventThroughput)->Arg(10000)->Arg(100000);

// Same loop with an obs::Tracer engine hook attached: every executed
// event records one kEngine instant. The delta over the untraced variant
// is the full (enabled) tracing cost; the untraced variant itself pins
// the disabled-path overhead against BENCH_engine.json (<= 2%,
// tools/check_bench_regression.sh).
void BM_SchedulerEventThroughputTraced(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    obs::Tracer tracer;
    tracer.AttachEngineHook(&sched);
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sched.ScheduleAt(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    sched.Run();
    benchmark::DoNotOptimize(fired);
    benchmark::DoNotOptimize(tracer.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // One untimed pass to surface the tracer arena's allocation behaviour:
  // steady state should reuse recycled chunks, not allocate.
  sim::Scheduler sched;
  obs::Tracer tracer;
  tracer.AttachEngineHook(&sched);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    sched.ScheduleAt(static_cast<double>(i % 97), [] {});
  }
  sched.Run();
  state.counters["arena_chunk_allocs"] =
      static_cast<double>(tracer.arena_chunk_allocs());
  state.counters["arena_chunk_reuses"] =
      static_cast<double>(tracer.arena_chunk_reuses());
}
BENCHMARK(BM_SchedulerEventThroughputTraced)->Arg(100000);

// Wheel-vs-heap tier comparison on the shape the wheel was built for:
// many *distinct* timestamps (no same-time chain batching), all inside /
// all beyond the wheel horizon. The two benches run the identical
// schedule+drain loop; only the delay scale differs, so the items/sec
// gap is the pending-set data structure and nothing else.
void RunDistinctTimes(benchmark::State& state, double delay_scale) {
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      // 7919 is prime vs the modulus: i*7919 % 50000 visits distinct
      // residues, so timestamps collide only after 50k events.
      const double delay = delay_scale * (1 + (i * 7919) % 50000);
      sched.ScheduleAfter(delay, [&fired] { ++fired; });
    }
    sched.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  sim::Scheduler sched;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    sched.ScheduleAfter(delay_scale * (1 + (i * 7919) % 50000), [] {});
  }
  sched.Run();
  state.counters["wheel_inserts"] =
      static_cast<double>(sched.wheel_inserts());
  state.counters["wheel_promotions"] =
      static_cast<double>(sched.wheel_promotions());
  state.counters["overflow_spills"] =
      static_cast<double>(sched.wheel_overflow_spills());
}

// 1 µs tick scale: every delay lands in the wheel (max 50 ms < 65.5 ms
// horizon).
void BM_SchedulerDistinctTimesWheel(benchmark::State& state) {
  RunDistinctTimes(state, 1e-6);
}
BENCHMARK(BM_SchedulerDistinctTimesWheel)->Arg(100000);

// 10 ms scale: every delay overshoots the horizon and spills to the
// overflow heap — the seed engine's data structure on the same script.
void BM_SchedulerDistinctTimesHeap(benchmark::State& state) {
  RunDistinctTimes(state, 1e-2);
}
BENCHMARK(BM_SchedulerDistinctTimesHeap)->Arg(100000);

// fig4_7-shaped short-delay serving loop: open-loop arrivals every
// ~100 µs; each request burns a µs-scale CPU slice, then a network hop,
// with a 50 ms deadline timer armed at admission and cancelled at
// completion. Exercises the wheel's bread and butter — dense short
// delays plus timer churn — end to end through the public API.
void BM_SchedulerShortDelayServing(benchmark::State& state) {
  struct Request {
    sim::Scheduler* sched;
    sim::EventId deadline = 0;
    int* completed;
    std::uint32_t lcg;
    void Admit() {
      deadline = sched->ScheduleAfter(0.050, [] { /* timed out */ });
      const double service = 1e-6 * (50 + lcg % 400);
      sched->ScheduleAfter(service, [this] { Network(); });
    }
    void Network() {
      const double hop = 1e-6 * (20 + (lcg >> 8) % 100);
      sched->ScheduleAfter(hop, [this] { Done(); });
    }
    void Done() {
      sched->Cancel(deadline);
      ++*completed;
    }
  };
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<Request> requests(static_cast<std::size_t>(n));
    int completed = 0;
    for (int i = 0; i < n; ++i) {
      requests[static_cast<std::size_t>(i)] = {
          &sched, 0, &completed,
          static_cast<std::uint32_t>(i * 2654435761u)};
      sched.ScheduleAt(1e-4 * i, [&requests, i] {
        requests[static_cast<std::size_t>(i)].Admit();
      });
    }
    sched.Run();
    benchmark::DoNotOptimize(completed);
  }
  // 4 events per request: arrival, service done, hop done, plus the
  // cancelled deadline's schedule+cancel pair counted as one.
  state.SetItemsProcessed(state.iterations() * n * 4);
  sim::Scheduler sched;
  std::vector<Request> requests(static_cast<std::size_t>(n));
  int completed = 0;
  for (int i = 0; i < n; ++i) {
    requests[static_cast<std::size_t>(i)] = {
        &sched, 0, &completed, static_cast<std::uint32_t>(i * 2654435761u)};
    sched.ScheduleAt(1e-4 * i, [&requests, i] {
      requests[static_cast<std::size_t>(i)].Admit();
    });
  }
  sched.Run();
  state.counters["wheel_inserts"] =
      static_cast<double>(sched.wheel_inserts());
  state.counters["wheel_promotions"] =
      static_cast<double>(sched.wheel_promotions());
  state.counters["overflow_spills"] =
      static_cast<double>(sched.wheel_overflow_spills());
}
BENCHMARK(BM_SchedulerShortDelayServing)->Arg(20000);

// Arm/cancel/re-arm churn, the FairShareServer::Reschedule pattern: every
// simulated arrival cancels the pending completion event and arms a new
// one, so only a fraction of scheduled events ever fire.
void BM_SchedulerCancelChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    sim::EventId pending = 0;
    for (int i = 0; i < n; ++i) {
      if (pending != 0) sched.Cancel(pending);
      pending = sched.ScheduleAfter(1.0 + (i % 7) * 0.25, [&fired] { ++fired; });
      if (i % 8 == 7) {
        sched.Run(sched.now() + 2.0);
        pending = 0;
      }
    }
    sched.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerCancelChurn)->Arg(10000)->Arg(100000);

sim::Process Yielder(sim::Scheduler& sched, int hops, int& done) {
  for (int i = 0; i < hops; ++i) co_await sim::Delay(sched, 0.0);
  ++done;
}

// Same-time coroutine wake-ups: every hop is a zero-delay suspension that
// rides the scheduler's fast lane instead of the timed heap.
void BM_SchedulerResumeLaterHops(benchmark::State& state) {
  constexpr int kProcs = 64;
  for (auto _ : state) {
    sim::Scheduler sched;
    const int hops = static_cast<int>(state.range(0)) / kProcs;
    int done = 0;
    for (int p = 0; p < kProcs; ++p) {
      sim::Spawn(sched, Yielder(sched, hops, done));
    }
    sched.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerResumeLaterHops)->Arg(100000);

sim::Process ServeJob(sim::FairShareServer& server, double demand) {
  co_await server.Serve(demand);
}

void BM_FairShareManyJobs(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    sim::FairShareServer server(&sched, 1000.0, 1.0);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim::Spawn(sched, ServeJob(server, 1.0 + (i % 13)));
    }
    sched.Run();
    benchmark::DoNotOptimize(server.total_work_served());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FairShareManyJobs)->Arg(1000)->Arg(10000);

// Parallel replication runner over a fixed batch of fair-share
// mini-simulations; the arg is the worker-thread count, so the per-thread
// scaling of the sweep subsystem shows up directly in items/sec. Results
// are identical at every arg (docs/parallel.md) — only wall time moves.
void BM_ParallelSweep(benchmark::State& state) {
  constexpr int kReplications = 32;
  const std::vector<int> configs = {600, 900};
  for (auto _ : state) {
    sim::SweepPlan plan{kReplications, static_cast<int>(state.range(0)), 42};
    const auto results = sim::RunSweep(
        configs, plan, [](const int& jobs, Rng& root) {
          sim::Scheduler sched;
          sim::FairShareServer server(&sched, 64.0, 2.0);
          Rng demands = root.Fork();
          for (int i = 0; i < jobs; ++i) {
            sim::Spawn(sched, ServeJob(server, demands.Uniform(0.5, 4.0)));
          }
          sched.Run();
          return server.total_work_served();
        });
    benchmark::DoNotOptimize(results[0][0]);
  }
  state.SetItemsProcessed(state.iterations() * configs.size() *
                          kReplications);
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Telemetry hot path (obs/telemetry.h): one histogram Record — a sketch
// bucket increment plus the open bucket's count/sum/min/max fold. This
// runs on every completion when the telemetry plane is armed, so it has
// to stay allocation-free and a few ns.
void BM_RollupRecord(benchmark::State& state) {
  obs::Telemetry telemetry;
  obs::Histogram lat = telemetry.AddHistogram("lat");
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      lat.Record(1e-4 * (1 + i % 997));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RollupRecord)->Arg(100000);

// The same loop with the plane compiled in but disabled: the contract is
// a single branch per call (docs/telemetry.md). This variant is the one
// tools/check_bench_regression.sh gates against BENCH_engine.json — an
// enabled-plane slowdown is a tuning problem, a disabled-plane slowdown
// is a tax on every run.
void BM_RollupRecordDisabled(benchmark::State& state) {
  obs::Telemetry telemetry;
  obs::Histogram lat = telemetry.AddHistogram("lat");
  telemetry.set_enabled(false);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      lat.Record(1e-4 * (1 + i % 997));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RollupRecordDisabled)->Arg(100000);

// Sketch merge cost: folding `range` shard sketches into a fresh
// accumulator — the RunSweep index-order merge and every windowed
// quantile Query pay this per closed bucket.
void BM_SketchMergeMany(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::vector<obs::HdrSketch> sketches(shards);
  Rng rng(7);
  for (int s = 0; s < shards; ++s) {
    for (int i = 0; i < 512; ++i) {
      sketches[s].Record(rng.Exponential(1000.0));  // ~1 ms latencies
    }
  }
  obs::HdrSketch total;
  for (auto _ : state) {
    total.Reset();
    for (const obs::HdrSketch& s : sketches) total.Merge(s);
    benchmark::DoNotOptimize(total.Quantile(0.99));
  }
  state.SetItemsProcessed(state.iterations() * shards);
}
BENCHMARK(BM_SketchMergeMany)->Arg(64);

void BM_DhrystoneKernel(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = kernels::RunDhrystone(state.range(0));
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DhrystoneKernel)->Arg(100000);

void BM_CountPrimes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::CountPrimes(state.range(0)));
  }
}
BENCHMARK(BM_CountPrimes)->Arg(20000);

void BM_WordCountMap(benchmark::State& state) {
  Rng rng(1);
  const std::string corpus =
      mapreduce::GenerateTextCorpus(MB(1), 10000, rng);
  for (auto _ : state) {
    const auto stats = mapreduce::WordCountMap(corpus, nullptr);
    benchmark::DoNotOptimize(stats.output_records);
  }
  state.SetBytesProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_WordCountMap);

void BM_TeraSort(benchmark::State& state) {
  Rng rng(2);
  const std::string records =
      mapreduce::GenerateTeraRecords(state.range(0), rng);
  for (auto _ : state) {
    const std::string sorted = mapreduce::TeraSortRecords(records);
    benchmark::DoNotOptimize(sorted.data());
  }
  state.SetBytesProcessed(state.iterations() * records.size());
}
BENCHMARK(BM_TeraSort)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  // Wheel geometry and arena sizing ride along in the JSON context so a
  // recorded BENCH_engine.json pins the configuration it measured.
  constexpr auto geom = wimpy::sim::Scheduler::wheel_geometry();
  benchmark::AddCustomContext("wheel_levels", std::to_string(geom.levels));
  benchmark::AddCustomContext("wheel_buckets_per_level",
                              std::to_string(geom.buckets_per_level));
  benchmark::AddCustomContext("wheel_tick_seconds",
                              std::to_string(geom.tick_seconds));
  benchmark::AddCustomContext("wheel_horizon_ticks",
                              std::to_string(geom.horizon_ticks));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
