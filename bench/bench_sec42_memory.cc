// Reproduces paper §4.2: sysbench memory bandwidth versus block size
// (4 KiB..1 MiB) and thread count (1..16) on both platforms, plus a host
// memcpy reference point. Key shapes: rates plateau from 256 KiB blocks,
// Edison saturates at 2 threads / 2.2 GB/s, Dell at ~12 threads / 36 GB/s.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "hw/profiles.h"
#include "kernels/sysbench.h"

namespace {

using wimpy::Bytes;
using wimpy::TextTable;

void PrintPlatform(const char* title, const wimpy::hw::MemorySpec& spec) {
  TextTable table(title);
  table.SetHeader({"Block size", "1 thr", "2 thr", "4 thr", "8 thr",
                   "16 thr"});
  for (Bytes block : {wimpy::KiB(4), wimpy::KiB(16), wimpy::KiB(64),
                      wimpy::KiB(256), wimpy::MiB(1)}) {
    std::vector<std::string> row{wimpy::FormatBytes(block)};
    for (int threads : {1, 2, 4, 8, 16}) {
      const double rate =
          wimpy::kernels::ModelMemoryRate(spec, block, threads);
      row.push_back(TextTable::Num(wimpy::ToGBps(rate), 2) + " GB/s");
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  PrintPlatform(
      "Section 4.2: Edison memory transfer rate (paper peak: 2.2 GB/s, "
      "saturates beyond 2 threads)",
      wimpy::hw::EdisonProfile().memory);
  PrintPlatform(
      "Section 4.2: Dell memory transfer rate (paper peak: 36 GB/s, "
      "saturates beyond 12 threads)",
      wimpy::hw::DellR620Profile().memory);

  const double gap = wimpy::hw::DellR620Profile().memory.peak_bandwidth /
                     wimpy::hw::EdisonProfile().memory.peak_bandwidth;
  std::printf("Peak-bandwidth gap: %.1fx (paper: ~16x)\n\n", gap);

  const auto host =
      wimpy::kernels::RunHostMemoryBench(wimpy::KiB(256), wimpy::MiB(256));
  std::printf("Host memcpy reference (256 KiB blocks): %.2f GB/s\n",
              wimpy::ToGBps(host.rate));
  return 0;
}
