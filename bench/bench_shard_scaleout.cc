// Sharded scale-out bench (docs/sharding.md): the consistent-hash KV
// tier on the rack → agg → core hierarchical topology, swept over
// replication factor, rack oversubscription, mid-run membership churn,
// and a 24-node / 100k-query scale cell. Reports in-window goodput, p99,
// power, queries/joule, the cross-rack replica fraction, the hottest
// uplink's busy fraction, and the rebalance cost (shards moved, bytes
// streamed, migration seconds) for the churn cells.
//
// Shares the sweep flag surface (--replications/--threads/--seed/--trace/
// --metrics/--trace-summary, common/bench_args.h) plus two of its own:
//
//   --json=FILE      google-benchmark-compatible JSON for
//                    tools/check_bench_regression.sh (committed baseline
//                    BENCH_shard.json). items_per_second is the cell's
//                    in-window goodput qps — simulated and deterministic,
//                    so the >threshold gate only trips on behavioral
//                    change; the oversubscription cells are where the
//                    throughput curve visibly bends.
//   --determinism    print per-replication final stats plus a golden
//                    trace prefix (a pure function of cells + seed) and
//                    exit; tools/check_trace.sh diffs this output at
//                    --threads=1 vs 8.
//
// Exports: query trees are sampled 1-in-64 ("query" → "shard_hop" →
// get/put/replicate → per-hop net spans); migration runs are always
// traced ("migration" → per-shard "shard_move" → migrate_batch/catchup/
// cutover), so tools/trace_analyze.py decomposes cross-rack time and
// rebalance cost from the same file (the seed-77 golden pins both).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "shard/experiment.h"
#include "sim/replication.h"

namespace {

using namespace wimpy;

constexpr double kMeasureSeconds = 10.0;

struct Cell {
  const char* name;  // run_name suffix, e.g. 12n_R2_O4
  int racks = 3;
  int nodes_per_rack = 4;
  int replication = 2;
  double oversubscription = 4.0;
  double get_fraction = 0.90;
  shard::Churn churn = shard::Churn::kNone;
  double qps = 2500.0;
};

// The sweep: replication at fixed fabric, then the write-heavy
// oversubscription curve (where the uplinks saturate and goodput bends),
// then live churn, then the 24-node cell whose window holds 100k queries.
std::vector<Cell> BuildCells() {
  std::vector<Cell> cells;
  for (int r : {1, 2, 3}) {
    Cell c;
    c.name = r == 1 ? "12n_R1_O4" : (r == 2 ? "12n_R2_O4" : "12n_R3_O4");
    c.replication = r;
    cells.push_back(c);
  }
  for (double o : {1.0, 4.0, 32.0}) {
    Cell c;
    c.name = o == 1.0 ? "12n_R2_O1_wr"
                      : (o == 4.0 ? "12n_R2_O4_wr" : "12n_R2_O32_wr");
    c.oversubscription = o;
    c.get_fraction = 0.2;  // chain replication pounds the uplinks
    c.qps = 8000.0;
    cells.push_back(c);
  }
  {
    Cell c;
    c.name = "12n_R2_O4_join";
    c.churn = shard::Churn::kJoin;
    cells.push_back(c);
    c.name = "12n_R2_O4_leave";
    c.churn = shard::Churn::kLeave;
    cells.push_back(c);
  }
  {
    Cell c;  // 6 racks x 6 nodes in 3 pods; 10k qps x 10 s = 100k queries
    c.name = "36n_R2_O4";
    c.racks = 6;
    c.nodes_per_rack = 6;
    c.qps = 10000.0;
    cells.push_back(c);
  }
  return cells;
}

struct CellResult {
  double goodput_qps = 0;
  double achieved_qps = 0;
  double error_rate = 0;
  double mean_lat_ms = 0;
  double p99_lat_ms = 0;
  double power_w = 0;
  double queries_per_joule = 0;
  double cross_rack_pct = 0;
  double uplink_busy = 0;
  double core_busy = 0;
  double migration_shards = 0;
  double migration_mb = 0;
  double migration_s = 0;
  std::uint64_t events = 0;
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
  obs::EnergyLedger ledger;
  std::vector<std::string> trace_prefix;  // --determinism only
};

struct Wants {
  bool trace = false;
  bool metrics = false;
  bool summary = false;
  bool determinism = false;
};

CellResult RunCell(const Cell& cell, Rng& root, const Wants& wants) {
  shard::ShardExperimentConfig config;
  config.racks = cell.racks;
  config.nodes_per_rack = cell.nodes_per_rack;
  config.ring.replication = cell.replication;
  config.rack_oversubscription = cell.oversubscription;
  config.get_fraction = cell.get_fraction;
  config.churn = cell.churn;
  config.seed = root.Next();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::EnergyAttributor energy;
  if (wants.trace || wants.summary || wants.determinism) {
    config.tracer = &tracer;
  }
  if (wants.metrics) config.metrics = &metrics;
  if (wants.summary) config.energy = &energy;
  shard::ShardExperiment exp(std::move(config));
  const shard::ShardReport r =
      exp.Measure(cell.qps, Seconds(kMeasureSeconds));
  CellResult res;
  res.goodput_qps = r.goodput_qps;
  res.achieved_qps = r.achieved_qps;
  res.error_rate = r.error_rate;
  res.mean_lat_ms = 1000 * r.mean_latency;
  res.p99_lat_ms = 1000 * r.p99_latency;
  res.power_w = r.store_power;
  res.queries_per_joule = r.queries_per_joule;
  res.cross_rack_pct = 100 * r.cross_rack_replica_fraction;
  res.uplink_busy = r.max_rack_uplink_busy;
  res.core_busy = r.max_core_link_busy;
  res.migration_shards = static_cast<double>(r.migration.shards_moved);
  res.migration_mb =
      static_cast<double>(r.migration.bulk_bytes +
                          r.migration.catchup_bytes) /
      (1024.0 * 1024.0);
  res.migration_s = r.migration.done ? r.migration.duration() : 0.0;
  res.events = r.executed_events;
  if (wants.trace || wants.summary) res.trace = tracer.TakeLog();
  if (wants.metrics) res.metrics = metrics.TakeSeries();
  if (wants.summary) res.ledger = energy.TakeLedger();
  if (wants.determinism) {
    const obs::TraceLog log = (wants.trace || wants.summary)
                                  ? std::move(res.trace)
                                  : tracer.TakeLog();
    const std::size_t prefix = std::min<std::size_t>(log.events.size(), 32);
    for (std::size_t i = 0; i < prefix; ++i) {
      const obs::TraceEvent& e = log.events[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%c %s t=%.9g track=%d arg=%lld ids=%llu/%llu/%llu",
                    e.phase, e.name, e.time, e.track,
                    static_cast<long long>(e.arg),
                    static_cast<unsigned long long>(e.trace_id),
                    static_cast<unsigned long long>(e.span_id),
                    static_cast<unsigned long long>(e.parent_id));
      res.trace_prefix.push_back(buf);
    }
    res.trace_prefix.push_back(
        "trace_events=" + std::to_string(log.events.size()));
  }
  return res;
}

MetricSummary Over(const std::vector<CellResult>& reps,
                   double CellResult::*member) {
  return SummarizeOver(reps,
                       [&](const CellResult& r) { return r.*member; });
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off this bench's own flags before the shared parser (which
  // rejects unknown arguments).
  std::string json_path;
  bool determinism = false;
  std::vector<char*> shared;
  shared.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--determinism") == 0) {
      determinism = true;
    } else {
      shared.push_back(argv[i]);
    }
  }
  const BenchArgs args =
      ParseBenchArgs(static_cast<int>(shared.size()), shared.data());
  const int threads = ResolvedThreads(args);

  const std::vector<Cell> cells = BuildCells();
  Wants wants;
  wants.trace = !args.trace_path.empty();
  wants.metrics = !args.metrics_path.empty();
  wants.summary = !args.trace_summary_path.empty();
  wants.determinism = determinism;

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    return RunCell(cell, root, wants);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (determinism) {
    // Pure function of (cells, seed, replications): per-replication final
    // stats plus the sampled trace prefix. tools/check_trace.sh requires
    // this output byte-identical at --threads=1 vs 8.
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t r = 0; r < sweep[c].size(); ++r) {
        const CellResult& res = sweep[c][r];
        std::printf(
            "BM_ShardScaleout/%s rep=%zu goodput=%.9g achieved=%.9g "
            "err=%.9g p99_ms=%.9g qpj=%.9g xrack=%.9g busy=%.9g "
            "mig_shards=%.9g mig_mb=%.9g mig_s=%.9g events=%llu\n",
            cells[c].name, r, res.goodput_qps, res.achieved_qps,
            res.error_rate, res.p99_lat_ms, res.queries_per_joule,
            res.cross_rack_pct, res.uplink_busy, res.migration_shards,
            res.migration_mb, res.migration_s,
            static_cast<unsigned long long>(res.events));
        for (std::size_t i = 0; i < res.trace_prefix.size(); ++i) {
          std::printf("BM_ShardScaleout/%s rep=%zu trace[%zu]: %s\n",
                      cells[c].name, r, i, res.trace_prefix[i].c_str());
        }
      }
    }
    return 0;
  }

  TextTable table(
      "Sharded KV scale-out over the hierarchical topology (10 s windows)");
  table.SetHeader({"Cell", "R", "Oversub", "Offered", "Goodput",
                   "p99 ms", "Power W", "Queries/J", "x-rack %",
                   "Uplink busy", "Moved", "Mig MB", "Mig s"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    const auto& reps = sweep[c];
    table.AddRow({cell.name, TextTable::Num(cell.replication, 0),
                  TextTable::Num(cell.oversubscription, 0),
                  TextTable::Num(cell.qps, 0),
                  FormatMeanCI(Over(reps, &CellResult::goodput_qps), 0),
                  FormatMeanCI(Over(reps, &CellResult::p99_lat_ms), 2),
                  FormatMeanCI(Over(reps, &CellResult::power_w), 1),
                  FormatMeanCI(Over(reps, &CellResult::queries_per_joule), 0),
                  FormatMeanCI(Over(reps, &CellResult::cross_rack_pct), 0),
                  FormatMeanCI(Over(reps, &CellResult::uplink_busy), 2),
                  FormatMeanCI(Over(reps, &CellResult::migration_shards), 0),
                  FormatMeanCI(Over(reps, &CellResult::migration_mb), 1),
                  FormatMeanCI(Over(reps, &CellResult::migration_s), 2)});
  }
  table.Print();

  std::printf(
      "\nShape: replication buys failover for a linear cross-rack "
      "bandwidth tax;\nwrite-heavy load at 32x oversubscription saturates "
      "the rack uplinks and\nbends the goodput curve while p99 blows out; "
      "a join/leave mid-run streams\nits shards over the same fabric and "
      "commits with zero failed requests.\n");
  bench::ExportSweepObsEnergy(args, sweep);
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"context\": {\n"
                 "    \"executable\": \"bench_shard_scaleout\",\n"
                 "    \"window_seconds\": %g,\n"
                 "    \"replications\": %d,\n"
                 "    \"note\": \"items_per_second = in-window goodput "
                 "qps (simulated, deterministic for a given seed); the "
                 "O1/O4/O32 write-heavy cells trace the oversubscription "
                 "throughput bend\"\n  },\n  \"benchmarks\": [\n",
                 kMeasureSeconds, plan.replications);
    bool first = true;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t r = 0; r < sweep[c].size(); ++r) {
        const CellResult& res = sweep[c][r];
        if (!first) std::fprintf(f, ",\n");
        first = false;
        std::fprintf(
            f,
            "    {\"name\": \"BM_ShardScaleout/%s\", "
            "\"run_name\": \"BM_ShardScaleout/%s\", "
            "\"run_type\": \"iteration\", \"repetition_index\": %zu, "
            "\"iterations\": 1, \"real_time\": %.6f, \"cpu_time\": %.6f, "
            "\"time_unit\": \"s\", \"items_per_second\": %.6f, "
            "\"p99_ms\": %.6f, \"queries_per_joule\": %.6f, "
            "\"error_rate\": %.6f, \"cross_rack_pct\": %.3f, "
            "\"max_rack_uplink_busy\": %.6f, "
            "\"migration_shards\": %.0f, \"migration_mb\": %.3f, "
            "\"migration_seconds\": %.6f, \"events\": %llu}",
            cells[c].name, cells[c].name, r, kMeasureSeconds,
            kMeasureSeconds, res.goodput_qps, res.p99_lat_ms,
            res.queries_per_joule, res.error_rate, res.cross_rack_pct,
            res.uplink_busy, res.migration_shards, res.migration_mb,
            res.migration_s, static_cast<unsigned long long>(res.events));
      }
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
