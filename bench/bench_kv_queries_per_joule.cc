// Related-work reproduction: FAWN-style key-value serving, queries per
// joule (FAWN [21] and its workloads paper [50] motivate the whole
// wimpy-node agenda; the paper's Table 1 lists FAWN as the other
// sensor-class system). Compares Edison and Dell tiers at matched offered
// load and at each tier's own saturation point.
//
// Supports multi-seed sweeps: --replications=N reruns every (qps,
// platform) cell — and the failover scenario — with independent seeds on
// --threads workers and reports mean±95% CI (docs/parallel.md). --trace /
// --metrics export sampled query spans and per-store node probes;
// --trace-summary adds the per-query latency/joules roll-up CSV
// (docs/observability.md). --telemetry / --alerts turn on the online
// telemetry plane (docs/telemetry.md): rollup-bucket and alert-instant
// CSVs. Telemetry runs use a bounded client admission gate (256
// outstanding, 512 queued) so the overloaded cells actually shed — the
// incident the shed/burn-rate alert rules exist to catch; combine with
// --slo-ms to arm the SLO rules.
#include <chrono>
#include <cstdio>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "hw/profiles.h"
#include "kv/experiment.h"
#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "sim/replication.h"

namespace {

using namespace wimpy;

struct Cell {
  double qps = 0;
  bool edison = true;
  bool failover = false;
};

struct CellResult {
  double achieved_qps = 0;
  double error_rate = 0;
  double mean_lat_ms = 0;
  double p99_lat_ms = 0;
  double power_w = 0;
  double queries_per_joule = 0;
  double mj_per_query = 0;  // attributed, from the energy ledger
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
  obs::EnergyLedger ledger;
  obs::TelemetrySeries telemetry;
  obs::AlertLog alerts;
};

kv::KvExperimentConfig BaseConfig(bool edison) {
  kv::KvExperimentConfig config;
  config.node_profile =
      edison ? hw::EdisonProfile() : hw::DellR620Profile();
  // NIC rule of thumb: 10 Edisons per Dell.
  config.node_count = edison ? 10 : 1;
  return config;
}

CellResult RunCell(const Cell& cell, Rng& root, const BenchArgs& args) {
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const bool want_summary = !args.trace_summary_path.empty();
  kv::KvExperimentConfig config = BaseConfig(cell.edison);
  if (cell.failover) config.replication = 2;
  config.seed = root.Next();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::EnergyAttributor energy;
  obs::Telemetry telemetry;
  // The summary CSV is derived from the trace, so recording is on
  // whenever either export is requested.
  if (want_trace || want_summary) config.tracer = &tracer;
  if (want_metrics) config.metrics = &metrics;
  if (want_summary) config.energy = &energy;
  if (args.WantTelemetry()) {
    // One Telemetry per replication (sim/replication.h merge contract);
    // the SLO bound arms the burn-rate/p99/shed rules in the experiment
    // wiring. Telemetry also needs a gate so sheds exist to alert on.
    config.telemetry = &telemetry;
    if (args.slo_ms > 0) config.openloop.slo = Milliseconds(args.slo_ms);
    config.openloop.max_outstanding = 256;
    config.openloop.queue_limit = 512;
  }
  kv::KvExperiment exp(std::move(config));
  const kv::KvReport r =
      cell.failover
          ? exp.MeasureWithFailover(cell.qps, /*failed_nodes=*/2,
                                    Seconds(12))
          : exp.Measure(cell.qps, Seconds(12));
  CellResult res;
  res.achieved_qps = r.achieved_qps;
  res.error_rate = r.error_rate;
  res.mean_lat_ms = 1000 * r.mean_latency;
  res.p99_lat_ms = 1000 * r.p99_latency;
  res.power_w = r.store_power;
  res.queries_per_joule = r.queries_per_joule;
  if (want_trace || want_summary) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = metrics.TakeSeries();
  if (want_summary) {
    res.ledger = energy.TakeLedger();
    res.mj_per_query = bench::MeanRequestMillijoules(res.ledger);
  }
  if (args.WantTelemetry()) {
    res.telemetry = telemetry.TakeSeries();
    res.alerts = telemetry.TakeAlerts();
  }
  return res;
}

MetricSummary Over(const std::vector<CellResult>& reps,
                   double CellResult::*member) {
  return SummarizeOver(reps,
                       [&](const CellResult& r) { return r.*member; });
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  // The (qps, platform) grid rows, then the failover scenario as the
  // last cell so exports stay in table order.
  std::vector<Cell> cells;
  for (double qps : {500.0, 2000.0, 8000.0}) {
    for (bool is_edison : {true, false}) {
      cells.push_back({qps, is_edison, /*failover=*/false});
    }
  }
  cells.push_back({2000.0, /*edison=*/true, /*failover=*/true});

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_summary = !args.trace_summary_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    return RunCell(cell, root, args);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  TextTable table("FAWN-style key-value serving (90% GET, 1 KB values)");
  // The attributed-energy column rides along when the energy ledger is
  // being filled (--trace-summary).
  std::vector<std::string> header{"Deployment",  "Offered qps", "Achieved",
                                  "Mean lat ms", "p99 lat ms",  "Power W",
                                  "Queries/J"};
  if (want_summary) header.push_back("mJ/query");
  table.SetHeader(header);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    if (cell.failover) continue;
    const auto& reps = sweep[c];
    std::vector<std::string> row{
        cell.edison ? "10x Edison" : "1x Dell R620",
        TextTable::Num(cell.qps, 0),
        FormatMeanCI(Over(reps, &CellResult::achieved_qps), 0),
        FormatMeanCI(Over(reps, &CellResult::mean_lat_ms), 2),
        FormatMeanCI(Over(reps, &CellResult::p99_lat_ms), 2),
        FormatMeanCI(Over(reps, &CellResult::power_w), 1),
        FormatMeanCI(Over(reps, &CellResult::queries_per_joule), 0)};
    if (want_summary) {
      row.push_back(FormatMeanCI(Over(reps, &CellResult::mj_per_query), 2));
    }
    table.AddRow(row);
  }
  table.Print();

  // FAWN's fault-tolerance column: replication 2 with mid-run failures.
  const auto& failover_reps = sweep.back();
  std::printf(
      "\nFailover (replication 2, 2 of 10 nodes crash mid-run): "
      "%s/%.0f qps served, %s%% dropped, mean %s ms.\n",
      FormatMeanCI(Over(failover_reps, &CellResult::achieved_qps), 0)
          .c_str(),
      cells.back().qps,
      FormatMeanCI(SummarizeOver(failover_reps,
                                 [](const CellResult& r) {
                                   return 100 * r.error_rate;
                                 }),
                   1)
          .c_str(),
      FormatMeanCI(Over(failover_reps, &CellResult::mean_lat_ms), 1)
          .c_str());

  std::printf(
      "\nShape (FAWN's thesis): the wimpy tier matches the brawny tier's\n"
      "throughput at a fraction of the power, so queries-per-joule is\n"
      "several-fold higher — consistent with this paper's web results;\n"
      "and the ring absorbs node failures with no visible outage.\n");
  bench::ExportSweepObsEnergy(args, sweep);
  if (args.WantTelemetry()) {
    // Flattened in the same [config][replication] index order as the
    // other exports, so --threads never changes a byte.
    std::vector<obs::TelemetrySeries> telemetry;
    std::vector<obs::AlertLog> alerts;
    for (auto& per_config : sweep) {
      for (auto& rep : per_config) {
        telemetry.push_back(std::move(rep.telemetry));
        alerts.push_back(std::move(rep.alerts));
      }
    }
    bench::ExportTelemetryLogs(args, telemetry, alerts);
  }
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
