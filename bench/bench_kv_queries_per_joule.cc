// Related-work reproduction: FAWN-style key-value serving, queries per
// joule (FAWN [21] and its workloads paper [50] motivate the whole
// wimpy-node agenda; the paper's Table 1 lists FAWN as the other
// sensor-class system). Compares Edison and Dell tiers at matched offered
// load and at each tier's own saturation point.
#include <cstdio>

#include "common/table.h"
#include "hw/profiles.h"
#include "kv/experiment.h"

int main() {
  using namespace wimpy;

  kv::KvExperimentConfig edison;
  edison.node_profile = hw::EdisonProfile();
  edison.node_count = 10;  // NIC rule of thumb: 10 Edisons per Dell
  kv::KvExperimentConfig dell = edison;
  dell.node_profile = hw::DellR620Profile();
  dell.node_count = 1;

  TextTable table("FAWN-style key-value serving (90% GET, 1 KB values)");
  table.SetHeader({"Deployment", "Offered qps", "Achieved", "Mean lat",
                   "p99 lat", "Power", "Queries/J"});

  for (double qps : {500.0, 2000.0, 8000.0}) {
    for (bool is_edison : {true, false}) {
      kv::KvExperiment exp(is_edison ? edison : dell);
      const kv::KvReport r = exp.Measure(qps, Seconds(12));
      table.AddRow({is_edison ? "10x Edison" : "1x Dell R620",
                    TextTable::Num(qps, 0),
                    TextTable::Num(r.achieved_qps, 0),
                    FormatDuration(r.mean_latency),
                    FormatDuration(r.p99_latency),
                    TextTable::Num(r.store_power, 1) + " W",
                    TextTable::Num(r.queries_per_joule, 0)});
    }
  }
  table.Print();

  // FAWN's fault-tolerance column: replication 2 with mid-run failures.
  kv::KvExperimentConfig replicated = edison;
  replicated.replication = 2;
  kv::KvExperiment exp(replicated);
  const kv::KvReport failover =
      exp.MeasureWithFailover(2000, /*failed_nodes=*/2, Seconds(12));
  std::printf(
      "\nFailover (replication 2, 2 of 10 nodes crash mid-run): "
      "%.0f/%.0f qps served, %.1f%% dropped, mean %.1f ms.\n",
      failover.achieved_qps, failover.target_qps,
      100 * failover.error_rate, 1000 * failover.mean_latency);

  std::printf(
      "\nShape (FAWN's thesis): the wimpy tier matches the brawny tier's\n"
      "throughput at a fraction of the power, so queries-per-joule is\n"
      "several-fold higher — consistent with this paper's web results;\n"
      "and the ring absorbs node failures with no visible outage.\n");
  return 0;
}
