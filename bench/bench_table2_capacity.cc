// Reproduces paper Table 2: how many Edison micro servers match one Dell
// R620 on each resource axis, plus the §3 rack-density estimate and the §7
// caveat that the measured CPU gap is ~100x, not the nameplate 12x.
#include <cstdio>

#include "common/table.h"
#include "core/capacity.h"
#include "hw/profiles.h"

int main() {
  using wimpy::TextTable;
  const auto edison = wimpy::hw::EdisonProfile();
  const auto dell = wimpy::hw::DellR620Profile();
  const auto r = wimpy::core::ComputeReplacement(edison, dell);

  TextTable table("Table 2: Comparing Edison micro servers to Dell servers");
  table.SetHeader({"Resource", "Edison", "Dell R620", "To replace a Dell"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f Edison servers", r.by_cpu_nameplate);
  table.AddRow({"CPU", "2x500MHz", "6x2GHz", buf});
  std::snprintf(buf, sizeof(buf), "%.0f Edison servers", r.by_memory);
  table.AddRow({"RAM", "1GB", "16GB", buf});
  std::snprintf(buf, sizeof(buf), "%.0f Edison servers", r.by_nic);
  table.AddRow({"NIC", "100Mbps", "1Gbps", buf});
  table.Print();
  std::printf("Estimated number of Edison servers: max = %d (paper: 16)\n\n",
              r.nodes_to_replace_one);

  std::printf(
      "Section 7 caveat: measured whole-node CPU gap is %.1fx (vs %.0fx "
      "nameplate), so a compute-bound replacement needs %d Edisons.\n\n",
      r.by_cpu_measured, r.by_cpu_nameplate,
      r.nodes_to_replace_one_measured);

  const auto density = wimpy::core::EdisonRackDensity();
  std::printf(
      "Rack density (Section 3): %.1f in^3/module, %.0f in^3 per 1U -> "
      "~%d Edison micro servers per 1U enclosure (paper: 200).\n",
      density.module_volume_cubic_in, density.rack_1u_volume_cubic_in,
      density.modules_per_1u);
  return 0;
}
