// Background reproduction for the paper's §1/§2 framing: energy
// proportionality of the two platforms, and the software power-down
// strategies (Covering Set / All-In) the related work proposes as the
// alternative to wimpy hardware.
//
// Supports multi-seed sweeps: --replications=N reruns the power-down
// strategies (whose MapReduce jobs are seed-dependent) with independent
// seeds on --threads workers and reports mean±95% CI; the power-vs-load
// curves are deterministic, so their intervals collapse to ±0
// (docs/parallel.md). --trace/--metrics export per-load-point spans and
// node probes, plus per-strategy MapReduce task spans
// (docs/observability.md).
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "core/powerdown.h"
#include "core/proportionality.h"
#include "hw/profiles.h"
#include "obs_bench_util.h"
#include "sim/replication.h"

namespace {

using namespace wimpy;

struct Cell {
  enum Kind { kCurve, kPowerDown } kind = kCurve;
  bool edison = false;  // kCurve only
};

struct CellResult {
  core::ProportionalityReport curve;           // kCurve
  std::vector<core::StrategyOutcome> strategies;  // kPowerDown
};

CellResult RunCell(const Cell& cell, Rng& root, bool want_trace,
                   bool want_metrics) {
  CellResult res;
  if (cell.kind == Cell::kCurve) {
    // Duty-cycled load on ideal hardware: deterministic, so the root
    // seed is unused and every replication is identical.
    res.curve = core::MeasureProportionality(
        cell.edison ? hw::EdisonProfile() : hw::DellR620Profile(),
        {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
        want_trace, want_metrics);
  } else {
    core::PowerDownOptions options;
    options.seed = root.Next();
    options.capture_trace = want_trace;
    options.capture_metrics = want_metrics;
    res.strategies = core::EvaluatePowerDown(
        core::PaperJob::kWordCount2, /*edison_cluster=*/true,
        /*total_nodes=*/8, /*covering_nodes=*/4, Hours(1), {}, options);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  const std::vector<Cell> cells = {{Cell::kCurve, /*edison=*/false},
                                   {Cell::kCurve, /*edison=*/true},
                                   {Cell::kPowerDown}};

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    return RunCell(cell, root, want_trace, want_metrics);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // --- power-vs-load curves ----------------------------------------------
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (cells[c].kind != Cell::kCurve) continue;
    const core::ProportionalityReport& report = sweep[c][0].curve;
    const auto profile =
        cells[c].edison ? hw::EdisonProfile() : hw::DellR620Profile();
    TextTable table("Power vs load: " + profile.name);
    table.SetHeader({"Load", "Power", "P/Pbusy", "Ideal"});
    for (const auto& point : report.curve) {
      table.AddRow({TextTable::Num(100 * point.load, 0) + "%",
                    TextTable::Num(point.power, 2) + " W",
                    TextTable::Num(point.normalized, 2),
                    TextTable::Num(point.load, 2)});
    }
    table.Print();
    std::printf(
        "dynamic range %.2f, proportionality gap %.2f, EP %.2f\n\n",
        report.dynamic_range, report.proportionality_gap,
        report.ep_coefficient);
  }
  std::printf(
      "Paper §1: high-end servers burn ~half their peak power at idle —\n"
      "the Dell curve shows it; the Edison node is even flatter but its\n"
      "absolute waste is two orders of magnitude smaller.\n\n");

  // --- CS vs AIS vs always-on --------------------------------------------
  const auto& powerdown_reps = sweep.back();
  const std::size_t n_strategies = powerdown_reps[0].strategies.size();
  TextTable strategies(
      "Power-down strategies (wordcount2, one job per hour, 8 Edison / "
      "covering 4)");
  strategies.SetHeader({"Strategy", "Nodes", "Makespan s", "Energy/h J",
                        "MB/J"});
  for (std::size_t s = 0; s < n_strategies; ++s) {
    const core::StrategyOutcome& first = powerdown_reps[0].strategies[s];
    const MetricSummary makespan =
        SummarizeOver(powerdown_reps, [&](const CellResult& r) {
          return r.strategies[s].makespan;
        });
    const MetricSummary joules =
        SummarizeOver(powerdown_reps, [&](const CellResult& r) {
          return r.strategies[s].cluster_joules;
        });
    const MetricSummary mb_per_joule =
        SummarizeOver(powerdown_reps, [&](const CellResult& r) {
          return r.strategies[s].work_done_per_joule;
        });
    strategies.AddRow({first.strategy, std::to_string(first.active_nodes),
                       FormatMeanCI(makespan, 0), FormatMeanCI(joules, 0),
                       FormatMeanCI(mb_per_joule, 3)});
  }
  strategies.Print();
  std::printf(
      "\nShape (§2): both CS and AIS save versus always-on at low duty,\n"
      "at the price of wake latency and unavailability — the overheads\n"
      "that motivate attacking the problem in hardware instead.\n");

  // Flatten logs in [config][replication][sub-run] order: curve cells
  // contribute one log per load point, the power-down cell one per
  // strategy run.
  if (want_trace || want_metrics) {
    std::vector<obs::TraceLog> logs;
    std::vector<obs::MetricsSeries> series;
    for (auto& per_config : sweep) {
      for (auto& rep : per_config) {
        for (auto& log : rep.curve.point_traces) {
          logs.push_back(std::move(log));
        }
        for (auto& s : rep.curve.point_metrics) {
          series.push_back(std::move(s));
        }
        for (auto& outcome : rep.strategies) {
          if (want_trace) logs.push_back(std::move(outcome.trace));
          if (want_metrics) series.push_back(std::move(outcome.metrics));
        }
      }
    }
    bench::ExportObsLogs(args, logs, series);
  }
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
