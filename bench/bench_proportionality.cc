// Background reproduction for the paper's §1/§2 framing: energy
// proportionality of the two platforms, and the software power-down
// strategies (Covering Set / All-In) the related work proposes as the
// alternative to wimpy hardware.
#include <cstdio>

#include "common/table.h"
#include "core/powerdown.h"
#include "core/proportionality.h"
#include "hw/profiles.h"

int main() {
  using namespace wimpy;

  // --- power-vs-load curves -----------------------------------------------
  for (const auto& profile :
       {hw::DellR620Profile(), hw::EdisonProfile()}) {
    const auto report = core::MeasureProportionality(profile);
    TextTable table("Power vs load: " + profile.name);
    table.SetHeader({"Load", "Power", "P/Pbusy", "Ideal"});
    for (const auto& point : report.curve) {
      table.AddRow({TextTable::Num(100 * point.load, 0) + "%",
                    TextTable::Num(point.power, 2) + " W",
                    TextTable::Num(point.normalized, 2),
                    TextTable::Num(point.load, 2)});
    }
    table.Print();
    std::printf(
        "dynamic range %.2f, proportionality gap %.2f, EP %.2f\n\n",
        report.dynamic_range, report.proportionality_gap,
        report.ep_coefficient);
  }
  std::printf(
      "Paper §1: high-end servers burn ~half their peak power at idle —\n"
      "the Dell curve shows it; the Edison node is even flatter but its\n"
      "absolute waste is two orders of magnitude smaller.\n\n");

  // --- CS vs AIS vs always-on ----------------------------------------------
  TextTable strategies(
      "Power-down strategies (wordcount2, one job per hour, 8 Edison / "
      "covering 4)");
  strategies.SetHeader({"Strategy", "Nodes", "Makespan", "Energy/h",
                        "MB/J"});
  for (const auto& outcome : core::EvaluatePowerDown(
           core::PaperJob::kWordCount2, true, 8, 4, Hours(1))) {
    strategies.AddRow({outcome.strategy,
                       std::to_string(outcome.active_nodes),
                       TextTable::Num(outcome.makespan, 0) + " s",
                       TextTable::Num(outcome.cluster_joules, 0) + " J",
                       TextTable::Num(outcome.work_done_per_joule, 3)});
  }
  strategies.Print();
  std::printf(
      "\nShape (§2): both CS and AIS save versus always-on at low duty,\n"
      "at the price of wake latency and unavailability — the overheads\n"
      "that motivate attacking the problem in hardware instead.\n");
  return 0;
}
