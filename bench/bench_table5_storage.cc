// Reproduces paper Table 5: storage throughput (direct + buffered, read +
// write, via dd semantics) and access latency (ioping semantics) on the
// simulated Edison microSD and Dell 15K SAS devices.
#include <cstdio>

#include "common/table.h"
#include "hw/profiles.h"
#include "hw/server_node.h"
#include "sim/process.h"

namespace {

namespace sim = wimpy::sim;
namespace hw = wimpy::hw;
using wimpy::Bytes;
using wimpy::TextTable;

// dd-style: measures the achieved rate of one large sequential transfer.
double MeasureRate(const hw::HardwareProfile& profile, bool write,
                   bool buffered) {
  sim::Scheduler sched;
  hw::ServerNode node(&sched, profile, 0);
  const Bytes size = wimpy::MB(200);
  auto op = [&]() -> sim::Process {
    if (write) {
      co_await node.storage().Write(size, buffered);
    } else {
      co_await node.storage().Read(size, buffered);
    }
  };
  sim::Spawn(sched, op());
  sched.Run();
  return static_cast<double>(size) / sched.now();
}

// ioping-style: one 4 KiB random access.
double MeasureLatency(const hw::HardwareProfile& profile, bool write) {
  sim::Scheduler sched;
  hw::ServerNode node(&sched, profile, 0);
  auto op = [&]() -> sim::Process {
    if (write) {
      co_await node.storage().RandomWrite(wimpy::KiB(4));
    } else {
      co_await node.storage().RandomRead(wimpy::KiB(4));
    }
  };
  sim::Spawn(sched, op());
  sched.Run();
  return sched.now();
}

}  // namespace

int main() {
  const auto edison = hw::EdisonProfile();
  const auto dell = hw::DellR620Profile();

  TextTable table("Table 5: Storage I/O test comparison");
  table.SetHeader({"Metric", "Edison", "Dell", "Ratio", "Paper ratio"});

  auto add_rate = [&](const char* label, bool write, bool buffered,
                      const char* paper_ratio) {
    const double e = MeasureRate(edison, write, buffered);
    const double d = MeasureRate(dell, write, buffered);
    table.AddRow({label, TextTable::Num(wimpy::ToMBps(e), 1) + " MB/s",
                  TextTable::Num(wimpy::ToMBps(d), 1) + " MB/s",
                  TextTable::Ratio(d / e, 1), paper_ratio});
  };
  add_rate("Write throughput", true, false, "5.3x");
  add_rate("Buffered write throughput", true, true, "8.9x");
  add_rate("Read throughput", false, false, "4.4x");
  add_rate("Buffered read throughput", false, true, "4.3x");

  auto add_latency = [&](const char* label, bool write,
                         const char* paper_ratio) {
    const double e = MeasureLatency(edison, write);
    const double d = MeasureLatency(dell, write);
    table.AddRow({label, wimpy::FormatDuration(e), wimpy::FormatDuration(d),
                  TextTable::Ratio(e / d, 1), paper_ratio});
  };
  add_latency("Write latency", true, "3.6x");
  add_latency("Read latency", false, "8.4x");

  table.Print();
  std::printf(
      "\nShape: the storage gap (4-9x) is the *smallest* component gap,\n"
      "which is why the paper concludes Edison suits data-intensive over\n"
      "compute-intensive workloads.\n");
  return 0;
}
