// Reproduces paper Table 1: micro-server specifications in related work,
// plus the registered profiles this library models.
#include <cstdio>

#include "common/table.h"
#include "hw/profiles.h"

int main() {
  using wimpy::TextTable;

  TextTable table("Table 1: Micro server specifications in related work");
  table.SetHeader({"System", "CPU", "Memory"});
  table.AddRow({"Big.LITTLE [38]", "4x600MHz, 4x1.6GHz", "2GB"});
  table.AddRow({"WattDB [43]", "2x1.66GHz", "2GB"});
  table.AddRow({"Gordon [25]", "2x1.9GHz", "2GB"});
  table.AddRow({"Diamondville [29]", "2x1.6GHz", "4GB"});
  table.AddRow({"Raspberry Pi [51]", "4x900MHz", "1GB"});
  table.AddRow({"FAWN [21]", "1x500MHz", "256MB"});
  table.AddRow({"Edison [17]", "2x500MHz", "1GB"});
  table.Print();

  TextTable profiles("Calibrated hardware profiles in this library");
  profiles.SetHeader({"Profile", "CPU", "DMIPS/thread", "RAM", "NIC",
                      "Idle W", "Busy W", "Cost $"});
  for (const auto& name : wimpy::hw::ProfileRegistry::Names()) {
    const auto p = wimpy::hw::ProfileRegistry::Get(name);
    if (!p.ok()) continue;
    char cpu[64];
    std::snprintf(cpu, sizeof(cpu), "%dx%.0fMHz", p->cpu.cores,
                  p->cpu.clock_hz / 1e6);
    profiles.AddRow({p->name, cpu, TextTable::Num(p->cpu.dmips_per_thread, 1),
                     wimpy::FormatBytes(p->memory.total),
                     wimpy::FormatBitRate(p->nic.bandwidth),
                     TextTable::Num(p->power.idle, 2),
                     TextTable::Num(p->power.busy, 2),
                     TextTable::Num(p->unit_cost_usd, 0)});
  }
  profiles.Print();
  return 0;
}
