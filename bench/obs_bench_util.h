// Shared observability plumbing for the sweep benches (--trace/--metrics/
// --trace-summary; see docs/observability.md).
//
// A bench that supports export gives its per-replication result struct
// `obs::TraceLog trace` and `obs::MetricsSeries metrics` members, fills
// them from per-replication Tracer/MetricsRegistry instances inside its
// RunCell, and calls ExportSweepObs(args, sweep) after the sweep. Logs
// are flattened in [config][replication] index order — the same merge
// order RunSweep guarantees for results — so exports are byte-identical
// at any --threads.
//
// Benches that additionally attribute energy to spans give the result
// struct an `obs::EnergyLedger ledger` member (from
// EnergyAttributor::TakeLedger()) and call ExportSweepObsEnergy instead;
// that variant also renders the --trace-summary per-trace roll-up CSV.
#ifndef WIMPY_BENCH_OBS_BENCH_UTIL_H_
#define WIMPY_BENCH_OBS_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/bench_args.h"
#include "obs/critical_path.h"
#include "obs/export.h"

namespace wimpy::bench {

// Writes already-flattened logs/series to the paths in `args` (used by
// serial benches that collect one log per run).
inline void ExportObsLogs(const BenchArgs& args,
                          const std::vector<obs::TraceLog>& logs,
                          const std::vector<obs::MetricsSeries>& series) {
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  if (want_trace) {
    const Status st = obs::WriteChromeTrace(logs, args.trace_path);
    if (st.ok()) {
      std::printf("Trace written to %s (load at ui.perfetto.dev)\n",
                  args.trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.message().c_str());
    }
  }
  if (want_metrics) {
    const Status st = obs::WriteMetricsCsv(series, args.metrics_path);
    if (st.ok()) {
      std::printf("Metrics written to %s\n", args.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   st.message().c_str());
    }
  }
}

// Writes already-flattened telemetry rollup series / alert logs to the
// --telemetry / --alerts paths (docs/telemetry.md). A bench that supports
// the telemetry plane gives its per-replication result struct
// `obs::TelemetrySeries telemetry` and `obs::AlertLog alerts` members
// (from Telemetry::TakeSeries()/TakeAlerts()) and flattens them in the
// same [config][replication] index order as the other exports, so both
// CSVs are byte-identical at any --threads.
inline void ExportTelemetryLogs(const BenchArgs& args,
                                const std::vector<obs::TelemetrySeries>& series,
                                const std::vector<obs::AlertLog>& alerts) {
  if (!args.telemetry_path.empty()) {
    const Status st = obs::WriteTelemetryCsv(series, args.telemetry_path);
    if (st.ok()) {
      std::printf("Telemetry written to %s\n", args.telemetry_path.c_str());
    } else {
      std::fprintf(stderr, "telemetry export failed: %s\n",
                   st.message().c_str());
    }
  }
  if (!args.alerts_path.empty()) {
    const Status st = obs::WriteAlertsCsv(alerts, args.alerts_path);
    if (st.ok()) {
      std::printf("Alerts written to %s\n", args.alerts_path.c_str());
    } else {
      std::fprintf(stderr, "alerts export failed: %s\n",
                   st.message().c_str());
    }
  }
}

// Mean attributed millijoules per request in a replication's ledger:
// the sum of span-attributed joules divided by the number of distinct
// traces (requests) that accrued any. The same per-trace roll-up the
// --trace-summary CSV writes, collapsed to one number so the web bench
// tables can print it as a column.
inline double MeanRequestMillijoules(const obs::EnergyLedger& ledger) {
  double joules = 0;
  std::vector<std::uint64_t> traces;
  traces.reserve(ledger.rows.size());
  for (const obs::SpanEnergyRow& row : ledger.rows) {
    joules += row.joules;
    traces.push_back(row.trace_id);
  }
  std::sort(traces.begin(), traces.end());
  traces.erase(std::unique(traces.begin(), traces.end()), traces.end());
  if (traces.empty()) return 0;
  return 1000 * joules / static_cast<double>(traces.size());
}

template <typename Sweep>
void ExportSweepObs(const BenchArgs& args, Sweep& sweep) {
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  if (!want_trace && !want_metrics) return;
  std::vector<obs::TraceLog> logs;
  std::vector<obs::MetricsSeries> series;
  for (auto& per_config : sweep) {
    for (auto& rep : per_config) {
      if (want_trace) logs.push_back(std::move(rep.trace));
      if (want_metrics) series.push_back(std::move(rep.metrics));
    }
  }
  ExportObsLogs(args, logs, series);
}

// Like ExportSweepObs but also handles --trace-summary: the per-trace
// roll-up (critical-path latency + attributed joules) needs both the
// trace logs and the per-replication energy ledgers, so logs are always
// collected when a summary is requested — even without --trace.
template <typename Sweep>
void ExportSweepObsEnergy(const BenchArgs& args, Sweep& sweep) {
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const bool want_summary = !args.trace_summary_path.empty();
  if (!want_trace && !want_metrics && !want_summary) return;
  std::vector<obs::TraceLog> logs;
  std::vector<obs::MetricsSeries> series;
  std::vector<obs::EnergyLedger> ledgers;
  for (auto& per_config : sweep) {
    for (auto& rep : per_config) {
      if (want_trace || want_summary) logs.push_back(std::move(rep.trace));
      if (want_metrics) series.push_back(std::move(rep.metrics));
      if (want_summary) ledgers.push_back(std::move(rep.ledger));
    }
  }
  if (want_summary) {
    const Duration slo = Milliseconds(args.slo_ms);
    const Status st = obs::WriteTraceSummaryCsv(
        logs, ledgers, args.trace_summary_path, slo);
    if (st.ok()) {
      std::printf("Trace summary written to %s\n",
                  args.trace_summary_path.c_str());
    } else {
      std::fprintf(stderr, "trace summary export failed: %s\n",
                   st.message().c_str());
    }
    if (slo > 0.0) {
      // The --slo-ms roll-up, re-derived from exports alone so it can be
      // cross-checked against any live report (docs/openloop.md).
      const obs::SloSummary s = obs::SummarizeSloGoodput(logs, ledgers, slo);
      std::printf(
          "SLO %.3g ms: %lld/%lld sampled window traces under bound, "
          "slo_goodput_per_joule=%.6g (window %.6g J)\n",
          args.slo_ms, static_cast<long long>(s.under_slo),
          static_cast<long long>(s.window_traces), s.slo_goodput_per_joule,
          s.window_joules);
    }
  }
  if (!want_trace) logs.clear();  // summary-only run: skip the JSON export
  ExportObsLogs(args, logs, series);
}

}  // namespace wimpy::bench

#endif  // WIMPY_BENCH_OBS_BENCH_UTIL_H_
