// Reproduces paper Table 8 and Figures 18/19: execution time and energy of
// all six MapReduce jobs across cluster sizes (35/17/8/4 Edison slaves,
// 2/1 Dell slaves), the per-job energy-efficiency ratios quoted in
// §5.2.1-5.2.4, and the §5.3 mean speed-up per cluster-size doubling.
//
// Supports multi-seed sweeps: --replications=N runs every cell N times
// with independent seeds on --threads workers and reports mean±95% CI
// (docs/parallel.md). The default single replication keeps the paper's
// one-run table shape.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "common/bench_args.h"
#include "common/csv.h"
#include "common/summary.h"
#include "common/table.h"
#include "core/experiments.h"
#include "sim/replication.h"

namespace {

using namespace wimpy;
using core::PaperJob;

// One sweep configuration: a (job, platform, cluster size) cell.
struct Cell {
  PaperJob job;
  bool edison;
  int slaves;
};

struct CellResult {
  double elapsed = 0;
  double joules = 0;
};

CellResult RunCell(const Cell& cell, Rng& root) {
  mapreduce::MrClusterConfig cfg = cell.edison
                                       ? mapreduce::EdisonMrCluster(cell.slaves)
                                       : mapreduce::DellMrCluster(cell.slaves);
  cfg.seed = root.Next();
  const auto r = core::RunPaperJob(cell.job, cfg);
  return {r.job.elapsed, r.slave_joules};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  const std::vector<int> edison_sizes = {35, 17, 8, 4};
  const std::vector<int> dell_sizes = {2, 1};

  // Paper Table 8 reference, (seconds, joules), for the printout.
  const std::map<std::string, std::vector<std::string>> paper = {
      {"wordcount", {"310s,17670J", "1065s,29485J", "1817s,23673J",
                     "3283s,21386J", "213s,40214J", "310s,30552J"}},
      {"wordcount2", {"182s,10370J", "270s,7475J", "450s,5862J",
                      "1192s,7765J", "66s,11695J", "93s,8124J"}},
      {"logcount", {"279s,15903J", "601s,16860J", "990s,12898J",
                    "2233s,14546J", "206s,40803J", "516s,53303J"}},
      {"logcount2", {"115s,6555J", "118s,3267J", "125s,1629J",
                     "162s,1055J", "59s,9486J", "88s,6905J"}},
      {"pi", {"200s,11445J", "334s,9247J", "577s,7517J", "1076s,7009J",
              "50s,9285J", "77s,6878J"}},
      {"terasort", {"750s,43440J", "1364s,37763J", "3736s,48675J",
                    "8220s,53547J", "331s,64210J", "1336s,111422J"}},
  };

  // Sweep grid: jobs × (edison sizes + dell sizes), row-major per job so
  // the result vector maps straight back onto the table rows.
  std::vector<Cell> cells;
  for (PaperJob job : core::AllPaperJobs()) {
    for (int n : edison_sizes) cells.push_back({job, true, n});
    for (int n : dell_sizes) cells.push_back({job, false, n});
  }

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep = sim::RunSweep(cells, plan, RunCell);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  TextTable table("Table 8: execution time and energy vs cluster size");
  std::vector<std::string> header{"Job"};
  for (int n : edison_sizes) header.push_back(std::to_string(n) + " Edison");
  for (int n : dell_sizes) header.push_back(std::to_string(n) + " Dell");
  table.SetHeader(header);

  std::map<std::string, double> edison_full_joules, dell_full_joules;
  std::map<std::string, std::vector<std::pair<int, Duration>>>
      edison_ladder, dell_ladder;

  const int per_job = static_cast<int>(edison_sizes.size() + dell_sizes.size());
  int cell_idx = 0;
  for (PaperJob job : core::AllPaperJobs()) {
    const std::string name(core::PaperJobName(job));
    std::vector<std::string> row{name};
    std::vector<std::string> paper_row{"  (paper)"};
    for (int i = 0; i < per_job; ++i, ++cell_idx) {
      const Cell& cell = cells[cell_idx];
      const auto& reps = sweep[cell_idx];
      const MetricSummary elapsed =
          SummarizeOver(reps, [](const CellResult& r) { return r.elapsed; });
      const MetricSummary joules =
          SummarizeOver(reps, [](const CellResult& r) { return r.joules; });
      row.push_back(FormatMeanCI(elapsed, 0) + "s," + FormatMeanCI(joules, 0) +
                    "J");
      if (cell.edison) {
        if (cell.slaves == 35) edison_full_joules[name] = joules.mean;
        edison_ladder[name].push_back({cell.slaves, elapsed.mean});
      } else {
        if (cell.slaves == 2) dell_full_joules[name] = joules.mean;
        dell_ladder[name].push_back({cell.slaves, elapsed.mean});
      }
    }
    table.AddRow(row);
    auto it = paper.find(name);
    if (it != paper.end()) {
      for (const auto& cell : it->second) paper_row.push_back(cell);
      table.AddRow(paper_row);
    }
  }
  table.Print();
  MaybeExportCsv(table, "table8");

  TextTable eff("Energy-efficiency ratios (35 Edison vs 2 Dell)");
  eff.SetHeader({"Job", "Measured", "Paper"});
  const std::map<std::string, std::string> paper_eff = {
      {"wordcount", "2.28x"}, {"wordcount2", "1.11x"},
      {"logcount", "2.57x"},  {"logcount2", "1.45x"},
      {"pi", "0.77x (Dell wins)"}, {"terasort", "1.48x"}};
  for (const auto& [name, e_joules] : edison_full_joules) {
    const double ratio =
        core::EnergyEfficiencyRatio(e_joules, dell_full_joules[name]);
    eff.AddRow({name, TextTable::Ratio(ratio, 2),
                paper_eff.count(name) ? paper_eff.at(name) : ""});
  }
  std::printf("\n");
  eff.Print();

  // §5.3: mean speed-up per cluster doubling.
  double edison_speedup = 0, dell_speedup = 0;
  for (const auto& [name, ladder] : edison_ladder) {
    edison_speedup += core::MeanSpeedupPerDoubling(ladder);
  }
  for (const auto& [name, ladder] : dell_ladder) {
    dell_speedup += core::MeanSpeedupPerDoubling(ladder);
  }
  edison_speedup /= static_cast<double>(edison_ladder.size());
  dell_speedup /= static_cast<double>(dell_ladder.size());
  std::printf(
      "\nFigure 18/19 summary — mean speed-up per cluster-size doubling:\n"
      "Edison %.2f (paper 1.90), Dell %.2f (paper 2.07).\n",
      edison_speedup, dell_speedup);
  std::printf(
      "Paper shapes: Edison wins energy on every job except pi; combining\n"
      "inputs (wordcount2/logcount2) helps Dell far more than Edison;\n"
      "light jobs scale worst (logcount2's small-cluster runs use the\n"
      "least total energy).\n");
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
