// End-to-end macro benchmark: whole-replication throughput of the model
// layer at large N (docs/scale.md). Where bench_engine_micro measures the
// scheduler in isolation, this drives the full web and KV testbeds —
// fabric, TCP, serve path, metrics — at N ∈ {10k, 100k} simulated
// connections (web closed-loop) or queries (KV open-loop) and reports
// whole-replication wall-clock (items_per_second = replications per wall
// second), the number the ROADMAP's million-user scale-out item needs to
// grow. Engine events and events/s ride along as counters — informative,
// but not the gate metric, because an optimization that removes pure
// bookkeeping events (fewer events, less wall) must read as a win.
//
// Output is google-benchmark-compatible JSON (--json=FILE) so
// tools/check_bench_regression.sh gates it against the committed
// BENCH_macro.json with the same best-of-repetitions, host-normalized
// comparison as the engine suite. Peak RSS (VmHWM) is recorded per entry;
// it is monotonic across the process, so cells run in ascending-N order
// and the first 100k cell's value is the honest peak for that geometry.
//
// --determinism prints a golden-trace prefix + final stats instead (no
// wall-clock, no RSS): the large-N determinism check in
// tools/check_trace.sh diffs this output at --threads=1 vs 8.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include "common/random.h"
#include "hw/profiles.h"
#include "kv/experiment.h"
#include "obs/tracer.h"
#include "sim/replication.h"
#include "web/service.h"
#include "web/workload.h"

namespace {

using namespace wimpy;

struct Flags {
  std::string workload = "all";  // web | kv | all
  std::vector<int> connections = {10000, 100000};
  int reps = 3;
  int threads = 1;
  std::uint64_t seed = 0x5EED2016;
  std::string json_path;
  std::string filter;
  bool determinism = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=web|kv|all] [--connections=N[,N...]]\n"
      "          [--reps=R] [--threads=T] [--seed=S] [--json=FILE]\n"
      "          [--filter=REGEX] [--determinism]\n",
      argv0);
  std::exit(2);
}

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--workload=")) {
      f.workload = v;
      if (f.workload != "web" && f.workload != "kv" && f.workload != "all") {
        Usage(argv[0]);
      }
    } else if (const char* v = value("--connections=")) {
      f.connections.clear();
      for (const char* p = v; *p != '\0';) {
        char* end = nullptr;
        const long n = std::strtol(p, &end, 10);
        if (end == p || n <= 0) Usage(argv[0]);
        f.connections.push_back(static_cast<int>(n));
        p = (*end == ',') ? end + 1 : end;
      }
      if (f.connections.empty()) Usage(argv[0]);
      std::sort(f.connections.begin(), f.connections.end());
    } else if (const char* v = value("--reps=")) {
      f.reps = std::atoi(v);
      if (f.reps < 1) Usage(argv[0]);
    } else if (const char* v = value("--threads=")) {
      f.threads = std::atoi(v);
      if (f.threads < 1) Usage(argv[0]);
    } else if (const char* v = value("--seed=")) {
      f.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      f.json_path = v;
    } else if (const char* v = value("--filter=")) {
      f.filter = v;
    } else if (arg == "--determinism") {
      f.determinism = true;
    } else {
      Usage(argv[0]);
    }
  }
  return f;
}

// High-water RSS of this process in bytes (/proc/self/status VmHWM);
// 0 when unavailable (non-Linux).
long long PeakRssBytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atoll(line.c_str() + 6) * 1024;
    }
  }
  return 0;
}

// --- cell geometry ------------------------------------------------------
// N is the in-window unit count: closed-loop connections for web, queries
// for KV. The testbed scales with N so per-server load stays in the
// heavy-but-stable regime (~70% of the Edison knee for web, ~250 qps per
// store node for KV) instead of degenerating into pure overload.

constexpr double kWindowSeconds = 10.0;

web::WebTestbedConfig WebGeometry(int n) {
  const int scale = std::max(1, n / 10000);
  web::WebTestbedConfig cfg =
      web::EdisonWebTestbed(24 * scale, 11 * scale);
  cfg.client_machines = 8 * scale;
  return cfg;
}

kv::KvExperimentConfig KvGeometry(int n) {
  kv::KvExperimentConfig cfg;
  cfg.node_profile = hw::EdisonProfile();
  cfg.node_count = std::max(10, n / 2500);
  cfg.client_machines = std::max(4, n / 12500);
  return cfg;
}

struct CellOutcome {
  double achieved_per_s = 0;  // OK replies (web) or queries (kv) per sim-s
  double error_rate = 0;
  double mean_latency_s = 0;
  std::uint64_t events = 0;
};

CellOutcome RunWebCell(int n, Rng& root, obs::Tracer* tracer) {
  web::WebTestbedConfig cfg = WebGeometry(n);
  cfg.seed = root.Next();
  if (tracer != nullptr) {
    cfg.tracer = tracer;
    cfg.trace_sample_every = 4096;
  }
  web::WebExperiment exp(std::move(cfg));
  const web::LevelReport r = exp.MeasureClosedLoop(
      web::HeavyMix(), /*concurrency=*/n / kWindowSeconds,
      /*calls_per_connection=*/2, Seconds(2), Seconds(kWindowSeconds));
  return {r.achieved_rps, r.error_rate, r.mean_response, r.executed_events};
}

CellOutcome RunKvCell(int n, Rng& root, obs::Tracer* tracer) {
  kv::KvExperimentConfig cfg = KvGeometry(n);
  cfg.seed = root.Next();
  if (tracer != nullptr) {
    cfg.tracer = tracer;
    cfg.trace_sample_every = 4096;
  }
  kv::KvExperiment exp(std::move(cfg));
  const kv::KvReport r =
      exp.Measure(/*target_qps=*/n / kWindowSeconds, Seconds(kWindowSeconds));
  return {r.achieved_qps, r.error_rate, r.mean_latency, r.executed_events};
}

struct Cell {
  std::string run_name;  // e.g. BM_MacroWebHeavy/100000
  bool web = true;
  int n = 0;
  // Seed-tree index: a pure function of (workload, n) so a cell's seeds
  // never depend on which other cells run (--filter/--workload/
  // --connections leave every surviving cell bit-identical).
  int seed_index = 0;
};

std::vector<Cell> BuildCells(const Flags& flags) {
  std::vector<Cell> cells;
  for (int n : flags.connections) {
    if (flags.workload != "kv") {
      cells.push_back(
          {"BM_MacroWebHeavy/" + std::to_string(n), true, n, 2 * n});
    }
    if (flags.workload != "web") {
      cells.push_back(
          {"BM_MacroKv/" + std::to_string(n), false, n, 2 * n + 1});
    }
  }
  if (!flags.filter.empty()) {
    const std::regex re(flags.filter);
    std::erase_if(cells, [&](const Cell& c) {
      return !std::regex_search(c.run_name, re);
    });
  }
  return cells;
}

// --- determinism mode ---------------------------------------------------
// Prints a pure function of (cells, seed, reps): per-replication final
// stats plus the first trace events of each replication's sampled log.
// tools/check_trace.sh diffs this output across --threads values.

struct DetResult {
  CellOutcome outcome;
  std::vector<std::string> trace_prefix;
};

int RunDeterminism(const Flags& flags) {
  const std::vector<Cell> cells = BuildCells(flags);
  // Same deterministic pool + pre-sized index-merged grid as RunSweep,
  // but each replication is rooted at the cell's stable seed_index so
  // results are filter-invariant and match the throughput mode's seeds.
  const int reps = flags.reps;
  std::vector<std::vector<DetResult>> sweep(
      cells.size(), std::vector<DetResult>(reps));
  sim::internal::RunIndexedTasks(
      static_cast<int>(cells.size()) * reps, flags.threads, [&](int task) {
        const int c = task / reps;
        const int r = task % reps;
        const Cell& cell = cells[c];
        Rng root(
            sim::ReplicationSeed(flags.seed, cell.seed_index, r));
        obs::Tracer tracer;
        const CellOutcome out = cell.web
                                    ? RunWebCell(cell.n, root, &tracer)
                                    : RunKvCell(cell.n, root, &tracer);
        DetResult res{out, {}};
        const obs::TraceLog log = tracer.TakeLog();
        const std::size_t prefix =
            std::min<std::size_t>(log.events.size(), 48);
        for (std::size_t i = 0; i < prefix; ++i) {
          const obs::TraceEvent& e = log.events[i];
          char buf[256];
          std::snprintf(buf, sizeof(buf),
                        "%c %s t=%.9g track=%d arg=%lld ids=%llu/%llu/%llu",
                        e.phase, e.name, e.time, e.track,
                        static_cast<long long>(e.arg),
                        static_cast<unsigned long long>(e.trace_id),
                        static_cast<unsigned long long>(e.span_id),
                        static_cast<unsigned long long>(e.parent_id));
          res.trace_prefix.push_back(buf);
        }
        sweep[c][r] = std::move(res);
      });
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (int r = 0; r < flags.reps; ++r) {
      const DetResult& res = sweep[c][r];
      std::printf("%s rep=%d achieved=%.9g err=%.9g mean_s=%.9g "
                  "events=%llu trace_events=%zu\n",
                  cells[c].run_name.c_str(), r, res.outcome.achieved_per_s,
                  res.outcome.error_rate, res.outcome.mean_latency_s,
                  static_cast<unsigned long long>(res.outcome.events),
                  res.trace_prefix.size());
      for (std::size_t i = 0; i < res.trace_prefix.size(); ++i) {
        std::printf("%s rep=%d trace[%zu]: %s\n", cells[c].run_name.c_str(),
                    r, i, res.trace_prefix[i].c_str());
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Parse(argc, argv);
  if (flags.determinism) return RunDeterminism(flags);

  const std::vector<Cell> cells = BuildCells(flags);

  struct Entry {
    std::string run_name;
    int rep = 0;
    double wall_s = 0;
    double events_per_s = 0;
    CellOutcome outcome;
    long long peak_rss = 0;
  };
  std::vector<Entry> entries;

  // Cells run serially (ascending N, web before kv at each N) so
  // wall-clock per replication is undisturbed and VmHWM is meaningful
  // for the first large cell.
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    for (int r = 0; r < flags.reps; ++r) {
      Rng root(sim::ReplicationSeed(flags.seed, cell.seed_index, r));
      const auto t0 = std::chrono::steady_clock::now();
      const CellOutcome out = cell.web ? RunWebCell(cell.n, root, nullptr)
                                       : RunKvCell(cell.n, root, nullptr);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      Entry e;
      e.run_name = cell.run_name;
      e.rep = r;
      e.wall_s = wall;
      e.events_per_s =
          wall > 0 ? static_cast<double>(out.events) / wall : 0;
      e.outcome = out;
      e.peak_rss = PeakRssBytes();
      entries.push_back(e);
      std::printf(
          "%-28s rep %d: %8.2fs wall, %10llu events, %8.0f events/s, "
          "%7.0f served/s, err %.3f, peak RSS %lld MiB\n",
          cell.run_name.c_str(), r, wall,
          static_cast<unsigned long long>(out.events), e.events_per_s,
          out.achieved_per_s, out.error_rate, e.peak_rss >> 20);
      std::fflush(stdout);
    }
  }

  if (!flags.json_path.empty()) {
    std::FILE* f = std::fopen(flags.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   flags.json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"context\": {\n"
                 "    \"executable\": \"bench_scale_macro\",\n"
                 "    \"window_seconds\": %g,\n"
                 "    \"reps\": %d,\n"
                 "    \"note\": \"items_per_second = whole replications "
                 "per wall second (1/wall); events_per_second is "
                 "informational; peak_rss_bytes is process VmHWM "
                 "(monotonic across cells, run in ascending-N "
                 "order)\"\n  },\n  \"benchmarks\": [\n",
                 kWindowSeconds, flags.reps);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"run_name\": \"%s\", "
          "\"run_type\": \"iteration\", \"repetition_index\": %d, "
          "\"iterations\": 1, \"real_time\": %.6f, \"cpu_time\": %.6f, "
          "\"time_unit\": \"s\", \"items_per_second\": %.6f, "
          "\"events\": %llu, \"events_per_second\": %.3f, "
          "\"served_per_second\": %.3f, "
          "\"error_rate\": %.6f, \"peak_rss_bytes\": %lld}%s\n",
          e.run_name.c_str(), e.run_name.c_str(), e.rep, e.wall_s, e.wall_s,
          e.wall_s > 0 ? 1.0 / e.wall_s : 0.0,
          static_cast<unsigned long long>(e.outcome.events), e.events_per_s,
          e.outcome.achieved_per_s, e.outcome.error_rate, e.peak_rss,
          i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", flags.json_path.c_str());
  }
  return 0;
}
