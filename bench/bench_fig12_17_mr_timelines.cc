// Reproduces paper Figures 12-17: per-second timelines of CPU%, memory%,
// cluster power and map/reduce progress for wordcount, wordcount2 and the
// pi estimator, on the 35-slave Edison cluster and the 2-slave Dell
// cluster (each with a Dell master excluded from the power trace).
#include <cstdio>
#include <string>

#include "core/experiments.h"

namespace {

using namespace wimpy;

void PrintTimeline(const std::string& title,
                   const mapreduce::MrRunResult& result) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "runtime %.0f s, slave energy %.0f J, mean slave power %.1f W, maps "
      "%d, reduces %d, data-local %.0f%%\n",
      result.job.elapsed, result.slave_joules, result.mean_slave_power,
      result.job.map_tasks, result.job.reduce_tasks,
      100 * result.job.data_local_fraction);
  std::printf("%8s %8s %8s %8s %8s %8s\n", "t(s)", "CPU%", "Mem%",
              "Power(W)", "Map%", "Reduce%");
  // Thin the series to ~25 printed rows.
  const std::size_t stride =
      std::max<std::size_t>(1, result.timeline.size() / 25);
  for (std::size_t i = 0; i < result.timeline.size(); i += stride) {
    const auto& s = result.timeline[i];
    std::printf("%8.0f %8.1f %8.1f %8.1f %8.1f %8.1f\n", s.time, s.cpu_pct,
                s.memory_pct, s.power_watts, s.gauge_a, s.gauge_b);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using core::PaperJob;

  struct Case {
    PaperJob job;
    const char* edison_fig;
    const char* dell_fig;
    const char* paper_edison;
    const char* paper_dell;
  };
  const Case cases[] = {
      {PaperJob::kWordCount, "Figure 12", "Figure 15",
       "310 s / 17670 J", "213 s / 40214 J"},
      {PaperJob::kWordCount2, "Figure 13", "Figure 16",
       "182 s / 10370 J", "66 s / 11695 J"},
      {PaperJob::kPi, "Figure 14", "Figure 17", "200 s / 11445 J",
       "50 s / 9285 J"},
  };

  for (const auto& c : cases) {
    const auto edison = core::RunPaperJob(c.job, mapreduce::EdisonMrCluster(35));
    PrintTimeline(std::string(c.edison_fig) + ": " +
                      std::string(core::PaperJobName(c.job)) +
                      " on Edison cluster (paper: " + c.paper_edison + ")",
                  edison);
    const auto dell = core::RunPaperJob(c.job, mapreduce::DellMrCluster(2));
    PrintTimeline(std::string(c.dell_fig) + ": " +
                      std::string(core::PaperJobName(c.job)) +
                      " on Dell cluster (paper: " + c.paper_dell + ")",
                  dell);
  }

  std::printf(
      "Paper shapes: CPU rises only after the container-allocation phase\n"
      "(~45 s on Edison vs ~20 s on Dell for wordcount); wordcount2 cuts\n"
      "completion time 41%% on Edison and 69%% on Dell; pi pins CPU at\n"
      "100%% on both and is the one job where Dell wins on energy.\n");
  return 0;
}
