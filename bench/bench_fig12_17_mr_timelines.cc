// Reproduces paper Figures 12-17: per-second timelines of CPU%, memory%,
// cluster power and map/reduce progress for wordcount, wordcount2 and the
// pi estimator, on the 35-slave Edison cluster and the 2-slave Dell
// cluster (each with a Dell master excluded from the power trace).
//
// --trace exports one Chrome-trace pid per run (Figure order: wordcount
// Edison, wordcount Dell, wordcount2 Edison, ...), with a span per
// map/reduce attempt — the timelines of Figures 12-17 as a Perfetto
// flame chart. --metrics exports the per-slave/YARN/HDFS time series
// (docs/observability.md).
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_args.h"
#include "core/experiments.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"

namespace {

using namespace wimpy;

void PrintTimeline(const std::string& title,
                   const mapreduce::MrRunResult& result) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "runtime %.0f s, slave energy %.0f J, mean slave power %.1f W, maps "
      "%d, reduces %d, data-local %.0f%%\n",
      result.job.elapsed, result.slave_joules, result.mean_slave_power,
      result.job.map_tasks, result.job.reduce_tasks,
      100 * result.job.data_local_fraction);
  std::printf("%8s %8s %8s %8s %8s %8s\n", "t(s)", "CPU%", "Mem%",
              "Power(W)", "Map%", "Reduce%");
  // Thin the series to ~25 printed rows.
  const std::size_t stride =
      std::max<std::size_t>(1, result.timeline.size() / 25);
  for (std::size_t i = 0; i < result.timeline.size(); i += stride) {
    const auto& s = result.timeline[i];
    std::printf("%8.0f %8.1f %8.1f %8.1f %8.1f %8.1f\n", s.time, s.cpu_pct,
                s.memory_pct, s.power_watts, s.gauge_a, s.gauge_b);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using core::PaperJob;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  std::vector<obs::TraceLog> logs;
  std::vector<obs::MetricsSeries> series;
  // Runs one paper job with per-run observability capture; logs merge in
  // run order.
  auto run_job = [&](PaperJob job, mapreduce::MrClusterConfig cfg) {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    if (want_trace) cfg.tracer = &tracer;
    if (want_metrics) cfg.metrics = &metrics;
    const auto result = core::RunPaperJob(job, std::move(cfg));
    if (want_trace) logs.push_back(tracer.TakeLog());
    if (want_metrics) series.push_back(metrics.TakeSeries());
    return result;
  };

  struct Case {
    PaperJob job;
    const char* edison_fig;
    const char* dell_fig;
    const char* paper_edison;
    const char* paper_dell;
  };
  const Case cases[] = {
      {PaperJob::kWordCount, "Figure 12", "Figure 15",
       "310 s / 17670 J", "213 s / 40214 J"},
      {PaperJob::kWordCount2, "Figure 13", "Figure 16",
       "182 s / 10370 J", "66 s / 11695 J"},
      {PaperJob::kPi, "Figure 14", "Figure 17", "200 s / 11445 J",
       "50 s / 9285 J"},
  };

  for (const auto& c : cases) {
    const auto edison = run_job(c.job, mapreduce::EdisonMrCluster(35));
    PrintTimeline(std::string(c.edison_fig) + ": " +
                      std::string(core::PaperJobName(c.job)) +
                      " on Edison cluster (paper: " + c.paper_edison + ")",
                  edison);
    const auto dell = run_job(c.job, mapreduce::DellMrCluster(2));
    PrintTimeline(std::string(c.dell_fig) + ": " +
                      std::string(core::PaperJobName(c.job)) +
                      " on Dell cluster (paper: " + c.paper_dell + ")",
                  dell);
  }

  std::printf(
      "Paper shapes: CPU rises only after the container-allocation phase\n"
      "(~45 s on Edison vs ~20 s on Dell for wordcount); wordcount2 cuts\n"
      "completion time 41%% on Edison and 69%% on Dell; pi pins CPU at\n"
      "100%% on both and is the one job where Dell wins on energy.\n");
  bench::ExportObsLogs(args, logs, series);
  return 0;
}
