// Reproduces paper Figures 4 & 7 (plus Table 6): web-service throughput,
// response delay and cluster power versus httperf concurrency under the
// lightest workload (0% image queries, 93% cache hit ratio), across the
// scale ladder of 3/6/12/24 Edison and 1/2 Dell web servers.
#include <cstdio>

#include "common/csv.h"
#include "common/table.h"
#include "web_bench_util.h"

int main() {
  using namespace wimpy;
  using bench::WebScale;

  TextTable config("Table 6: Cluster configuration and scale factor");
  config.SetHeader({"Cluster size", "Full", "1/2", "1/4", "1/8"});
  config.AddRow({"# Edison web servers", "24", "12", "6", "3"});
  config.AddRow({"# Edison cache servers", "11", "6", "3", "2"});
  config.AddRow({"# Dell web servers", "2", "1", "N/A", "N/A"});
  config.AddRow({"# Dell cache servers", "1", "1", "N/A", "N/A"});
  config.Print();
  std::printf("\n");

  const web::WorkloadMix mix = web::LightMix();
  std::vector<WebScale> scales = bench::EdisonScales();
  for (const auto& s : bench::DellScales()) scales.push_back(s);

  TextTable rps("Figure 4: requests/sec vs concurrency (0% image, 93% "
                "cache) + cluster power");
  TextTable delay("Figure 7: mean response delay (ms) vs concurrency");
  std::vector<std::string> header{"Concurrency"};
  for (const auto& s : scales) header.push_back(s.label);
  header.push_back("Edison power (24)");
  header.push_back("Dell power (2)");
  rps.SetHeader(header);
  delay.SetHeader(std::vector<std::string>(header.begin(),
                                           header.end() - 2));

  for (double conc : bench::ConcurrencyLevels()) {
    std::vector<std::string> rps_row{TextTable::Num(conc, 0)};
    std::vector<std::string> delay_row{TextTable::Num(conc, 0)};
    double edison_power = 0, dell_power = 0;
    for (const auto& scale : scales) {
      web::WebExperiment exp = bench::MakeExperiment(scale);
      const web::LevelReport r = exp.MeasureClosedLoop(
          mix, conc, web::WebExperiment::TunedCallsPerConnection(conc),
          bench::WarmupWindow(), bench::MeasureWindowFor(conc));
      std::string cell = TextTable::Num(r.achieved_rps, 0);
      if (r.error_rate > 0.01) {
        cell += " (err " + TextTable::Num(100 * r.error_rate, 0) + "%)";
      }
      rps_row.push_back(cell);
      delay_row.push_back(TextTable::Num(1000 * r.mean_response, 1));
      if (scale.label == "24 Edison") edison_power = r.middle_tier_power;
      if (scale.label == "2 Dell") dell_power = r.middle_tier_power;
    }
    rps_row.push_back(TextTable::Num(edison_power, 1) + " W");
    rps_row.push_back(TextTable::Num(dell_power, 1) + " W");
    rps.AddRow(rps_row);
    delay.AddRow(delay_row);
  }
  rps.Print();
  MaybeExportCsv(rps, "fig4_throughput");
  std::printf("\n");
  delay.Print();
  MaybeExportCsv(delay, "fig7_delay");

  std::printf(
      "\nPaper shapes to check: peak rps of 24 Edison ~= 2 Dell; rps\n"
      "scales linearly down the Edison ladder; Edison errors appear\n"
      "beyond 1024 concurrency while Dell survives to 2048 with reduced\n"
      "throughput; Edison cluster power ~56-58 W vs Dell 170-200 W ->\n"
      "~3.5x work-done-per-joule at peak; Edison delay ~5x Dell's at low\n"
      "concurrency but Dell's delay explodes past its knee.\n");
  return 0;
}
