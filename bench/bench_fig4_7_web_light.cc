// Reproduces paper Figures 4 & 7 (plus Table 6): web-service throughput,
// response delay and cluster power versus httperf concurrency under the
// lightest workload (0% image queries, 93% cache hit ratio), across the
// scale ladder of 3/6/12/24 Edison and 1/2 Dell web servers.
//
// Supports multi-seed sweeps: --replications=N runs every
// (concurrency, scale) cell N times with independent seeds on --threads
// workers and reports mean±95% CI (docs/parallel.md).
#include <chrono>
#include <cstdio>

#include "common/bench_args.h"
#include "common/csv.h"
#include "common/summary.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "sim/replication.h"
#include "web_bench_util.h"

namespace {

using namespace wimpy;
using bench::WebScale;

struct Cell {
  WebScale scale;
  double concurrency = 0;
};

struct CellResult {
  double rps = 0;
  double error_rate = 0;
  double delay_ms = 0;
  double power = 0;
  double mj_per_req = 0;  // attributed, from the energy ledger
  double disp_p99_ms = 0;      // p99, service start -> completion
  double intended_p99_ms = 0;  // p99, connection intended -> completion
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
  obs::EnergyLedger ledger;
};

CellResult RunCell(const Cell& cell, Rng& root, bool want_trace,
                   bool want_metrics, bool want_summary) {
  web::WebTestbedConfig cfg =
      cell.scale.edison
          ? web::EdisonWebTestbed(cell.scale.web_servers,
                                  cell.scale.cache_servers)
          : web::DellWebTestbed(cell.scale.web_servers,
                                cell.scale.cache_servers);
  cfg.seed = root.Next();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::EnergyAttributor energy;
  if (want_trace || want_summary) cfg.tracer = &tracer;
  if (want_metrics) cfg.metrics = &metrics;
  if (want_summary) cfg.energy = &energy;
  web::WebExperiment exp(std::move(cfg));
  const web::LevelReport r = exp.MeasureClosedLoop(
      web::LightMix(), cell.concurrency,
      web::WebExperiment::TunedCallsPerConnection(cell.concurrency),
      bench::WarmupWindow(), bench::MeasureWindowFor(cell.concurrency));
  CellResult res{r.achieved_rps, r.error_rate, 1000 * r.mean_response,
                 r.middle_tier_power};
  res.disp_p99_ms = 1000 * r.p99_dispatch;
  res.intended_p99_ms = 1000 * r.p99_conn_intended;
  if (want_trace || want_summary) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = metrics.TakeSeries();
  if (want_summary) {
    res.ledger = energy.TakeLedger();
    res.mj_per_req = bench::MeanRequestMillijoules(res.ledger);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool want_omission = bench::PeelOmissionFlag(&argc, argv);
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  TextTable config("Table 6: Cluster configuration and scale factor");
  config.SetHeader({"Cluster size", "Full", "1/2", "1/4", "1/8"});
  config.AddRow({"# Edison web servers", "24", "12", "6", "3"});
  config.AddRow({"# Edison cache servers", "11", "6", "3", "2"});
  config.AddRow({"# Dell web servers", "2", "1", "N/A", "N/A"});
  config.AddRow({"# Dell cache servers", "1", "1", "N/A", "N/A"});
  config.Print();
  std::printf("\n");

  std::vector<WebScale> scales = bench::EdisonScales();
  for (const auto& s : bench::DellScales()) scales.push_back(s);
  const std::vector<double> levels = bench::ConcurrencyLevels();

  // Row-major (concurrency, scale) grid, matching the table iteration.
  std::vector<Cell> cells;
  for (double conc : levels) {
    for (const auto& scale : scales) cells.push_back({scale, conc});
  }

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const bool want_summary = !args.trace_summary_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep =
      sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
        return RunCell(cell, root, want_trace, want_metrics, want_summary);
      });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  TextTable rps("Figure 4: requests/sec vs concurrency (0% image, 93% "
                "cache) + cluster power");
  TextTable delay("Figure 7: mean response delay (ms) vs concurrency");
  std::vector<std::string> header{"Concurrency"};
  for (const auto& s : scales) header.push_back(s.label);
  header.push_back("Edison power (24)");
  header.push_back("Dell power (2)");
  // Per-request attributed energy columns ride along when the energy
  // ledger is being filled (--trace-summary).
  const std::size_t base_columns = header.size();
  if (want_summary) {
    header.push_back("Edison mJ/req (24)");
    header.push_back("Dell mJ/req (2)");
  }
  rps.SetHeader(header);
  delay.SetHeader(std::vector<std::string>(
      header.begin(), header.begin() + (base_columns - 2)));

  int cell_idx = 0;
  for (double conc : levels) {
    std::vector<std::string> rps_row{TextTable::Num(conc, 0)};
    std::vector<std::string> delay_row{TextTable::Num(conc, 0)};
    double edison_power = 0, dell_power = 0;
    double edison_mj = 0, dell_mj = 0;
    for (const auto& scale : scales) {
      const auto& reps = sweep[cell_idx++];
      const MetricSummary rate =
          SummarizeOver(reps, [](const CellResult& r) { return r.rps; });
      const MetricSummary errors =
          SummarizeOver(reps, [](const CellResult& r) { return r.error_rate; });
      const MetricSummary delay_ms =
          SummarizeOver(reps, [](const CellResult& r) { return r.delay_ms; });
      const MetricSummary power =
          SummarizeOver(reps, [](const CellResult& r) { return r.power; });
      std::string cell = FormatMeanCI(rate, 0);
      if (errors.mean > 0.01) {
        cell += " (err " + TextTable::Num(100 * errors.mean, 0) + "%)";
      }
      rps_row.push_back(cell);
      delay_row.push_back(FormatMeanCI(delay_ms, 1));
      if (scale.label == "24 Edison") edison_power = power.mean;
      if (scale.label == "2 Dell") dell_power = power.mean;
      if (want_summary) {
        const MetricSummary mj = SummarizeOver(
            reps, [](const CellResult& r) { return r.mj_per_req; });
        if (scale.label == "24 Edison") edison_mj = mj.mean;
        if (scale.label == "2 Dell") dell_mj = mj.mean;
      }
    }
    rps_row.push_back(TextTable::Num(edison_power, 1) + " W");
    rps_row.push_back(TextTable::Num(dell_power, 1) + " W");
    if (want_summary) {
      rps_row.push_back(TextTable::Num(edison_mj, 2));
      rps_row.push_back(TextTable::Num(dell_mj, 2));
    }
    rps.AddRow(rps_row);
    delay.AddRow(delay_row);
  }
  rps.Print();
  MaybeExportCsv(rps, "fig4_throughput");
  std::printf("\n");
  delay.Print();
  MaybeExportCsv(delay, "fig7_delay");

  if (want_omission) {
    TextTable omission(
        "Omission annotation: call p99 from dispatch / from connection "
        "arrival (ms)");
    std::vector<std::string> oh{"Concurrency"};
    for (const auto& s : scales) oh.push_back(s.label);
    omission.SetHeader(oh);
    int idx = 0;
    for (double conc : levels) {
      std::vector<std::string> row{TextTable::Num(conc, 0)};
      for (std::size_t s = 0; s < scales.size(); ++s) {
        const auto& reps = sweep[idx++];
        const MetricSummary d = SummarizeOver(
            reps, [](const CellResult& r) { return r.disp_p99_ms; });
        const MetricSummary in = SummarizeOver(
            reps, [](const CellResult& r) { return r.intended_p99_ms; });
        row.push_back(bench::FormatOmissionCell(d.mean, in.mean));
      }
      omission.AddRow(row);
    }
    std::printf("\n");
    omission.Print();
    bench::PrintOmissionNote();
  }

  std::printf(
      "\nPaper shapes to check: peak rps of 24 Edison ~= 2 Dell; rps\n"
      "scales linearly down the Edison ladder; Edison errors appear\n"
      "beyond 1024 concurrency while Dell survives to 2048 with reduced\n"
      "throughput; Edison cluster power ~56-58 W vs Dell 170-200 W ->\n"
      "~3.5x work-done-per-joule at peak; Edison delay ~5x Dell's at low\n"
      "concurrency but Dell's delay explodes past its knee.\n");
  bench::ExportSweepObsEnergy(args, sweep);
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
