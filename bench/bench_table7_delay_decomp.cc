// Reproduces paper Table 7: decomposition of the web-server-side delay
// into database fetch and cache fetch time at request rates from 480 to
// 7680 req/s (20% image, 93% cache hit). The paper's key observation:
// Edison's cache delay blows up with load (slower NICs + in-cluster
// latency) while its database delay — served by the same two Dell MySQL
// machines both clusters use — grows only mildly.
#include <cstdio>

#include "common/csv.h"
#include "common/table.h"
#include "web_bench_util.h"

int main() {
  using namespace wimpy;

  const web::WorkloadMix mix = web::HeavyMix();
  TextTable table(
      "Table 7: delay decomposition in ms, (Edison, Dell) per cell");
  table.SetHeader({"# Request/s", "Database delay", "Cache delay",
                   "Total"});

  for (double rate : {480.0, 960.0, 1920.0, 3840.0, 7680.0}) {
    double e_db = 0, e_cache = 0, e_total = 0;
    double d_db = 0, d_cache = 0, d_total = 0;
    for (bool edison : {true, false}) {
      const bench::WebScale scale = edison ? bench::EdisonScales().back()
                                           : bench::DellScales().back();
      web::WebExperiment exp = bench::MakeExperiment(scale);
      const web::OpenLoopReport r =
          exp.MeasureOpenLoop(mix, rate, bench::MeasureWindow());
      if (edison) {
        e_db = 1000 * r.db_delay.mean();
        e_cache = 1000 * r.cache_delay.mean();
        e_total = 1000 * r.total_delay.mean();
      } else {
        d_db = 1000 * r.db_delay.mean();
        d_cache = 1000 * r.cache_delay.mean();
        d_total = 1000 * r.total_delay.mean();
      }
    }
    auto pair = [](double e, double d) {
      return "(" + TextTable::Num(e, 2) + ", " + TextTable::Num(d, 2) + ")";
    };
    table.AddRow({TextTable::Num(rate, 0), pair(e_db, d_db),
                  pair(e_cache, d_cache), pair(e_total, d_total)});
  }
  table.Print();
  MaybeExportCsv(table, "table7");

  std::printf(
      "\nPaper values for reference (Edison, Dell):\n"
      "  480: db (5.44, 1.61)  cache (4.61, 0.37)  total (9.18, 1.43)\n"
      " 7680: db (10.99, 1.98) cache (212.0, 0.74) total (225.1, 2.93)\n"
      "Shape: Edison cache delay grows ~45x over this range while its DB\n"
      "delay merely doubles; Dell's stays flat throughout.\n");
  return 0;
}
