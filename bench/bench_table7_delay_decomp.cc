// Reproduces paper Table 7: decomposition of the web-server-side delay
// into database fetch and cache fetch time at request rates from 480 to
// 7680 req/s (20% image, 93% cache hit). The paper's key observation:
// Edison's cache delay blows up with load (slower NICs + in-cluster
// latency) while its database delay — served by the same two Dell MySQL
// machines both clusters use — grows only mildly.
//
// Supports multi-seed sweeps (--replications/--threads, docs/parallel.md)
// and observability export (--trace/--metrics/--trace-summary,
// docs/observability.md). The exported metrics CSV's final
// `svc.*_delay_mean` samples reproduce this table exactly; a test pins
// that cross-check, and another pins that the same decomposition is
// re-derivable from the causal trace's critical path alone.
#include <chrono>
#include <cstdio>

#include "common/bench_args.h"
#include "common/csv.h"
#include "common/summary.h"
#include "common/table.h"
#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "sim/replication.h"
#include "web_bench_util.h"

namespace {

using namespace wimpy;

struct Cell {
  bench::WebScale scale;
  double rate = 0;
};

struct CellResult {
  double db_ms = 0;
  double cache_ms = 0;
  double total_ms = 0;
  double mj_per_req = 0;  // attributed, from the energy ledger
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
  obs::EnergyLedger ledger;
};

CellResult RunCell(const Cell& cell, Rng& root, bool want_trace,
                   bool want_metrics, bool want_summary) {
  web::WebTestbedConfig cfg =
      cell.scale.edison
          ? web::EdisonWebTestbed(cell.scale.web_servers,
                                  cell.scale.cache_servers)
          : web::DellWebTestbed(cell.scale.web_servers,
                                cell.scale.cache_servers);
  cfg.seed = root.Next();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::EnergyAttributor energy;
  if (want_trace || want_summary) cfg.tracer = &tracer;
  if (want_metrics) cfg.metrics = &metrics;
  if (want_summary) cfg.energy = &energy;
  web::WebExperiment exp(std::move(cfg));
  const web::OpenLoopReport r =
      exp.MeasureOpenLoop(web::HeavyMix(), cell.rate,
                          bench::MeasureWindow());
  CellResult res;
  res.db_ms = 1000 * r.db_delay.mean();
  res.cache_ms = 1000 * r.cache_delay.mean();
  res.total_ms = 1000 * r.total_delay.mean();
  if (want_trace || want_summary) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = metrics.TakeSeries();
  if (want_summary) {
    res.ledger = energy.TakeLedger();
    res.mj_per_req = bench::MeanRequestMillijoules(res.ledger);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  const std::vector<double> rates = {480, 960, 1920, 3840, 7680};
  // Row-major (rate, platform) grid: Edison column first, like the table.
  std::vector<Cell> cells;
  for (double rate : rates) {
    cells.push_back({bench::EdisonScales().back(), rate});
    cells.push_back({bench::DellScales().back(), rate});
  }

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const bool want_summary = !args.trace_summary_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep =
      sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
        return RunCell(cell, root, want_trace, want_metrics, want_summary);
      });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  TextTable table(
      "Table 7: delay decomposition in ms, (Edison, Dell) per cell");
  // The attributed-energy column rides along when the energy ledger is
  // being filled (--trace-summary).
  std::vector<std::string> header{"# Request/s", "Database delay",
                                  "Cache delay", "Total"};
  if (want_summary) header.push_back("mJ/req");
  table.SetHeader(header);

  int cell_idx = 0;
  for (double rate : rates) {
    const auto& edison_reps = sweep[cell_idx++];
    const auto& dell_reps = sweep[cell_idx++];
    auto mean = [](const std::vector<CellResult>& reps,
                   double CellResult::* member) {
      return SummarizeOver(reps, [member](const CellResult& r) {
               return r.*member;
             }).mean;
    };
    auto pair = [&](double CellResult::* member) {
      return "(" + TextTable::Num(mean(edison_reps, member), 2) + ", " +
             TextTable::Num(mean(dell_reps, member), 2) + ")";
    };
    std::vector<std::string> row{TextTable::Num(rate, 0),
                                 pair(&CellResult::db_ms),
                                 pair(&CellResult::cache_ms),
                                 pair(&CellResult::total_ms)};
    if (want_summary) row.push_back(pair(&CellResult::mj_per_req));
    table.AddRow(row);
  }
  table.Print();
  MaybeExportCsv(table, "table7");

  std::printf(
      "\nPaper values for reference (Edison, Dell):\n"
      "  480: db (5.44, 1.61)  cache (4.61, 0.37)  total (9.18, 1.43)\n"
      " 7680: db (10.99, 1.98) cache (212.0, 0.74) total (225.1, 2.93)\n"
      "Shape: Edison cache delay grows ~45x over this range while its DB\n"
      "delay merely doubles; Dell's stays flat throughout.\n");
  bench::ExportSweepObsEnergy(args, sweep);
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
