// Reproduces paper Figures 10 & 11: the client-perceived response-delay
// distribution at ~6000 req/s under the heaviest workload (20% image),
// measured by open-loop python-style clients that open a fresh connection
// per request. The Dell histogram spikes at 1 s / 3 s / 7 s — dropped SYNs
// retransmitted on the exponential backoff schedule — while the 24-Edison
// cluster, with 12x the connection-setup resources, shows far fewer
// reconnects.
//
// Supports multi-seed sweeps: --replications=N runs each platform N times
// with independent seeds on --threads workers, reports the scalar metrics
// as mean±95% CI and merges the per-replication histograms into one
// distribution (docs/parallel.md, docs/observability.md).
#include <chrono>
#include <cstdio>

#include "common/bench_args.h"
#include "common/summary.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "sim/replication.h"
#include "web_bench_util.h"

namespace {

using namespace wimpy;

constexpr double kTargetRps = 6000;
constexpr double kHistMaxS = 8.0;
constexpr std::size_t kHistBuckets = 32;

struct Cell {
  bool edison = true;
};

struct CellResult {
  double target_rps = 0;
  double achieved_rps = 0;
  double error_rate = 0;
  double mean_delay_ms = 0;
  LinearHistogram hist{0.0, kHistMaxS, kHistBuckets};
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
};

CellResult RunCell(const Cell& cell, Rng& root, bool want_trace,
                   bool want_metrics) {
  const bench::WebScale scale = cell.edison ? bench::EdisonScales().back()
                                            : bench::DellScales().back();
  web::WebTestbedConfig cfg =
      cell.edison
          ? web::EdisonWebTestbed(scale.web_servers, scale.cache_servers)
          : web::DellWebTestbed(scale.web_servers, scale.cache_servers);
  cfg.seed = root.Next();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (want_trace) cfg.tracer = &tracer;
  if (want_metrics) cfg.metrics = &metrics;
  web::WebExperiment exp(std::move(cfg));
  const web::OpenLoopReport r =
      exp.MeasureOpenLoop(web::HeavyMix(), kTargetRps,
                          bench::MeasureWindow(), kHistMaxS, kHistBuckets);
  CellResult res;
  res.target_rps = r.target_rps;
  res.achieved_rps = r.achieved_rps;
  res.error_rate = r.error_rate;
  res.mean_delay_ms = 1000 * r.client_delay.mean();
  res.hist = r.delay_histogram;
  if (want_trace) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = metrics.TakeSeries();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  const std::vector<Cell> cells = {{true}, {false}};
  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    return RunCell(cell, root, want_trace, want_metrics);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (std::size_t c = 0; c < cells.size(); ++c) {
    const bool edison = cells[c].edison;
    const auto& reps = sweep[c];
    const MetricSummary achieved = SummarizeOver(
        reps, [](const CellResult& r) { return r.achieved_rps; });
    const MetricSummary errors = SummarizeOver(
        reps, [](const CellResult& r) { return 100 * r.error_rate; });
    const MetricSummary delay = SummarizeOver(
        reps, [](const CellResult& r) { return r.mean_delay_ms; });

    std::printf("== Figure %d: delay distribution on %s cluster ==\n",
                edison ? 10 : 11, edison ? "Edison" : "Dell");
    std::printf(
        "target %.0f req/s, achieved %s req/s, error rate %s%%, mean "
        "client delay %s ms\n",
        kTargetRps, FormatMeanCI(achieved, 0).c_str(),
        FormatMeanCI(errors, 1).c_str(), FormatMeanCI(delay, 0).c_str());
    // One distribution over all replications: histograms merge exactly
    // because every replication uses identical bucket edges.
    LinearHistogram merged{0.0, kHistMaxS, kHistBuckets};
    for (const CellResult& r : reps) merged.Merge(r.hist);
    std::fputs(merged.ToAscii(46).c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper shapes: Edison shows a larger *average* delay but a compact\n"
      "distribution; Dell's histogram has secondary spikes near 1, 3 and\n"
      "7 seconds (SYN retransmission backoff), because ~3000 fresh\n"
      "connections/sec funnel into only 2 servers' accept queues.\n");
  bench::ExportSweepObs(args, sweep);
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
