// Reproduces paper Figures 10 & 11: the client-perceived response-delay
// distribution at ~6000 req/s under the heaviest workload (20% image),
// measured by open-loop python-style clients that open a fresh connection
// per request. The Dell histogram spikes at 1 s / 3 s / 7 s — dropped SYNs
// retransmitted on the exponential backoff schedule — while the 24-Edison
// cluster, with 12x the connection-setup resources, shows far fewer
// reconnects.
#include <cstdio>

#include "common/table.h"
#include "web_bench_util.h"

int main() {
  using namespace wimpy;

  const web::WorkloadMix mix = web::HeavyMix();
  const double target_rps = 6000;

  for (bool edison : {true, false}) {
    const bench::WebScale scale =
        edison ? bench::EdisonScales().back() : bench::DellScales().back();
    web::WebExperiment exp = bench::MakeExperiment(scale);
    const web::OpenLoopReport report = exp.MeasureOpenLoop(
        mix, target_rps, bench::MeasureWindow(), /*histogram_max_s=*/8.0,
        /*histogram_buckets=*/32);

    std::printf("== Figure %d: delay distribution on %s cluster ==\n",
                edison ? 10 : 11, edison ? "Edison" : "Dell");
    std::printf(
        "target %.0f req/s, achieved %.0f req/s, error rate %.1f%%, mean "
        "client delay %.0f ms\n",
        report.target_rps, report.achieved_rps, 100 * report.error_rate,
        1000 * report.client_delay.mean());
    std::fputs(report.delay_histogram.ToAscii(46).c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Paper shapes: Edison shows a larger *average* delay but a compact\n"
      "distribution; Dell's histogram has secondary spikes near 1, 3 and\n"
      "7 seconds (SYN retransmission backoff), because ~3000 fresh\n"
      "connections/sec funnel into only 2 servers' accept queues.\n");
  return 0;
}
