// Ablation studies for the design choices DESIGN.md calls out:
//   1. Edison USB-Ethernet-adapter power in/out of the energy account
//      (the paper notes >half the Edison cluster's power is adapters);
//   2. combiner on/off for the combined-input wordcount;
//   3. HDFS block size vs container count (wordcount2 on Edison);
//   4. YARN per-heartbeat container assignment rate (the allocation
//      overhead mechanism) for many-file wordcount on Dell;
//   5. HDFS replication factor vs map data-locality on Edison.
#include <cstdio>

#include "common/table.h"
#include "core/experiments.h"
#include "hw/profiles.h"

int main() {
  using namespace wimpy;
  using core::PaperJob;

  // --- 1. adapter power ------------------------------------------------------
  {
    const auto with = core::RunPaperJob(PaperJob::kWordCount2,
                                        mapreduce::EdisonMrCluster(8));
    auto config = mapreduce::EdisonMrCluster(8);
    config.slave_profile.power.idle -=
        config.slave_profile.power.constant_adapter;
    config.slave_profile.power.busy -=
        config.slave_profile.power.constant_adapter;
    config.slave_profile.power.constant_adapter = 0;
    const auto without = core::RunPaperJob(PaperJob::kWordCount2, config);
    TextTable t("Ablation 1: Edison USB Ethernet adapter power "
                "(wordcount2, 8 slaves)");
    t.SetHeader({"Configuration", "Runtime", "Slave energy"});
    t.AddRow({"with 1 W adapters (paper setup)",
              TextTable::Num(with.job.elapsed, 0) + " s",
              TextTable::Num(with.slave_joules, 0) + " J"});
    t.AddRow({"integrated NIC (hypothetical)",
              TextTable::Num(without.job.elapsed, 0) + " s",
              TextTable::Num(without.slave_joules, 0) + " J"});
    t.Print();
    std::printf(
        "-> adapters account for %.0f%% of Edison energy; an integrated "
        "0.1 W NIC would widen every efficiency ratio.\n\n",
        100.0 * (with.slave_joules - without.slave_joules) /
            with.slave_joules);
  }

  // --- 2. combiner on/off ----------------------------------------------------
  {
    auto config = mapreduce::EdisonMrCluster(8);
    mapreduce::MrTestbed with_tb(config);
    auto spec = mapreduce::WordCount2Job(with_tb.config());
    mapreduce::LoadInputFor(spec, &with_tb);
    const auto with = with_tb.RunJob(spec);

    mapreduce::MrTestbed without_tb(config);
    auto no_combiner = spec;
    no_combiner.has_combiner = false;
    mapreduce::LoadInputFor(no_combiner, &without_tb);
    const auto without = without_tb.RunJob(no_combiner);

    TextTable t("Ablation 2: combiner (wordcount2, 8 Edison slaves)");
    t.SetHeader({"Configuration", "Shuffle bytes", "Runtime", "Energy"});
    t.AddRow({"combiner on", FormatBytes(with.job.map_output_bytes),
              TextTable::Num(with.job.elapsed, 0) + " s",
              TextTable::Num(with.slave_joules, 0) + " J"});
    t.AddRow({"combiner off", FormatBytes(without.job.map_output_bytes),
              TextTable::Num(without.job.elapsed, 0) + " s",
              TextTable::Num(without.slave_joules, 0) + " J"});
    t.Print();
    std::printf("\n");
  }

  // --- 3. block size ---------------------------------------------------------
  {
    TextTable t("Ablation 3: HDFS block size (wordcount2, 8 Edison "
                "slaves)");
    t.SetHeader({"Block size", "Map tasks", "Runtime", "Energy"});
    for (Bytes block : {MiB(8), MiB(16), MiB(32), MiB(64)}) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.hdfs.block_size = block;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCount2Job(tb.config());
      // Split packing follows the block size.
      spec.max_split_size = block;
      mapreduce::LoadInputFor(spec, &tb);
      const auto r = tb.RunJob(spec);
      t.AddRow({FormatBytes(block), std::to_string(r.job.map_tasks),
                TextTable::Num(r.job.elapsed, 0) + " s",
                TextTable::Num(r.slave_joules, 0) + " J"});
    }
    t.Print();
    std::printf(
        "-> larger blocks mean fewer containers (less overhead) but\n"
        "coarser failure/recovery units — the trade-off of §5.2.1.\n\n");
  }

  // --- 4. allocation rate ----------------------------------------------------
  {
    TextTable t("Ablation 4: YARN containers assigned per node-heartbeat "
                "(wordcount, 2 Dell slaves, 200 input files)");
    t.SetHeader({"Containers/heartbeat", "Runtime", "Energy"});
    for (int rate : {1, 2, 4, 8}) {
      auto config = mapreduce::DellMrCluster(2);
      config.yarn.containers_per_node_heartbeat = rate;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCountJob(tb.config());
      mapreduce::LoadInputFor(spec, &tb);
      const auto r = tb.RunJob(spec);
      t.AddRow({std::to_string(rate),
                TextTable::Num(r.job.elapsed, 0) + " s",
                TextTable::Num(r.slave_joules, 0) + " J"});
    }
    t.Print();
    std::printf(
        "-> the 200-small-file job is allocation-bound on 2 nodes; 35\n"
        "Edisons absorb the same containers in a few heartbeats.\n\n");
  }

  // --- 5b. straggler / heterogeneity ----------------------------------------
  {
    TextTable t("Ablation 5b: throttled slaves at 50% CPU (wordcount2, "
                "8 Edison slaves)");
    t.SetHeader({"Throttled nodes", "Runtime", "Energy"});
    for (int throttled : {0, 1, 2, 4}) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.throttled_slaves = throttled;
      config.throttle_factor = 0.5;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCount2Job(tb.config());
      mapreduce::LoadInputFor(spec, &tb);
      const auto r = tb.RunJob(spec);
      t.AddRow({std::to_string(throttled),
                TextTable::Num(r.job.elapsed, 0) + " s",
                TextTable::Num(r.slave_joules, 0) + " J"});
    }
    t.Print();
    std::printf(
        "-> one throttled node already gates the one-wave reduce phase\n"
        "(~2x), and extra slow nodes add almost nothing — the straggler\n"
        "profile Hadoop counters with speculative execution (not\n"
        "modelled); multi-wave map phases dilute it naturally.\n\n");
  }

  // --- 5c. speculative execution --------------------------------------------
  {
    TextTable t("Ablation 5c: speculative execution vs a 25%-speed "
                "straggler (wordcount, 8 Edison slaves)");
    t.SetHeader({"Configuration", "Runtime", "Energy"});
    for (bool speculative : {false, true}) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.throttled_slaves = 1;
      config.throttle_factor = 0.25;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCountJob(tb.config());
      spec.input_files = 40;
      spec.input_bytes = MB(200);
      spec.reducers = 4;
      spec.speculative_execution = speculative;
      mapreduce::LoadInputFor(spec, &tb);
      const auto r = tb.RunJob(spec);
      t.AddRow({speculative ? "speculation on" : "speculation off",
                TextTable::Num(r.job.elapsed, 0) + " s",
                TextTable::Num(r.slave_joules, 0) + " J"});
    }
    t.Print();
    std::printf(
        "-> duplicate attempts trade a little extra energy for cutting\n"
        "the straggler tail — Hadoop's remedy, reproduced.\n\n");
  }

  // --- 5. replication vs locality --------------------------------------------
  {
    TextTable t("Ablation 5: HDFS replication (wordcount, 8 Edison "
                "slaves)");
    t.SetHeader({"Replication", "Data-local maps", "Runtime"});
    for (int rep : {1, 2, 3}) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.hdfs.replication = rep;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCountJob(tb.config());
      mapreduce::LoadInputFor(spec, &tb);
      const auto r = tb.RunJob(spec);
      t.AddRow({std::to_string(rep),
                TextTable::Num(100 * r.job.data_local_fraction, 0) + "%",
                TextTable::Num(r.job.elapsed, 0) + " s"});
    }
    t.Print();
    std::printf(
        "-> the paper picks replication 2 (Edison) / 1 (Dell) so both\n"
        "clusters sit near 95%% data-local maps.\n");
  }
  return 0;
}
