// Ablation studies for the design choices DESIGN.md calls out:
//   1. Edison USB-Ethernet-adapter power in/out of the energy account
//      (the paper notes >half the Edison cluster's power is adapters);
//   2. combiner on/off for the combined-input wordcount;
//   3. HDFS block size vs container count (wordcount2 on Edison);
//   4. YARN per-heartbeat container assignment rate (the allocation
//      overhead mechanism) for many-file wordcount on Dell;
//   5. HDFS replication factor vs map data-locality on Edison.
//
// Every ablation case is one sweep configuration: --replications=N runs
// each case N times with independent seeds on --threads workers and the
// tables report mean±95% CI (docs/parallel.md).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "core/experiments.h"
#include "hw/profiles.h"
#include "sim/replication.h"

namespace {

using namespace wimpy;
using core::PaperJob;

// The union of metrics any ablation table reads; each section uses the
// fields it cares about.
struct CaseResult {
  double elapsed = 0;
  double joules = 0;
  double shuffle_bytes = 0;
  double map_tasks = 0;
  double data_local = 0;
};

CaseResult FromRun(const mapreduce::MrRunResult& r) {
  CaseResult c;
  c.elapsed = r.job.elapsed;
  c.joules = r.slave_joules;
  c.shuffle_bytes = static_cast<double>(r.job.map_output_bytes);
  c.map_tasks = static_cast<double>(r.job.map_tasks);
  c.data_local = r.job.data_local_fraction;
  return c;
}

// One ablation case: a label plus a self-contained run function that
// builds all simulation state from the root Rng (no shared state, so the
// sweep may run cases and replications concurrently).
struct Case {
  std::string label;
  std::function<CaseResult(Rng&)> run;
};

// Aggregated view of one case after the sweep.
struct CaseStats {
  MetricSummary elapsed, joules, shuffle_bytes, map_tasks, data_local;
};

CaseStats StatsFor(const std::vector<CaseResult>& reps) {
  CaseStats s;
  s.elapsed = SummarizeOver(reps, [](const CaseResult& r) { return r.elapsed; });
  s.joules = SummarizeOver(reps, [](const CaseResult& r) { return r.joules; });
  s.shuffle_bytes =
      SummarizeOver(reps, [](const CaseResult& r) { return r.shuffle_bytes; });
  s.map_tasks =
      SummarizeOver(reps, [](const CaseResult& r) { return r.map_tasks; });
  s.data_local =
      SummarizeOver(reps, [](const CaseResult& r) { return r.data_local; });
  return s;
}

std::string Secs(const CaseStats& s) { return FormatMeanCI(s.elapsed, 0) + " s"; }
std::string Jls(const CaseStats& s) { return FormatMeanCI(s.joules, 0) + " J"; }

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  std::vector<Case> cases;

  // --- 1. adapter power ------------------------------------------------------
  const int a1 = static_cast<int>(cases.size());
  cases.push_back({"with 1 W adapters (paper setup)", [](Rng& root) {
    auto config = mapreduce::EdisonMrCluster(8);
    config.seed = root.Next();
    return FromRun(core::RunPaperJob(PaperJob::kWordCount2, config));
  }});
  cases.push_back({"integrated NIC (hypothetical)", [](Rng& root) {
    auto config = mapreduce::EdisonMrCluster(8);
    config.seed = root.Next();
    config.slave_profile.power.idle -=
        config.slave_profile.power.constant_adapter;
    config.slave_profile.power.busy -=
        config.slave_profile.power.constant_adapter;
    config.slave_profile.power.constant_adapter = 0;
    return FromRun(core::RunPaperJob(PaperJob::kWordCount2, config));
  }});

  // --- 2. combiner on/off ----------------------------------------------------
  const int a2 = static_cast<int>(cases.size());
  for (bool combiner : {true, false}) {
    cases.push_back({combiner ? "combiner on" : "combiner off",
                     [combiner](Rng& root) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.seed = root.Next();
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCount2Job(tb.config());
      spec.has_combiner = combiner;
      mapreduce::LoadInputFor(spec, &tb);
      return FromRun(tb.RunJob(spec));
    }});
  }

  // --- 3. block size ---------------------------------------------------------
  const int a3 = static_cast<int>(cases.size());
  for (Bytes block : {MiB(8), MiB(16), MiB(32), MiB(64)}) {
    cases.push_back({FormatBytes(block), [block](Rng& root) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.seed = root.Next();
      config.hdfs.block_size = block;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCount2Job(tb.config());
      // Split packing follows the block size.
      spec.max_split_size = block;
      mapreduce::LoadInputFor(spec, &tb);
      return FromRun(tb.RunJob(spec));
    }});
  }

  // --- 4. allocation rate ----------------------------------------------------
  const int a4 = static_cast<int>(cases.size());
  for (int rate : {1, 2, 4, 8}) {
    cases.push_back({std::to_string(rate), [rate](Rng& root) {
      auto config = mapreduce::DellMrCluster(2);
      config.seed = root.Next();
      config.yarn.containers_per_node_heartbeat = rate;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCountJob(tb.config());
      mapreduce::LoadInputFor(spec, &tb);
      return FromRun(tb.RunJob(spec));
    }});
  }

  // --- 5b. straggler / heterogeneity ----------------------------------------
  const int a5b = static_cast<int>(cases.size());
  for (int throttled : {0, 1, 2, 4}) {
    cases.push_back({std::to_string(throttled), [throttled](Rng& root) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.seed = root.Next();
      config.throttled_slaves = throttled;
      config.throttle_factor = 0.5;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCount2Job(tb.config());
      mapreduce::LoadInputFor(spec, &tb);
      return FromRun(tb.RunJob(spec));
    }});
  }

  // --- 5c. speculative execution --------------------------------------------
  const int a5c = static_cast<int>(cases.size());
  for (bool speculative : {false, true}) {
    cases.push_back({speculative ? "speculation on" : "speculation off",
                     [speculative](Rng& root) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.seed = root.Next();
      config.throttled_slaves = 1;
      config.throttle_factor = 0.25;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCountJob(tb.config());
      spec.input_files = 40;
      spec.input_bytes = MB(200);
      spec.reducers = 4;
      spec.speculative_execution = speculative;
      mapreduce::LoadInputFor(spec, &tb);
      return FromRun(tb.RunJob(spec));
    }});
  }

  // --- 5. replication vs locality --------------------------------------------
  const int a5 = static_cast<int>(cases.size());
  for (int rep : {1, 2, 3}) {
    cases.push_back({std::to_string(rep), [rep](Rng& root) {
      auto config = mapreduce::EdisonMrCluster(8);
      config.seed = root.Next();
      config.hdfs.replication = rep;
      mapreduce::MrTestbed tb(config);
      auto spec = mapreduce::WordCountJob(tb.config());
      mapreduce::LoadInputFor(spec, &tb);
      return FromRun(tb.RunJob(spec));
    }});
  }

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep = sim::RunSweep(
      cases, plan, [](const Case& c, Rng& root) { return c.run(root); });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<CaseStats> stats;
  stats.reserve(sweep.size());
  for (const auto& reps : sweep) stats.push_back(StatsFor(reps));

  {
    TextTable t("Ablation 1: Edison USB Ethernet adapter power "
                "(wordcount2, 8 slaves)");
    t.SetHeader({"Configuration", "Runtime", "Slave energy"});
    t.AddRow({cases[a1].label, Secs(stats[a1]), Jls(stats[a1])});
    t.AddRow({cases[a1 + 1].label, Secs(stats[a1 + 1]), Jls(stats[a1 + 1])});
    t.Print();
    std::printf(
        "-> adapters account for %.0f%% of Edison energy; an integrated "
        "0.1 W NIC would widen every efficiency ratio.\n\n",
        100.0 * (stats[a1].joules.mean - stats[a1 + 1].joules.mean) /
            stats[a1].joules.mean);
  }

  {
    TextTable t("Ablation 2: combiner (wordcount2, 8 Edison slaves)");
    t.SetHeader({"Configuration", "Shuffle bytes", "Runtime", "Energy"});
    for (int i = a2; i < a2 + 2; ++i) {
      t.AddRow({cases[i].label,
                FormatBytes(static_cast<Bytes>(stats[i].shuffle_bytes.mean)),
                Secs(stats[i]), Jls(stats[i])});
    }
    t.Print();
    std::printf("\n");
  }

  {
    TextTable t("Ablation 3: HDFS block size (wordcount2, 8 Edison "
                "slaves)");
    t.SetHeader({"Block size", "Map tasks", "Runtime", "Energy"});
    for (int i = a3; i < a3 + 4; ++i) {
      t.AddRow({cases[i].label, FormatMeanCI(stats[i].map_tasks, 0),
                Secs(stats[i]), Jls(stats[i])});
    }
    t.Print();
    std::printf(
        "-> larger blocks mean fewer containers (less overhead) but\n"
        "coarser failure/recovery units — the trade-off of §5.2.1.\n\n");
  }

  {
    TextTable t("Ablation 4: YARN containers assigned per node-heartbeat "
                "(wordcount, 2 Dell slaves, 200 input files)");
    t.SetHeader({"Containers/heartbeat", "Runtime", "Energy"});
    for (int i = a4; i < a4 + 4; ++i) {
      t.AddRow({cases[i].label, Secs(stats[i]), Jls(stats[i])});
    }
    t.Print();
    std::printf(
        "-> the 200-small-file job is allocation-bound on 2 nodes; 35\n"
        "Edisons absorb the same containers in a few heartbeats.\n\n");
  }

  {
    TextTable t("Ablation 5b: throttled slaves at 50% CPU (wordcount2, "
                "8 Edison slaves)");
    t.SetHeader({"Throttled nodes", "Runtime", "Energy"});
    for (int i = a5b; i < a5b + 4; ++i) {
      t.AddRow({cases[i].label, Secs(stats[i]), Jls(stats[i])});
    }
    t.Print();
    std::printf(
        "-> one throttled node already gates the one-wave reduce phase\n"
        "(~2x), and extra slow nodes add almost nothing — the straggler\n"
        "profile Hadoop counters with speculative execution (not\n"
        "modelled); multi-wave map phases dilute it naturally.\n\n");
  }

  {
    TextTable t("Ablation 5c: speculative execution vs a 25%-speed "
                "straggler (wordcount, 8 Edison slaves)");
    t.SetHeader({"Configuration", "Runtime", "Energy"});
    for (int i = a5c; i < a5c + 2; ++i) {
      t.AddRow({cases[i].label, Secs(stats[i]), Jls(stats[i])});
    }
    t.Print();
    std::printf(
        "-> duplicate attempts trade a little extra energy for cutting\n"
        "the straggler tail — Hadoop's remedy, reproduced.\n\n");
  }

  {
    TextTable t("Ablation 5: HDFS replication (wordcount, 8 Edison "
                "slaves)");
    t.SetHeader({"Replication", "Data-local maps", "Runtime"});
    for (int i = a5; i < a5 + 3; ++i) {
      t.AddRow({cases[i].label,
                TextTable::Num(100 * stats[i].data_local.mean, 0) + "%",
                Secs(stats[i])});
    }
    t.Print();
    std::printf(
        "-> the paper picks replication 2 (Edison) / 1 (Dell) so both\n"
        "clusters sit near 95%% data-local maps.\n");
  }

  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cases.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
