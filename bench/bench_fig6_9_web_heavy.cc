// Reproduces paper Figures 6 & 9: the heaviest fair workload (20% image
// queries, 93% cache hit ratio — the fraction that half-fills an Edison
// NIC so neither room uplink biases the comparison) across the full scale
// ladder, with cluster power.
#include <cstdio>

#include "common/csv.h"
#include "common/table.h"
#include "web_bench_util.h"

int main() {
  using namespace wimpy;
  using bench::WebScale;

  const web::WorkloadMix mix = web::HeavyMix();
  std::vector<WebScale> scales = bench::EdisonScales();
  for (const auto& s : bench::DellScales()) scales.push_back(s);

  TextTable rps(
      "Figure 6: requests/sec vs concurrency (20% image, 93% cache) + "
      "cluster power");
  TextTable delay("Figure 9: mean response delay (ms) vs concurrency");
  std::vector<std::string> header{"Concurrency"};
  for (const auto& s : scales) header.push_back(s.label);
  header.push_back("Edison power (24)");
  header.push_back("Dell power (2)");
  rps.SetHeader(header);
  delay.SetHeader(std::vector<std::string>(header.begin(),
                                           header.end() - 2));

  double edison_peak = 0, dell_peak = 0;
  double edison_peak_power = 0, dell_peak_power = 0;
  for (double conc : bench::ConcurrencyLevels()) {
    std::vector<std::string> rps_row{TextTable::Num(conc, 0)};
    std::vector<std::string> delay_row{TextTable::Num(conc, 0)};
    double epow = 0, dpow = 0;
    for (const auto& scale : scales) {
      web::WebExperiment exp = bench::MakeExperiment(scale);
      const web::LevelReport r = exp.MeasureClosedLoop(
          mix, conc, web::WebExperiment::TunedCallsPerConnection(conc),
          bench::WarmupWindow(), bench::MeasureWindowFor(conc));
      std::string cell = TextTable::Num(r.achieved_rps, 0);
      if (r.error_rate > 0.01) {
        cell += " (err " + TextTable::Num(100 * r.error_rate, 0) + "%)";
      }
      rps_row.push_back(cell);
      delay_row.push_back(TextTable::Num(1000 * r.mean_response, 1));
      if (scale.label == "24 Edison") {
        epow = r.middle_tier_power;
        if (r.error_rate <= 0.01 && r.achieved_rps > edison_peak) {
          edison_peak = r.achieved_rps;
          edison_peak_power = epow;
        }
      }
      if (scale.label == "2 Dell") {
        dpow = r.middle_tier_power;
        if (r.error_rate <= 0.01 && r.achieved_rps > dell_peak) {
          dell_peak = r.achieved_rps;
          dell_peak_power = dpow;
        }
      }
    }
    rps_row.push_back(TextTable::Num(epow, 1) + " W");
    rps_row.push_back(TextTable::Num(dpow, 1) + " W");
    rps.AddRow(rps_row);
    delay.AddRow(delay_row);
  }
  rps.Print();
  MaybeExportCsv(rps, "fig6_throughput");
  std::printf("\n");
  delay.Print();
  MaybeExportCsv(delay, "fig9_delay");

  if (edison_peak_power > 0 && dell_peak_power > 0 && dell_peak > 0) {
    const double edison_eff = edison_peak / edison_peak_power;
    const double dell_eff = dell_peak / dell_peak_power;
    std::printf(
        "\nWork-done-per-joule at peak: Edison %.1f req/J vs Dell %.1f "
        "req/J -> %.2fx (paper: ~3.5x).\n",
        edison_eff, dell_eff, edison_eff / dell_eff);
  }
  std::printf(
      "Paper shapes: overall rps is ~85%% of the lightest workload's; the\n"
      "half Edison cluster can no longer survive 1024 concurrency; Edison\n"
      "drops from slightly ahead of Dell to slightly behind, but the\n"
      "3.5x energy-efficiency edge persists.\n");
  return 0;
}
