// Open-loop SLO sweep (docs/openloop.md): arrival rate x burstiness x
// SLO bound on the small Edison and Dell web tiers, measured
// coordinated-omission-free. Each tier also runs one closed-loop
// reference cell at saturating concurrency so the output can show the
// divergence the open-loop engine exists to expose: past the knee the
// closed-loop p99 (measured from call dispatch) stays flat while the
// open-loop p99 (measured from intended arrival) keeps climbing.
//
// Shares the sweep flag surface (--replications/--threads/--seed,
// common/bench_args.h) plus two of its own:
//
//   --json=FILE      google-benchmark-compatible JSON for
//                    tools/check_bench_regression.sh (committed baseline
//                    BENCH_slo.json). items_per_second is under-SLO
//                    completions per second for open-loop cells and
//                    achieved rps for the closed-loop references —
//                    simulated and deterministic, so the gate only trips
//                    on behavioral change.
//   --determinism    print per-replication final stats (a pure function
//                    of cells + seed) and exit; tools/check_trace.sh
//                    diffs this output at --threads=1 vs 8.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "load/openloop.h"
#include "sim/replication.h"
#include "web/service.h"
#include "web_bench_util.h"

namespace {

using namespace wimpy;
using bench::WebScale;

// Per-tier shape: the smallest scale-ladder rung of each platform, a
// nominal rate near its saturation knee (calibrated against the
// closed-loop reference cell's achieved rps), and the closed-loop
// concurrency that saturates it.
struct Tier {
  const char* tag;
  WebScale scale;
  double nominal_rps;
  double closed_concurrency;
  int max_outstanding;  // client-side gate: slots, then queue, then shed
  int queue_limit;
};

// Nominal rates sit just under each tier's measured open-loop capacity
// (closed-loop c=256 on 3 Edison reaps ~1010 rps; 1 Dell's open-loop
// ceiling is ~1090 rps — one fresh connection per request concentrates
// TIME_WAIT churn on the single server, the paper's Dell failure mode),
// so the 0.7x cells are comfortable and the 1.3x cells are past the knee.
std::vector<Tier> Tiers() {
  return {
      {"edison3", bench::EdisonScales().front(), 1000.0, 256, 512, 512},
      {"dell1", bench::DellScales().front(), 900.0, 512, 1024, 1024},
  };
}

struct Cell {
  std::string name;
  Tier tier;
  bool closed = false;   // closed-loop reference instead of open-loop
  double rate = 0;       // open-loop offered rps
  bool bursty = false;   // kMmpp (burstiness 8) vs kPoisson
  double slo_ms = 0;
};

// The sweep: per tier, rate {0.7x, 1.3x nominal} x {Poisson, MMPP-8} x
// SLO {100 ms, 400 ms}, plus the closed-loop saturation reference.
std::vector<Cell> BuildCells() {
  std::vector<Cell> cells;
  for (const Tier& tier : Tiers()) {
    for (double mult : {0.7, 1.3}) {
      for (bool bursty : {false, true}) {
        for (double slo_ms : {100.0, 400.0}) {
          Cell c;
          c.tier = tier;
          c.rate = mult * tier.nominal_rps;
          c.bursty = bursty;
          c.slo_ms = slo_ms;
          char buf[96];
          std::snprintf(buf, sizeof(buf), "%s_x%02.0f_%s_slo%.0f", tier.tag,
                        10 * mult, bursty ? "mmpp" : "pois", slo_ms);
          c.name = buf;
          cells.push_back(std::move(c));
        }
      }
    }
    Cell ref;
    ref.tier = tier;
    ref.closed = true;
    ref.name = std::string(tier.tag) + "_closed_c" +
               std::to_string(static_cast<int>(tier.closed_concurrency));
    cells.push_back(std::move(ref));
  }
  return cells;
}

struct CellResult {
  double offered_rps = 0;
  double achieved_rps = 0;
  double error_rate = 0;
  double shed = 0;
  double p99_service_ms = 0;   // dispatch -> completion (closed-loop view)
  double p99_intended_ms = 0;  // intended arrival -> completion (honest)
  double slo_good_fraction = 0;
  double slo_goodput_per_joule = 0;
  double power_w = 0;
  std::uint64_t events = 0;
};

CellResult RunCell(const Cell& cell, Rng& root) {
  web::WebTestbedConfig cfg =
      cell.tier.scale.edison
          ? web::EdisonWebTestbed(cell.tier.scale.web_servers,
                                  cell.tier.scale.cache_servers)
          : web::DellWebTestbed(cell.tier.scale.web_servers,
                                cell.tier.scale.cache_servers);
  cfg.seed = root.Next();
  web::WebExperiment exp(std::move(cfg));
  CellResult res;
  if (cell.closed) {
    const web::LevelReport r = exp.MeasureClosedLoop(
        web::LightMix(), cell.tier.closed_concurrency,
        web::WebExperiment::TunedCallsPerConnection(
            cell.tier.closed_concurrency),
        bench::WarmupWindow(), bench::MeasureWindow());
    res.offered_rps = r.achieved_rps;  // closed loop offers what it reaps
    res.achieved_rps = r.achieved_rps;
    res.error_rate = r.error_rate;
    res.p99_service_ms = 1000 * r.p99_dispatch;
    res.p99_intended_ms = 1000 * r.p99_conn_intended;
    res.power_w = r.middle_tier_power;
    res.events = r.executed_events;
    return res;
  }
  load::OpenLoopConfig load_config;
  load_config.arrival.model =
      cell.bursty ? load::ArrivalModel::kMmpp : load::ArrivalModel::kPoisson;
  load_config.arrival.rate = cell.rate;
  load_config.arrival.burstiness = 8.0;
  load_config.max_outstanding = cell.tier.max_outstanding;
  load_config.queue_limit = cell.tier.queue_limit;
  load_config.slo = Milliseconds(cell.slo_ms);
  const web::OpenLoopReport r = exp.MeasureOpenLoop(
      web::LightMix(), load_config, bench::MeasureWindow());
  res.offered_rps = r.offered_rps;
  res.achieved_rps = r.achieved_rps;
  res.error_rate = r.error_rate;
  res.shed = static_cast<double>(r.shed);
  res.p99_service_ms = 1000 * r.p99_client;
  res.p99_intended_ms = 1000 * r.p99_intended;
  res.slo_good_fraction = r.slo_good_fraction;
  res.slo_goodput_per_joule = r.slo_goodput_per_joule;
  res.power_w = r.middle_tier_power;
  res.events = r.executed_events;
  return res;
}

MetricSummary Over(const std::vector<CellResult>& reps,
                   double CellResult::*member) {
  return SummarizeOver(reps,
                       [&](const CellResult& r) { return r.*member; });
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off this bench's own flags before the shared parser (which
  // rejects unknown arguments).
  std::string json_path;
  bool determinism = false;
  std::vector<char*> shared;
  shared.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--determinism") == 0) {
      determinism = true;
    } else {
      shared.push_back(argv[i]);
    }
  }
  const BenchArgs args =
      ParseBenchArgs(static_cast<int>(shared.size()), shared.data());
  const int threads = ResolvedThreads(args);

  const std::vector<Cell> cells = BuildCells();
  const double measure_seconds = bench::MeasureWindow();
  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    return RunCell(cell, root);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (determinism) {
    // Pure function of (cells, seed, replications); tools/check_trace.sh
    // requires this output byte-identical at --threads=1 vs 8.
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t r = 0; r < sweep[c].size(); ++r) {
        const CellResult& res = sweep[c][r];
        std::printf(
            "BM_SloOpenLoop/%s rep=%zu offered=%.9g achieved=%.9g "
            "err=%.9g shed=%.9g p99_svc_ms=%.9g p99_int_ms=%.9g "
            "slo_good=%.9g sgpj=%.9g power=%.9g events=%llu\n",
            cells[c].name.c_str(), r, res.offered_rps, res.achieved_rps,
            res.error_rate, res.shed, res.p99_service_ms,
            res.p99_intended_ms, res.slo_good_fraction,
            res.slo_goodput_per_joule, res.power_w,
            static_cast<unsigned long long>(res.events));
      }
    }
    return 0;
  }

  for (const Tier& tier : Tiers()) {
    TextTable table(std::string("Open-loop SLO sweep — ") +
                    tier.scale.label +
                    " (p99 from intended arrival; sheds count against "
                    "SLO)");
    table.SetHeader({"Cell", "Offered rps", "Achieved", "Shed/s",
                     "p99 svc ms", "p99 honest ms", "SLO-good %",
                     "SLO-good/J", "Power W"});
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (std::strncmp(cells[c].name.c_str(), tier.tag,
                       std::strlen(tier.tag)) != 0) {
        continue;
      }
      const auto& reps = sweep[c];
      table.AddRow(
          {cells[c].name,
           FormatMeanCI(Over(reps, &CellResult::offered_rps), 0),
           FormatMeanCI(Over(reps, &CellResult::achieved_rps), 0),
           TextTable::Num(Over(reps, &CellResult::shed).mean /
                              measure_seconds, 1),
           FormatMeanCI(Over(reps, &CellResult::p99_service_ms), 1),
           FormatMeanCI(Over(reps, &CellResult::p99_intended_ms), 1),
           TextTable::Num(
               100 * Over(reps, &CellResult::slo_good_fraction).mean, 1),
           TextTable::Num(
               Over(reps, &CellResult::slo_goodput_per_joule).mean, 2),
           TextTable::Num(Over(reps, &CellResult::power_w).mean, 1)});
    }
    table.Print();
    std::printf("\n");
  }

  // The divergence check the bench exists for: on each tier compare the
  // overloaded (1.3x nominal, Poisson) open-loop honest p99 against the
  // closed-loop reference's dispatch-relative p99.
  for (const Tier& tier : Tiers()) {
    double open_p99 = 0, closed_p99 = 0;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& n = cells[c].name;
      if (n == std::string(tier.tag) + "_x13_pois_slo100") {
        open_p99 = Over(sweep[c], &CellResult::p99_intended_ms).mean;
      }
      if (cells[c].closed && n.rfind(tier.tag, 0) == 0) {
        closed_p99 = Over(sweep[c], &CellResult::p99_service_ms).mean;
      }
    }
    std::printf(
        "%s past the knee: open-loop honest p99 %.1f ms vs closed-loop "
        "dispatch p99 %.1f ms (%.1fx) — %s\n",
        tier.scale.label.c_str(), open_p99, closed_p99,
        closed_p99 > 0 ? open_p99 / closed_p99 : 0.0,
        open_p99 > closed_p99
            ? "closed-loop coordination hides the difference"
            : "WARNING: expected open-loop p99 to exceed closed-loop");
  }
  std::printf(
      "\nShape: under 0.7x load the two views agree and SLO-good/J peaks;\n"
      "past the knee the closed loop self-throttles while the open loop\n"
      "queues and sheds, so honest p99 explodes, SLO-good %% collapses,\n"
      "and burstiness (MMPP) drags the knee earlier (docs/openloop.md).\n");
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"context\": {\n"
                 "    \"executable\": \"bench_slo_openloop\",\n"
                 "    \"window_seconds\": %g,\n"
                 "    \"replications\": %d,\n"
                 "    \"note\": \"items_per_second = under-SLO completions "
                 "per second (open-loop cells, coordinated-omission-free) "
                 "or achieved rps (closed-loop references); simulated and "
                 "deterministic for a given seed\"\n  },\n"
                 "  \"benchmarks\": [\n",
                 measure_seconds, plan.replications);
    bool first = true;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t r = 0; r < sweep[c].size(); ++r) {
        const CellResult& res = sweep[c][r];
        const double items = cells[c].closed
                                 ? res.achieved_rps
                                 : res.slo_good_fraction * res.offered_rps;
        if (!first) std::fprintf(f, ",\n");
        first = false;
        std::fprintf(
            f,
            "    {\"name\": \"BM_SloOpenLoop/%s\", "
            "\"run_name\": \"BM_SloOpenLoop/%s\", "
            "\"run_type\": \"iteration\", \"repetition_index\": %zu, "
            "\"iterations\": 1, \"real_time\": %.6f, \"cpu_time\": %.6f, "
            "\"time_unit\": \"s\", \"items_per_second\": %.6f, "
            "\"offered_rps\": %.6f, \"shed\": %.0f, "
            "\"p99_service_ms\": %.6f, \"p99_intended_ms\": %.6f, "
            "\"slo_good_fraction\": %.6f, "
            "\"slo_goodput_per_joule\": %.6f, \"power_w\": %.6f, "
            "\"events\": %llu}",
            cells[c].name.c_str(), cells[c].name.c_str(), r,
            measure_seconds, measure_seconds, items, res.offered_rps,
            res.shed, res.p99_service_ms, res.p99_intended_ms,
            res.slo_good_fraction, res.slo_goodput_per_joule, res.power_w,
            static_cast<unsigned long long>(res.events));
      }
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
