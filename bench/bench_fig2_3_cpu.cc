// Reproduces paper §4.1 + Figures 2/3: Dhrystone DMIPS and the sysbench
// CPU test (primes < 20000, 10000 events) at 1/2/4/8 threads on simulated
// Edison and Dell nodes. Also runs the real Dhrystone-style kernel and the
// real prime sieve on the host for reference.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "hw/profiles.h"
#include "hw/server_node.h"
#include "kernels/dhrystone.h"
#include "kernels/sysbench.h"
#include "sim/process.h"

namespace {

namespace sim = wimpy::sim;
namespace hw = wimpy::hw;
namespace kernels = wimpy::kernels;
using wimpy::TextTable;

struct SysbenchRun {
  double total_time = 0;
  double mean_event_ms = 0;
};

// Runs the sysbench CPU test on a simulated node: `threads` workers pull
// events from a shared pool of 10000 prime computations.
SysbenchRun RunSysbenchCpu(const hw::HardwareProfile& profile, int threads) {
  sim::Scheduler sched;
  hw::ServerNode node(&sched, profile, 0);
  const double event_demand =
      kernels::SysbenchCpuEventDemandMinstr(kernels::kSysbenchMaxPrime);

  int remaining = kernels::kSysbenchEvents;
  wimpy::OnlineStats event_times;
  auto worker = [&]() -> sim::Process {
    while (remaining > 0) {
      --remaining;
      const wimpy::SimTime start = sched.now();
      co_await node.cpu().Execute(event_demand);
      event_times.Add(sched.now() - start);
    }
  };
  for (int t = 0; t < threads; ++t) sim::Spawn(sched, worker());
  sched.Run();

  return SysbenchRun{sched.now(), 1000.0 * event_times.mean()};
}

void PrintFigure(const char* title, const hw::HardwareProfile& profile) {
  TextTable table(title);
  table.SetHeader({"Threads", "Total time (s)", "Avg response time (ms)"});
  for (int threads : {1, 2, 4, 8}) {
    const SysbenchRun run = RunSysbenchCpu(profile, threads);
    table.AddRow({std::to_string(threads), TextTable::Num(run.total_time, 1),
                  TextTable::Num(run.mean_event_ms, 1)});
  }
  table.Print();
}

}  // namespace

int main() {
  // --- Dhrystone (§4.1) ----------------------------------------------------
  const auto edison = hw::EdisonProfile();
  const auto dell = hw::DellR620Profile();
  TextTable dmips("Section 4.1: Dhrystone DMIPS");
  dmips.SetHeader({"Node", "DMIPS (model)", "DMIPS (paper)"});
  dmips.AddRow({"Edison (1 thread)",
                TextTable::Num(edison.cpu.dmips_per_thread, 1), "632.3"});
  dmips.AddRow({"Dell (1 thread)",
                TextTable::Num(dell.cpu.dmips_per_thread, 0), "11383"});
  dmips.AddRow({"Whole-node ratio",
                TextTable::Ratio(dell.cpu.total_dmips() /
                                     edison.cpu.total_dmips(),
                                 1),
                "90-108x"});
  dmips.Print();

  const auto host = kernels::RunDhrystone(2'000'000);
  std::printf(
      "Host reference: %.0f dhrystones/s -> %.0f DMIPS on this machine "
      "(checksum %llu)\n\n",
      host.dhrystones_per_sec, host.dmips,
      static_cast<unsigned long long>(host.checksum));

  // --- sysbench CPU (Figures 2 and 3) --------------------------------------
  std::printf("sysbench: %d events, primes < %lld (host check: %lld primes)\n\n",
              kernels::kSysbenchEvents,
              static_cast<long long>(kernels::kSysbenchMaxPrime),
              static_cast<long long>(
                  kernels::CountPrimes(kernels::kSysbenchMaxPrime)));
  PrintFigure("Figure 2: Edison CPU test (paper: ~570 s at 1 thread)",
              edison);
  PrintFigure("Figure 3: Dell CPU test (paper: ~32-40 s at 1 thread)",
              dell);
  std::printf(
      "Shape check: Dell 1-thread is 15-18x faster per the paper; the\n"
      "total time is flat while threads <= cores and grows once the\n"
      "response time reflects core sharing (Edison beyond 2 threads,\n"
      "Dell beyond 12 hardware threads).\n");
  return 0;
}
