// Reproduces paper Table 3: idle and busy power of Edison and Dell nodes
// and clusters. The "measured" columns run the simulated nodes idle and
// fully loaded and integrate the power model — verifying that cluster
// energy accounting reproduces the paper's endpoints.
#include <cstdio>

#include "cluster/cluster.h"
#include "common/table.h"
#include "hw/profiles.h"
#include "sim/process.h"

namespace {

using wimpy::TextTable;
namespace hw = wimpy::hw;
namespace sim = wimpy::sim;

wimpy::sim::Process Saturate(hw::ServerNode* node, double seconds) {
  // One task per hardware thread.
  const int threads = node->cpu().vcores();
  const double minstr_per_thread =
      node->cpu().spec().dmips_per_thread * seconds;
  std::vector<sim::ProcessRef> refs;
  auto burn = [](hw::ServerNode* n, double w) -> sim::Process {
    co_await n->Compute(w);
  };
  for (int t = 0; t < threads; ++t) {
    refs.push_back(sim::Spawn(node->scheduler(), burn(node,
                                                      minstr_per_thread)));
  }
  for (auto& ref : refs) co_await ref.Join();
}

// Measures simulated idle and busy power for `count` nodes of `profile`.
std::pair<double, double> MeasureCluster(const hw::HardwareProfile& profile,
                                         int count) {
  sim::Scheduler sched;
  wimpy::net::Fabric fabric(&sched);
  wimpy::cluster::Cluster cluster(&sched, &fabric);
  auto nodes = cluster.AddNodes(profile, count, "n", "room");
  // Idle for 10 s.
  sched.ScheduleAt(10.0, [] {});
  sched.Run();
  const double idle_joules = cluster.CumulativeJoules();
  // Busy for 10 s.
  for (auto* node : nodes) sim::Spawn(sched, Saturate(node, 10.0));
  sched.Run();
  const double busy_joules = cluster.CumulativeJoules() - idle_joules;
  return {idle_joules / 10.0, busy_joules / 10.0};
}

}  // namespace

int main() {
  const auto edison = hw::EdisonProfile();
  const auto dell = hw::DellR620Profile();

  TextTable table("Table 3: Power consumption of Edison and Dell servers");
  table.SetHeader({"Server state", "Idle (paper)", "Busy (paper)",
                   "Idle (sim)", "Busy (sim)"});

  auto add = [&](const std::string& label, const hw::HardwareProfile& p,
                 int count, double paper_idle, double paper_busy) {
    auto [idle, busy] = MeasureCluster(p, count);
    table.AddRow({label, TextTable::Num(paper_idle, 2) + "W",
                  TextTable::Num(paper_busy, 2) + "W",
                  TextTable::Num(idle, 2) + "W",
                  TextTable::Num(busy, 2) + "W"});
  };

  std::printf(
      "Note: busy(sim) drives the CPU only, so it reaches idle + "
      "cpu_weight*(busy-idle); the paper's 'busy' is an all-components "
      "envelope.\n\n");
  add("1 Edison with Ethernet adaptor", edison, 1, 1.40, 1.68);
  add("Edison cluster of 35 nodes", edison, 35, 49.0, 58.8);
  add("1 Dell server", dell, 1, 52.0, 109.0);
  add("Dell cluster of 3 nodes", dell, 3, 156.0, 327.0);
  table.Print();

  std::printf(
      "\n1 Edison without Ethernet adaptor (paper): 0.36W idle / 0.75W "
      "busy; the USB adaptor draws ~%.1fW constant and is included in all "
      "rows above, as in the paper.\n",
      edison.power.constant_adapter);
  return 0;
}
