// Reproduces paper Figures 5 & 8: throughput and delay on the full
// clusters (24 Edison / 2 Dell web servers) when the workload is heavier —
// cache hit ratio lowered to 77% / 60%, or image queries raised to
// 6% / 10%.
//
// Supports multi-seed sweeps: --replications=N runs every
// (platform, concurrency, mix) cell N times with independent seeds on
// --threads workers and reports mean±95% CI (docs/parallel.md).
#include <chrono>
#include <cstdio>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "sim/replication.h"
#include "web_bench_util.h"

namespace {

using namespace wimpy;
using bench::WebScale;

struct Cell {
  WebScale scale;
  double concurrency = 0;
  web::WorkloadMix mix;
};

struct CellResult {
  double rps = 0;
  double error_rate = 0;
  double delay_ms = 0;
  double mj_per_req = 0;  // attributed, from the energy ledger
  double disp_p99_ms = 0;      // p99, service start -> completion
  double intended_p99_ms = 0;  // p99, connection intended -> completion
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
  obs::EnergyLedger ledger;
};

CellResult RunCell(const Cell& cell, Rng& root, bool want_trace,
                   bool want_metrics, bool want_summary) {
  web::WebTestbedConfig cfg =
      cell.scale.edison
          ? web::EdisonWebTestbed(cell.scale.web_servers,
                                  cell.scale.cache_servers)
          : web::DellWebTestbed(cell.scale.web_servers,
                                cell.scale.cache_servers);
  cfg.seed = root.Next();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::EnergyAttributor energy;
  if (want_trace || want_summary) cfg.tracer = &tracer;
  if (want_metrics) cfg.metrics = &metrics;
  if (want_summary) cfg.energy = &energy;
  web::WebExperiment exp(std::move(cfg));
  const web::LevelReport r = exp.MeasureClosedLoop(
      cell.mix, cell.concurrency,
      web::WebExperiment::TunedCallsPerConnection(cell.concurrency),
      bench::WarmupWindow(), bench::MeasureWindowFor(cell.concurrency));
  CellResult res{r.achieved_rps, r.error_rate, 1000 * r.mean_response};
  res.disp_p99_ms = 1000 * r.p99_dispatch;
  res.intended_p99_ms = 1000 * r.p99_conn_intended;
  if (want_trace || want_summary) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = metrics.TakeSeries();
  if (want_summary) {
    res.ledger = energy.TakeLedger();
    res.mj_per_req = bench::MeanRequestMillijoules(res.ledger);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool want_omission = bench::PeelOmissionFlag(&argc, argv);
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  struct MixCase {
    std::string label;
    web::WorkloadMix mix;
  };
  const std::vector<MixCase> cases = {
      {"cache=77%", web::MixWithCacheRatio(0.77)},
      {"cache=60%", web::MixWithCacheRatio(0.60)},
      {"img=6%", web::MixWithImagePercent(0.06)},
      {"img=10%", web::MixWithImagePercent(0.10)},
  };
  const std::vector<WebScale> scales = {bench::EdisonScales().back(),
                                        bench::DellScales().back()};
  const std::vector<double> levels = bench::ConcurrencyLevels();

  // Grid in print order: platform, then concurrency, then mix.
  std::vector<Cell> cells;
  for (const auto& scale : scales) {
    for (double conc : levels) {
      for (const auto& c : cases) cells.push_back({scale, conc, c.mix});
    }
  }

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const bool want_summary = !args.trace_summary_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep =
      sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
        return RunCell(cell, root, want_trace, want_metrics, want_summary);
      });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  int cell_idx = 0;
  for (const auto& scale : scales) {
    const int scale_base = cell_idx;
    TextTable rps(std::string("Figure 5: requests/sec — ") + scale.label +
                  " web servers");
    TextTable delay(std::string("Figure 8: mean delay (ms) — ") +
                    scale.label + " web servers");
    std::vector<std::string> header{"Concurrency"};
    for (const auto& c : cases) header.push_back(c.label);
    delay.SetHeader(header);
    // Per-request attributed energy columns (one per mix) ride along
    // when the energy ledger is being filled (--trace-summary).
    if (want_summary) {
      for (const auto& c : cases) header.push_back(c.label + " mJ/req");
    }
    rps.SetHeader(header);

    for (double conc : levels) {
      std::vector<std::string> rps_row{TextTable::Num(conc, 0)};
      std::vector<std::string> delay_row{TextTable::Num(conc, 0)};
      std::vector<std::string> mj_cells;
      for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& reps = sweep[cell_idx++];
        const MetricSummary rate =
            SummarizeOver(reps, [](const CellResult& r) { return r.rps; });
        const MetricSummary errors = SummarizeOver(
            reps, [](const CellResult& r) { return r.error_rate; });
        const MetricSummary delay_ms = SummarizeOver(
            reps, [](const CellResult& r) { return r.delay_ms; });
        std::string cell = FormatMeanCI(rate, 0);
        if (errors.mean > 0.01) {
          cell += " (err " + TextTable::Num(100 * errors.mean, 0) + "%)";
        }
        rps_row.push_back(cell);
        delay_row.push_back(FormatMeanCI(delay_ms, 1));
        if (want_summary) {
          const MetricSummary mj = SummarizeOver(
              reps, [](const CellResult& r) { return r.mj_per_req; });
          mj_cells.push_back(TextTable::Num(mj.mean, 2));
        }
      }
      for (auto& c : mj_cells) rps_row.push_back(std::move(c));
      rps.AddRow(rps_row);
      delay.AddRow(delay_row);
    }
    rps.Print();
    std::printf("\n");
    delay.Print();
    std::printf("\n");

    if (want_omission) {
      TextTable omission(
          std::string("Omission annotation — ") + scale.label +
          ": call p99 from dispatch / from connection arrival (ms)");
      std::vector<std::string> oh{"Concurrency"};
      for (const auto& c : cases) oh.push_back(c.label);
      omission.SetHeader(oh);
      int idx = scale_base;
      for (double conc : levels) {
        std::vector<std::string> row{TextTable::Num(conc, 0)};
        for (std::size_t i = 0; i < cases.size(); ++i) {
          const auto& reps = sweep[idx++];
          const MetricSummary d = SummarizeOver(
              reps, [](const CellResult& r) { return r.disp_p99_ms; });
          const MetricSummary in = SummarizeOver(
              reps, [](const CellResult& r) { return r.intended_p99_ms; });
          row.push_back(bench::FormatOmissionCell(d.mean, in.mean));
        }
        omission.AddRow(row);
      }
      omission.Print();
      std::printf("\n");
    }
  }
  if (want_omission) bench::PrintOmissionNote();

  std::printf(
      "Paper shapes: peak throughput at 512 concurrency changes little\n"
      "across these mixes, but the 1024-concurrency point drops sharply\n"
      "as image share rises, and delays roughly double even at low\n"
      "concurrency when images are in the mix.\n");
  bench::ExportSweepObsEnergy(args, sweep);
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
