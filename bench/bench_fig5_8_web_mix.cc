// Reproduces paper Figures 5 & 8: throughput and delay on the full
// clusters (24 Edison / 2 Dell web servers) when the workload is heavier —
// cache hit ratio lowered to 77% / 60%, or image queries raised to
// 6% / 10%.
#include <cstdio>
#include <functional>

#include "common/table.h"
#include "web_bench_util.h"

int main() {
  using namespace wimpy;

  struct MixCase {
    std::string label;
    web::WorkloadMix mix;
  };
  const std::vector<MixCase> cases = {
      {"cache=77%", web::MixWithCacheRatio(0.77)},
      {"cache=60%", web::MixWithCacheRatio(0.60)},
      {"img=6%", web::MixWithImagePercent(0.06)},
      {"img=10%", web::MixWithImagePercent(0.10)},
  };

  for (bool edison : {true, false}) {
    const bench::WebScale scale =
        edison ? bench::EdisonScales().back() : bench::DellScales().back();
    TextTable rps(std::string("Figure 5: requests/sec — ") + scale.label +
                  " web servers");
    TextTable delay(std::string("Figure 8: mean delay (ms) — ") +
                    scale.label + " web servers");
    std::vector<std::string> header{"Concurrency"};
    for (const auto& c : cases) header.push_back(c.label);
    rps.SetHeader(header);
    delay.SetHeader(header);

    for (double conc : bench::ConcurrencyLevels()) {
      std::vector<std::string> rps_row{TextTable::Num(conc, 0)};
      std::vector<std::string> delay_row{TextTable::Num(conc, 0)};
      for (const auto& c : cases) {
        web::WebExperiment exp = bench::MakeExperiment(scale);
        const web::LevelReport r = exp.MeasureClosedLoop(
            c.mix, conc, web::WebExperiment::TunedCallsPerConnection(conc),
            bench::WarmupWindow(), bench::MeasureWindowFor(conc));
        std::string cell = TextTable::Num(r.achieved_rps, 0);
        if (r.error_rate > 0.01) {
          cell += " (err " + TextTable::Num(100 * r.error_rate, 0) + "%)";
        }
        rps_row.push_back(cell);
        delay_row.push_back(TextTable::Num(1000 * r.mean_response, 1));
      }
      rps.AddRow(rps_row);
      delay.AddRow(delay_row);
    }
    rps.Print();
    std::printf("\n");
    delay.Print();
    std::printf("\n");
  }

  std::printf(
      "Paper shapes: peak throughput at 512 concurrency changes little\n"
      "across these mixes, but the 1024-concurrency point drops sharply\n"
      "as image share rises, and delays roughly double even at low\n"
      "concurrency when images are in the mix.\n");
  return 0;
}
