// Reproduces paper Figures 5 & 8: throughput and delay on the full
// clusters (24 Edison / 2 Dell web servers) when the workload is heavier —
// cache hit ratio lowered to 77% / 60%, or image queries raised to
// 6% / 10%.
//
// Supports multi-seed sweeps: --replications=N runs every
// (platform, concurrency, mix) cell N times with independent seeds on
// --threads workers and reports mean±95% CI (docs/parallel.md).
#include <chrono>
#include <cstdio>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "sim/replication.h"
#include "web_bench_util.h"

namespace {

using namespace wimpy;
using bench::WebScale;

struct Cell {
  WebScale scale;
  double concurrency = 0;
  web::WorkloadMix mix;
};

struct CellResult {
  double rps = 0;
  double error_rate = 0;
  double delay_ms = 0;
};

CellResult RunCell(const Cell& cell, Rng& root) {
  web::WebTestbedConfig cfg =
      cell.scale.edison
          ? web::EdisonWebTestbed(cell.scale.web_servers,
                                  cell.scale.cache_servers)
          : web::DellWebTestbed(cell.scale.web_servers,
                                cell.scale.cache_servers);
  cfg.seed = root.Next();
  web::WebExperiment exp(std::move(cfg));
  const web::LevelReport r = exp.MeasureClosedLoop(
      cell.mix, cell.concurrency,
      web::WebExperiment::TunedCallsPerConnection(cell.concurrency),
      bench::WarmupWindow(), bench::MeasureWindowFor(cell.concurrency));
  return {r.achieved_rps, r.error_rate, 1000 * r.mean_response};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  struct MixCase {
    std::string label;
    web::WorkloadMix mix;
  };
  const std::vector<MixCase> cases = {
      {"cache=77%", web::MixWithCacheRatio(0.77)},
      {"cache=60%", web::MixWithCacheRatio(0.60)},
      {"img=6%", web::MixWithImagePercent(0.06)},
      {"img=10%", web::MixWithImagePercent(0.10)},
  };
  const std::vector<WebScale> scales = {bench::EdisonScales().back(),
                                        bench::DellScales().back()};
  const std::vector<double> levels = bench::ConcurrencyLevels();

  // Grid in print order: platform, then concurrency, then mix.
  std::vector<Cell> cells;
  for (const auto& scale : scales) {
    for (double conc : levels) {
      for (const auto& c : cases) cells.push_back({scale, conc, c.mix});
    }
  }

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep = sim::RunSweep(cells, plan, RunCell);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  int cell_idx = 0;
  for (const auto& scale : scales) {
    TextTable rps(std::string("Figure 5: requests/sec — ") + scale.label +
                  " web servers");
    TextTable delay(std::string("Figure 8: mean delay (ms) — ") +
                    scale.label + " web servers");
    std::vector<std::string> header{"Concurrency"};
    for (const auto& c : cases) header.push_back(c.label);
    rps.SetHeader(header);
    delay.SetHeader(header);

    for (double conc : levels) {
      std::vector<std::string> rps_row{TextTable::Num(conc, 0)};
      std::vector<std::string> delay_row{TextTable::Num(conc, 0)};
      for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& reps = sweep[cell_idx++];
        const MetricSummary rate =
            SummarizeOver(reps, [](const CellResult& r) { return r.rps; });
        const MetricSummary errors = SummarizeOver(
            reps, [](const CellResult& r) { return r.error_rate; });
        const MetricSummary delay_ms = SummarizeOver(
            reps, [](const CellResult& r) { return r.delay_ms; });
        std::string cell = FormatMeanCI(rate, 0);
        if (errors.mean > 0.01) {
          cell += " (err " + TextTable::Num(100 * errors.mean, 0) + "%)";
        }
        rps_row.push_back(cell);
        delay_row.push_back(FormatMeanCI(delay_ms, 1));
      }
      rps.AddRow(rps_row);
      delay.AddRow(delay_row);
    }
    rps.Print();
    std::printf("\n");
    delay.Print();
    std::printf("\n");
  }

  std::printf(
      "Paper shapes: peak throughput at 512 concurrency changes little\n"
      "across these mixes, but the 1024-concurrency point drops sharply\n"
      "as image share rises, and delays roughly double even at low\n"
      "concurrency when images are in the mix.\n");
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
