// One-shot reproduction check: runs the headline experiments and prints a
// verdict per paper claim. Exit code is non-zero if any shape diverged —
// suitable as a CI gate for the calibration constants.
#include <cstdio>

#include "core/report.h"

int main() {
  const auto report = wimpy::core::RunReproductionChecks();
  std::fputs("== Reproduction summary (paper vs measured) ==\n", stdout);
  std::fputs(report.ToText().c_str(), stdout);
  return report.AllHold() ? 0 : 1;
}
