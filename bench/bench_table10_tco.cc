// Reproduces paper §6: the TCO notations (Table 9) and the 3-year
// total-cost-of-ownership comparison (Table 10) between the 35-node Edison
// cluster and the 2-3 node Dell cluster.
#include <cstdio>

#include "common/csv.h"
#include "common/table.h"
#include "core/tco.h"
#include "hw/profiles.h"

int main() {
  using namespace wimpy;
  using core::Compare;
  using core::TcoComparison;

  const auto edison_params = core::TcoParamsFor(hw::EdisonProfile());
  const auto dell_params = core::TcoParamsFor(hw::DellR620Profile());

  TextTable notations("Table 9: TCO notations and values");
  notations.SetHeader({"Notation", "Description", "Value"});
  notations.AddRow({"Cs,Edison", "Cost of 1 Edison node",
                    "$" + TextTable::Num(edison_params.unit_cost_usd, 0)});
  notations.AddRow({"Cs,Dell", "Cost of 1 Dell server",
                    "$" + TextTable::Num(dell_params.unit_cost_usd, 0)});
  notations.AddRow({"Ceph", "Cost of electricity", "$0.10/kWh"});
  notations.AddRow({"Ts", "Server lifetime", "3 years"});
  notations.AddRow({"Pp,Dell", "Peak power of 1 Dell",
                    TextTable::Num(dell_params.peak_power, 0) + "W"});
  notations.AddRow({"Pp,Edison", "Peak power of 1 Edison",
                    TextTable::Num(edison_params.peak_power, 2) + "W"});
  notations.AddRow({"Pi,Dell", "Idle power of 1 Dell",
                    TextTable::Num(dell_params.idle_power, 0) + "W"});
  notations.AddRow({"Pi,Edison", "Idle power of 1 Edison",
                    TextTable::Num(edison_params.idle_power, 2) + "W"});
  notations.Print();
  std::printf("\n");

  TextTable table("Table 10: 3-year TCO comparison");
  table.SetHeader({"Scenario", "Dell cluster", "Edison cluster",
                   "Savings", "Paper (Dell, Edison)"});
  const char* paper[] = {"($7948.7, $4329.5)", "($8236.8, $4346.1)",
                         "($5348.2, $4352.4)", "($5495.0, $4352.4)"};
  int i = 0;
  double max_savings = 0;
  for (const auto& scenario : core::PaperTable10Scenarios()) {
    const TcoComparison cmp = Compare(scenario);
    table.AddRow({cmp.name, "$" + TextTable::Num(cmp.a_total_usd, 1),
                  "$" + TextTable::Num(cmp.b_total_usd, 1),
                  TextTable::Num(100 * cmp.savings_fraction, 1) + "%",
                  paper[i++]});
    max_savings = std::max(max_savings, cmp.savings_fraction);
  }
  table.Print();
  MaybeExportCsv(table, "table10");
  std::printf(
      "\nHeadline: building on Edison micro servers saves up to %.0f%% of "
      "total cost (paper: 47%%).\n",
      100 * max_savings);
  return 0;
}
