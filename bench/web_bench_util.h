// Shared helpers for the web-service bench binaries (Figures 4-11,
// Table 7): the paper's scale ladder, concurrency levels, and row
// formatting.
#ifndef WIMPY_BENCH_WEB_BENCH_UTIL_H_
#define WIMPY_BENCH_WEB_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "web/service.h"

namespace wimpy::bench {

// Table 6 scale ladder.
struct WebScale {
  std::string label;
  bool edison;
  int web_servers;
  int cache_servers;
};

inline std::vector<WebScale> EdisonScales() {
  return {{"3 Edison", true, 3, 2},
          {"6 Edison", true, 6, 3},
          {"12 Edison", true, 12, 6},
          {"24 Edison", true, 24, 11}};
}

inline std::vector<WebScale> DellScales() {
  return {{"1 Dell", false, 1, 1}, {"2 Dell", false, 2, 1}};
}

// The paper's httperf x-axis.
inline std::vector<double> ConcurrencyLevels() {
  return {8, 16, 32, 64, 128, 256, 512, 1024, 2048};
}

inline web::WebExperiment MakeExperiment(const WebScale& scale) {
  return web::WebExperiment(
      scale.edison
          ? web::EdisonWebTestbed(scale.web_servers, scale.cache_servers)
          : web::DellWebTestbed(scale.web_servers, scale.cache_servers));
}

// Measurement windows: short by default so the whole bench suite stays
// fast; set WIMPY_FULL=1 for paper-length (3 minute) runs.
inline Duration MeasureWindow() {
  const char* full = std::getenv("WIMPY_FULL");
  return (full != nullptr && full[0] == '1') ? Seconds(180) : Seconds(8);
}
inline Duration WarmupWindow() {
  const char* full = std::getenv("WIMPY_FULL");
  return (full != nullptr && full[0] == '1') ? Seconds(20) : Seconds(2);
}

// High-concurrency levels need windows longer than TIME_WAIT (30 s) for
// connection-churn port exhaustion — the Dell cluster's failure mode — to
// reach steady state; short windows would understate it.
inline Duration MeasureWindowFor(double concurrency) {
  const Duration base = MeasureWindow();
  if (concurrency >= 1024 && base < Seconds(45)) return Seconds(45);
  return base;
}

}  // namespace wimpy::bench

#endif  // WIMPY_BENCH_WEB_BENCH_UTIL_H_
