// Shared helpers for the web-service bench binaries (Figures 4-11,
// Table 7): the paper's scale ladder, concurrency levels, and row
// formatting.
#ifndef WIMPY_BENCH_WEB_BENCH_UTIL_H_
#define WIMPY_BENCH_WEB_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"
#include "web/service.h"

namespace wimpy::bench {

// Table 6 scale ladder.
struct WebScale {
  std::string label;
  bool edison;
  int web_servers;
  int cache_servers;
};

inline std::vector<WebScale> EdisonScales() {
  return {{"3 Edison", true, 3, 2},
          {"6 Edison", true, 6, 3},
          {"12 Edison", true, 12, 6},
          {"24 Edison", true, 24, 11}};
}

inline std::vector<WebScale> DellScales() {
  return {{"1 Dell", false, 1, 1}, {"2 Dell", false, 2, 1}};
}

// The paper's httperf x-axis.
inline std::vector<double> ConcurrencyLevels() {
  return {8, 16, 32, 64, 128, 256, 512, 1024, 2048};
}

inline web::WebExperiment MakeExperiment(const WebScale& scale) {
  return web::WebExperiment(
      scale.edison
          ? web::EdisonWebTestbed(scale.web_servers, scale.cache_servers)
          : web::DellWebTestbed(scale.web_servers, scale.cache_servers));
}

// Measurement windows: short by default so the whole bench suite stays
// fast; set WIMPY_FULL=1 for paper-length (3 minute) runs.
inline Duration MeasureWindow() {
  const char* full = std::getenv("WIMPY_FULL");
  return (full != nullptr && full[0] == '1') ? Seconds(180) : Seconds(8);
}
inline Duration WarmupWindow() {
  const char* full = std::getenv("WIMPY_FULL");
  return (full != nullptr && full[0] == '1') ? Seconds(20) : Seconds(2);
}

// High-concurrency levels need windows longer than TIME_WAIT (30 s) for
// connection-churn port exhaustion — the Dell cluster's failure mode — to
// reach steady state; short windows would understate it.
inline Duration MeasureWindowFor(double concurrency) {
  const Duration base = MeasureWindow();
  if (concurrency >= 1024 && base < Seconds(45)) return Seconds(45);
  return base;
}

// -- Coordinated-omission annotation (docs/openloop.md) ----------------
//
// The closed-loop Figure 4-9 benches can append tables comparing the
// same completed calls' p99 measured two ways: from service start
// (dispatch) and from the connection's intended Poisson arrival. The
// flag is peeled from argv before ParseBenchArgs — which exits(2) on
// anything it does not recognise — so the shared sweep flags keep
// working and default output stays byte-identical.
inline bool PeelOmissionFlag(int* argc, char** argv) {
  bool found = false;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string_view(argv[i]) == "--omission") {
      found = true;
      continue;
    }
    argv[w++] = argv[i];
  }
  *argc = w;
  return found;
}

inline std::string FormatOmissionCell(double dispatch_p99_ms,
                                      double intended_p99_ms) {
  return TextTable::Num(dispatch_p99_ms, 1) + " / " +
         TextTable::Num(intended_p99_ms, 1);
}

inline void PrintOmissionNote() {
  std::printf(
      "Cells: p99 (ms) of the same completed calls measured from service\n"
      "start / from the connection's intended arrival. A growing gap is\n"
      "coordinated omission — the closed-loop driver stops offering load\n"
      "while it waits, so dispatch-relative tails understate what an\n"
      "open-loop client would see (bench_slo_openloop, docs/openloop.md).\n");
}

}  // namespace wimpy::bench

#endif  // WIMPY_BENCH_WEB_BENCH_UTIL_H_
