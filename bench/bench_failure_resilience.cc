// Tests the paper's §1 advantage 2: "Individual node failure has far less
// significant impact on micro clusters than on high-end clusters", and the
// [29]-based observation that brawny cores degrade worse once the
// redistributed load passes the sustainable point.
//
// One web server is killed mid-run on each platform at a load near the
// Dell pair's knee; throughput, error rate and latency are compared before
// and after.
//
// Supports multi-seed sweeps: --replications=N reruns each platform's
// failure scenario with independent seeds on --threads workers and
// reports mean±95% CI (docs/parallel.md). --trace/--metrics export
// sampled connection spans and node/service probes
// (docs/observability.md).
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "sim/replication.h"
#include "web/service.h"

namespace {

using namespace wimpy;

struct Cell {
  const char* label = "";
  bool edison = true;
  double concurrency = 0;
};

struct CellResult {
  double rps_before = 0;
  double rps_after = 0;
  double err_before = 0;
  double err_after = 0;
  double delay_before_ms = 0;
  double delay_after_ms = 0;
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
};

CellResult RunCell(const Cell& cell, Rng& root, bool want_trace,
                   bool want_metrics) {
  web::WebTestbedConfig cfg = cell.edison ? web::EdisonWebTestbed(24, 11)
                                          : web::DellWebTestbed(2, 1);
  cfg.seed = root.Next();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (want_trace) cfg.tracer = &tracer;
  if (want_metrics) cfg.metrics = &metrics;
  web::WebExperiment exp(std::move(cfg));
  const auto report = exp.MeasureWithFailure(
      web::LightMix(), cell.concurrency, 10, /*failed_servers=*/1,
      Seconds(4), Seconds(20));
  CellResult res;
  res.rps_before = report.before.achieved_rps;
  res.rps_after = report.after.achieved_rps;
  res.err_before = 100 * report.before.error_rate;
  res.err_after = 100 * report.after.error_rate;
  res.delay_before_ms = 1000 * report.before.mean_response;
  res.delay_after_ms = 1000 * report.after.mean_response;
  if (want_trace) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = metrics.TakeSeries();
  return res;
}

MetricSummary Over(const std::vector<CellResult>& reps,
                   double CellResult::*member) {
  return SummarizeOver(reps,
                       [&](const CellResult& r) { return r.*member; });
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  const std::vector<Cell> cells = {
      {"24 Edison (lose 1/24)", true, 450},
      {"2 Dell (lose 1/2)", false, 450},
  };

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    return RunCell(cell, root, want_trace, want_metrics);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  TextTable table("Web tier resilience: one server killed mid-run");
  table.SetHeader({"Cluster", "rps before", "rps after", "err before %",
                   "err after %", "delay before ms", "delay after ms"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto& reps = sweep[c];
    table.AddRow(
        {cells[c].label,
         FormatMeanCI(Over(reps, &CellResult::rps_before), 0),
         FormatMeanCI(Over(reps, &CellResult::rps_after), 0),
         FormatMeanCI(Over(reps, &CellResult::err_before), 1),
         FormatMeanCI(Over(reps, &CellResult::err_after), 1),
         FormatMeanCI(Over(reps, &CellResult::delay_before_ms), 1),
         FormatMeanCI(Over(reps, &CellResult::delay_after_ms), 1)});
  }
  table.Print();

  std::printf(
      "\nShape: the Edison fleet absorbs a 4%% load shift; the surviving\n"
      "Dell inherits 100%% extra offered load at its knee — latency and\n"
      "errors jump, the QoS cliff of Janapa Reddi et al. [29].\n");
  bench::ExportSweepObs(args, sweep);
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
