// Tests the paper's §1 advantage 2: "Individual node failure has far less
// significant impact on micro clusters than on high-end clusters", and the
// [29]-based observation that brawny cores degrade worse once the
// redistributed load passes the sustainable point.
//
// One web server is killed mid-run on each platform at a load near the
// Dell pair's knee; throughput, error rate and latency are compared before
// and after.
#include <cstdio>

#include "common/table.h"
#include "web/service.h"

int main() {
  using namespace wimpy;

  TextTable table("Web tier resilience: one server killed mid-run");
  table.SetHeader({"Cluster", "rps before", "rps after", "err before",
                   "err after", "delay before", "delay after"});

  struct Case {
    const char* label;
    web::WebTestbedConfig config;
    double concurrency;
  };
  const Case cases[] = {
      {"24 Edison (lose 1/24)", web::EdisonWebTestbed(24, 11), 450},
      {"2 Dell (lose 1/2)", web::DellWebTestbed(2, 1), 450},
  };

  for (const auto& c : cases) {
    web::WebExperiment exp(c.config);
    const auto report = exp.MeasureWithFailure(
        web::LightMix(), c.concurrency, 10, /*failed_servers=*/1,
        Seconds(4), Seconds(20));
    table.AddRow({c.label,
                  TextTable::Num(report.before.achieved_rps, 0),
                  TextTable::Num(report.after.achieved_rps, 0),
                  TextTable::Num(100 * report.before.error_rate, 1) + "%",
                  TextTable::Num(100 * report.after.error_rate, 1) + "%",
                  TextTable::Num(1000 * report.before.mean_response, 1) +
                      " ms",
                  TextTable::Num(1000 * report.after.mean_response, 1) +
                      " ms"});
  }
  table.Print();

  std::printf(
      "\nShape: the Edison fleet absorbs a 4%% load shift; the surviving\n"
      "Dell inherits 100%% extra offered load at its knee — latency and\n"
      "errors jump, the QoS cliff of Janapa Reddi et al. [29].\n");
  return 0;
}
