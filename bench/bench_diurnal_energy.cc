// Daily-energy comparison under a diurnal load curve — connecting the
// paper's §6 utilisation bounds to simulated 24-hour operation. The Dell
// tier pays its flat power curve all night; the Edison tier's energy
// follows load much more closely in absolute terms.
//
// Supports multi-seed sweeps: --replications=N replays the whole day per
// tier with independent seeds on --threads workers; hourly and daily
// figures report mean±95% CI (docs/parallel.md). --trace/--metrics export
// one log per sampled hour — each hour runs on a fresh testbed, so each
// hour is its own trace pid / metrics series (docs/observability.md).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "core/diurnal.h"
#include "obs_bench_util.h"
#include "sim/replication.h"

namespace {

using namespace wimpy;

constexpr int kSamples = 8;

struct Cell {
  const char* name = "";
  bool edison = true;
};

struct CellResult {
  core::DailyReport report;
};

CellResult RunCell(const Cell& cell, Rng& root,
                   const core::DiurnalPattern& pattern, bool want_trace,
                   bool want_metrics) {
  web::WebTestbedConfig config = cell.edison
                                     ? web::EdisonWebTestbed(24, 11)
                                     : web::DellWebTestbed(2, 1);
  config.seed = root.Next();
  CellResult res;
  res.report = core::MeasureDailyEnergy(config, pattern, kSamples,
                                        want_trace, want_metrics);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);

  core::DiurnalPattern pattern;
  pattern.peak_rps = 7000;
  pattern.trough_fraction = 0.25;

  const std::vector<Cell> cells = {
      {"35 Edison (24 web + 11 cache)", true},
      {"3 Dell (2 web + 1 cache)", false},
  };

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    return RunCell(cell, root, pattern, want_trace, want_metrics);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto& reps = sweep[c];
    TextTable table(std::string("Diurnal day on ") + cells[c].name);
    table.SetHeader({"Hour", "Offered rps", "Served rps", "Power W"});
    const auto& hours = reps[0].report.hours;
    for (std::size_t h = 0; h < hours.size(); ++h) {
      const MetricSummary served =
          SummarizeOver(reps, [&](const CellResult& r) {
            return r.report.hours[h].achieved_rps;
          });
      const MetricSummary power =
          SummarizeOver(reps, [&](const CellResult& r) {
            return r.report.hours[h].power;
          });
      table.AddRow({TextTable::Num(hours[h].hour, 1),
                    TextTable::Num(hours[h].offered_rps, 0),
                    FormatMeanCI(served, 0), FormatMeanCI(power, 1)});
    }
    table.Print();
    const MetricSummary requests =
        SummarizeOver(reps, [](const CellResult& r) {
          return r.report.daily_requests;
        });
    const MetricSummary kilojoules =
        SummarizeOver(reps, [](const CellResult& r) {
          return r.report.daily_joules / 1000.0;
        });
    const MetricSummary rpj = SummarizeOver(reps, [](const CellResult& r) {
      return r.report.requests_per_joule;
    });
    std::printf("daily: %.2e requests, %s kJ, %s requests/J\n\n",
                requests.mean, FormatMeanCI(kilojoules, 0).c_str(),
                FormatMeanCI(rpj, 1).c_str());
  }

  std::printf(
      "Shape: the Edison tier's ~3.5x efficiency at peak widens further\n"
      "across a whole day because its idle floor is 49 W against the\n"
      "Dell trio's 156 W (Table 3), while serving the same requests.\n");

  // Flatten per-hour logs in [config][replication][hour] order — the
  // deterministic merge order — so exports are byte-identical at any
  // --threads.
  if (want_trace || want_metrics) {
    std::vector<obs::TraceLog> logs;
    std::vector<obs::MetricsSeries> series;
    for (auto& per_config : sweep) {
      for (auto& rep : per_config) {
        for (auto& log : rep.report.hour_traces) {
          logs.push_back(std::move(log));
        }
        for (auto& s : rep.report.hour_metrics) {
          series.push_back(std::move(s));
        }
      }
    }
    bench::ExportObsLogs(args, logs, series);
  }
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
