// Daily-energy comparison under a diurnal load curve — connecting the
// paper's §6 utilisation bounds to simulated 24-hour operation. The Dell
// tier pays its flat power curve all night; the Edison tier's energy
// follows load much more closely in absolute terms.
#include <cstdio>

#include "common/table.h"
#include "core/diurnal.h"

int main() {
  using namespace wimpy;

  core::DiurnalPattern pattern;
  pattern.peak_rps = 7000;
  pattern.trough_fraction = 0.25;

  struct Tier {
    const char* name;
    web::WebTestbedConfig config;
  };
  const Tier tiers[] = {
      {"35 Edison (24 web + 11 cache)", web::EdisonWebTestbed(24, 11)},
      {"3 Dell (2 web + 1 cache)", web::DellWebTestbed(2, 1)},
  };

  for (const auto& tier : tiers) {
    const auto report = core::MeasureDailyEnergy(tier.config, pattern, 8);
    TextTable table(std::string("Diurnal day on ") + tier.name);
    table.SetHeader({"Hour", "Offered rps", "Served rps", "Power"});
    for (const auto& h : report.hours) {
      table.AddRow({TextTable::Num(h.hour, 1),
                    TextTable::Num(h.offered_rps, 0),
                    TextTable::Num(h.achieved_rps, 0),
                    TextTable::Num(h.power, 1) + " W"});
    }
    table.Print();
    std::printf(
        "daily: %.2e requests, %.0f kJ, %.1f requests/J\n\n",
        report.daily_requests, report.daily_joules / 1000.0,
        report.requests_per_joule);
  }

  std::printf(
      "Shape: the Edison tier's ~3.5x efficiency at peak widens further\n"
      "across a whole day because its idle floor is 49 W against the\n"
      "Dell trio's 156 W (Table 3), while serving the same requests.\n");
  return 0;
}
