// Tests the paper's §1 claim that DVFS-based energy proportionality
// underdelivers: "even if the CPU power consumption is proportional to
// workload, other components ... still consume the same energy", with best
// cases around 30% savings [26].
//
// We run a Dell node through a utilisation sweep with three governors and
// report whole-node energy; then contrast the proportionality gap with the
// Edison alternative at equal work.
#include <cstdio>

#include "common/table.h"
#include "hw/dvfs.h"
#include "hw/profiles.h"
#include "sim/process.h"

namespace {

using namespace wimpy;

// Runs a duty-cycled single-core load for 200 s and returns joules.
Joules RunDuty(const hw::HardwareProfile& profile,
               hw::GovernorPolicy* policy, double duty) {
  sim::Scheduler sched;
  hw::ServerNode node(&sched, profile, 0);
  std::unique_ptr<hw::DvfsGovernor> governor;
  if (policy != nullptr) {
    governor = std::make_unique<hw::DvfsGovernor>(
        &node, hw::DefaultDvfsConfig(*policy));
    governor->Start();
  }
  auto loop = [](hw::ServerNode& n, double d) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      if (d > 0) {
        co_await n.Compute(n.cpu().spec().dmips_per_thread * 10.0 * d);
      }
      co_await sim::Delay(n.scheduler(), 10.0 * (1.0 - d));
    }
  };
  sim::Spawn(sched, loop(node, duty));
  sched.Run(/*until=*/200.0);
  if (governor != nullptr) governor->Stop();
  const Joules joules = node.power().CumulativeJoules();
  sched.Run();
  return joules;
}

}  // namespace

int main() {
  const auto dell = hw::DellR620Profile();
  const auto edison = hw::EdisonProfile();

  TextTable table(
      "DVFS proportionality on a Dell R620 (200 s, one-core duty cycle)");
  table.SetHeader({"CPU duty", "Fixed freq", "Ondemand", "Saving",
                   "Ideal proportional"});
  for (double duty : {0.0, 0.1, 0.3, 0.5, 0.9}) {
    const Joules fixed = RunDuty(dell, nullptr, duty);
    hw::GovernorPolicy ondemand = hw::GovernorPolicy::kOndemand;
    const Joules scaled = RunDuty(dell, &ondemand, duty);
    // A perfectly proportional server would draw busy power only while
    // working and nothing otherwise.
    const double core_fraction =
        dell.cpu.dmips_per_thread / dell.cpu.total_dmips();
    const Joules ideal =
        duty * 200.0 *
        (dell.power.idle +
         (dell.power.busy - dell.power.idle) * 0.65 * core_fraction);
    table.AddRow({TextTable::Num(100 * duty, 0) + "%",
                  TextTable::Num(fixed, 0) + " J",
                  TextTable::Num(scaled, 0) + " J",
                  TextTable::Num(100 * (1 - scaled / fixed), 1) + "%",
                  TextTable::Num(ideal, 0) + " J"});
  }
  table.Print();

  // The same work on Edison nodes.
  const Joules dell_work = RunDuty(dell, nullptr, 0.5);
  // Equal instructions: Edison thread is 18x slower; run 18 nodes'
  // worth of time on one node for an apples-to-apples joules figure.
  sim::Scheduler sched;
  hw::ServerNode enode(&sched, edison, 0);
  auto burn = [](hw::ServerNode& n) -> sim::Process {
    // Same Minstr as 0.5 duty x 200 s on one Dell thread.
    co_await n.Compute(11383.0 * 100.0 / 2.0);
    co_await n.Compute(11383.0 * 100.0 / 2.0);
  };
  sim::Spawn(sched, burn(enode));
  sched.Run();
  const Joules edison_work = enode.power().CumulativeJoules();
  std::printf(
      "\nSame instruction count, one Edison node (both cores): %.0f J over "
      "%.0f s vs Dell fixed-frequency %.0f J — the architectural route to "
      "efficiency dwarfs the DVFS route (paper §1).\n",
      edison_work, sched.now(), dell_work);
  return 0;
}
