// Tests the paper's §1 claim that DVFS-based energy proportionality
// underdelivers: "even if the CPU power consumption is proportional to
// workload, other components ... still consume the same energy", with best
// cases around 30% savings [26].
//
// We run a Dell node through a utilisation sweep with three governors and
// report whole-node energy; then contrast the proportionality gap with the
// Edison alternative at equal work.
//
// Supports the shared sweep flags: the duty cells are deterministic (no
// random streams), so --replications only tightens the ±0 intervals, but
// --threads still parallelises the grid and --trace/--metrics export a
// per-cell "duty" span plus per-second node probes
// (docs/parallel.md, docs/observability.md).
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/bench_args.h"
#include "common/summary.h"
#include "common/table.h"
#include "hw/dvfs.h"
#include "hw/profiles.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "obs_bench_util.h"
#include "sim/process.h"
#include "sim/replication.h"

namespace {

using namespace wimpy;

struct Cell {
  enum Kind { kDuty, kEdisonWork } kind = kDuty;
  double duty = 0;
  bool ondemand = false;
};

struct CellResult {
  double joules = 0;
  double elapsed_s = 0;
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
};

// Runs a duty-cycled single-core load for 200 s and returns joules.
CellResult RunDuty(const hw::HardwareProfile& profile,
                   hw::GovernorPolicy* policy, double duty,
                   bool want_trace, bool want_metrics) {
  sim::Scheduler sched;
  hw::ServerNode node(&sched, profile, 0);
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  if (want_metrics) {
    node.PublishMetrics(&registry, "node");
    registry.Start(&sched, Seconds(1));
  }
  if (want_trace) {
    tracer.BeginSpanAt(0, "duty", obs::Category::kApp, /*track=*/0,
                       static_cast<std::int64_t>(100 * duty));
  }
  std::unique_ptr<hw::DvfsGovernor> governor;
  if (policy != nullptr) {
    governor = std::make_unique<hw::DvfsGovernor>(
        &node, hw::DefaultDvfsConfig(*policy));
    governor->Start();
  }
  auto loop = [](hw::ServerNode& n, double d) -> sim::Process {
    for (int i = 0; i < 20; ++i) {
      if (d > 0) {
        co_await n.Compute(n.cpu().spec().dmips_per_thread * 10.0 * d);
      }
      co_await sim::Delay(n.scheduler(), 10.0 * (1.0 - d));
    }
  };
  sim::Spawn(sched, loop(node, duty));
  sched.Run(/*until=*/200.0);
  if (governor != nullptr) governor->Stop();
  if (want_metrics) {
    registry.Stop();
    registry.SampleNow();
  }
  if (want_trace) {
    tracer.EndSpanAt(sched.now(), "duty", obs::Category::kApp,
                     /*track=*/0, static_cast<std::int64_t>(100 * duty));
  }
  CellResult res;
  res.joules = node.power().CumulativeJoules();
  sched.Run();
  res.elapsed_s = sched.now();
  if (want_trace) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = registry.TakeSeries();
  return res;
}

// The same work on Edison: equal instructions to 0.5 duty x 200 s on one
// Dell thread, both Edison cores busy.
CellResult RunEdisonEqualWork(bool want_trace, bool want_metrics) {
  const auto edison = hw::EdisonProfile();
  sim::Scheduler sched;
  hw::ServerNode node(&sched, edison, 0);
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  if (want_metrics) {
    node.PublishMetrics(&registry, "node");
    registry.Start(&sched, Seconds(1));
  }
  if (want_trace) {
    tracer.BeginSpanAt(0, "equal_work", obs::Category::kApp, /*track=*/0);
  }
  // The registry must stop itself when the work completes: its periodic
  // tick would otherwise keep the scheduler alive forever under a
  // horizonless Run().
  auto burn = [](hw::ServerNode& n, obs::MetricsRegistry* reg,
                 bool sampling) -> sim::Process {
    // Same Minstr as 0.5 duty x 200 s on one Dell thread.
    co_await n.Compute(11383.0 * 100.0 / 2.0);
    co_await n.Compute(11383.0 * 100.0 / 2.0);
    if (sampling) {
      reg->Stop();
      reg->SampleNow();
    }
  };
  sim::Spawn(sched, burn(node, &registry, want_metrics));
  sched.Run();
  if (want_trace) {
    tracer.EndSpanAt(sched.now(), "equal_work", obs::Category::kApp,
                     /*track=*/0);
  }
  CellResult res;
  res.joules = node.power().CumulativeJoules();
  res.elapsed_s = sched.now();
  if (want_trace) res.trace = tracer.TakeLog();
  if (want_metrics) res.metrics = registry.TakeSeries();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const int threads = ResolvedThreads(args);
  const auto dell = hw::DellR620Profile();

  const std::vector<double> duties = {0.0, 0.1, 0.3, 0.5, 0.9};
  // (fixed, ondemand) per duty, then the Edison equal-work contrast.
  std::vector<Cell> cells;
  for (double duty : duties) {
    cells.push_back({Cell::kDuty, duty, /*ondemand=*/false});
    cells.push_back({Cell::kDuty, duty, /*ondemand=*/true});
  }
  cells.push_back({Cell::kEdisonWork});

  const sim::SweepPlan plan{args.replications, threads, args.seed};
  const bool want_trace = !args.trace_path.empty();
  const bool want_metrics = !args.metrics_path.empty();
  const auto t0 = std::chrono::steady_clock::now();
  auto sweep = sim::RunSweep(cells, plan, [&](const Cell& cell, Rng& root) {
    (void)root;  // the duty cells are deterministic by construction
    if (cell.kind == Cell::kEdisonWork) {
      return RunEdisonEqualWork(want_trace, want_metrics);
    }
    hw::GovernorPolicy ondemand = hw::GovernorPolicy::kOndemand;
    return RunDuty(dell, cell.ondemand ? &ondemand : nullptr, cell.duty,
                   want_trace, want_metrics);
  });
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  TextTable table(
      "DVFS proportionality on a Dell R620 (200 s, one-core duty cycle)");
  table.SetHeader({"CPU duty", "Fixed freq", "Ondemand", "Saving",
                   "Ideal proportional"});
  for (std::size_t d = 0; d < duties.size(); ++d) {
    const double duty = duties[d];
    const MetricSummary fixed = SummarizeOver(
        sweep[2 * d], [](const CellResult& r) { return r.joules; });
    const MetricSummary scaled = SummarizeOver(
        sweep[2 * d + 1], [](const CellResult& r) { return r.joules; });
    // A perfectly proportional server would draw busy power only while
    // working and nothing otherwise.
    const double core_fraction =
        dell.cpu.dmips_per_thread / dell.cpu.total_dmips();
    const Joules ideal =
        duty * 200.0 *
        (dell.power.idle +
         (dell.power.busy - dell.power.idle) * 0.65 * core_fraction);
    table.AddRow({TextTable::Num(100 * duty, 0) + "%",
                  FormatMeanCI(fixed, 0) + " J",
                  FormatMeanCI(scaled, 0) + " J",
                  TextTable::Num(100 * (1 - scaled.mean / fixed.mean), 1) +
                      "%",
                  TextTable::Num(ideal, 0) + " J"});
  }
  table.Print();

  // Dell 0.5-duty fixed is cell index 6 in the grid above.
  const MetricSummary dell_work = SummarizeOver(
      sweep[6], [](const CellResult& r) { return r.joules; });
  const MetricSummary edison_work = SummarizeOver(
      sweep.back(), [](const CellResult& r) { return r.joules; });
  const MetricSummary edison_time = SummarizeOver(
      sweep.back(), [](const CellResult& r) { return r.elapsed_s; });
  std::printf(
      "\nSame instruction count, one Edison node (both cores): %.0f J over "
      "%.0f s vs Dell fixed-frequency %.0f J — the architectural route to "
      "efficiency dwarfs the DVFS route (paper §1).\n",
      edison_work.mean, edison_time.mean, dell_work.mean);
  bench::ExportSweepObs(args, sweep);
  std::printf(
      "\nSweep: %zu configs x %d replication(s) on %d thread(s) in %.2fs.\n",
      cells.size(), plan.replications, threads, sweep_seconds);
  return 0;
}
