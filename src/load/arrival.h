// Open-loop arrival-time generation (docs/openloop.md).
//
// An `ArrivalProcess` produces the interarrival gaps of an open-loop load
// generator: requests are admitted on the simulated clock at times that do
// not depend on when earlier requests complete. Two models:
//
//   * kPoisson — memoryless arrivals at a fixed mean rate. Draws exactly
//     one Exponential per gap, so experiments that previously called
//     `rng.Exponential(rate)` inline can route through an ArrivalProcess
//     without perturbing their random streams (golden traces stay valid).
//   * kMmpp — a 2-state Markov-modulated Poisson process (calm/burst).
//     The burst state runs `burstiness`x hotter than the calm state while
//     the time-averaged rate stays exactly `rate`, so sweeping burstiness
//     changes tail pressure without changing offered load.
#ifndef WIMPY_LOAD_ARRIVAL_H_
#define WIMPY_LOAD_ARRIVAL_H_

#include "common/random.h"
#include "common/units.h"

namespace wimpy::load {

enum class ArrivalModel { kPoisson, kMmpp };

struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::kPoisson;
  // Time-averaged arrival rate (requests per simulated second). Must be > 0.
  double rate = 1000.0;
  // kMmpp only: burst-state rate as a multiple of the calm-state rate.
  // 1.0 degenerates to Poisson (but still uses the two-state draw pattern;
  // use kPoisson for stream-compatibility with legacy experiments).
  double burstiness = 8.0;
  // kMmpp only: long-run fraction of time spent in the burst state (0,1).
  double burst_fraction = 0.2;
  // kMmpp only: mean calm+burst cycle length; dwell times are exponential
  // with means burst_fraction*cycle and (1-burst_fraction)*cycle.
  Duration cycle = Seconds(0.5);
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& config);

  // Gap from the previous arrival (or from process start) to the next
  // one. Advances the modulating chain for kMmpp.
  Duration NextGap(Rng& rng);

  // Instantaneous arrival rate of the current modulation state.
  double CurrentRate() const;
  bool in_burst() const { return in_burst_; }

  const ArrivalConfig& config() const { return config_; }

 private:
  ArrivalConfig config_;
  double calm_rate_ = 0;    // kMmpp state rates, normalised so the
  double burst_rate_ = 0;   // time-averaged rate equals config.rate
  double calm_exit_ = 0;    // state-switch hazard rates (1/mean dwell)
  double burst_exit_ = 0;
  bool in_burst_ = false;
};

}  // namespace wimpy::load

#endif  // WIMPY_LOAD_ARRIVAL_H_
