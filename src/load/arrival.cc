#include "load/arrival.h"

#include <cassert>

namespace wimpy::load {

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config)
    : config_(config) {
  assert(config_.rate > 0.0);
  if (config_.model == ArrivalModel::kMmpp) {
    assert(config_.burstiness >= 1.0);
    assert(config_.burst_fraction > 0.0 && config_.burst_fraction < 1.0);
    assert(config_.cycle > 0.0);
    // Long-run average rate is (1-f)*calm + f*burst with burst = b*calm;
    // solve for calm so the average equals the configured rate.
    const double f = config_.burst_fraction;
    const double b = config_.burstiness;
    calm_rate_ = config_.rate / ((1.0 - f) + f * b);
    burst_rate_ = b * calm_rate_;
    // Exponential dwells: mean burst dwell f*cycle, calm dwell (1-f)*cycle,
    // which yields exactly the long-run burst occupancy f.
    burst_exit_ = 1.0 / (f * config_.cycle);
    calm_exit_ = 1.0 / ((1.0 - f) * config_.cycle);
  }
}

double ArrivalProcess::CurrentRate() const {
  if (config_.model == ArrivalModel::kPoisson) return config_.rate;
  return in_burst_ ? burst_rate_ : calm_rate_;
}

Duration ArrivalProcess::NextGap(Rng& rng) {
  if (config_.model == ArrivalModel::kPoisson) {
    // Exactly one draw — keeps legacy `rng.Exponential(rate)` loops
    // byte-identical when routed through an ArrivalProcess.
    return rng.Exponential(config_.rate);
  }
  // Competing exponentials: in the current state, the next event is either
  // an arrival (rate r) or a state switch (rate s). The total waiting time
  // is Exp(r+s); it is an arrival with probability r/(r+s). Both states
  // are memoryless, so gaps accumulate across switches with no residuals.
  Duration gap = 0.0;
  for (;;) {
    const double r = in_burst_ ? burst_rate_ : calm_rate_;
    const double s = in_burst_ ? burst_exit_ : calm_exit_;
    gap += rng.Exponential(r + s);
    if (rng.NextDouble() * (r + s) < r) return gap;
    in_burst_ = !in_burst_;
  }
}

}  // namespace wimpy::load
