// Open-loop admission control and coordinated-omission-free measurement
// (docs/openloop.md).
//
// The arrival engine (arrival.h) decides *when* work should start; this
// header decides *whether* it can start now and records latency against
// the intended start time either way. Three pieces:
//
//   * `OpenLoopConfig` — the knobs one experiment cell needs: arrival
//     model, client-side concurrency cap, waiting-room size, SLO bound.
//   * `AdmissionGate<Payload>` — bounded client-side concurrency. When
//     `max_outstanding` dispatch slots are busy, a new arrival waits in a
//     FIFO of at most `queue_limit` entries; beyond that it is shed. The
//     gate never drops the intended timestamp: a queued request that
//     finally dispatches still measures from its arrival.
//   * `OpenLoopRecorder` — windowed counters plus two latency
//     distributions per request: service (dispatch→completion, what a
//     closed-loop generator would report) and intended
//     (arrival→completion, coordinated-omission-free). SLO accounting is
//     against intended latency, and sheds count against the offered
//     denominator — overload cannot flatter the tail by not measuring.
#ifndef WIMPY_LOAD_OPENLOOP_H_
#define WIMPY_LOAD_OPENLOOP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "common/stats.h"
#include "common/units.h"
#include "load/arrival.h"

namespace wimpy::load {

struct OpenLoopConfig {
  ArrivalConfig arrival;
  // Client-side dispatch slots. 0 = unbounded (pure open loop: every
  // arrival dispatches immediately).
  int max_outstanding = 0;
  // Waiting room once the slots are full; 0 = shed immediately. Ignored
  // when max_outstanding == 0.
  int queue_limit = 0;
  // Latency bound for SLO-conditioned goodput, measured against intended
  // arrival time. 0 = SLO accounting off.
  Duration slo = 0.0;
};

enum class Admission { kDispatch, kQueue, kShed };

// Protocol per arrival:
//   switch (gate.Admit()) {
//     case kDispatch: start the request now;            break;
//     case kQueue:    gate.Enqueue(intended, payload);  break;
//     case kShed:     record the shed and move on;      break;
//   }
// and per completed dispatch: if `gate.OnComplete()` returns a pending
// entry, start it immediately (it inherits the freed slot).
template <typename Payload>
class AdmissionGate {
 public:
  struct Pending {
    SimTime intended;
    Payload payload;
  };

  explicit AdmissionGate(const OpenLoopConfig& config)
      : max_outstanding_(config.max_outstanding),
        queue_limit_(config.queue_limit) {}

  Admission Admit() {
    ++offered_;
    if (max_outstanding_ <= 0 || outstanding_ < max_outstanding_) {
      ++outstanding_;
      ++dispatched_;
      return Admission::kDispatch;
    }
    if (static_cast<int>(queue_.size()) < queue_limit_) {
      ++queued_;
      return Admission::kQueue;
    }
    ++shed_;
    return Admission::kShed;
  }

  void Enqueue(SimTime intended, Payload payload) {
    queue_.push_back(Pending{intended, std::move(payload)});
  }

  std::optional<Pending> OnComplete() {
    if (!queue_.empty()) {
      // The freed slot passes straight to the head of the queue, so
      // `outstanding_` is unchanged.
      Pending next = std::move(queue_.front());
      queue_.pop_front();
      ++dispatched_;
      return next;
    }
    --outstanding_;
    return std::nullopt;
  }

  int outstanding() const { return outstanding_; }
  std::size_t queue_depth() const { return queue_.size(); }
  // Conservation invariant: offered == dispatched + queue_depth + shed.
  std::int64_t offered() const { return offered_; }
  std::int64_t dispatched() const { return dispatched_; }
  std::int64_t queued() const { return queued_; }
  std::int64_t shed() const { return shed_; }

 private:
  int max_outstanding_;
  int queue_limit_;
  int outstanding_ = 0;
  std::int64_t offered_ = 0;
  std::int64_t dispatched_ = 0;
  std::int64_t queued_ = 0;
  std::int64_t shed_ = 0;
  std::deque<Pending> queue_;
};

// Optional live taps off the recorder: every shed and every completion
// (windowed or not) is streamed as it happens, so an online consumer
// (obs::Telemetry via obs::SloStreamInto) sees the same event stream the
// post-hoc report is computed from. Plain std::functions keep this
// header free of any obs dependency.
struct SloStreamHooks {
  // honest_latency is finished - intended (coordinated-omission-free);
  // under_slo implies ok and is false when SLO accounting is off.
  std::function<void(SimTime intended, Duration honest_latency, bool ok,
                     bool under_slo)>
      on_complete;
  std::function<void(SimTime intended)> on_shed;
};

class OpenLoopRecorder {
 public:
  OpenLoopRecorder(SimTime window_start, SimTime window_end, Duration slo)
      : window_start_(window_start), window_end_(window_end), slo_(slo) {}

  void set_stream(SloStreamHooks stream) { stream_ = std::move(stream); }

  // Window membership is decided by the *intended* arrival time: overload
  // pushing a dispatch past the window edge must not un-count the request.
  bool InWindow(SimTime intended) const {
    return intended >= window_start_ && intended < window_end_;
  }

  void OnShed(SimTime intended) {
    if (stream_.on_shed) stream_.on_shed(intended);
    if (InWindow(intended)) ++shed_;
  }

  void OnComplete(SimTime intended, SimTime dispatched, SimTime finished,
                  bool ok) {
    const Duration honest = finished - intended;
    const bool under_slo = ok && slo_ > 0.0 && honest <= slo_;
    if (stream_.on_complete) {
      stream_.on_complete(intended, honest, ok, under_slo);
    }
    if (!InWindow(intended)) return;
    ++completed_;
    if (!ok) {
      ++errors_;
      return;
    }
    ++ok_;
    const Duration service = finished - dispatched;
    service_latency_.Add(service);
    service_percentiles_.Add(service);
    intended_latency_.Add(honest);
    intended_percentiles_.Add(honest);
    queue_delay_.Add(dispatched - intended);
    if (under_slo) ++slo_good_;
  }

  SimTime window_start() const { return window_start_; }
  SimTime window_end() const { return window_end_; }
  Duration window_length() const { return window_end_ - window_start_; }
  Duration slo() const { return slo_; }

  std::int64_t completed() const { return completed_; }
  std::int64_t ok() const { return ok_; }
  std::int64_t errors() const { return errors_; }
  std::int64_t shed() const { return shed_; }
  std::int64_t slo_good() const { return slo_good_; }
  // Everything the window asked for: completions + errors + sheds.
  std::int64_t offered() const { return completed_ + shed_; }

  const OnlineStats& service_latency() const { return service_latency_; }
  const OnlineStats& intended_latency() const { return intended_latency_; }
  const OnlineStats& queue_delay() const { return queue_delay_; }
  const PercentileTracker& service_percentiles() const {
    return service_percentiles_;
  }
  const PercentileTracker& intended_percentiles() const {
    return intended_percentiles_;
  }

  // Fraction of offered-in-window requests that completed OK within the
  // SLO. Sheds and errors count against it — that is the point.
  double SloGoodFraction() const {
    const std::int64_t denom = offered();
    return denom == 0 ? 0.0
                      : static_cast<double>(slo_good_) /
                            static_cast<double>(denom);
  }

  // Under-SLO completions per joule of window energy (∫P dt over the
  // measurement window) — "p99-under-SLO work per joule".
  double SloGoodputPerJoule(Joules window_joules) const {
    return window_joules > 0.0
               ? static_cast<double>(slo_good_) / window_joules
               : 0.0;
  }

 private:
  SimTime window_start_;
  SimTime window_end_;
  Duration slo_;
  std::int64_t completed_ = 0;
  std::int64_t ok_ = 0;
  std::int64_t errors_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t slo_good_ = 0;
  OnlineStats service_latency_;
  OnlineStats intended_latency_;
  OnlineStats queue_delay_;
  PercentileTracker service_percentiles_;
  PercentileTracker intended_percentiles_;
  SloStreamHooks stream_;
};

}  // namespace wimpy::load

#endif  // WIMPY_LOAD_OPENLOOP_H_
