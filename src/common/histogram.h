// Histograms for latency-distribution reporting (paper Figures 10 & 11).
#ifndef WIMPY_COMMON_HISTOGRAM_H_
#define WIMPY_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wimpy {

// Fixed-width linear-bucket histogram over [lo, hi); one overflow and one
// underflow bucket. Matches the paper's delay-distribution plots which use
// linear seconds on the x axis.
class LinearHistogram {
 public:
  // Requires hi > lo and num_buckets > 0.
  LinearHistogram(double lo, double hi, std::size_t num_buckets);

  void Add(double x);

  // Adds another histogram's counts into this one. Both must have been
  // constructed with identical (lo, hi, num_buckets); sweeps use this to
  // aggregate per-replication histograms into one distribution.
  void Merge(const LinearHistogram& other);

  std::size_t bucket_count() const { return counts_.size(); }
  // Lower edge of bucket i.
  double BucketLow(std::size_t i) const;
  double BucketHigh(std::size_t i) const;
  std::size_t BucketValue(std::size_t i) const { return counts_[i]; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  // Index of the bucket with the largest count (first on ties). Returns
  // bucket_count() — an end sentinel — when every bucket is empty, so an
  // all-zero histogram is never mistaken for one peaking in bucket 0.
  std::size_t ArgMaxBucket() const;

  // Multi-line ASCII rendering: one row per bucket with a '#' bar, e.g.
  //   [0.00, 0.25)  412 | ##########
  // Rows after the last non-empty bucket are omitted; a histogram with no
  // in-range samples renders no bucket rows at all (a note when empty).
  std::string ToAscii(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace wimpy

#endif  // WIMPY_COMMON_HISTOGRAM_H_
