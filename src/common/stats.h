// Online statistics accumulators used by the metrics and reporting layers.
#ifndef WIMPY_COMMON_STATS_H_
#define WIMPY_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace wimpy {

// Streaming mean/variance/min/max (Welford's algorithm). O(1) memory.
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);
  void Reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (Bessel's n-1 denominator, matching
  // Summarize().stddev); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return count_ == 0 ? 0.0 : mean_ * count_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact-percentile reservoir: stores all samples and sorts on demand.
// Fine for the sample counts this library produces per experiment (<=1e7);
// memory is the trade-off for exactness in paper-comparison reporting.
class PercentileTracker {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // q clamped to [0,1]; linear interpolation between order statistics.
  // Returns NaN when empty — never 0, which would vacuously pass SLO
  // gates. Call sites feeding bench JSON must check empty() explicitly.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Time-weighted average of a piecewise-constant signal, e.g. CPU utilisation
// or power. Feed (time, value) change-points; the value holds until the next
// change-point.
class TimeWeightedAverage {
 public:
  // Record that the signal takes `value` starting at time `t` (seconds).
  // Times must be non-decreasing.
  void Set(double t, double value);

  // Integral of the signal over [start, t]; e.g. joules when the signal is
  // watts. `t` must be >= the last Set() time.
  double IntegralUntil(double t) const;

  // Average value over [start, t]. Returns current value if no time elapsed.
  double AverageUntil(double t) const;

  double current() const { return value_; }
  bool has_samples() const { return has_start_; }

 private:
  bool has_start_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;  // up to last_time_
};

}  // namespace wimpy

#endif  // WIMPY_COMMON_STATS_H_
