#include "common/bench_args.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace wimpy {

namespace {

void PrintUsage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--replications=N] [--threads=K] [--seed=S]\n"
               "          [--trace=FILE] [--metrics=FILE] "
               "[--trace-summary=FILE] [--slo-ms=T]\n"
               "          [--telemetry=FILE] [--alerts=FILE]\n"
               "  --replications=N  seeds per configuration (default 1)\n"
               "  --threads=K       sweep worker threads; 0 = hardware "
               "concurrency (default 0)\n"
               "  --seed=S          base seed for the replication seed tree "
               "(non-negative)\n"
               "  --trace=FILE      export Chrome trace-event JSON "
               "(Perfetto-loadable)\n"
               "  --metrics=FILE    export sampled metrics time series as "
               "CSV\n"
               "  --trace-summary=FILE\n"
               "                    export per-trace roll-up CSV (latency, "
               "spans, joules)\n"
               "  --slo-ms=T        latency SLO in ms: adds the under_slo "
               "column and the\n"
               "                    slo_goodput_per_joule roll-up "
               "(0 = off)\n"
               "  --telemetry=FILE  export telemetry rollup buckets as CSV "
               "(enables the\n"
               "                    online telemetry plane, "
               "docs/telemetry.md)\n"
               "  --alerts=FILE     export fired alert instants as CSV "
               "(also enables\n"
               "                    the telemetry plane)\n",
               prog);
}

bool ParseString(const char* arg, const char* flag, std::string* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  if (arg[n + 1] == '\0') {
    std::fprintf(stderr, "error: empty value in '%s'\n", arg);
    std::exit(2);
  }
  *out = arg + n + 1;
  return true;
}

bool ParseDouble(const char* arg, const char* flag, double* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  *out = std::strtod(arg + n + 1, &end);
  if (end == arg + n + 1 || *end != '\0') {
    std::fprintf(stderr, "error: malformed value in '%s'\n", arg);
    std::exit(2);
  }
  return true;
}

bool ParseValue(const char* arg, const char* flag, long long* out) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  *out = std::strtoll(arg + n + 1, &end, 0);
  if (end == arg + n + 1 || *end != '\0') {
    std::fprintf(stderr, "error: malformed value in '%s'\n", arg);
    std::exit(2);
  }
  return true;
}

}  // namespace

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    long long value = 0;
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(argv[0]);
      std::exit(0);
    } else if (ParseValue(argv[i], "--replications", &value)) {
      if (value < 1) {
        std::fprintf(stderr, "error: --replications must be >= 1\n");
        std::exit(2);
      }
      args.replications = static_cast<int>(value);
    } else if (ParseValue(argv[i], "--threads", &value)) {
      if (value < 0) {
        std::fprintf(stderr, "error: --threads must be >= 0\n");
        std::exit(2);
      }
      args.threads = static_cast<int>(value);
    } else if (ParseValue(argv[i], "--seed", &value)) {
      // A negative seed would silently wrap through the uint64_t cast to
      // a huge unrelated seed tree; reject it instead.
      if (value < 0) {
        std::fprintf(stderr,
                     "error: --seed must be >= 0 (got %lld)\n", value);
        std::exit(2);
      }
      args.seed = static_cast<std::uint64_t>(value);
    } else if (ParseDouble(argv[i], "--slo-ms", &args.slo_ms)) {
      if (args.slo_ms < 0) {
        std::fprintf(stderr, "error: --slo-ms must be >= 0\n");
        std::exit(2);
      }
    } else if (ParseString(argv[i], "--trace-summary",
                           &args.trace_summary_path) ||
               ParseString(argv[i], "--trace", &args.trace_path) ||
               ParseString(argv[i], "--metrics", &args.metrics_path) ||
               ParseString(argv[i], "--telemetry", &args.telemetry_path) ||
               ParseString(argv[i], "--alerts", &args.alerts_path)) {
      // handled
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      PrintUsage(argv[0]);
      std::exit(2);
    }
  }
  return args;
}

int ResolvedThreads(const BenchArgs& args) {
  if (args.threads > 0) return args.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace wimpy
