// Unit vocabulary used throughout the library.
//
// Simulated time, data sizes, rates, power and energy all travel as plain
// doubles/integers wrapped in descriptive aliases plus conversion and
// formatting helpers. We deliberately avoid a heavyweight dimensional-
// analysis template layer: the simulation hot path manipulates these values
// constantly and the alias-plus-helper style keeps call sites readable
// (`MiB(64)`, `Mbps(100)`) without obscuring arithmetic.
#ifndef WIMPY_COMMON_UNITS_H_
#define WIMPY_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace wimpy {

// Simulated wall-clock time in seconds.
using SimTime = double;
// Duration in seconds.
using Duration = double;
// Data size in bytes.
using Bytes = std::int64_t;
// Data rate in bytes per second.
using BytesPerSecond = double;
// Abstract CPU work units (calibrated to Dhrystone iterations).
using WorkUnits = double;
// CPU work rate in units per second.
using WorkRate = double;
// Electrical power in watts.
using Watts = double;
// Electrical energy in joules.
using Joules = double;

// -- Size constructors -------------------------------------------------------

constexpr Bytes KiB(double n) { return static_cast<Bytes>(n * 1024.0); }
constexpr Bytes MiB(double n) { return static_cast<Bytes>(n * 1024.0 * 1024.0); }
constexpr Bytes GiB(double n) {
  return static_cast<Bytes>(n * 1024.0 * 1024.0 * 1024.0);
}
constexpr Bytes KB(double n) { return static_cast<Bytes>(n * 1e3); }
constexpr Bytes MB(double n) { return static_cast<Bytes>(n * 1e6); }
constexpr Bytes GB(double n) { return static_cast<Bytes>(n * 1e9); }

// -- Rate constructors -------------------------------------------------------

// Network rates follow networking convention: bits per second on the wire.
constexpr BytesPerSecond Kbps(double n) { return n * 1e3 / 8.0; }
constexpr BytesPerSecond Mbps(double n) { return n * 1e6 / 8.0; }
constexpr BytesPerSecond Gbps(double n) { return n * 1e9 / 8.0; }
// Storage/memory rates follow storage convention: bytes per second.
constexpr BytesPerSecond MBps(double n) { return n * 1e6; }
constexpr BytesPerSecond GBps(double n) { return n * 1e9; }

// -- Time constructors -------------------------------------------------------

constexpr Duration Microseconds(double n) { return n * 1e-6; }
constexpr Duration Milliseconds(double n) { return n * 1e-3; }
constexpr Duration Seconds(double n) { return n; }
constexpr Duration Minutes(double n) { return n * 60.0; }
constexpr Duration Hours(double n) { return n * 3600.0; }

// -- Random-draw truncation ---------------------------------------------------

// Truncates a randomly drawn size into a valid Bytes value of at least
// max(floor, 1). Casting a negative, NaN, or >INT64_MAX double straight to
// Bytes is undefined behaviour, so every drawn size must pass through here
// *before* entering the integer domain; draws already in
// [max(floor,1), 2^62] are returned unchanged.
inline Bytes DrawnBytes(double draw, Bytes floor) {
  const Bytes lo = floor < 1 ? 1 : floor;
  // The comparison is written so NaN falls through to the floor.
  if (!(draw >= static_cast<double>(lo))) return lo;
  constexpr double kMax = 4.6e18;  // < 2^63, exactly representable
  if (draw >= kMax) return static_cast<Bytes>(kMax);
  return static_cast<Bytes>(draw);
}

// -- Conversions for reporting ----------------------------------------------

constexpr double ToMilliseconds(Duration d) { return d * 1e3; }
constexpr double ToMbps(BytesPerSecond r) { return r * 8.0 / 1e6; }
constexpr double ToMBps(BytesPerSecond r) { return r / 1e6; }
constexpr double ToGBps(BytesPerSecond r) { return r / 1e9; }
constexpr double ToKWh(Joules j) { return j / 3.6e6; }

// -- Formatting helpers -------------------------------------------------------

// "1.5 KB", "64.0 MB", ... (decimal units, two significant decimals).
std::string FormatBytes(Bytes bytes);
// "93.9 Mbit/s", "1.0 Gbit/s", ...
std::string FormatBitRate(BytesPerSecond rate);
// "18.0 ms", "1.30 s", "7.0 us", ...
std::string FormatDuration(Duration d);
// "58.8 W"
std::string FormatWatts(Watts w);
// "17670 J" or "43.4 kJ"
std::string FormatJoules(Joules j);

}  // namespace wimpy

#endif  // WIMPY_COMMON_UNITS_H_
