#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wimpy {

void OnlineStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::Reset() { *this = OnlineStats(); }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double PercentileTracker::Percentile(double q) const {
  // NaN, not 0: a zero p99 from an empty tracker would vacuously pass any
  // SLO gate. Callers that feed bench JSON must check empty() first.
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void TimeWeightedAverage::Set(double t, double value) {
  if (!has_start_) {
    has_start_ = true;
    start_time_ = t;
    last_time_ = t;
    value_ = value;
    return;
  }
  assert(t >= last_time_);
  integral_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
}

double TimeWeightedAverage::IntegralUntil(double t) const {
  if (!has_start_) return 0.0;
  assert(t >= last_time_);
  return integral_ + value_ * (t - last_time_);
}

double TimeWeightedAverage::AverageUntil(double t) const {
  if (!has_start_) return 0.0;
  const double span = t - start_time_;
  if (span <= 0.0) return value_;
  return IntegralUntil(t) / span;
}

}  // namespace wimpy
