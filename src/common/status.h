// Lightweight error-handling vocabulary for the wimpy library.
//
// The library does not throw exceptions across its public API. Fallible
// operations return `Status` (or `StatusOr<T>` when they also produce a
// value). This mirrors the convention used by production database codebases
// (Arrow, RocksDB, LevelDB).
#ifndef WIMPY_COMMON_STATUS_H_
#define WIMPY_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace wimpy {

// Coarse error taxonomy; mirrors the usual database-engine set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kAborted,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

// Value-semantic status: either OK or a code plus a message.
class Status {
 public:
  // Default status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Either a value of T or a non-OK Status. Accessing the value of a non-OK
// StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  // Implicit construction from both directions keeps call sites terse:
  //   StatusOr<int> F() { if (bad) return Status::InvalidArgument("x"); return 3; }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when not OK.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wimpy

// Evaluates `expr` (a Status expression) and early-returns it on error.
#define WIMPY_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::wimpy::Status wimpy_status_tmp = (expr);   \
    if (!wimpy_status_tmp.ok()) return wimpy_status_tmp; \
  } while (false)

#endif  // WIMPY_COMMON_STATUS_H_
