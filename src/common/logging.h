// Minimal leveled logging for the library and its benches.
//
// Logging defaults to kWarning so simulations stay quiet; benches raise the
// level explicitly. All output goes to stderr so bench stdout remains a
// clean table stream.
#ifndef WIMPY_COMMON_LOGGING_H_
#define WIMPY_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace wimpy {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Stream-collecting helper behind the WIMPY_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

bool ShouldLog(LogLevel level);

}  // namespace internal_logging
}  // namespace wimpy

// Usage: WIMPY_LOG(kInfo) << "job finished in " << seconds << " s";
#define WIMPY_LOG(severity)                                              \
  if (!::wimpy::internal_logging::ShouldLog(::wimpy::LogLevel::severity)) \
    ;                                                                     \
  else                                                                    \
    ::wimpy::internal_logging::LogMessage(::wimpy::LogLevel::severity,    \
                                          __FILE__, __LINE__)             \
        .stream()

#endif  // WIMPY_COMMON_LOGGING_H_
