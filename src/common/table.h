// ASCII table rendering for paper-style result tables.
//
// Every bench binary prints the rows/series of the corresponding paper table
// or figure through this printer so output stays uniform and diffable.
#ifndef WIMPY_COMMON_TABLE_H_
#define WIMPY_COMMON_TABLE_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace wimpy {

// Column-aligned text table with a title, a header row, and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  // Sets the header; must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  // Adds a row. Rows shorter than the header are padded with empty cells;
  // longer rows extend the column set.
  void AddRow(std::vector<std::string> row);

  // Convenience for mixed literal rows.
  void AddRow(std::initializer_list<std::string> row);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }
  const std::string& title() const { return title_; }

  // Renders the full table.
  std::string ToString() const;

  // Renders to stdout.
  void Print() const;

  // Formats a double with the given number of decimals ("12.35").
  static std::string Num(double value, int decimals = 2);
  // Formats "3.5x"-style ratios.
  static std::string Ratio(double value, int decimals = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wimpy

#endif  // WIMPY_COMMON_TABLE_H_
