#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace wimpy {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

bool ShouldLog(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace wimpy
