#include "common/csv.h"

#include <cstdio>
#include <cstdlib>

#include "common/table.h"

namespace wimpy {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string CsvWriter::EscapeCell(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += EscapeCell(row[i]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open for writing: " + path);
  }
  const std::string doc = ToString();
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::Unavailable("short write to: " + path);
  }
  return Status::Ok();
}

Status MaybeExportCsv(const TextTable& table, const std::string& name) {
  const char* dir = std::getenv("WIMPY_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return Status::Ok();
  CsvWriter writer(table.header());
  for (const auto& row : table.rows()) writer.AddRow(row);
  return writer.WriteToFile(std::string(dir) + "/" + name + ".csv");
}

}  // namespace wimpy
