#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace wimpy {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::AddRow(std::initializer_list<std::string> row) {
  rows_.emplace_back(row);
}

namespace {
// Display width in code points, not bytes — cells may carry multi-byte
// UTF-8 like the ± in mean±CI columns. Counts non-continuation bytes.
std::size_t DisplayWidth(const std::string& s) {
  std::size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++w;
  }
  return w;
}
}  // namespace

std::string TextTable::ToString() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], DisplayWidth(row[i]));
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += ' ';
      line += cell;
      line.append(widths[i] - DisplayWidth(cell) + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (std::size_t i = 0; i < cols; ++i) {
    sep.append(widths[i] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out;
  if (!title_.empty()) {
    out += "== ";
    out += title_;
    out += " ==\n";
  }
  out += sep;
  if (!header_.empty()) {
    out += render_row(header_);
    out += sep;
  }
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TextTable::Num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TextTable::Ratio(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", decimals, value);
  return buf;
}

}  // namespace wimpy
