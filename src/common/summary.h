// Replication statistics for multi-seed sweeps (see docs/parallel.md).
//
// A sweep runs N independent replications of an experiment and reports
// each scalar metric (throughput, joules, latency, ...) as a mean with a
// 95% confidence interval over the replications — the presentation the
// SBC-cluster literature asks of energy/performance claims. The interval
// uses the two-sided Student-t quantile, so it is honest at the small
// replication counts (3-30) benches actually use.
#ifndef WIMPY_COMMON_SUMMARY_H_
#define WIMPY_COMMON_SUMMARY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wimpy {

// Summary of one scalar metric over n replications.
struct MetricSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  // Half-width of the 95% CI: t_{0.975,n-1} * stddev / sqrt(n).
  // Zero for fewer than 2 samples (no spread is estimable).
  double ci95_half_width = 0.0;
};

// Two-sided 95% Student-t quantile (t_{0.975,dof}); 0 for dof == 0.
// Exact table through dof 30, interpolated beyond, 1.96 asymptote.
double StudentT95(std::size_t dof);

MetricSummary Summarize(const std::vector<double>& samples);

// Extracts metric(r) for every replication result and summarizes.
template <typename T, typename F>
MetricSummary SummarizeOver(const std::vector<T>& replications, F metric) {
  std::vector<double> samples;
  samples.reserve(replications.size());
  for (const auto& r : replications) samples.push_back(metric(r));
  return Summarize(samples);
}

// "310" for a single replication, "310±12" for several (± is the 95% CI
// half-width, same decimals as the mean).
std::string FormatMeanCI(const MetricSummary& s, int decimals);

}  // namespace wimpy

#endif  // WIMPY_COMMON_SUMMARY_H_
