#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace wimpy {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
  if (span == 0) return static_cast<std::int64_t>(Next());
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double rate) {
  assert(rate > 0);
  // Avoid log(0).
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::LogNormalMeanStd(double mean, double stddev) {
  assert(mean > 0);
  const double variance_ratio = (stddev * stddev) / (mean * mean);
  const double sigma2 = std::log(1.0 + variance_ratio);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(Normal(mu, std::sqrt(sigma2)));
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double x = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  Rng child(0);
  // Seed the child from four parent draws; keeps streams decorrelated.
  for (auto& s : child.s_) s = Next();
  // Guard against the (astronomically unlikely) all-zero state.
  bool all_zero = true;
  for (auto s : child.s_) all_zero = all_zero && s == 0;
  if (all_zero) child.s_[0] = 1;
  return child;
}

}  // namespace wimpy
