#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace wimpy {

LinearHistogram::LinearHistogram(double lo, double hi,
                                 std::size_t num_buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0) {
  assert(hi > lo);
  assert(num_buckets > 0);
}

void LinearHistogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double LinearHistogram::BucketLow(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::BucketHigh(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

void LinearHistogram::Merge(const LinearHistogram& other) {
  assert(lo_ == other.lo_);
  assert(width_ == other.width_);
  assert(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::size_t LinearHistogram::ArgMaxBucket() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  if (*it == 0) return counts_.size();  // all-empty: end sentinel
  return static_cast<std::size_t>(it - counts_.begin());
}

std::string LinearHistogram::ToAscii(std::size_t max_bar_width) const {
  bool any = false;
  std::size_t last_nonzero = 0;
  std::size_t max_count = 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      any = true;
      last_nonzero = i;
    }
    max_count = std::max(max_count, counts_[i]);
  }
  std::string out;
  char buf[128];
  if (!any) out += "(no in-range samples)\n";
  for (std::size_t i = 0; any && i <= last_nonzero; ++i) {
    const std::size_t bar =
        counts_[i] * max_bar_width / max_count;
    std::snprintf(buf, sizeof(buf), "[%8.3f, %8.3f) %8zu | ", BucketLow(i),
                  BucketHigh(i), counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  if (overflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "overflow: %zu\n", overflow_);
    out += buf;
  }
  return out;
}

}  // namespace wimpy
