#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace wimpy {

LinearHistogram::LinearHistogram(double lo, double hi,
                                 std::size_t num_buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0) {
  assert(hi > lo);
  assert(num_buckets > 0);
}

void LinearHistogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double LinearHistogram::BucketLow(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::BucketHigh(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::size_t LinearHistogram::ArgMaxBucket() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string LinearHistogram::ToAscii(std::size_t max_bar_width) const {
  std::size_t last_nonzero = 0;
  std::size_t max_count = 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) last_nonzero = i;
    max_count = std::max(max_count, counts_[i]);
  }
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i <= last_nonzero; ++i) {
    const std::size_t bar =
        counts_[i] * max_bar_width / max_count;
    std::snprintf(buf, sizeof(buf), "[%8.3f, %8.3f) %8zu | ", BucketLow(i),
                  BucketHigh(i), counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  if (overflow_ > 0) {
    std::snprintf(buf, sizeof(buf), "overflow: %zu\n", overflow_);
    out += buf;
  }
  return out;
}

}  // namespace wimpy
