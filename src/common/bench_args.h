// Shared command-line surface for the bench binaries.
//
// Every converted bench accepts the same sweep flags:
//
//   --replications=N   seeds per configuration (default 1: the paper's
//                      single-run tables, same output shape as the
//                      pre-sweep binaries)
//   --threads=K        worker threads for the replication runner
//                      (default 0 = hardware concurrency)
//   --seed=S           base seed for the deterministic seed tree
//   --trace=FILE       export a Chrome trace-event JSON (Perfetto-loadable)
//                      of the run (benches that support it; see
//                      docs/observability.md)
//   --metrics=FILE     export the sampled metrics time series as CSV
//   --trace-summary=FILE
//                      export the per-trace roll-up CSV (root span,
//                      latency, span count, attributed joules) computed
//                      by obs/critical_path.h; implies trace recording
//                      even without --trace
//   --slo-ms=T         latency SLO bound in milliseconds. Adds an
//                      `under_slo` column to the --trace-summary CSV and
//                      an slo_goodput_per_joule roll-up (under-SLO work
//                      per window joule, docs/openloop.md); 0 = off
//   --telemetry=FILE   export the online telemetry plane's rollup
//                      buckets (per-window count/sum/min/max plus sparse
//                      sketch buckets) as CSV; enables the per-run
//                      obs::Telemetry plane (docs/telemetry.md)
//   --alerts=FILE      export fired alert-rule instants as CSV; enables
//                      the telemetry plane like --telemetry
//
// Results never depend on --threads (see docs/parallel.md); it only
// changes wall-clock time. Trace and metrics exports are likewise
// byte-identical for the same --seed at any --threads.
#ifndef WIMPY_COMMON_BENCH_ARGS_H_
#define WIMPY_COMMON_BENCH_ARGS_H_

#include <cstdint>
#include <string>

namespace wimpy {

struct BenchArgs {
  int replications = 1;
  int threads = 0;  // 0 = std::thread::hardware_concurrency()
  std::uint64_t seed = 0x5EED2016;
  std::string trace_path;          // empty = no trace export
  std::string metrics_path;        // empty = no metrics export
  std::string trace_summary_path;  // empty = no per-trace summary CSV
  std::string telemetry_path;      // empty = no rollup-bucket CSV
  std::string alerts_path;         // empty = no alert-instant CSV
  double slo_ms = 0;               // 0 = no SLO column/roll-up

  // Either telemetry export flag turns the per-run obs::Telemetry plane
  // on (benches that support it; see docs/telemetry.md).
  bool WantTelemetry() const {
    return !telemetry_path.empty() || !alerts_path.empty();
  }
};

// Parses the shared flags above; prints usage and exits(2) on an unknown
// or malformed argument, exits(0) on --help. Unrelated binaries stay
// flag-free by simply not calling this.
BenchArgs ParseBenchArgs(int argc, char** argv);

// --threads resolved: the explicit value, else hardware concurrency
// (at least 1).
int ResolvedThreads(const BenchArgs& args);

}  // namespace wimpy

#endif  // WIMPY_COMMON_BENCH_ARGS_H_
