// Deterministic random-number generation for reproducible simulations.
//
// Every stochastic component of the simulator draws from an explicitly
// seeded `Rng`. Experiments construct one root Rng and `Fork()` independent
// child streams per component so that adding a component never perturbs the
// draws seen by another (a classic simulation-reproducibility pitfall).
#ifndef WIMPY_COMMON_RANDOM_H_
#define WIMPY_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace wimpy {

// xoshiro256** with a splitmix64 seeder. Small, fast, high quality; we avoid
// std::mt19937 so that streams are cheap to fork and identical across
// standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Uniform 64-bit draw.
  std::uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextBelow(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  // Exponential with given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Log-normal parameterised by the mean/stddev of the *resulting*
  // distribution (not of the underlying normal); convenient for latency
  // models specified by measured mean and spread.
  double LogNormalMeanStd(double mean, double stddev);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with non-negative weights summing > 0.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child stream. Deterministic: forking the same
  // parent state twice yields different children (parent advances), but the
  // whole tree is a pure function of the root seed.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace wimpy

#endif  // WIMPY_COMMON_RANDOM_H_
