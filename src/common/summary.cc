#include "common/summary.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"

namespace wimpy {

double StudentT95(std::size_t dof) {
  // Two-sided 95% quantiles of the t-distribution, dof 1..30.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof - 1];
  // Beyond the table the quantile decays smoothly to the normal 1.96;
  // t(dof) ~= 1.96 + a/dof + b/dof^2 fitted to the standard 40/60/120
  // entries (2.021, 2.000, 1.980) keeps every value within ~0.002.
  const double inv = 1.0 / static_cast<double>(dof);
  return 1.959964 + 2.372 * inv + 3.2 * inv * inv;
}

MetricSummary Summarize(const std::vector<double>& samples) {
  MetricSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count < 2) return s;
  double m2 = 0.0;
  for (double x : samples) m2 += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(m2 / static_cast<double>(s.count - 1));
  s.ci95_half_width = StudentT95(s.count - 1) * s.stddev /
                      std::sqrt(static_cast<double>(s.count));
  return s;
}

std::string FormatMeanCI(const MetricSummary& s, int decimals) {
  if (s.count < 2) return TextTable::Num(s.mean, decimals);
  return TextTable::Num(s.mean, decimals) + "±" +
         TextTable::Num(s.ci95_half_width, decimals);
}

}  // namespace wimpy
