#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace wimpy {

namespace {

std::string Format(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(Bytes bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) return Format(b / 1e9, "GB");
  if (b >= 1e6) return Format(b / 1e6, "MB");
  if (b >= 1e3) return Format(b / 1e3, "KB");
  return Format(b, "B");
}

std::string FormatBitRate(BytesPerSecond rate) {
  const double bits = rate * 8.0;
  if (bits >= 1e9) return Format(bits / 1e9, "Gbit/s");
  if (bits >= 1e6) return Format(bits / 1e6, "Mbit/s");
  if (bits >= 1e3) return Format(bits / 1e3, "Kbit/s");
  return Format(bits, "bit/s");
}

std::string FormatDuration(Duration d) {
  const double abs = std::fabs(d);
  if (abs >= 1.0) return Format(d, "s");
  if (abs >= 1e-3) return Format(d * 1e3, "ms");
  return Format(d * 1e6, "us");
}

std::string FormatWatts(Watts w) { return Format(w, "W"); }

std::string FormatJoules(Joules j) {
  if (std::fabs(j) >= 1e5) return Format(j / 1e3, "kJ");
  return Format(j, "J");
}

}  // namespace wimpy
