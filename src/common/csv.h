// CSV emission so bench outputs can feed external plotting directly.
#ifndef WIMPY_COMMON_CSV_H_
#define WIMPY_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace wimpy {

// Accumulates rows and writes RFC-4180-ish CSV (quotes cells containing
// commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders the full document (header + rows).
  std::string ToString() const;

  // Writes to a file path, overwriting. Returns IO errors as Status.
  Status WriteToFile(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  static std::string EscapeCell(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

class TextTable;

// If the WIMPY_CSV_DIR environment variable is set, writes `table` as
// <dir>/<name>.csv so bench outputs can feed external plotting; returns
// OK (and does nothing) when the variable is unset.
Status MaybeExportCsv(const TextTable& table, const std::string& name);

}  // namespace wimpy

#endif  // WIMPY_COMMON_CSV_H_
