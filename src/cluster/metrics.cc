#include "cluster/metrics.h"

#include <cassert>

namespace wimpy::cluster {

MetricsSampler::MetricsSampler(Cluster* cluster,
                               std::vector<std::string> roles,
                               Duration period)
    : cluster_(cluster), roles_(std::move(roles)), period_(period) {
  assert(cluster != nullptr);
  assert(period > 0);
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::SetProgressProbe(
    std::function<std::pair<double, double>()> probe) {
  probe_ = std::move(probe);
}

void MetricsSampler::Start() {
  if (running_) return;
  running_ = true;
  TakeSample();
  ScheduleNext();
}

void MetricsSampler::Stop() {
  running_ = false;
  if (pending_ != 0) {
    cluster_->scheduler().Cancel(pending_);
    pending_ = 0;
  }
}

void MetricsSampler::ScheduleNext() {
  if (!running_) return;
  pending_ = cluster_->scheduler().ScheduleAfter(period_, [this] {
    pending_ = 0;
    if (!running_) return;
    TakeSample();
    ScheduleNext();
  });
}

void MetricsSampler::TakeSample() {
  MetricsSample s;
  s.time = cluster_->scheduler().now();
  double cpu = 0, mem = 0, nic = 0, disk = 0;
  for (const auto& role : roles_) {
    cpu += cluster_->MeanCpuBusy(role);
    mem += cluster_->MeanMemoryUsed(role);
    nic += cluster_->MeanNicBusy(role);
    disk += cluster_->MeanStorageBusy(role);
  }
  const double n = roles_.empty() ? 1.0 : static_cast<double>(roles_.size());
  s.cpu_pct = 100.0 * cpu / n;
  s.memory_pct = 100.0 * mem / n;
  s.nic_pct = 100.0 * nic / n;
  s.storage_pct = 100.0 * disk / n;
  s.power_watts = cluster_->TotalWatts(roles_);
  if (probe_) {
    auto [a, b] = probe_();
    s.gauge_a = a;
    s.gauge_b = b;
  }
  samples_.push_back(s);
}

}  // namespace wimpy::cluster
