#include "cluster/cluster.h"

#include <cassert>

namespace wimpy::cluster {

Cluster::Cluster(sim::Scheduler* sched, net::Fabric* fabric)
    : sched_(sched), fabric_(fabric) {
  assert(sched != nullptr && fabric != nullptr);
}

std::vector<hw::ServerNode*> Cluster::AddNodes(
    const hw::HardwareProfile& profile, int count, const std::string& role,
    const std::string& fabric_group) {
  std::vector<hw::ServerNode*> added;
  added.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto node = std::make_unique<hw::ServerNode>(sched_, profile, next_id_++);
    fabric_->AddNode(node.get(), fabric_group);
    roles_[role].push_back(node.get());
    added.push_back(node.get());
    nodes_.push_back(std::move(node));
  }
  return added;
}

const std::vector<hw::ServerNode*>& Cluster::NodesInRole(
    const std::string& role) const {
  static const std::vector<hw::ServerNode*> kEmpty;
  auto it = roles_.find(role);
  return it == roles_.end() ? kEmpty : it->second;
}

std::vector<hw::ServerNode*> Cluster::AllNodes() const {
  std::vector<hw::ServerNode*> all;
  all.reserve(nodes_.size());
  for (const auto& node : nodes_) all.push_back(node.get());
  return all;
}

hw::ServerNode* Cluster::node(int id) const {
  // Ids are handed out densely in creation order, so the id doubles as the
  // index — no scan.
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) return nullptr;
  assert(nodes_[static_cast<std::size_t>(id)]->id() == id);
  return nodes_[static_cast<std::size_t>(id)].get();
}

std::vector<hw::ServerNode*> Cluster::SelectRoles(
    const std::vector<std::string>& roles) const {
  if (roles.empty()) return AllNodes();
  std::vector<hw::ServerNode*> selected;
  for (const auto& role : roles) {
    for (auto* node : NodesInRole(role)) selected.push_back(node);
  }
  return selected;
}

Watts Cluster::TotalWatts(const std::vector<std::string>& roles) const {
  Watts total = 0;
  for (auto* node : SelectRoles(roles)) {
    total += node->power().current_watts();
  }
  return total;
}

Joules Cluster::CumulativeJoules(
    const std::vector<std::string>& roles) const {
  Joules total = 0;
  for (auto* node : SelectRoles(roles)) {
    total += node->power().CumulativeJoules();
  }
  return total;
}

double Cluster::MeanCpuBusy(const std::string& role) const {
  const auto& nodes = NodesInRole(role);
  if (nodes.empty()) return 0.0;
  double sum = 0;
  for (auto* node : nodes) sum += node->cpu().busy_fraction();
  return sum / static_cast<double>(nodes.size());
}

double Cluster::MeanMemoryUsed(const std::string& role) const {
  const auto& nodes = NodesInRole(role);
  if (nodes.empty()) return 0.0;
  double sum = 0;
  for (auto* node : nodes) sum += node->memory().used_fraction();
  return sum / static_cast<double>(nodes.size());
}

double Cluster::MeanNicBusy(const std::string& role) const {
  const auto& nodes = NodesInRole(role);
  if (nodes.empty()) return 0.0;
  double sum = 0;
  for (auto* node : nodes) sum += node->nic().busy_fraction();
  return sum / static_cast<double>(nodes.size());
}

double Cluster::MeanStorageBusy(const std::string& role) const {
  const auto& nodes = NodesInRole(role);
  if (nodes.empty()) return 0.0;
  double sum = 0;
  for (auto* node : nodes) sum += node->storage().busy_fraction();
  return sum / static_cast<double>(nodes.size());
}

}  // namespace wimpy::cluster
