// Cluster composition: owns server nodes, assigns them to named roles, and
// aggregates power like the paper's measurement rigs (DC supply for the
// Edison boxes, SNMP PDU for the Dell rack).
#ifndef WIMPY_CLUSTER_CLUSTER_H_
#define WIMPY_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/profile.h"
#include "hw/server_node.h"
#include "net/fabric.h"
#include "sim/scheduler.h"

namespace wimpy::cluster {

class Cluster {
 public:
  Cluster(sim::Scheduler* sched, net::Fabric* fabric);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Creates `count` nodes of `profile`, tags them with `role` (e.g.
  // "web-server", "cache-server", "mr-slave") and places them in
  // `fabric_group` (e.g. "edison-room"). Returns the new nodes.
  std::vector<hw::ServerNode*> AddNodes(const hw::HardwareProfile& profile,
                                        int count, const std::string& role,
                                        const std::string& fabric_group);

  // Nodes in a role, in creation order. Empty vector for unknown roles.
  const std::vector<hw::ServerNode*>& NodesInRole(
      const std::string& role) const;

  std::vector<hw::ServerNode*> AllNodes() const;
  std::size_t size() const { return nodes_.size(); }
  hw::ServerNode* node(int id) const;

  // --- PDU-style aggregate power/energy over a set of roles. -------------
  // Empty `roles` means all nodes.
  Watts TotalWatts(const std::vector<std::string>& roles = {}) const;
  Joules CumulativeJoules(const std::vector<std::string>& roles = {}) const;

  // Mean instantaneous CPU busy fraction across a role.
  double MeanCpuBusy(const std::string& role) const;
  // Mean memory used fraction across a role.
  double MeanMemoryUsed(const std::string& role) const;
  // Mean NIC busy fraction (busier direction) across a role.
  double MeanNicBusy(const std::string& role) const;
  // Mean storage-channel busy fraction across a role.
  double MeanStorageBusy(const std::string& role) const;

  sim::Scheduler& scheduler() { return *sched_; }
  net::Fabric& fabric() { return *fabric_; }

 private:
  std::vector<hw::ServerNode*> SelectRoles(
      const std::vector<std::string>& roles) const;

  sim::Scheduler* sched_;
  net::Fabric* fabric_;
  int next_id_ = 0;
  std::vector<std::unique_ptr<hw::ServerNode>> nodes_;
  std::map<std::string, std::vector<hw::ServerNode*>> roles_;
};

}  // namespace wimpy::cluster

#endif  // WIMPY_CLUSTER_CLUSTER_H_
