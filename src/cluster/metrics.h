// Periodic cluster telemetry, modelled on the paper's psutil logger.
//
// The paper samples CPU%, memory%, power and MapReduce phase progress once
// a second on every node and plots them as the Figure 12-17 timelines. The
// sampler here does the same over simulated time; bench binaries print the
// sample series.
#ifndef WIMPY_CLUSTER_METRICS_H_
#define WIMPY_CLUSTER_METRICS_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"

namespace wimpy::cluster {

struct MetricsSample {
  SimTime time = 0;
  double cpu_pct = 0;      // mean CPU busy % across the sampled role
  double memory_pct = 0;   // mean memory used %
  double nic_pct = 0;      // mean NIC busy %
  double storage_pct = 0;  // mean storage busy %
  Watts power_watts = 0;   // aggregate power of the sampled roles
  // Generic workload gauges (e.g. map/reduce completion %), filled by the
  // progress probe when one is installed.
  double gauge_a = 0;
  double gauge_b = 0;
};

class MetricsSampler {
 public:
  // Samples the given roles every `period` seconds of simulated time.
  // `power_roles` defaults to `roles` (pass e.g. all worker roles to
  // emulate a PDU covering only the slaves, as the paper's energy
  // accounting does).
  MetricsSampler(Cluster* cluster, std::vector<std::string> roles,
                 Duration period);

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  ~MetricsSampler();

  // Installs a probe returning {gauge_a, gauge_b}; sampled with the rest.
  void SetProgressProbe(std::function<std::pair<double, double>()> probe);

  // Begins sampling at the current simulated time. One sample is taken
  // immediately.
  void Start();

  // Stops future samples; already-collected samples remain available.
  void Stop();

  const std::vector<MetricsSample>& samples() const { return samples_; }

 private:
  void TakeSample();
  void ScheduleNext();

  Cluster* cluster_;
  std::vector<std::string> roles_;
  Duration period_;
  bool running_ = false;
  sim::EventId pending_ = 0;
  std::function<std::pair<double, double>()> probe_;
  std::vector<MetricsSample> samples_;
};

}  // namespace wimpy::cluster

#endif  // WIMPY_CLUSTER_METRICS_H_
