// Web-service workload description (paper §5.1.1).
//
// The paper's dataset is a MySQL import of Wikipedia dumps plus crawled
// images: 15 tables, 11 with simple fields and 4 with image blobs
// (~30 KB average). A request picks a table by weight (controlling the
// image-query percentage), and a row at random; replies average 1.5 KB for
// plain rows. The cache tier answers a configured fraction of requests
// (93 / 77 / 60 % in the paper's runs).
#ifndef WIMPY_WEB_WORKLOAD_H_
#define WIMPY_WEB_WORKLOAD_H_

#include "common/random.h"
#include "common/units.h"

namespace wimpy::web {

struct RequestSpec {
  bool is_image = false;
  Bytes reply_bytes = 0;
  bool cache_hit = false;
};

// Parameters of one workload configuration.
struct WorkloadMix {
  // Probability a request touches an image table (0, 0.06, 0.10, 0.20).
  double image_fraction = 0.0;
  // Steady-state cache hit ratio established by the warm-up phase.
  double cache_hit_ratio = 0.93;
  // Reply-size distribution parameters. Plain rows are small and tight;
  // image replies are dominated by the blob.
  Bytes plain_reply_mean = KB(1.5);
  Bytes plain_reply_stddev = KB(0.4);
  Bytes image_reply_mean = KB(44);
  Bytes image_reply_stddev = KB(12);
  // HTTP request (upstream) size.
  Bytes request_bytes = 200;

  // Expected mean reply size for this mix.
  double MeanReplyBytes() const {
    return (1.0 - image_fraction) * static_cast<double>(plain_reply_mean) +
           image_fraction * static_cast<double>(image_reply_mean);
  }

  // Draws one request.
  RequestSpec Sample(Rng& rng) const;
};

// The four workload mixes evaluated in Figures 4-9.
WorkloadMix LightMix();               // 0% image, 93% cache (Fig 4/7)
WorkloadMix MixWithCacheRatio(double ratio);  // Fig 5/8 cache sweeps
WorkloadMix MixWithImagePercent(double image_fraction);  // Fig 5/8 image
WorkloadMix HeavyMix();               // 20% image, 93% cache (Fig 6/9)

}  // namespace wimpy::web

#endif  // WIMPY_WEB_WORKLOAD_H_
