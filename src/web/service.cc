#include "web/service.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/metrics.h"
#include "hw/profiles.h"
#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "sim/process.h"

namespace wimpy::web {

WebServerConfig EdisonWebConfig() {
  WebServerConfig cfg;
  cfg.php_workers = 8;
  cfg.queue_factor = 16;
  cfg.service_efficiency = 1.0;
  cfg.tcp.max_connections = 8192;   // fd limit on the 1 GB node
  cfg.tcp.listen_backlog = 256;
  cfg.tcp.time_wait = Seconds(30);
  return cfg;
}

WebServerConfig DellWebConfig() {
  WebServerConfig cfg;
  cfg.php_workers = 128;
  cfg.queue_factor = 16;
  // §4.1/§7: the Xeon's ~18x Dhrystone advantage collapses on branchy
  // interpreted serving; 0.22 reproduces the measured 45% CPU at the
  // shared ~7.2k rps peak.
  cfg.service_efficiency = 0.22;
  // Accept-loop work per connection: ~1 ms on the Xeon at this efficiency
  // (kernel + lighttpd fd setup + FastCGI hand-off), so a single server's
  // accept queue drains at ~1k conn/s — the knee behind the paper's Dell
  // reconnect spikes at ~3k fresh connections/sec.
  cfg.accept_minstr = 2.3;
  cfg.tcp.max_connections = 16384;
  cfg.tcp.listen_backlog = 1024;
  cfg.tcp.time_wait = Seconds(30);
  return cfg;
}

WebTestbedConfig EdisonWebTestbed(int web_servers, int cache_servers) {
  WebTestbedConfig cfg;
  cfg.middle_profile = hw::EdisonProfile();
  cfg.web_servers = web_servers;
  cfg.cache_servers = cache_servers;
  cfg.middle_group = "edison-room";
  cfg.web_config = EdisonWebConfig();
  return cfg;
}

WebTestbedConfig DellWebTestbed(int web_servers, int cache_servers) {
  WebTestbedConfig cfg;
  cfg.middle_profile = hw::DellR620Profile();
  cfg.web_servers = web_servers;
  cfg.cache_servers = cache_servers;
  cfg.middle_group = "dell-room";
  cfg.web_config = DellWebConfig();
  return cfg;
}

namespace {

// A fully wired deployment, built fresh for every measurement run.
struct Testbed {
  explicit Testbed(const WebTestbedConfig& config, int client_count)
      : fabric(&sched), clstr(&sched, &fabric), rng(config.seed) {
    // Room-level topology (paper §5.1.2): clients reach the Edison room
    // over a single 1 Gbps uplink but the Dell room at 2 Gbps aggregate;
    // the Edison and Dell rooms interconnect at 1 Gbps.
    fabric.SetGroupLink("client-room", "edison-room", Gbps(1),
                        Milliseconds(0.05));
    fabric.SetGroupLink("client-room", "dell-room", Gbps(2),
                        Milliseconds(0.02));
    fabric.SetGroupLink("edison-room", "dell-room", Gbps(1),
                        Milliseconds(0.02));

    auto cache_nodes = clstr.AddNodes(config.middle_profile,
                                      config.cache_servers, "cache-server",
                                      config.middle_group);
    auto db_nodes = clstr.AddNodes(hw::DellR620Profile(), 2, "db",
                                   "dell-room");
    auto client_nodes = clstr.AddNodes(hw::DellR620Profile(), client_count,
                                       "client", "client-room");
    auto web_nodes = clstr.AddNodes(config.middle_profile,
                                    config.web_servers, "web-server",
                                    config.middle_group);

    for (auto* node : cache_nodes) {
      caches.push_back(std::make_unique<CacheServer>(
          node, &fabric, config.backend_costs));
      caches.back()->WarmUp();
    }
    for (auto* node : db_nodes) {
      dbs.push_back(std::make_unique<DatabaseServer>(
          node, &fabric, config.backend_costs, rng.Next()));
    }

    std::vector<CacheServer*> cache_ptrs;
    for (auto& c : caches) cache_ptrs.push_back(c.get());
    std::vector<DatabaseServer*> db_ptrs;
    for (auto& d : dbs) db_ptrs.push_back(d.get());

    for (auto* node : web_nodes) {
      webs.push_back(std::make_unique<WebServer>(
          node, &fabric, cache_ptrs, db_ptrs, config.web_config,
          rng.Next()));
    }

    net::TcpConfig client_tcp;  // tuned clients: port reuse, no TIME_WAIT
    for (auto* node : client_nodes) {
      client_hosts.push_back(
          std::make_unique<net::TcpHost>(&fabric, node->id(), client_tcp));
    }

    tracer = config.tracer;
    metrics = config.metrics;
    energy = config.energy;
    trace_sample_every = std::max(1, config.trace_sample_every);
    if (metrics != nullptr) PublishProbes();
    telemetry = config.telemetry;
    if (telemetry != nullptr) {
      for (std::size_t i = 0; i < webs.size(); ++i) {
        webs[i]->node().PublishTelemetry(telemetry,
                                         "web" + std::to_string(i));
      }
      obs::NodeHealthConfig health_config;
      health_config.power_cap_w = config.middle_profile.power.busy +
                                  config.middle_profile.power.constant_adapter;
      health = std::make_unique<obs::NodeHealth>(telemetry, health_config);
      for (std::size_t i = 0; i < webs.size(); ++i) {
        const std::string prefix = "web" + std::to_string(i);
        obs::NodeHealthInputs inputs;
        inputs.utilization = prefix + ".cpu_busy";
        inputs.power = prefix + ".power_w";
        inputs.queue_depth = "gate.queue_depth";
        inputs.shed = "slo.shed";
        health->AddNode(static_cast<int>(i), inputs);
      }
      if (metrics != nullptr) health->PublishMetrics(metrics, "health");
      if (tracer != nullptr) health->EmitTraceInstants(tracer);
    }
    if (energy != nullptr) {
      // Observation order (web, cache, db) fixes ledger row order for a
      // given simulation, keeping exports deterministic.
      for (auto& web : webs) {
        web->node().ObserveEnergy(energy);
        web->set_energy(energy);
      }
      for (auto& cache : caches) cache->node().ObserveEnergy(energy);
      for (auto& db : dbs) db->node().ObserveEnergy(energy);
    }
  }

  // Probe registration order is fixed (web tier, cache tier, dbs, links,
  // aggregates), so exported column order is deterministic.
  void PublishProbes() {
    for (std::size_t i = 0; i < webs.size(); ++i) {
      const std::string prefix = "web" + std::to_string(i);
      webs[i]->node().PublishMetrics(metrics, prefix);
      webs[i]->tcp_host().PublishMetrics(metrics, prefix + ".tcp");
    }
    for (std::size_t i = 0; i < caches.size(); ++i) {
      caches[i]->node().PublishMetrics(metrics,
                                       "cache" + std::to_string(i));
    }
    for (std::size_t i = 0; i < dbs.size(); ++i) {
      dbs[i]->node().PublishMetrics(metrics, "db" + std::to_string(i));
    }
    fabric.PublishMetrics(metrics, "net");
    // Aggregate delay decomposition, merged across web servers exactly as
    // CollectServerDelays merges the final report — the last exported row
    // (sampled after the run drains) reproduces Table 7 from the CSV.
    metrics->AddGauge("svc.db_delay_mean",
                      [this] { return MergedDbDelay().mean(); });
    metrics->AddCounter("svc.db_delay_count", [this] {
      return static_cast<double>(MergedDbDelay().count());
    });
    metrics->AddGauge("svc.cache_delay_mean",
                      [this] { return MergedCacheDelay().mean(); });
    metrics->AddCounter("svc.cache_delay_count", [this] {
      return static_cast<double>(MergedCacheDelay().count());
    });
    metrics->AddGauge("svc.total_delay_mean",
                      [this] { return MergedTotalDelay().mean(); });
    metrics->AddCounter("svc.total_delay_count", [this] {
      return static_cast<double>(MergedTotalDelay().count());
    });
    metrics->AddCounter("svc.calls_ok", [this] {
      std::int64_t n = 0;
      for (auto& w : webs) n += w->calls_ok();
      return static_cast<double>(n);
    });
    metrics->AddCounter("svc.errors_500", [this] {
      std::int64_t n = 0;
      for (auto& w : webs) n += w->errors_500();
      return static_cast<double>(n);
    });
    metrics->AddGauge("svc.middle_watts", [this] {
      return clstr.TotalWatts({"web-server", "cache-server"});
    });
    metrics->AddCounter("svc.middle_joules", [this] {
      return clstr.CumulativeJoules({"web-server", "cache-server"});
    });
  }

  OnlineStats MergedDbDelay() const {
    OnlineStats s;
    for (auto& w : webs) s.Merge(w->db_delay_stats());
    return s;
  }
  OnlineStats MergedCacheDelay() const {
    OnlineStats s;
    for (auto& w : webs) s.Merge(w->cache_delay_stats());
    return s;
  }
  OnlineStats MergedTotalDelay() const {
    OnlineStats s;
    for (auto& w : webs) s.Merge(w->total_delay_stats());
    return s;
  }

  // 1-in-N connection trace sampling. A sampled connection gets a root
  // trace handle — fresh trace id, its own track — that the connection
  // process threads through the whole serving path; unsampled
  // connections get a null handle and every downstream tracing call
  // no-ops. The counter is part of the testbed, not the random streams,
  // so tracing on/off never changes simulated behaviour.
  obs::TraceHandle StartTrace() {
    const std::uint64_t conn = conn_counter_++;
    if (tracer == nullptr ||
        conn % static_cast<std::uint64_t>(trace_sample_every) != 0) {
      return {};
    }
    obs::TraceHandle handle;
    handle.tracer = tracer;
    handle.sched = &sched;
    handle.track = static_cast<std::int32_t>(conn & 0x7fffffff);
    handle.ctx.trace_id = tracer->NewTraceId();
    return handle;
  }

  WebServer* NextWeb() {
    // The balancer health-checks backends: failed servers are skipped.
    for (std::size_t i = 0; i < webs.size(); ++i) {
      WebServer* web = webs[next_web_ % webs.size()].get();
      ++next_web_;
      if (!web->failed()) return web;
    }
    return webs[next_web_ % webs.size()].get();  // all failed
  }
  net::TcpHost* NextClient() {
    net::TcpHost* host =
        client_hosts[next_client_ % client_hosts.size()].get();
    ++next_client_;
    return host;
  }

  sim::Scheduler sched;
  net::Fabric fabric;
  cluster::Cluster clstr;
  Rng rng;
  std::vector<std::unique_ptr<CacheServer>> caches;
  std::vector<std::unique_ptr<DatabaseServer>> dbs;
  std::vector<std::unique_ptr<WebServer>> webs;
  std::vector<std::unique_ptr<net::TcpHost>> client_hosts;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::EnergyAttributor* energy = nullptr;
  obs::Telemetry* telemetry = nullptr;
  std::unique_ptr<obs::NodeHealth> health;
  int trace_sample_every = 64;
  std::uint64_t conn_counter_ = 0;
  std::size_t next_web_ = 0;
  std::size_t next_client_ = 0;
};

// Shared counters for one measurement run; only events inside the
// [warmup_end, measure_end) window are counted.
struct RunWindow {
  SimTime warmup_end = 0;
  SimTime measure_end = 0;
  std::int64_t ok = 0;
  std::int64_t errors = 0;
  std::int64_t attempts = 0;
  OnlineStats response;      // client-perceived per-call delay
  OnlineStats client_delay;  // open-loop: includes connect backoff
  // Closed-loop omission annotation (LevelReport contract): the same OK
  // calls measured from dispatch vs from the connection's arrival.
  OnlineStats dispatch_response;
  OnlineStats conn_intended_response;
  PercentileTracker dispatch_percentiles;
  PercentileTracker conn_intended_percentiles;

  bool InWindow(SimTime t) const {
    return t >= warmup_end && t < measure_end;
  }
};

// Windows a measurement run records into; a sample lands in the window
// containing its start time (failure runs use two half-windows). At most
// two windows ever exist, so this is a fixed two-slot set: every spawned
// connection takes its own copy by value without touching the heap.
struct Windows {
  Windows(std::initializer_list<RunWindow*> ws) {
    for (RunWindow* w : ws) slots[count++] = w;
  }
  std::array<RunWindow*, 2> slots{};
  int count = 0;
};

RunWindow* FindWindow(const Windows& windows, SimTime t) {
  for (int i = 0; i < windows.count; ++i) {
    if (windows.slots[i]->InWindow(t)) return windows.slots[i];
  }
  return nullptr;
}

SimTime WindowsEnd(const Windows& windows) {
  SimTime end = 0;
  for (int i = 0; i < windows.count; ++i) {
    end = std::max(end, windows.slots[i]->measure_end);
  }
  return end;
}

// One httperf connection: connect, then `calls` sequential HTTP calls.
sim::Process ClosedLoopConnection(Testbed& tb, Windows windows,
                                  const WorkloadMix& mix, WebServer* web,
                                  net::TcpHost* client, int calls,
                                  Rng rng) {
  const SimTime end = WindowsEnd(windows);
  const SimTime conn_start = tb.sched.now();
  // Root span of the connection's trace tree; null for unsampled
  // connections. The handle rides every downstream call — the simulated
  // context header.
  obs::CausalSpan conn_span(tb.StartTrace(), "conn",
                            obs::Category::kRequest);
  net::TcpConnection conn(client, &web->tcp_host());
  const net::ConnectResult cres =
      co_await conn.Connect(/*hold_backlog=*/true, conn_span.handle());
  if (!cres.status.ok()) {
    conn_span.Instant("connect_error", cres.retries);
    if (RunWindow* w = FindWindow(windows, conn_start)) {
      ++w->attempts;
      ++w->errors;
    }
    co_return;
  }
  // The accept loop must run (and release the backlog slot) even if the
  // server dies in between; the dead-server check follows it.
  co_await web->AcceptWork();
  if (web->failed()) {
    if (RunWindow* w = FindWindow(windows, conn_start)) {
      ++w->attempts;
      ++w->errors;
    }
    conn.Close();
    co_return;
  }
  for (int i = 0; i < calls; ++i) {
    const SimTime call_start = tb.sched.now();
    if (call_start >= end) break;
    const RequestSpec spec = mix.Sample(rng);
    obs::CausalSpan call_span(conn_span.handle(), "call",
                              obs::Category::kRequest, i);
    const CallResult result =
        co_await web->ServeCall(client->node_id(), spec, call_span.handle());
    if (RunWindow* w = FindWindow(windows, call_start)) {
      ++w->attempts;
      if (result.ok && !web->failed()) {
        ++w->ok;
        // httperf's reported response time amortises connection setup —
        // including SYN retransmission waits — over the connection's
        // first reply.
        w->response.Add(result.total +
                        (i == 0 ? cres.connect_delay : 0.0));
        // Omission annotation: dispatch→done is what httperf sees;
        // conn-arrival→done charges the call with everything the closed
        // loop serialised in front of it (connect backoff + the earlier
        // calls on this connection). Passive — no draws, no goldens.
        const SimTime done = tb.sched.now();
        w->dispatch_response.Add(done - call_start);
        w->dispatch_percentiles.Add(done - call_start);
        w->conn_intended_response.Add(done - conn_start);
        w->conn_intended_percentiles.Add(done - conn_start);
      } else {
        ++w->errors;
      }
    }
    if (web->failed()) break;  // connection reset by the dead server
  }
  conn.Close();
}

// Poisson arrival process for closed-loop connections.
sim::Process ClosedLoopArrivals(Testbed& tb, Windows windows,
                                const WorkloadMix& mix, double rate,
                                int calls, Rng rng) {
  const SimTime end = WindowsEnd(windows);
  while (tb.sched.now() < end) {
    co_await sim::Delay(tb.sched, rng.Exponential(rate));
    if (tb.sched.now() >= end) break;
    sim::Spawn(tb.sched,
               ClosedLoopConnection(tb, windows, mix, tb.NextWeb(),
                                    tb.NextClient(), calls, rng.Fork()));
  }
}

using WebGate = load::AdmissionGate<Rng>;

// One open-loop (python urllib2) request: fresh connection per request.
// `intended` is the arrival the load engine scheduled; with an unbounded
// gate it equals the dispatch time, with a bounded gate a queued request
// dispatches late and its latency is still charged from `intended`.
sim::Process OpenLoopRequest(Testbed& tb, RunWindow& window,
                             const WorkloadMix& mix, WebServer* web,
                             net::TcpHost* client,
                             LinearHistogram* histogram,
                             load::OpenLoopRecorder& recorder, WebGate& gate,
                             SimTime intended, Rng rng) {
  const SimTime start = tb.sched.now();
  obs::CausalSpan request_span(tb.StartTrace(), "request",
                               obs::Category::kRequest);
  net::TcpConnection conn(client, &web->tcp_host());
  bool ok = false;
  const net::ConnectResult cres =
      co_await conn.Connect(/*hold_backlog=*/true, request_span.handle());
  if (!cres.status.ok()) {
    request_span.Instant("connect_error", cres.retries);
    if (window.InWindow(start)) {
      ++window.attempts;
      ++window.errors;
    }
  } else {
    co_await web->AcceptWork();
    const RequestSpec spec = mix.Sample(rng);
    const CallResult result = co_await web->ServeCall(
        client->node_id(), spec, request_span.handle());
    conn.Close();
    ok = result.ok;
    const Duration client_seen = tb.sched.now() - start;
    const Duration honest_seen = tb.sched.now() - intended;
    if (window.InWindow(start)) {
      ++window.attempts;
      if (result.ok) {
        ++window.ok;
        window.response.Add(result.total);
        window.client_delay.Add(client_seen);
        // Figures 10/11 bucket the coordinated-omission-free delay; the
        // two are identical until the gate queues.
        if (histogram != nullptr) histogram->Add(honest_seen);
      } else {
        ++window.errors;
      }
    }
  }
  recorder.OnComplete(intended, start, tb.sched.now(), ok);
  if (auto next = gate.OnComplete()) {
    sim::Spawn(tb.sched,
               OpenLoopRequest(tb, window, mix, tb.NextWeb(),
                               tb.NextClient(), histogram, recorder, gate,
                               next->intended, std::move(next->payload)));
  }
}

sim::Process OpenLoopArrivals(Testbed& tb, RunWindow& window,
                              const WorkloadMix& mix,
                              const load::ArrivalConfig& shape,
                              LinearHistogram* histogram,
                              load::OpenLoopRecorder& recorder, WebGate& gate,
                              Rng rng) {
  load::ArrivalProcess arrivals(shape);
  while (tb.sched.now() < window.measure_end) {
    co_await sim::Delay(tb.sched, arrivals.NextGap(rng));
    if (tb.sched.now() >= window.measure_end) break;
    const SimTime intended = tb.sched.now();
    Rng child = rng.Fork();
    switch (gate.Admit()) {
      case load::Admission::kDispatch:
        sim::Spawn(tb.sched,
                   OpenLoopRequest(tb, window, mix, tb.NextWeb(),
                                   tb.NextClient(), histogram, recorder,
                                   gate, intended, std::move(child)));
        break;
      case load::Admission::kQueue:
        gate.Enqueue(intended, std::move(child));
        break;
      case load::Admission::kShed:
        recorder.OnShed(intended);
        break;
    }
  }
}

// Merges the per-server delay decompositions into the report.
template <typename Report>
void CollectServerDelays(Testbed& tb, Report* report) {
  for (auto& web : tb.webs) {
    report->db_delay.Merge(web->db_delay_stats());
    report->cache_delay.Merge(web->cache_delay_stats());
    report->total_delay.Merge(web->total_delay_stats());
  }
}

}  // namespace

int WebExperiment::TunedCallsPerConnection(double concurrency) {
  const double target = 7200.0;  // full-scale cluster capacity
  const int calls = static_cast<int>(std::lround(target / concurrency));
  return std::clamp(calls, 1, 14);
}

LevelReport WebExperiment::MeasureClosedLoop(const WorkloadMix& mix,
                                             double concurrency,
                                             int calls_per_connection,
                                             Duration warmup,
                                             Duration measure) {
  Testbed tb(config_, config_.client_machines);
  RunWindow window;
  window.warmup_end = warmup;
  window.measure_end = warmup + measure;

  cluster::MetricsSampler web_sampler(&tb.clstr, {"web-server"}, 1.0);
  cluster::MetricsSampler cache_sampler(&tb.clstr, {"cache-server"}, 1.0);

  Joules epoch_joules = 0;
  tb.sched.ScheduleAt(window.warmup_end, [&] {
    for (auto& web : tb.webs) web->ResetStats();
    epoch_joules =
        tb.clstr.CumulativeJoules({"web-server", "cache-server"});
    web_sampler.Start();
    cache_sampler.Start();
    // Window marks at the very instant the stats reset, so the trace
    // analyzer can reproduce the report's windowing exactly.
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_start",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->BeginWindow();
  });
  Joules window_joules = 0;
  tb.sched.ScheduleAt(window.measure_end, [&] {
    window_joules =
        tb.clstr.CumulativeJoules({"web-server", "cache-server"}) -
        epoch_joules;
    web_sampler.Stop();
    cache_sampler.Stop();
    if (tb.metrics != nullptr) tb.metrics->Stop();
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_end",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->EndWindow();
  });

  if (tb.metrics != nullptr) tb.metrics->Start(&tb.sched, Seconds(1));
  sim::Spawn(tb.sched,
             ClosedLoopArrivals(tb, {&window}, mix, concurrency,
                                calls_per_connection, tb.rng.Fork()));
  tb.sched.Run();
  // Final sample after the queue drains: cumulative counters and the
  // merged delay stats now match the report exactly. Then detach: the
  // registry outlives this function-local testbed, so its probes must
  // not.
  if (tb.metrics != nullptr) {
    tb.metrics->SampleNow();
    tb.metrics->Detach();
  }

  LevelReport report;
  report.target_concurrency = concurrency;
  report.calls_per_connection = calls_per_connection;
  report.achieved_rps = static_cast<double>(window.ok) / measure;
  report.error_rate =
      window.attempts == 0
          ? 0.0
          : static_cast<double>(window.errors) /
                static_cast<double>(window.attempts);
  report.mean_response = window.response.mean();
  report.middle_tier_power = window_joules / measure;
  report.executed_events = tb.sched.executed_events();

  auto mean_of = [](const std::vector<cluster::MetricsSample>& samples,
                    auto member) {
    if (samples.empty()) return 0.0;
    double sum = 0;
    for (const auto& s : samples) sum += s.*member;
    return sum / static_cast<double>(samples.size());
  };
  report.web_cpu_pct =
      mean_of(web_sampler.samples(), &cluster::MetricsSample::cpu_pct);
  report.web_memory_pct =
      mean_of(web_sampler.samples(), &cluster::MetricsSample::memory_pct);
  report.cache_cpu_pct =
      mean_of(cache_sampler.samples(), &cluster::MetricsSample::cpu_pct);
  report.cache_memory_pct =
      mean_of(cache_sampler.samples(), &cluster::MetricsSample::memory_pct);

  report.dispatch_response = window.dispatch_response;
  report.conn_intended_response = window.conn_intended_response;
  report.p99_dispatch = window.dispatch_percentiles.empty()
                            ? 0.0
                            : window.dispatch_percentiles.Percentile(0.99);
  report.p99_conn_intended =
      window.conn_intended_percentiles.empty()
          ? 0.0
          : window.conn_intended_percentiles.Percentile(0.99);

  CollectServerDelays(tb, &report);
  return report;
}

WebExperiment::FailureReport WebExperiment::MeasureWithFailure(
    const WorkloadMix& mix, double concurrency, int calls_per_connection,
    int failed_servers, Duration warmup, Duration half_window) {
  Testbed tb(config_, config_.client_machines);
  RunWindow before;
  before.warmup_end = warmup;
  before.measure_end = warmup + half_window;
  RunWindow after;
  after.warmup_end = before.measure_end;
  after.measure_end = before.measure_end + half_window;

  const int to_fail =
      std::min<int>(failed_servers,
                    static_cast<int>(tb.webs.size()) - 1);
  tb.sched.ScheduleAt(before.warmup_end, [&tb] {
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_start",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->BeginWindow();
  });
  tb.sched.ScheduleAt(before.measure_end, [&tb, to_fail] {
    for (int i = 0; i < to_fail; ++i) tb.webs[i]->set_failed(true);
  });
  tb.sched.ScheduleAt(after.measure_end, [&tb] {
    if (tb.metrics != nullptr) tb.metrics->Stop();
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_end",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->EndWindow();
  });

  if (tb.metrics != nullptr) tb.metrics->Start(&tb.sched, Seconds(1));
  sim::Spawn(tb.sched,
             ClosedLoopArrivals(tb, {&before, &after}, mix, concurrency,
                                calls_per_connection, tb.rng.Fork()));
  tb.sched.Run();
  if (tb.metrics != nullptr) {
    tb.metrics->SampleNow();
    tb.metrics->Detach();
  }

  auto fill = [&](const RunWindow& window) {
    LevelReport report;
    report.target_concurrency = concurrency;
    report.calls_per_connection = calls_per_connection;
    report.achieved_rps =
        static_cast<double>(window.ok) / half_window;
    report.error_rate =
        window.attempts == 0
            ? 0.0
            : static_cast<double>(window.errors) /
                  static_cast<double>(window.attempts);
    report.mean_response = window.response.mean();
    report.dispatch_response = window.dispatch_response;
    report.conn_intended_response = window.conn_intended_response;
    report.p99_dispatch = window.dispatch_percentiles.empty()
                              ? 0.0
                              : window.dispatch_percentiles.Percentile(0.99);
    report.p99_conn_intended =
        window.conn_intended_percentiles.empty()
            ? 0.0
            : window.conn_intended_percentiles.Percentile(0.99);
    return report;
  };
  FailureReport report;
  report.before = fill(before);
  report.after = fill(after);
  report.failed_servers = to_fail;
  report.total_servers = static_cast<int>(tb.webs.size());
  return report;
}

OpenLoopReport WebExperiment::MeasureOpenLoop(const WorkloadMix& mix,
                                              double target_rps,
                                              Duration measure,
                                              double histogram_max_s,
                                              std::size_t histogram_buckets) {
  load::OpenLoopConfig load_config;  // Poisson, unbounded gate, no SLO
  load_config.arrival.rate = target_rps;
  return MeasureOpenLoop(mix, load_config, measure, histogram_max_s,
                         histogram_buckets);
}

OpenLoopReport WebExperiment::MeasureOpenLoop(
    const WorkloadMix& mix, const load::OpenLoopConfig& load_config,
    Duration measure, double histogram_max_s,
    std::size_t histogram_buckets) {
  // The paper uses 30 logging client machines for this test.
  Testbed tb(config_, 30);
  RunWindow window;
  window.warmup_end = Seconds(2);
  window.measure_end = window.warmup_end + measure;

  const double target_rps = load_config.arrival.rate;
  OpenLoopReport report{.target_rps = target_rps,
                        .achieved_rps = 0,
                        .error_rate = 0,
                        .delay_histogram = LinearHistogram(
                            0.0, histogram_max_s, histogram_buckets),
                        .db_delay = {},
                        .cache_delay = {},
                        .total_delay = {},
                        .client_delay = {}};

  Joules epoch_joules = 0;
  tb.sched.ScheduleAt(window.warmup_end, [&] {
    for (auto& web : tb.webs) web->ResetStats();
    epoch_joules =
        tb.clstr.CumulativeJoules({"web-server", "cache-server"});
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_start",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->BeginWindow();
  });
  Joules window_joules = 0;
  tb.sched.ScheduleAt(window.measure_end, [&] {
    window_joules =
        tb.clstr.CumulativeJoules({"web-server", "cache-server"}) -
        epoch_joules;
    if (tb.metrics != nullptr) tb.metrics->Stop();
    if (tb.telemetry != nullptr) tb.telemetry->Stop();
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_end",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->EndWindow();
  });

  load::OpenLoopRecorder recorder(window.warmup_end, window.measure_end,
                                  load_config.slo);
  WebGate gate(load_config);
  // Per-measure telemetry wiring mirrors kv::WireTelemetry: recorder SLO
  // stream, gate queue-depth probe, SLO-gated default rules. Thresholds
  // are pure functions of the config, so alert instants stay
  // deterministic.
  if (tb.telemetry != nullptr) {
    obs::Telemetry* telemetry = tb.telemetry;
    recorder.set_stream(obs::SloStreamInto(telemetry, "slo"));
    telemetry->AddProbe("gate.queue_depth", [&gate] {
      return static_cast<double>(gate.queue_depth());
    });
    if (load_config.slo > 0.0) {
      obs::BurnRateRule burn;
      burn.name = "slo_burn";
      burn.good_metric = "slo.good";
      burn.total_metric = "slo.offered";
      burn.slo_target = 0.9;      // 10% error budget
      burn.burn_threshold = 1.0;  // burning faster than budget
      burn.short_window = Seconds(2);
      burn.long_window = Seconds(8);
      telemetry->AddBurnRateRule(burn);
      obs::ThresholdRule p99;
      p99.name = "latency_p99_high";
      p99.metric = "slo.latency";
      p99.agg = obs::Agg::kP99;
      p99.threshold = load_config.slo;
      p99.window = Seconds(2);
      telemetry->AddThresholdRule(p99);
      obs::ThresholdRule sheds;
      sheds.name = "shed_spike";
      sheds.metric = "slo.shed";
      sheds.agg = obs::Agg::kRate;
      sheds.threshold = 1.0;  // sheds/s
      sheds.window = Seconds(2);
      telemetry->AddThresholdRule(sheds);
    }
    telemetry->Start(&tb.sched, tb.tracer);
  }
  if (tb.metrics != nullptr) tb.metrics->Start(&tb.sched, Seconds(1));
  sim::Spawn(tb.sched,
             OpenLoopArrivals(tb, window, mix, load_config.arrival,
                              &report.delay_histogram, recorder, gate,
                              tb.rng.Fork()));
  tb.sched.Run();
  if (tb.metrics != nullptr) {
    tb.metrics->SampleNow();
    tb.metrics->Detach();
  }

  report.achieved_rps = static_cast<double>(window.ok) / measure;
  report.error_rate =
      window.attempts == 0
          ? 0.0
          : static_cast<double>(window.errors) /
                static_cast<double>(window.attempts);
  report.client_delay = window.client_delay;
  report.executed_events = tb.sched.executed_events();
  report.offered_rps = static_cast<double>(recorder.offered()) / measure;
  report.shed = recorder.shed();
  report.intended_delay = recorder.intended_latency();
  report.p99_intended =
      recorder.intended_percentiles().empty()
          ? 0.0
          : recorder.intended_percentiles().Percentile(0.99);
  report.p99_client = recorder.service_percentiles().empty()
                          ? 0.0
                          : recorder.service_percentiles().Percentile(0.99);
  report.slo_good_fraction = recorder.SloGoodFraction();
  report.slo_goodput_per_joule = recorder.SloGoodputPerJoule(window_joules);
  report.middle_tier_power = window_joules / measure;
  report.window_joules = window_joules;
  CollectServerDelays(tb, &report);
  return report;
}

}  // namespace wimpy::web
