// Cache warm-up and working-set model (paper §5.1.1).
//
// The paper controls the memcached hit ratio by adjusting warm-up time
// and measures it from memcached statistics. This module closes the loop
// analytically: given the table catalog, a Zipf-like row popularity skew
// and the cache tier's capacity, it predicts the steady-state hit ratio —
// and conversely the warm-up time needed to reach it. The experiment
// harness still takes the hit ratio as a parameter (as the paper reports
// it); this model justifies those parameters from hardware capacity.
#ifndef WIMPY_WEB_WARMUP_H_
#define WIMPY_WEB_WARMUP_H_

#include "common/units.h"
#include "web/catalog.h"

namespace wimpy::web {

// Fraction of a Zipf(s) popularity mass covered by caching the `cached`
// most popular of `total` items. s = 1 gives the classic ln(k)/ln(N);
// heavier skews (s > 1) saturate faster.
double ZipfCoverage(double cached_items, double total_items, double s);

struct CacheTierSpec {
  int cache_servers = 11;
  Bytes server_memory = GB(1);
  // Fraction of RAM usable for values (slab + index overheads excluded).
  double usable_fraction = 0.5;
  // Popularity skew across rows; web access patterns run s ~ 0.9-1.2.
  double zipf_s = 1.1;
};

// Predicted steady-state hit ratio for a fully warmed cache tier serving
// the catalog's request mix (per-table LRU shares proportional to request
// weight).
double EstimateHitRatio(const TableCatalog& catalog,
                        const CacheTierSpec& tier);

// Time to populate the tier at `fill_rate` (bytes/s of misses being
// inserted) — the knob the paper turns to hit 93/77/60%.
Duration WarmupTimeNeeded(const CacheTierSpec& tier,
                          BytesPerSecond fill_rate);

}  // namespace wimpy::web

#endif  // WIMPY_WEB_WARMUP_H_
