// Web-server model: Lighttpd + FastCGI PHP on one node (paper §5.1).
//
// Resources and mechanisms:
//   * a serial accept loop whose per-connection CPU work bounds connection
//     setup rate;
//   * a bounded FastCGI worker pool — when the pending queue exceeds its
//     limit the server answers 500 (the paper's overload signature);
//   * per-request PHP CPU work, cache/database fetch, reply assembly, and
//     the reply transfer over the shared fabric;
//   * a `service_efficiency` derating of the node's Dhrystone throughput
//     for this branchy interpreted workload. §4.1 shows the Xeon's
//     deep-pipeline advantage is Dhrystone-specific; on scale-out serving
//     the per-request instruction budget is far closer between the
//     platforms (the FAWN observation), which is what lets 24 Edisons
//     match 2 Dells at the measured 86%-vs-45% CPU utilisations.
#ifndef WIMPY_WEB_WEB_SERVER_H_
#define WIMPY_WEB_WEB_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "hw/server_node.h"
#include "net/tcp.h"
#include "obs/context.h"
#include "shard/ring.h"
#include "sim/semaphore.h"
#include "sim/task.h"
#include "web/backend.h"
#include "web/workload.h"

namespace wimpy::obs {
class EnergyAttributor;
}  // namespace wimpy::obs

namespace wimpy::web {

struct WebServerConfig {
  // FastCGI worker processes.
  int php_workers = 8;
  // Pending requests beyond workers*queue_factor are answered 500.
  int queue_factor = 16;
  // PHP request execution, million instructions (before efficiency).
  // Calibrated so the full 24-Edison tier peaks at ~7.3k req/s — above
  // the tuned offered load at 1024 conn/s, below it at 2048, where the
  // paper's server errors begin.
  double request_base_minstr = 3.45;
  // Reply assembly cost per KB of reply.
  double assembly_minstr_per_kb = 0.05;
  // Serial accept-loop work per new connection.
  double accept_minstr = 0.40;
  // Fraction of the node's Dhrystone rate achieved on this workload.
  double service_efficiency = 1.0;
  net::TcpConfig tcp;
};

// Outcome of one HTTP call, with the timing decomposition of Table 7.
struct CallResult {
  bool ok = false;          // false -> HTTP 500
  Duration total = 0;       // request arrival to reply sent
  Duration cache_delay = 0; // time fetching from memcached
  Duration db_delay = 0;    // time fetching from MySQL
  Bytes reply_bytes = 0;
};

class WebServer {
 public:
  WebServer(hw::ServerNode* node, net::Fabric* fabric,
            std::vector<CacheServer*> caches,
            std::vector<DatabaseServer*> databases,
            const WebServerConfig& config, std::uint64_t seed);

  WebServer(const WebServer&) = delete;
  WebServer& operator=(const WebServer&) = delete;

  // TCP endpoint clients connect to.
  net::TcpHost& tcp_host() { return tcp_host_; }
  hw::ServerNode& node() { return *node_; }

  // Fault injection: a failed server refuses new work; the balancer stops
  // routing to it (paper §1 advantage 2 — losing 1 of 24 micro servers
  // redistributes 4% of load, losing 1 of 2 brawny servers redistributes
  // 100%).
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  // Serial accept-loop work; the load generator awaits this right after a
  // successful handshake.
  sim::Task<void> AcceptWork();

  // Serves one HTTP call for a client at `client_node_id`. With a
  // non-null `parent` handle the call is traced causally: "req_xfer" /
  // "reply_xfer" net spans, a "serve" span (arg = this node's id)
  // covering exactly the Table 7 `total` delay, nested "cache"/"db"
  // fetch spans covering exactly the recorded fetch delays, and an
  // "http_500" instant on the overload path. When an energy attributor
  // is installed (set_energy), the serve/cache/db spans are also
  // resident on their node for joule attribution.
  sim::Task<CallResult> ServeCall(int client_node_id, const RequestSpec& spec,
                                  const obs::TraceHandle& parent = {});

  // Attaches span-energy attribution (may be null; must already observe
  // the relevant nodes — see hw::ServerNode::ObserveEnergy).
  void set_energy(obs::EnergyAttributor* energy) { energy_ = energy; }

  // --- statistics (reset per measurement window via Snapshot) -------------
  std::int64_t calls_ok() const { return calls_ok_; }
  std::int64_t errors_500() const { return errors_500_; }
  const OnlineStats& total_delay_stats() const { return total_delay_; }
  const OnlineStats& cache_delay_stats() const { return cache_delay_; }
  const OnlineStats& db_delay_stats() const { return db_delay_; }
  void ResetStats();

 private:
  double Derated(double minstr) const {
    return minstr / config_.service_efficiency;
  }

  hw::ServerNode* node_;
  net::Fabric* fabric_;
  std::vector<CacheServer*> caches_;
  // Ketama map over cache indices: hot keys pin to a cache the way a
  // memcached client's consistent hashing does, instead of the old
  // uniform per-request draw (same shard map the kv/shard tiers use).
  shard::Ring cache_ring_;
  std::vector<DatabaseServer*> databases_;
  WebServerConfig config_;
  obs::EnergyAttributor* energy_ = nullptr;
  bool failed_ = false;
  net::TcpHost tcp_host_;
  sim::Semaphore php_workers_;
  sim::Semaphore accept_serial_;
  Rng rng_;

  std::int64_t calls_ok_ = 0;
  std::int64_t errors_500_ = 0;
  OnlineStats total_delay_;
  OnlineStats cache_delay_;
  OnlineStats db_delay_;
};

}  // namespace wimpy::web

#endif  // WIMPY_WEB_WEB_SERVER_H_
