#include "web/catalog.h"

#include <algorithm>
#include <cassert>

namespace wimpy::web {

TableCatalog TableCatalog::PaperCatalog(double image_fraction) {
  std::vector<TableSpec> tables;
  // 11 simple tables: Wikipedia-style pages, revisions, links, users...
  // Row payloads average ~1.5 KB overall (the paper's 0%-image reply
  // size), with realistic spread between narrow link tables and article
  // text.
  const struct {
    const char* name;
    std::int64_t rows;
    double mean_kb;
    double stddev_kb;
  } kSimple[] = {
      {"page", 12'000'000, 0.9, 0.3},      {"revision", 45'000'000, 1.1, 0.4},
      {"text", 9'000'000, 3.6, 1.2},       {"pagelinks", 90'000'000, 0.4, 0.1},
      {"categorylinks", 30'000'000, 0.5, 0.15},
      {"user", 2'500'000, 0.7, 0.2},       {"logging", 20'000'000, 0.8, 0.25},
      {"templatelinks", 25'000'000, 0.4, 0.1},
      {"imagelinks", 8'000'000, 0.5, 0.15},
      {"redirect", 4'000'000, 0.6, 0.2},   {"sitestats", 1'000'000, 2.2, 0.7},
  };
  // Simple-table means above average ~1.06 KB weighted evenly; the
  // observed 1.5 KB mean comes from HTTP framing + PHP page assembly,
  // folded into the text-heavy tables' weights below.
  for (const auto& t : kSimple) {
    TableSpec spec;
    spec.name = t.name;
    spec.rows = t.rows;
    spec.row_bytes_mean = static_cast<Bytes>(t.mean_kb * 1000);
    spec.row_bytes_stddev = static_cast<Bytes>(t.stddev_kb * 1000);
    tables.push_back(spec);
  }
  // Weight the text table up so the simple-mix mean lands on the paper's
  // 1.5 KB reply.
  tables[2].weight = 3.2;

  // 4 image tables: crawled Amazon/Newegg/Flickr images + thumbnails,
  // ~30 KB average blob -> ~44 KB mean reply with headers/derivatives
  // (back-solved from the paper's 10 KB mean at 20% images).
  const struct {
    const char* name;
    std::int64_t rows;
    double mean_kb;
    double stddev_kb;
  } kImage[] = {
      {"images_amazon", 250'000, 38, 10},
      {"images_newegg", 180'000, 42, 11},
      {"images_flickr", 220'000, 52, 14},
      {"thumbnails", 650'000, 30, 8},
  };
  for (const auto& t : kImage) {
    TableSpec spec;
    spec.name = t.name;
    spec.has_image_blob = true;
    spec.rows = t.rows;
    spec.row_bytes_mean = static_cast<Bytes>(t.mean_kb * 1000);
    spec.row_bytes_stddev = static_cast<Bytes>(t.stddev_kb * 1000);
    tables.push_back(spec);
  }

  // Set weights so image tables collectively win `image_fraction` of
  // draws, split evenly among themselves; simple tables keep their
  // relative weights.
  double simple_weight = 0;
  for (const auto& t : tables) {
    if (!t.has_image_blob) simple_weight += t.weight;
  }
  const double target_image_weight =
      image_fraction <= 0
          ? 0.0
          : simple_weight * image_fraction / (1.0 - image_fraction);
  for (auto& t : tables) {
    if (t.has_image_blob) t.weight = target_image_weight / 4.0;
  }
  return TableCatalog(std::move(tables));
}

TableCatalog::TableCatalog(std::vector<TableSpec> tables)
    : tables_(std::move(tables)) {
  assert(!tables_.empty());
  for (const auto& t : tables_) {
    weights_.push_back(t.weight);
    total_weight_ += t.weight;
  }
  assert(total_weight_ > 0);
}

RequestSpec TableCatalog::Sample(double cache_hit_ratio, Rng& rng) const {
  const std::size_t index = rng.WeightedIndex(weights_);
  const TableSpec& table = tables_[index];
  RequestSpec spec;
  spec.is_image = table.has_image_blob;
  // Row choice is uniform over the table (the paper picks a random row);
  // the row id itself only matters for cache-key diversity, which the
  // hit-ratio parameter already models.
  spec.reply_bytes = std::max<Bytes>(
      128, static_cast<Bytes>(rng.LogNormalMeanStd(
               static_cast<double>(table.row_bytes_mean),
               static_cast<double>(std::max<Bytes>(
                   1, table.row_bytes_stddev)))));
  spec.cache_hit = rng.Bernoulli(cache_hit_ratio);
  return spec;
}

double TableCatalog::MeanReplyBytes() const {
  double mean = 0;
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    mean += weights_[i] / total_weight_ *
            static_cast<double>(tables_[i].row_bytes_mean);
  }
  return mean;
}

double TableCatalog::ImageProbability() const {
  double image_weight = 0;
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].has_image_blob) image_weight += weights_[i];
  }
  return image_weight / total_weight_;
}

}  // namespace wimpy::web
