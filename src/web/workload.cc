#include "web/workload.h"

#include <algorithm>

namespace wimpy::web {

RequestSpec WorkloadMix::Sample(Rng& rng) const {
  RequestSpec spec;
  spec.is_image = rng.Bernoulli(image_fraction);
  const double mean = static_cast<double>(
      spec.is_image ? image_reply_mean : plain_reply_mean);
  const double stddev = static_cast<double>(
      spec.is_image ? image_reply_stddev : plain_reply_stddev);
  // DrawnBytes truncates in the double domain: a non-positive or
  // non-finite draw lands on the floor instead of hitting the undefined
  // double→int64 cast the old max-after-cast pattern allowed.
  spec.reply_bytes = DrawnBytes(rng.LogNormalMeanStd(mean, stddev), 128);
  spec.cache_hit = rng.Bernoulli(cache_hit_ratio);
  return spec;
}

WorkloadMix LightMix() { return WorkloadMix{}; }

WorkloadMix MixWithCacheRatio(double ratio) {
  WorkloadMix mix;
  mix.cache_hit_ratio = ratio;
  return mix;
}

WorkloadMix MixWithImagePercent(double image_fraction) {
  WorkloadMix mix;
  mix.image_fraction = image_fraction;
  return mix;
}

WorkloadMix HeavyMix() {
  WorkloadMix mix;
  mix.image_fraction = 0.20;
  return mix;
}

}  // namespace wimpy::web
