// Cache (memcached) and database (MySQL) tier models.
//
// Both are request processors living on a ServerNode: a lookup costs CPU on
// the owning node, moves the value through memory or storage, and ships the
// reply back over the fabric. Contention (CPU sharing, NIC sharing, disk
// queueing) emerges from the node's fair-share resources, which is what
// drives the cache-delay blow-up the paper records in Table 7.
#ifndef WIMPY_WEB_BACKEND_H_
#define WIMPY_WEB_BACKEND_H_

#include <cstdint>

#include "hw/server_node.h"
#include "net/fabric.h"
#include "sim/task.h"
#include "web/workload.h"

namespace wimpy::web {

// Tunable service costs. Defaults are calibrated in web/service.cc; they
// are exposed so ablation benches can perturb them.
struct BackendCosts {
  // memcached GET handling, million instructions.
  double cache_lookup_minstr = 0.30;
  // MySQL query execution (parse/plan/row fetch), million instructions.
  double db_query_minstr = 3.0;
  // Fraction of DB queries whose row is not in the buffer pool and pays a
  // random storage read.
  double db_miss_storage_fraction = 0.15;
  // Steady-state memcached memory footprint as a fraction of node RAM
  // (paper: 54% on Edison cache nodes, 40% on Dell).
  double cache_memory_fraction = 0.5;
};

// One memcached instance.
class CacheServer {
 public:
  CacheServer(hw::ServerNode* node, net::Fabric* fabric,
              const BackendCosts& costs);

  // Serves a GET issued by `requester_node`: request hop, CPU, value copy
  // through the memory bus, reply hop carrying `reply_bytes`.
  sim::Task<void> Get(int requester_node, Bytes reply_bytes);

  // Reserves the steady-state cache footprint (call once at warm-up).
  void WarmUp();

  hw::ServerNode& node() { return *node_; }
  std::int64_t hits_served() const { return hits_served_; }

 private:
  hw::ServerNode* node_;
  net::Fabric* fabric_;
  BackendCosts costs_;
  bool warmed_ = false;
  std::int64_t hits_served_ = 0;
};

// One MySQL instance (in the paper always a Dell R620; both clusters share
// the same two database servers).
class DatabaseServer {
 public:
  DatabaseServer(hw::ServerNode* node, net::Fabric* fabric,
                 const BackendCosts& costs, std::uint64_t seed);

  // Serves a query from `requester_node` returning `reply_bytes`.
  sim::Task<void> Query(int requester_node, Bytes reply_bytes);

  hw::ServerNode& node() { return *node_; }
  std::int64_t queries_served() const { return queries_served_; }

 private:
  hw::ServerNode* node_;
  net::Fabric* fabric_;
  BackendCosts costs_;
  Rng rng_;
  std::int64_t queries_served_ = 0;
};

}  // namespace wimpy::web

#endif  // WIMPY_WEB_BACKEND_H_
