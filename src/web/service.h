// Full web-service testbed and experiment drivers (paper §5.1).
//
// A testbed instantiates the paper's deployment: a middle tier of web and
// cache servers (Edison or Dell), the two shared Dell MySQL servers, client
// machines behind HAProxy, and the room-level network topology with its
// 1 Gbps client<->Edison aggregate uplink and 2 Gbps client<->Dell path.
//
// Two measurement modes mirror the paper's tooling:
//   * closed-loop httperf — `connections/sec` arrivals, each performing a
//     tuned number of calls (Figures 4-9);
//   * open-loop python clients — one fresh connection per request at a
//     fixed aggregate rate, logging full client-perceived delay including
//     SYN backoff (Figures 10/11, Table 7).
#ifndef WIMPY_WEB_SERVICE_H_
#define WIMPY_WEB_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/units.h"
#include "hw/profile.h"
#include "load/openloop.h"
#include "web/backend.h"
#include "web/web_server.h"
#include "web/workload.h"

namespace wimpy::obs {
class EnergyAttributor;
class MetricsRegistry;
class Telemetry;
class Tracer;
}  // namespace wimpy::obs

namespace wimpy::web {

struct WebTestbedConfig {
  hw::HardwareProfile middle_profile;  // web+cache tier hardware
  int web_servers = 24;
  int cache_servers = 11;
  std::string middle_group = "edison-room";
  WebServerConfig web_config;
  BackendCosts backend_costs;
  int client_machines = 8;
  std::uint64_t seed = 20160901;
  // Optional observability sinks (docs/observability.md); borrowed, may
  // be null. When `tracer` is set, one connection in `trace_sample_every`
  // emits request spans (deterministic round-robin counter, so sampling
  // never perturbs the simulation's random streams). When `metrics` is
  // set, the testbed publishes per-node utilisation/power, per-host TCP,
  // link, and aggregate delay-decomposition probes and samples them at
  // 1 s of simulated time during the measurement run.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  int trace_sample_every = 64;
  // Optional span-energy attribution (obs/energy.h): when set, the
  // testbed subscribes it to every web/cache/db node's power meter and
  // marks the measurement window, so sampled request trees carry
  // joules-per-span and the ledger's window subtotal mirrors the
  // report's energy accounting. Borrowed; may be null.
  obs::EnergyAttributor* energy = nullptr;
  // Online telemetry plane (obs/telemetry.h; null = zero overhead). A
  // MeasureOpenLoop run wires per-web-node `web<i>.cpu_busy|power_w`
  // probes, the recorder's SLO stream into `slo.*`, a `gate.queue_depth`
  // probe, default SLO alert rules (installed when the load config sets
  // an SLO bound), and an obs::NodeHealth scorer over the web tier
  // (`health.*` metrics columns + kHealth trace instants). One Telemetry
  // per measure call; borrowed, must outlive it.
  obs::Telemetry* telemetry = nullptr;
};

// Calibrated per-platform web-server configs (see web_server.h for the
// service_efficiency rationale).
WebServerConfig EdisonWebConfig();
WebServerConfig DellWebConfig();

// The paper's middle-tier scale ladder (Table 6).
WebTestbedConfig EdisonWebTestbed(int web_servers, int cache_servers);
WebTestbedConfig DellWebTestbed(int web_servers, int cache_servers);

// Result of one closed-loop concurrency level.
struct LevelReport {
  double target_concurrency = 0;   // new connections/sec
  int calls_per_connection = 0;
  double achieved_rps = 0;         // OK replies per second
  double error_rate = 0;           // (500s + failed connects) / attempts
  Duration mean_response = 0;      // client-perceived per call
  Watts middle_tier_power = 0;     // web+cache aggregate mean over window
  double web_cpu_pct = 0;          // mean during window
  double cache_cpu_pct = 0;
  double web_memory_pct = 0;
  double cache_memory_pct = 0;
  // Table 7 decomposition, aggregated across all web servers.
  OnlineStats db_delay;
  OnlineStats cache_delay;
  OnlineStats total_delay;
  // Engine events the whole replication executed (scheduler counter at
  // drain); bench_scale_macro divides by wall-clock for events/s.
  std::uint64_t executed_events = 0;
  // Closed-loop omission annotation (docs/openloop.md): the same OK calls
  // measured from the call's service start (dispatch on an already-open
  // connection) vs from the connection's intended start (its Poisson
  // arrival). The gap — invisible in `response` — is how much latency the
  // closed loop hid inside earlier calls on the same connection. Passive
  // bookkeeping: recording them draws nothing and changes no goldens;
  // benches only print them behind --omission.
  OnlineStats dispatch_response;
  OnlineStats conn_intended_response;
  Duration p99_dispatch = 0;
  Duration p99_conn_intended = 0;
};

// Result of an open-loop delay-distribution run.
struct OpenLoopReport {
  double target_rps = 0;
  double achieved_rps = 0;
  double error_rate = 0;
  LinearHistogram delay_histogram;
  OnlineStats db_delay;
  OnlineStats cache_delay;
  OnlineStats total_delay;     // server-side, excludes reconnect delay
  OnlineStats client_delay;    // includes SYN backoff
  std::uint64_t executed_events = 0;
  // Open-loop honesty fields (docs/openloop.md). `offered_rps` counts
  // every intended arrival in the window including sheds;
  // `intended_delay` measures completion minus intended arrival (queue
  // wait at the client gate included), which equals `client_delay` when
  // the gate is unbounded.
  double offered_rps = 0;
  std::int64_t shed = 0;
  OnlineStats intended_delay;
  Duration p99_intended = 0;
  Duration p99_client = 0;
  double slo_good_fraction = 0;      // under-SLO completions / offered
  double slo_goodput_per_joule = 0;  // under-SLO completions / window ∫P dt
  Watts middle_tier_power = 0;       // web+cache aggregate mean over window
  Joules window_joules = 0;
};

class WebExperiment {
 public:
  explicit WebExperiment(WebTestbedConfig config)
      : config_(std::move(config)) {}

  // Runs one httperf concurrency level on a fresh testbed.
  LevelReport MeasureClosedLoop(const WorkloadMix& mix, double concurrency,
                                int calls_per_connection,
                                Duration warmup = Seconds(5),
                                Duration measure = Seconds(30));

  // Runs the python-client open-loop test on a fresh testbed. The
  // two-argument form keeps the legacy shape (Poisson, unbounded gate, no
  // SLO) and is draw-for-draw identical to the pre-load-engine generator.
  OpenLoopReport MeasureOpenLoop(const WorkloadMix& mix, double target_rps,
                                 Duration measure = Seconds(30),
                                 double histogram_max_s = 8.0,
                                 std::size_t histogram_buckets = 32);
  // Full open-loop engine: arrival model/burstiness from
  // `load_config.arrival` (its rate field is the offered rps), client-side
  // admission gate, and SLO-conditioned reporting (docs/openloop.md).
  OpenLoopReport MeasureOpenLoop(const WorkloadMix& mix,
                                 const load::OpenLoopConfig& load_config,
                                 Duration measure = Seconds(30),
                                 double histogram_max_s = 8.0,
                                 std::size_t histogram_buckets = 32);

  // Fault-injection run: `failed_servers` web servers crash at the middle
  // of the measurement window; throughput/error/delay are reported for
  // the halves before and after the failure. Validates the paper's
  // load-redistribution argument (§1, advantage 2).
  struct FailureReport {
    LevelReport before;
    LevelReport after;
    int failed_servers = 0;
    int total_servers = 0;
  };
  FailureReport MeasureWithFailure(const WorkloadMix& mix,
                                   double concurrency,
                                   int calls_per_connection,
                                   int failed_servers,
                                   Duration warmup = Seconds(5),
                                   Duration half_window = Seconds(20));

  // The paper tunes httperf calls-per-connection at every level so the
  // offered load tracks the target concurrency without client errors; this
  // reproduces that policy (more calls at low concurrency, fewer at high).
  static int TunedCallsPerConnection(double concurrency);

  const WebTestbedConfig& config() const { return config_; }

 private:
  WebTestbedConfig config_;
};

}  // namespace wimpy::web

#endif  // WIMPY_WEB_SERVICE_H_
