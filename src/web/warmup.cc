#include "web/warmup.h"

#include <algorithm>
#include <cmath>

namespace wimpy::web {

double ZipfCoverage(double cached_items, double total_items, double s) {
  if (total_items <= 1 || cached_items <= 0) return cached_items > 0 ? 1 : 0;
  cached_items = std::min(cached_items, total_items);
  if (std::abs(s - 1.0) < 1e-9) {
    return std::log(1.0 + cached_items) / std::log(1.0 + total_items);
  }
  // Generalised harmonic partial sums, continuous approximation:
  // H(k) ~ (k^(1-s) - 1) / (1 - s).
  const double hk = (std::pow(cached_items, 1.0 - s) - 1.0) / (1.0 - s);
  const double hn = (std::pow(total_items, 1.0 - s) - 1.0) / (1.0 - s);
  return std::clamp(hk / hn, 0.0, 1.0);
}

double EstimateHitRatio(const TableCatalog& catalog,
                        const CacheTierSpec& tier) {
  const double capacity =
      static_cast<double>(tier.cache_servers) *
      static_cast<double>(tier.server_memory) * tier.usable_fraction;

  // LRU steady state: each table's share of cache space is proportional
  // to its share of the (miss-driven) request mass.
  double total_weight = 0;
  for (const auto& t : catalog.tables()) total_weight += t.weight;

  double hit = 0;
  for (const auto& t : catalog.tables()) {
    const double share = t.weight / total_weight;
    if (share <= 0) continue;
    const double table_capacity = capacity * share;
    const double cached_items =
        table_capacity / static_cast<double>(std::max<Bytes>(
                             1, t.row_bytes_mean));
    hit += share * ZipfCoverage(cached_items,
                                static_cast<double>(t.rows), tier.zipf_s);
  }
  return hit;
}

Duration WarmupTimeNeeded(const CacheTierSpec& tier,
                          BytesPerSecond fill_rate) {
  if (fill_rate <= 0) return 0;
  const double capacity =
      static_cast<double>(tier.cache_servers) *
      static_cast<double>(tier.server_memory) * tier.usable_fraction;
  return capacity / fill_rate;
}

}  // namespace wimpy::web
