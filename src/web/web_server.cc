#include "web/web_server.h"

#include <cassert>

#include "obs/energy.h"
#include "obs/tracer.h"

namespace wimpy::web {

namespace {
constexpr Bytes kErrorReplyBytes = 320;  // terse 500 page
}  // namespace

WebServer::WebServer(hw::ServerNode* node, net::Fabric* fabric,
                     std::vector<CacheServer*> caches,
                     std::vector<DatabaseServer*> databases,
                     const WebServerConfig& config, std::uint64_t seed)
    : node_(node),
      fabric_(fabric),
      caches_(std::move(caches)),
      cache_ring_(shard::RingConfig{}),
      databases_(std::move(databases)),
      config_(config),
      tcp_host_(fabric, node->id(), config.tcp),
      php_workers_(&node->scheduler(), config.php_workers),
      accept_serial_(&node->scheduler(), 1),
      rng_(seed) {
  assert(config.service_efficiency > 0);
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    cache_ring_.AddNode(static_cast<int>(i));
  }
}

void WebServer::ResetStats() {
  calls_ok_ = 0;
  errors_500_ = 0;
  total_delay_ = OnlineStats();
  cache_delay_ = OnlineStats();
  db_delay_ = OnlineStats();
}

sim::Task<void> WebServer::AcceptWork() {
  // One accept thread: connection setups serialise here, and the CPU work
  // itself contends with PHP execution on the shared cores. The backlog
  // slot taken at SYN time (Connect with hold_backlog) is released only
  // when this accept completes — so the SYN queue drains at the accept
  // rate and overflows under connection floods, producing the Figure 11
  // retransmission spikes.
  {
    sim::SemaphoreGuard guard(accept_serial_);
    co_await guard.Acquired();
    co_await node_->cpu().Execute(Derated(config_.accept_minstr));
  }
  tcp_host_.LeaveBacklog();
}

sim::Task<CallResult> WebServer::ServeCall(int client_node_id,
                                           const RequestSpec& spec,
                                           const obs::TraceHandle& parent) {
  CallResult result;
  sim::Scheduler& sched = node_->scheduler();

  // Upstream request bytes.
  co_await fabric_->Transfer(client_node_id, node_->id(), 200, parent,
                             "req_xfer");
  const SimTime started = sched.now();

  // The serve span brackets exactly the interval `result.total` measures
  // (`started` to the co_return), so Table 7's total delay is
  // re-derivable from the trace alone; likewise the cache/db child spans
  // below bracket exactly the recorded fetch delays.
  obs::CausalSpan serve(parent, "serve", obs::Category::kRequest,
                        node_->id());
  obs::ScopedResidency serve_res(energy_, node_->id(), serve.handle(),
                                 "serve");

  // Overload check: lighttpd+FastCGI answers 500 when the backend queue is
  // hopeless rather than queueing forever.
  const std::size_t queue_limit =
      static_cast<std::size_t>(config_.php_workers) *
      static_cast<std::size_t>(config_.queue_factor);
  if (php_workers_.queue_length() >= queue_limit) {
    ++errors_500_;
    serve.Instant("http_500");
    co_await node_->cpu().Execute(Derated(0.05));
    co_await fabric_->Transfer(node_->id(), client_node_id, kErrorReplyBytes,
                               serve.handle(), "reply_xfer");
    result.ok = false;
    result.total = sched.now() - started;
    result.reply_bytes = kErrorReplyBytes;
    co_return result;
  }

  {
    sim::SemaphoreGuard worker(php_workers_);
    co_await worker.Acquired();

    // PHP request parsing + script execution.
    co_await node_->cpu().Execute(Derated(config_.request_base_minstr));

    // Content fetch: cache tier on a hit, database tier on a miss.
    if (spec.cache_hit && !caches_.empty()) {
      // The request's key hash picks the shard; its primary owner is the
      // cache holding the entry.
      CacheServer* cache = caches_[static_cast<std::size_t>(
          cache_ring_.PrimaryOf(cache_ring_.ShardOf(rng_.Next())))];
      const SimTime t0 = sched.now();
      {
        obs::CausalSpan fetch(serve.handle(), "cache",
                              obs::Category::kRequest, cache->node().id());
        obs::ScopedResidency fetch_res(energy_, cache->node().id(),
                                       fetch.handle(), "cache");
        co_await cache->Get(node_->id(), spec.reply_bytes);
      }
      result.cache_delay = sched.now() - t0;
      cache_delay_.Add(result.cache_delay);
    } else if (!databases_.empty()) {
      DatabaseServer* db =
          databases_[rng_.NextBelow(databases_.size())];
      const SimTime t0 = sched.now();
      {
        obs::CausalSpan fetch(serve.handle(), "db", obs::Category::kRequest,
                              db->node().id());
        obs::ScopedResidency fetch_res(energy_, db->node().id(),
                                       fetch.handle(), "db");
        co_await db->Query(node_->id(), spec.reply_bytes);
      }
      result.db_delay = sched.now() - t0;
      db_delay_.Add(result.db_delay);
    }

    // Reply assembly scales with the content size.
    const double kb = static_cast<double>(spec.reply_bytes) / 1000.0;
    co_await node_->cpu().Execute(
        Derated(config_.assembly_minstr_per_kb * kb));
    // The worker is free once the content is handed to the event loop.
  }

  co_await fabric_->Transfer(node_->id(), client_node_id, spec.reply_bytes,
                             serve.handle(), "reply_xfer");

  ++calls_ok_;
  result.ok = true;
  result.total = sched.now() - started;
  result.reply_bytes = spec.reply_bytes;
  total_delay_.Add(result.total);
  co_return result;
}

}  // namespace wimpy::web
