// The paper's database catalog (§5.1.1), modelled table by table.
//
// The MySQL pair holds 15 tables imported from Wikipedia dumps plus
// crawled images: 11 tables with simple fields (INT, VARCHAR, VARBINARY)
// and 4 with image blobs averaging ~30 KB. A request picks a table by
// weight — the image-table weights control the image-query percentage —
// then a row, and the reply size follows the table's row-size
// distribution. `WorkloadMix` is the two-point abstraction used by the
// benches; `TableCatalog` is the faithful per-table model and produces
// the same four paper operating points when weighted accordingly.
#ifndef WIMPY_WEB_CATALOG_H_
#define WIMPY_WEB_CATALOG_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "web/workload.h"

namespace wimpy::web {

struct TableSpec {
  std::string name;
  bool has_image_blob = false;
  std::int64_t rows = 0;
  Bytes row_bytes_mean = 0;    // serialised reply payload per row
  Bytes row_bytes_stddev = 0;
  double weight = 1.0;         // selection probability weight
};

class TableCatalog {
 public:
  // The paper's 15-table layout: 11 simple tables with Wikipedia-like row
  // sizes and 4 image tables (~30 KB blobs + metadata). `image_fraction`
  // sets the weights so image tables are selected with that probability.
  static TableCatalog PaperCatalog(double image_fraction);

  explicit TableCatalog(std::vector<TableSpec> tables);

  // Draws a request: weighted table pick, row pick, size draw.
  RequestSpec Sample(double cache_hit_ratio, Rng& rng) const;

  // Expected mean reply size under the current weights.
  double MeanReplyBytes() const;

  // Probability that a draw hits an image table.
  double ImageProbability() const;

  const std::vector<TableSpec>& tables() const { return tables_; }

 private:
  std::vector<TableSpec> tables_;
  std::vector<double> weights_;
  double total_weight_ = 0;
};

}  // namespace wimpy::web

#endif  // WIMPY_WEB_CATALOG_H_
