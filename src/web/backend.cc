#include "web/backend.h"

namespace wimpy::web {

namespace {
// GET requests and query statements are small.
constexpr Bytes kRequestHopBytes = 120;
}  // namespace

CacheServer::CacheServer(hw::ServerNode* node, net::Fabric* fabric,
                         const BackendCosts& costs)
    : node_(node), fabric_(fabric), costs_(costs) {}

void CacheServer::WarmUp() {
  if (warmed_) return;
  warmed_ = true;
  const Bytes footprint = static_cast<Bytes>(
      costs_.cache_memory_fraction *
      static_cast<double>(node_->memory().total()));
  // Reservation is best-effort: a full node simply caches less.
  node_->memory().TryReserve(footprint);
}

sim::Task<void> CacheServer::Get(int requester_node, Bytes reply_bytes) {
  ++hits_served_;
  co_await fabric_->Transfer(requester_node, node_->id(), kRequestHopBytes);
  co_await node_->cpu().Execute(costs_.cache_lookup_minstr);
  co_await node_->memory().Transfer(reply_bytes);
  co_await fabric_->Transfer(node_->id(), requester_node, reply_bytes);
}

DatabaseServer::DatabaseServer(hw::ServerNode* node, net::Fabric* fabric,
                               const BackendCosts& costs, std::uint64_t seed)
    : node_(node), fabric_(fabric), costs_(costs), rng_(seed) {}

sim::Task<void> DatabaseServer::Query(int requester_node,
                                      Bytes reply_bytes) {
  ++queries_served_;
  co_await fabric_->Transfer(requester_node, node_->id(), kRequestHopBytes);
  co_await node_->cpu().Execute(costs_.db_query_minstr);
  if (rng_.Bernoulli(costs_.db_miss_storage_fraction)) {
    co_await node_->storage().RandomRead(reply_bytes);
  } else {
    co_await node_->memory().Transfer(reply_bytes);
  }
  co_await fabric_->Transfer(node_->id(), requester_node, reply_bytes);
}

}  // namespace wimpy::web
