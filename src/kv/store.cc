#include "kv/store.h"

namespace wimpy::kv {

namespace {
constexpr Bytes kRequestHopBytes = 64;  // key + header
constexpr Bytes kAckBytes = 32;
}  // namespace

KvNode::KvNode(hw::ServerNode* node, net::Fabric* fabric,
               const KvConfig& config, std::uint64_t seed)
    : node_(node), fabric_(fabric), config_(config), rng_(seed) {
  node_->memory().TryReserve(static_cast<Bytes>(
      config_.ram_footprint_fraction *
      static_cast<double>(node_->memory().total())));
}

sim::Task<void> KvNode::Get(int client_node, Bytes value_bytes,
                            obs::TraceHandle trace) {
  ++gets_;
  co_await fabric_->Transfer(client_node, node_->id(), kRequestHopBytes,
                             trace, "req_hop");
  co_await node_->cpu().Execute(config_.get_cpu_minstr);
  if (rng_.Bernoulli(config_.ram_hit_ratio)) {
    co_await node_->memory().Transfer(value_bytes);
  } else {
    co_await node_->storage().RandomRead(value_bytes);
  }
  co_await fabric_->Transfer(node_->id(), client_node, value_bytes, trace,
                             "reply_hop");
}

sim::Task<void> KvNode::ApplyReplicatedWrite(int upstream_node,
                                             Bytes value_bytes,
                                             obs::TraceHandle trace) {
  co_await fabric_->Transfer(upstream_node, node_->id(), value_bytes,
                             trace, "repl_hop");
  co_await node_->cpu().Execute(config_.put_cpu_minstr);
  co_await node_->storage().Write(value_bytes, /*buffered=*/true);
}

sim::Task<void> KvNode::Put(int client_node, Bytes value_bytes,
                            obs::TraceHandle trace) {
  ++puts_;
  co_await fabric_->Transfer(client_node, node_->id(),
                             kRequestHopBytes + value_bytes, trace,
                             "req_hop");
  co_await node_->cpu().Execute(config_.put_cpu_minstr);
  // Log-structured append: sequential, page-cache absorbed.
  co_await node_->storage().Write(value_bytes, /*buffered=*/true);
  co_await fabric_->Transfer(node_->id(), client_node, kAckBytes, trace,
                             "ack_hop");
}

}  // namespace wimpy::kv
