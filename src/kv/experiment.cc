#include "kv/experiment.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "hw/profiles.h"
#include "obs/energy.h"
#include "obs/telemetry.h"
#include "shard/ring.h"
#include "sim/process.h"

namespace wimpy::kv {

namespace {

// The store tier's consistent-hash map (shard/ring.h): keys hash to
// shards, shards to owner chains over store indices. Replaces the old
// flat `position % n` partitioning — routing is now the same ketama map
// the sharded scale-out experiment uses, so node churn there and
// failover here agree on who owns what.
shard::RingConfig StoreRingConfig(const KvExperimentConfig& config) {
  shard::RingConfig ring;
  ring.replication = config.replication;
  return ring;
}

struct KvTestbed {
  explicit KvTestbed(const KvExperimentConfig& config)
      : fabric(&sched),
        clstr(&sched, &fabric),
        rng(config.seed),
        ring(StoreRingConfig(config)) {
    fabric.SetGroupLink("client-room", "store-room", Gbps(10),
                        Milliseconds(0.02));
    auto store_nodes = clstr.AddNodes(config.node_profile,
                                      config.node_count, "kv-store",
                                      "store-room");
    auto client_nodes = clstr.AddNodes(hw::DellR620Profile(),
                                       config.client_machines, "client",
                                       "client-room");
    for (auto* node : store_nodes) {
      stores.push_back(std::make_unique<KvNode>(node, &fabric,
                                                config.store, rng.Next()));
      ring.AddNode(static_cast<int>(stores.size()) - 1);
    }
    for (auto* node : client_nodes) client_ids.push_back(node->id());

    tracer = config.tracer;
    metrics = config.metrics;
    energy = config.energy;
    trace_sample_every = std::max(1, config.trace_sample_every);
    if (energy != nullptr) {
      // Only the store tier is observed, mirroring the report's
      // CumulativeJoules({"kv-store"}) scope.
      for (auto& store : stores) store->node().ObserveEnergy(energy);
    }
    if (metrics != nullptr) {
      // Probe registration order is fixed (store tier, then links), so
      // exported column order is deterministic.
      for (std::size_t i = 0; i < stores.size(); ++i) {
        stores[i]->node().PublishMetrics(metrics,
                                         "kv" + std::to_string(i));
      }
      fabric.PublishMetrics(metrics, "net");
    }
    telemetry = config.telemetry;
    if (telemetry != nullptr) {
      for (std::size_t i = 0; i < stores.size(); ++i) {
        stores[i]->node().PublishTelemetry(telemetry,
                                           "kv" + std::to_string(i));
      }
      obs::NodeHealthConfig health_config;
      health_config.power_cap_w = config.node_profile.power.busy +
                                  config.node_profile.power.constant_adapter;
      health = std::make_unique<obs::NodeHealth>(telemetry, health_config);
      for (std::size_t i = 0; i < stores.size(); ++i) {
        const std::string node = "kv" + std::to_string(i);
        obs::NodeHealthInputs inputs;
        inputs.utilization = node + ".cpu_busy";
        inputs.power = node + ".power_w";
        inputs.queue_depth = "gate.queue_depth";
        inputs.shed = "slo.shed";
        health->AddNode(static_cast<int>(i), std::move(inputs));
      }
      // Health lands in the standard metrics CSV (new `health.node<i>`
      // columns after the raw probes) and on the trace as kHealth
      // instants, so both exports carry the composite next to its inputs.
      if (metrics != nullptr) health->PublishMetrics(metrics, "health");
      if (tracer != nullptr) health->EmitTraceInstants(tracer);
    }
  }

  // 1-in-N query trace sampling, mirroring the web testbed: a sampled
  // query gets a root trace handle (fresh trace id, its own track); the
  // counter is part of the testbed, not the random streams, so tracing
  // on/off never changes simulated behaviour.
  obs::TraceHandle StartTrace() {
    const std::uint64_t query = query_counter_++;
    if (tracer == nullptr ||
        query % static_cast<std::uint64_t>(trace_sample_every) != 0) {
      return {};
    }
    obs::TraceHandle handle;
    handle.tracer = tracer;
    handle.sched = &sched;
    handle.track = static_cast<std::int32_t>(query & 0x7fffffff);
    handle.ctx.trace_id = tracer->NewTraceId();
    return handle;
  }

  sim::Scheduler sched;
  net::Fabric fabric;
  cluster::Cluster clstr;
  Rng rng;
  shard::Ring ring;  // over store indices, not fabric node ids
  std::vector<std::unique_ptr<KvNode>> stores;
  std::vector<int> client_ids;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::EnergyAttributor* energy = nullptr;
  obs::Telemetry* telemetry = nullptr;
  std::unique_ptr<obs::NodeHealth> health;
  int trace_sample_every = 64;
  std::uint64_t query_counter_ = 0;
};

struct KvWindow {
  SimTime start = 0;
  SimTime end = 0;
  std::int64_t done = 0;
  std::int64_t failed = 0;
  OnlineStats latency;
  PercentileTracker percentiles;
};

// Ring routing with failover: keys hash to a shard, the shard's
// preference list orders every store from its ring position, and the
// first healthy entry serves the request (FAWN's consistent-hashing
// failover, now on a real ketama map). Returns the preference index, or
// -1 when every store is down. Allocation-free: the preference list is a
// precomputed flat table.
int RouteToHealthy(KvTestbed& tb, const std::vector<int>& pref) {
  for (std::size_t i = 0; i < pref.size(); ++i) {
    if (!tb.stores[static_cast<std::size_t>(pref[i])]->failed()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

using KvGate = load::AdmissionGate<Rng>;

sim::Process OneQuery(KvTestbed& tb, const KvExperimentConfig& config,
                      KvWindow& window, load::OpenLoopRecorder& recorder,
                      KvGate& gate, SimTime intended, Rng rng) {
  const SimTime started = tb.sched.now();
  const int shard = tb.ring.ShardOf(rng.Next());
  const std::vector<int>& pref = tb.ring.Preference(shard);
  const int serving = RouteToHealthy(tb, pref);
  KvNode* store =
      serving < 0
          ? nullptr
          : tb.stores[static_cast<std::size_t>(pref[serving])].get();
  // Root span of the query's trace tree (arg = serving node, -1 when
  // routing found no healthy node); begins exactly at `started`, so the
  // trace re-derives the report's latency and in-window query count.
  obs::CausalSpan query_span(tb.StartTrace(), "query",
                             obs::Category::kRequest,
                             store != nullptr ? store->node().id() : -1);
  if (store == nullptr) query_span.Instant("route_failed");
  const int client =
      tb.client_ids[rng.NextBelow(tb.client_ids.size())];
  const Bytes value = DrawnBytes(
      rng.LogNormalMeanStd(
          static_cast<double>(config.store.value_size_mean),
          static_cast<double>(config.store.value_size_stddev)),
      64);
  bool ok = store != nullptr;
  if (ok && rng.Bernoulli(config.get_fraction)) {
    obs::CausalSpan op(query_span.handle(), "get", obs::Category::kRequest,
                       store->node().id());
    obs::ScopedResidency res(tb.energy, store->node().id(), op.handle(),
                             "get");
    co_await store->Get(client, value, op.handle());
  } else if (ok) {
    {
      obs::CausalSpan op(query_span.handle(), "put",
                         obs::Category::kRequest, store->node().id());
      obs::ScopedResidency res(tb.energy, store->node().id(), op.handle(),
                               "put");
      co_await store->Put(client, value, op.handle());
    }
    // Chain replication down the preference list: the healthy successors
    // after the serving store.
    int upstream = store->node().id();
    int replicated = 1;
    for (std::size_t i = static_cast<std::size_t>(serving) + 1;
         i < pref.size() && replicated < config.replication; ++i) {
      KvNode* replica = tb.stores[static_cast<std::size_t>(pref[i])].get();
      if (replica->failed()) continue;
      {
        obs::CausalSpan op(query_span.handle(), "replicate",
                           obs::Category::kRequest, replica->node().id());
        obs::ScopedResidency res(tb.energy, replica->node().id(),
                                 op.handle(), "replicate");
        co_await replica->ApplyReplicatedWrite(upstream, value,
                                               op.handle());
      }
      upstream = replica->node().id();
      ++replicated;
    }
  }
  const SimTime finished = tb.sched.now();
  if (started >= window.start && started < window.end) {
    if (ok) {
      ++window.done;
      window.latency.Add(finished - started);
      window.percentiles.Add(finished - started);
    } else {
      ++window.failed;
    }
  }
  // Honest accounting: windowed by intended arrival, latency from it too.
  recorder.OnComplete(intended, started, finished, ok);
  // A completion frees a dispatch slot; the queue head (if any) inherits
  // it and still measures from its own intended arrival.
  if (auto next = gate.OnComplete()) {
    sim::Spawn(tb.sched, OneQuery(tb, config, window, recorder, gate,
                                  next->intended, std::move(next->payload)));
  }
}

sim::Process Arrivals(KvTestbed& tb, const KvExperimentConfig& config,
                      KvWindow& window, load::OpenLoopRecorder& recorder,
                      KvGate& gate, double qps, Rng rng) {
  load::ArrivalConfig shape = config.openloop.arrival;
  shape.rate = qps;
  load::ArrivalProcess arrivals(shape);
  while (tb.sched.now() < window.end) {
    co_await sim::Delay(tb.sched, arrivals.NextGap(rng));
    if (tb.sched.now() >= window.end) break;
    const SimTime intended = tb.sched.now();
    Rng child = rng.Fork();
    switch (gate.Admit()) {
      case load::Admission::kDispatch:
        sim::Spawn(tb.sched, OneQuery(tb, config, window, recorder, gate,
                                      intended, std::move(child)));
        break;
      case load::Admission::kQueue:
        gate.Enqueue(intended, std::move(child));
        break;
      case load::Admission::kShed:
        recorder.OnShed(intended);
        break;
    }
  }
}

// Per-measure telemetry wiring: the recorder's SLO stream, the gate's
// queue-depth probe, and the default alert rules (SLO-gated, so a run
// without an SLO bound installs none). Rule thresholds are pure
// functions of the config — alert instants stay deterministic.
void WireTelemetry(KvTestbed& tb, const KvExperimentConfig& config,
                   load::OpenLoopRecorder& recorder, KvGate& gate) {
  obs::Telemetry* telemetry = tb.telemetry;
  if (telemetry == nullptr) return;
  recorder.set_stream(obs::SloStreamInto(telemetry, "slo"));
  telemetry->AddProbe("gate.queue_depth", [&gate] {
    return static_cast<double>(gate.queue_depth());
  });
  if (config.openloop.slo > 0.0) {
    obs::BurnRateRule burn;
    burn.name = "slo_burn";
    burn.good_metric = "slo.good";
    burn.total_metric = "slo.offered";
    burn.slo_target = 0.9;       // 10% error budget
    burn.burn_threshold = 1.0;   // burning faster than budget
    burn.short_window = Seconds(2);
    burn.long_window = Seconds(8);
    telemetry->AddBurnRateRule(burn);
    obs::ThresholdRule p99;
    p99.name = "latency_p99_high";
    p99.metric = "slo.latency";
    p99.agg = obs::Agg::kP99;
    p99.threshold = config.openloop.slo;
    p99.window = Seconds(2);
    telemetry->AddThresholdRule(p99);
    obs::ThresholdRule sheds;
    sheds.name = "shed_spike";
    sheds.metric = "slo.shed";
    sheds.agg = obs::Agg::kRate;
    sheds.threshold = 1.0;  // sheds/s
    sheds.window = Seconds(2);
    telemetry->AddThresholdRule(sheds);
  }
  telemetry->Start(&tb.sched, tb.tracer);
}

void FillOpenLoopFields(const load::OpenLoopRecorder& recorder, Joules spent,
                        KvReport* report) {
  report->p99_intended_latency =
      recorder.intended_percentiles().empty()
          ? 0.0
          : recorder.intended_percentiles().Percentile(0.99);
  report->shed = recorder.shed();
  report->slo_good_fraction = recorder.SloGoodFraction();
  report->slo_goodput_per_joule = recorder.SloGoodputPerJoule(spent);
}

}  // namespace

KvReport KvExperiment::Measure(double target_qps, Duration measure) {
  KvTestbed tb(config_);
  KvWindow window;
  window.start = Seconds(2);
  window.end = window.start + measure;

  Joules epoch = 0;
  tb.sched.ScheduleAt(window.start, [&] {
    epoch = tb.clstr.CumulativeJoules({"kv-store"});
    // Window marks at the same instant the report's energy epoch is
    // captured: the ledger's window subtotal equals `spent` below.
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_start",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->BeginWindow();
  });
  Joules spent = 0;
  tb.sched.ScheduleAt(window.end, [&] {
    spent = tb.clstr.CumulativeJoules({"kv-store"}) - epoch;
    if (tb.metrics != nullptr) tb.metrics->Stop();
    if (tb.telemetry != nullptr) tb.telemetry->Stop();
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_end",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->EndWindow();
  });

  load::OpenLoopRecorder recorder(window.start, window.end,
                                  config_.openloop.slo);
  KvGate gate(config_.openloop);
  WireTelemetry(tb, config_, recorder, gate);
  if (tb.metrics != nullptr) tb.metrics->Start(&tb.sched, Seconds(1));
  sim::Spawn(tb.sched, Arrivals(tb, config_, window, recorder, gate,
                                target_qps, tb.rng.Fork()));
  tb.sched.Run();
  // Final sample after the queue drains: cumulative counters now match
  // the report exactly. Then detach: the registry outlives this
  // function-local testbed, so its probes must not.
  if (tb.metrics != nullptr) {
    tb.metrics->SampleNow();
    tb.metrics->Detach();
  }

  KvReport report;
  report.target_qps = target_qps;
  report.achieved_qps = static_cast<double>(window.done) / measure;
  report.mean_latency = window.latency.mean();
  // Explicit empty() check: Percentile() on an empty tracker is NaN by
  // design, and this field feeds bench tables/JSON.
  report.p99_latency =
      window.percentiles.empty() ? 0.0 : window.percentiles.Percentile(0.99);
  report.error_rate =
      window.done + window.failed == 0
          ? 0.0
          : static_cast<double>(window.failed) /
                static_cast<double>(window.done + window.failed);
  report.store_power = spent / measure;
  report.queries_per_joule =
      spent > 0 ? static_cast<double>(window.done) / spent : 0;
  report.executed_events = tb.sched.executed_events();
  FillOpenLoopFields(recorder, spent, &report);
  return report;
}

KvReport KvExperiment::MeasureWithFailover(double target_qps,
                                           int failed_nodes,
                                           Duration measure) {
  KvTestbed tb(config_);
  KvWindow window;
  window.start = Seconds(2);
  window.end = window.start + measure;

  const int to_fail = std::min<int>(
      failed_nodes, static_cast<int>(tb.stores.size()) - 1);
  tb.sched.ScheduleAt(window.start + measure / 2, [&tb, to_fail] {
    for (int i = 0; i < to_fail; ++i) tb.stores[i]->set_failed(true);
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "nodes_failed",
                           obs::Category::kNet, /*track=*/0, to_fail);
    }
  });

  Joules epoch = 0;
  tb.sched.ScheduleAt(window.start, [&] {
    epoch = tb.clstr.CumulativeJoules({"kv-store"});
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_start",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->BeginWindow();
  });
  Joules spent = 0;
  tb.sched.ScheduleAt(window.end, [&] {
    spent = tb.clstr.CumulativeJoules({"kv-store"}) - epoch;
    if (tb.metrics != nullptr) tb.metrics->Stop();
    if (tb.telemetry != nullptr) tb.telemetry->Stop();
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_end",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->EndWindow();
  });

  load::OpenLoopRecorder recorder(window.start, window.end,
                                  config_.openloop.slo);
  KvGate gate(config_.openloop);
  WireTelemetry(tb, config_, recorder, gate);
  if (tb.metrics != nullptr) tb.metrics->Start(&tb.sched, Seconds(1));
  sim::Spawn(tb.sched, Arrivals(tb, config_, window, recorder, gate,
                                target_qps, tb.rng.Fork()));
  tb.sched.Run();
  if (tb.metrics != nullptr) {
    tb.metrics->SampleNow();
    tb.metrics->Detach();
  }

  KvReport report;
  report.target_qps = target_qps;
  report.achieved_qps = static_cast<double>(window.done) / measure;
  report.error_rate =
      window.done + window.failed == 0
          ? 0.0
          : static_cast<double>(window.failed) /
                static_cast<double>(window.done + window.failed);
  report.mean_latency = window.latency.mean();
  report.p99_latency =
      window.percentiles.empty() ? 0.0 : window.percentiles.Percentile(0.99);
  report.store_power = spent / measure;
  report.queries_per_joule =
      spent > 0 ? static_cast<double>(window.done) / spent : 0;
  report.executed_events = tb.sched.executed_events();
  FillOpenLoopFields(recorder, spent, &report);
  return report;
}

KvReport KvExperiment::FindPeak(double start_qps, double max_qps) {
  KvReport best;
  Duration baseline_latency = 0;
  for (double qps = start_qps; qps <= max_qps; qps *= 2.0) {
    const KvReport report = Measure(qps, Seconds(10));
    if (baseline_latency == 0) baseline_latency = report.mean_latency;
    // Knee detection: stop once the system can no longer keep up or the
    // latency has blown out by an order of magnitude.
    if (report.achieved_qps < 0.85 * qps ||
        report.mean_latency > 10 * baseline_latency) {
      break;
    }
    best = report;
  }
  return best;
}

}  // namespace wimpy::kv
