// Key-value cluster experiment: queries-per-joule on any hardware profile
// (the FAWN comparison, reproduced on this library's substrate).
#ifndef WIMPY_KV_EXPERIMENT_H_
#define WIMPY_KV_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/units.h"
#include "hw/profile.h"
#include "kv/store.h"
#include "load/openloop.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::obs {
class EnergyAttributor;
class Telemetry;
}  // namespace wimpy::obs

namespace wimpy::kv {

struct KvExperimentConfig {
  hw::HardwareProfile node_profile;
  int node_count = 8;
  int client_machines = 4;  // Dell-class load generators
  KvConfig store;
  double get_fraction = 0.90;
  // FAWN-style chain replication across ring successors (1 = none).
  int replication = 1;
  // Nodes failed mid-run by FailNodes(); reads/writes route to the next
  // healthy successor.
  std::uint64_t seed = 20090101;  // FAWN's year
  // Observability sinks (optional; null = zero overhead, identical
  // simulated behaviour). The tracer records a "query" span for
  // 1-in-`trace_sample_every` queries; the registry samples per-store
  // node probes (`kv<i>.*`) and fabric link probes once per simulated
  // second for the duration of the measurement window.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  int trace_sample_every = 64;
  // Online telemetry plane (obs/telemetry.h; null = zero overhead). When
  // set, a Measure call wires: per-store `kv<i>.cpu_busy|power_w` probes,
  // the recorder's SLO stream into `slo.*` instruments, a
  // `gate.queue_depth` probe, default alert rules (SLO burn rate over
  // 2 s/8 s windows, shed-rate spike, p99-over-SLO — installed only when
  // `openloop.slo > 0`), and an obs::NodeHealth scorer whose per-node
  // gauges land in `metrics` under `health.*` and on the trace as
  // kHealth instants. One Telemetry per Measure call (instrument names
  // are registered fresh each run). Borrowed; must outlive the call.
  obs::Telemetry* telemetry = nullptr;
  // Optional span-energy attribution over the store tier (obs/energy.h):
  // sampled query trees carry joules-per-span, and the ledger's window
  // subtotal equals the store-tier energy the report divides by for
  // queries_per_joule (the golden test re-derives that quotient from the
  // trace + ledger alone). Borrowed; may be null.
  obs::EnergyAttributor* energy = nullptr;
  // Open-loop load shape (docs/openloop.md): arrival model/burstiness,
  // client-side admission gate, SLO bound. `openloop.arrival.rate` is
  // overridden by the per-run target qps. The default (Poisson, unbounded,
  // no SLO) reproduces the legacy generator draw-for-draw, so the seed-77
  // trace golden stays valid.
  load::OpenLoopConfig openloop;
};

struct KvReport {
  double target_qps = 0;
  double achieved_qps = 0;
  double error_rate = 0;       // only overload drops in this model: ~0
  Duration mean_latency = 0;
  Duration p99_latency = 0;
  Watts store_power = 0;       // storage-node tier only, like FAWN
  double queries_per_joule = 0;
  // Engine events the whole replication executed (scheduler counter at
  // drain); bench_scale_macro divides by wall-clock for events/s.
  std::uint64_t executed_events = 0;
  // Coordinated-omission-free measurement (docs/openloop.md): latency
  // from the intended arrival rather than dispatch, client-side sheds,
  // and SLO-conditioned efficiency. Zero when config.openloop leaves the
  // defaults (no gate, no SLO).
  Duration p99_intended_latency = 0;
  std::int64_t shed = 0;
  double slo_good_fraction = 0;      // under-SLO completions / offered
  double slo_goodput_per_joule = 0;  // under-SLO completions / window ∫P dt
};

class KvExperiment {
 public:
  explicit KvExperiment(KvExperimentConfig config)
      : config_(std::move(config)) {}

  // Open-loop Poisson load at `target_qps` for `measure` seconds (after a
  // short warm-up); keys route over a ketama consistent-hash ring
  // (shard/ring.h) with chain replication down each shard's preference
  // list.
  KvReport Measure(double target_qps, Duration measure = Seconds(20));

  // Ramps the offered load until latency knees or throughput saturates;
  // returns the report at the best stable point.
  KvReport FindPeak(double start_qps, double max_qps);

  // Failover run: `failed_nodes` stores crash halfway through the window;
  // the ring routes requests to the next healthy successor (replication
  // must be >= 2 for failed primaries' data to remain readable). Returns
  // the report for the full window.
  KvReport MeasureWithFailover(double target_qps, int failed_nodes,
                               Duration measure = Seconds(20));

  const KvExperimentConfig& config() const { return config_; }

 private:
  KvExperimentConfig config_;
};

}  // namespace wimpy::kv

#endif  // WIMPY_KV_EXPERIMENT_H_
