// FAWN-style key-value store workload (related work [21], [50]).
//
// FAWN demonstrated that wimpy nodes with fast flash beat brawny servers
// on *queries per joule* for key-value serving. This module reproduces
// that experiment class on the library's hardware models: a
// hash-partitioned store whose gets hit an in-memory index + cache with a
// configurable ratio and otherwise pay one random flash/disk read, and
// whose puts append to a log (sequential, buffered) — the FAWN-DS design.
#ifndef WIMPY_KV_STORE_H_
#define WIMPY_KV_STORE_H_

#include <cstdint>

#include "common/random.h"
#include "hw/server_node.h"
#include "net/fabric.h"
#include "obs/context.h"
#include "sim/task.h"

namespace wimpy::kv {

struct KvConfig {
  Bytes value_size_mean = 1024;
  Bytes value_size_stddev = 256;
  // Fraction of gets served from the RAM cache (FAWN's index always
  // resides in RAM; small stores cache hot values too).
  double ram_hit_ratio = 0.70;
  double get_cpu_minstr = 0.06;  // hash + index probe + reply build
  double put_cpu_minstr = 0.10;  // hash + log append bookkeeping
  // Fraction of node RAM reserved for index + cache at startup.
  double ram_footprint_fraction = 0.5;
};

// One storage node.
class KvNode {
 public:
  KvNode(hw::ServerNode* node, net::Fabric* fabric, const KvConfig& config,
         std::uint64_t seed);

  KvNode(const KvNode&) = delete;
  KvNode& operator=(const KvNode&) = delete;

  // GET: request hop, CPU, RAM-cache hit or random device read, reply hop.
  // A live `trace` handle wraps the fabric hops in "req_hop"/"reply_hop"
  // net child spans (by value: the handle is copied into the coroutine
  // frame, so callers may pass temporaries). Null handle = untraced.
  sim::Task<void> Get(int client_node, Bytes value_bytes,
                      obs::TraceHandle trace = {});

  // PUT: value hop in, CPU, log append (sequential buffered write), ack.
  sim::Task<void> Put(int client_node, Bytes value_bytes,
                      obs::TraceHandle trace = {});

  // Chain-replication hop (FAWN-DS): receives the value from the
  // upstream store node ("repl_hop") and appends it locally.
  sim::Task<void> ApplyReplicatedWrite(int upstream_node, Bytes value_bytes,
                                       obs::TraceHandle trace = {});

  // Fault injection: a failed node serves nothing; the front-end routes
  // around it (FAWN's ring failover).
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  hw::ServerNode& node() { return *node_; }
  std::int64_t gets() const { return gets_; }
  std::int64_t puts() const { return puts_; }

 private:
  hw::ServerNode* node_;
  net::Fabric* fabric_;
  KvConfig config_;
  Rng rng_;
  bool failed_ = false;
  std::int64_t gets_ = 0;
  std::int64_t puts_ = 0;
};

}  // namespace wimpy::kv

#endif  // WIMPY_KV_STORE_H_
