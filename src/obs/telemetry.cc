#include "obs/telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace wimpy::obs {

const char* AggName(Agg agg) {
  switch (agg) {
    case Agg::kRate: return "rate";
    case Agg::kMean: return "mean";
    case Agg::kMin: return "min";
    case Agg::kMax: return "max";
    case Agg::kIntegral: return "integral";
    case Agg::kP50: return "p50";
    case Agg::kP90: return "p90";
    case Agg::kP99: return "p99";
  }
  return "?";
}

namespace {
double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }
}  // namespace

// --- Rollup ---------------------------------------------------------------

Rollup::Rollup(std::string name, Kind kind, Duration slide, int ring_buckets)
    : name_(std::move(name)),
      kind_(kind),
      slide_(slide),
      ring_cap_(static_cast<std::size_t>(ring_buckets < 1 ? 1 : ring_buckets)) {}

void Rollup::Observe(double value) {
  if (open_.count == 0) {
    open_.min = value;
    open_.max = value;
  } else {
    if (value < open_.min) open_.min = value;
    if (value > open_.max) open_.max = value;
  }
  ++open_.count;
  open_.sum += value;
  if (kind_ == Kind::kCounter) {
    total_ += value;
  } else if (kind_ == Kind::kHistogram) {
    open_sketch_.Record(value);
  }
}

void Rollup::Close() {
  ring_.push_back(open_);
  open_ = Bucket{};
  if (kind_ == Kind::kHistogram) {
    ring_sketch_.push_back(std::move(open_sketch_));
    if (ring_sketch_.size() > ring_cap_) {
      // Recycle the evicted sketch's count array into the fresh open
      // bucket: steady-state tumbling allocates nothing.
      HdrSketch recycled = std::move(ring_sketch_.front());
      ring_sketch_.pop_front();
      recycled.Reset();
      open_sketch_ = std::move(recycled);
    } else {
      open_sketch_ = HdrSketch{};
    }
  }
  if (ring_.size() > ring_cap_) ring_.pop_front();
  ++closed_total_;
}

RollupResult Rollup::Query(Duration window) const {
  RollupResult r;
  r.has_sketch = kind_ == Kind::kHistogram;
  long k = slide_ > 0.0 ? std::lround(window / slide_) : 1;
  if (k < 1) k = 1;
  const std::size_t n =
      std::min(static_cast<std::size_t>(k), ring_.size());
  r.window = static_cast<double>(n) * slide_;
  if (n == 0) return r;
  HdrSketch merged;
  bool first = true;
  for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    const Bucket& b = ring_[i];
    if (r.has_sketch) merged.Merge(ring_sketch_[i]);
    if (b.count == 0) continue;
    if (first) {
      r.min = b.min;
      r.max = b.max;
      first = false;
    } else {
      if (b.min < r.min) r.min = b.min;
      if (b.max > r.max) r.max = b.max;
    }
    r.count += b.count;
    r.sum += b.sum;
    r.integral += (b.sum / static_cast<double>(b.count)) * slide_;
  }
  if (r.window > 0.0) r.rate = static_cast<double>(r.count) / r.window;
  if (r.count > 0) r.mean = r.sum / static_cast<double>(r.count);
  if (r.has_sketch && merged.count() > 0) {
    r.p50 = merged.Quantile(0.50);
    r.p90 = merged.Quantile(0.90);
    r.p99 = merged.Quantile(0.99);
  }
  return r;
}

double Rollup::QueryAgg(Agg agg, Duration window) const {
  const RollupResult r = Query(window);
  switch (agg) {
    case Agg::kRate: return r.rate;
    case Agg::kMean: return r.mean;
    case Agg::kMin: return r.min;
    case Agg::kMax: return r.max;
    case Agg::kIntegral: return r.integral;
    case Agg::kP50: return r.p50;
    case Agg::kP90: return r.p90;
    case Agg::kP99: return r.p99;
  }
  return 0.0;
}

double Counter::total() const {
  return rollup_ == nullptr ? 0.0 : rollup_->total_;
}

// --- Telemetry ------------------------------------------------------------

Telemetry::Telemetry(TelemetryConfig config) : config_(config) {
  if (config_.slide <= 0.0) config_.slide = 1.0;
  if (config_.ring_buckets < 1) config_.ring_buckets = 1;
}

Telemetry::~Telemetry() {
  running_ = false;
  if (pending_ != 0 && sched_ != nullptr) {
    sched_->Cancel(pending_);
    pending_ = 0;
  }
}

Rollup* Telemetry::AddInstrument(std::string name, Rollup::Kind kind) {
  assert(by_name_.find(name) == by_name_.end() &&
         "duplicate telemetry instrument name");
  instruments_.push_back(std::unique_ptr<Rollup>(
      new Rollup(std::move(name), kind, config_.slide, config_.ring_buckets)));
  Rollup* rollup = instruments_.back().get();
  by_name_.emplace(rollup->name_, rollup);
  return rollup;
}

Counter Telemetry::AddCounter(std::string name) {
  return Counter(this, AddInstrument(std::move(name), Rollup::Kind::kCounter));
}

Histogram Telemetry::AddHistogram(std::string name) {
  return Histogram(this,
                   AddInstrument(std::move(name), Rollup::Kind::kHistogram));
}

void Telemetry::AddProbe(std::string name, std::function<double()> probe) {
  Rollup* rollup = AddInstrument(std::move(name), Rollup::Kind::kGauge);
  rollup->probe_ = std::move(probe);
}

void Telemetry::AddThresholdRule(ThresholdRule rule) {
  threshold_rules_.push_back(ThresholdState{std::move(rule), false});
}

void Telemetry::AddBurnRateRule(BurnRateRule rule) {
  burn_rules_.push_back(BurnState{std::move(rule), false});
}

void Telemetry::AddTickHook(std::function<void(SimTime)> hook) {
  tick_hooks_.push_back(std::move(hook));
}

void Telemetry::Start(sim::Scheduler* sched, Tracer* tracer) {
  Stop();
  sched_ = sched;
  tracer_ = tracer;
  running_ = true;
  open_start_ = sched_->now();
  pending_ = sched_->ScheduleAfter(config_.slide, [this] {
    pending_ = 0;
    Tick();
  });
}

void Telemetry::Stop() {
  if (!running_) return;
  // A window-end ScheduleAt callback carries an older sequence number
  // than the tick scheduled for the same instant, so it runs first and
  // cancels that tick below. If a full bucket is due exactly now, close
  // it here so the run's last bucket is not lost.
  if (enabled_ && sched_ != nullptr &&
      sched_->now() == open_start_ + config_.slide) {
    CloseBuckets(sched_->now());
  }
  running_ = false;
  if (pending_ != 0 && sched_ != nullptr) {
    sched_->Cancel(pending_);
    pending_ = 0;
  }
}

void Telemetry::Tick() {
  if (!running_) return;
  if (enabled_) {
    CloseBuckets(sched_->now());
  } else {
    open_start_ = sched_->now();
  }
  pending_ = sched_->ScheduleAfter(config_.slide, [this] {
    pending_ = 0;
    Tick();
  });
}

void Telemetry::CloseBuckets(SimTime bucket_end) {
  for (auto& instrument : instruments_) {
    if (instrument->kind_ == Rollup::Kind::kGauge && instrument->probe_) {
      instrument->Observe(instrument->probe_());
    }
  }
  for (auto& instrument : instruments_) {
    const Rollup::Bucket& bucket = instrument->open_;
    if (bucket.count != 0) {
      const std::string& name = instrument->name_;
      series_.rows.push_back(
          {bucket_end, name + ".count", static_cast<double>(bucket.count)});
      series_.rows.push_back({bucket_end, name + ".sum", bucket.sum});
      series_.rows.push_back({bucket_end, name + ".min", bucket.min});
      series_.rows.push_back({bucket_end, name + ".max", bucket.max});
      if (instrument->kind_ == Rollup::Kind::kHistogram) {
        instrument->open_sketch_.ForEachNonZero(
            [&](int index, std::uint64_t count) {
              series_.rows.push_back({bucket_end,
                                      name + ".b" + std::to_string(index),
                                      static_cast<double>(count)});
            });
      }
    }
    instrument->Close();
  }
  ++ticks_;
  open_start_ = bucket_end;
  EvaluateRules(bucket_end);
  for (auto& hook : tick_hooks_) hook(bucket_end);
}

void Telemetry::EvaluateRules(SimTime now) {
  for (ThresholdState& state : threshold_rules_) {
    const ThresholdRule& rule = state.rule;
    const double value = QueryAgg(rule.metric, rule.agg, rule.window);
    const bool hot =
        rule.above ? value > rule.threshold : value < rule.threshold;
    if (hot && !state.firing) {
      Fire(now, rule.name, rule.metric, value, rule.threshold, rule.window);
    }
    state.firing = hot;
  }
  for (BurnState& state : burn_rules_) {
    const BurnRateRule& rule = state.rule;
    const double budget = 1.0 - rule.slo_target;
    if (budget <= 0.0) continue;
    const auto burn = [&](Duration window) {
      const double total = Query(rule.total_metric, window).sum;
      if (total <= 0.0) return 0.0;
      const double good = Query(rule.good_metric, window).sum;
      return (1.0 - good / total) / budget;
    };
    const double short_burn = burn(rule.short_window);
    const bool hot = short_burn > rule.burn_threshold &&
                     burn(rule.long_window) > rule.burn_threshold;
    if (hot && !state.firing) {
      Fire(now, rule.name, rule.good_metric, short_burn, rule.burn_threshold,
           rule.short_window);
    }
    state.firing = hot;
  }
}

void Telemetry::Fire(SimTime now, const std::string& rule,
                     const std::string& metric, double value, double threshold,
                     Duration window) {
  alerts_.push_back(Alert{now, rule, metric, value, threshold, window});
  if (tracer_ != nullptr) {
    tracer_->InstantAt(now, tracer_->Intern(rule), Category::kAlert,
                       /*track=*/0, std::llround(value * 1e6));
  }
}

const Rollup* Telemetry::Find(std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

RollupResult Telemetry::Query(std::string_view name, Duration window) const {
  const Rollup* rollup = Find(name);
  return rollup == nullptr ? RollupResult{} : rollup->Query(window);
}

double Telemetry::QueryAgg(std::string_view name, Agg agg,
                           Duration window) const {
  const Rollup* rollup = Find(name);
  return rollup == nullptr ? 0.0 : rollup->QueryAgg(agg, window);
}

AlertLog Telemetry::TakeAlerts() {
  AlertLog out;
  out.alerts = std::move(alerts_);
  alerts_.clear();
  return out;
}

TelemetrySeries Telemetry::TakeSeries() {
  TelemetrySeries out = std::move(series_);
  series_ = TelemetrySeries{};
  return out;
}

// --- NodeHealth -----------------------------------------------------------

NodeHealth::NodeHealth(Telemetry* telemetry, NodeHealthConfig config)
    : telemetry_(telemetry), config_(config) {}

void NodeHealth::AddNode(int node_id, NodeHealthInputs inputs) {
  nodes_.push_back(Node{node_id, std::move(inputs)});
}

double NodeHealth::ScoreOf(const Node& node) const {
  double weight_sum = 0.0;
  double penalty = 0.0;
  const auto term = [&](const std::string& metric, double weight, Agg agg,
                        double cap) {
    if (metric.empty() || weight <= 0.0 || cap <= 0.0) return;
    const double value = telemetry_->QueryAgg(metric, agg, config_.window);
    weight_sum += weight;
    penalty += weight * Clamp01(value / cap);
  };
  term(node.inputs.utilization, config_.w_util, Agg::kMean, 1.0);
  term(node.inputs.power, config_.w_power, Agg::kMean, config_.power_cap_w);
  term(node.inputs.queue_depth, config_.w_queue, Agg::kMean,
       config_.queue_cap);
  term(node.inputs.shed, config_.w_shed, Agg::kRate, config_.shed_rate_cap);
  term(node.inputs.lag, config_.w_lag, Agg::kMean, config_.lag_cap);
  if (weight_sum <= 0.0) return 1.0;
  return Clamp01(1.0 - penalty / weight_sum);
}

double NodeHealth::Score(int node_id) const {
  for (const Node& node : nodes_) {
    if (node.id == node_id) return ScoreOf(node);
  }
  return 1.0;
}

void NodeHealth::PublishMetrics(MetricsRegistry* registry,
                                const std::string& prefix) {
  for (const Node& node : nodes_) {
    registry->AddGauge(prefix + ".node" + std::to_string(node.id),
                       [this, id = node.id] { return Score(id); });
  }
}

void NodeHealth::EmitTraceInstants(Tracer* tracer) {
  telemetry_->AddTickHook([this, tracer](SimTime now) {
    for (const Node& node : nodes_) {
      tracer->InstantAt(now, "health", Category::kHealth, node.id,
                        std::llround(ScoreOf(node) * 1000.0));
    }
  });
}

// --- glue -----------------------------------------------------------------

load::SloStreamHooks SloStreamInto(Telemetry* telemetry,
                                   const std::string& prefix) {
  Counter offered = telemetry->AddCounter(prefix + ".offered");
  Counter good = telemetry->AddCounter(prefix + ".good");
  Counter shed = telemetry->AddCounter(prefix + ".shed");
  Counter errors = telemetry->AddCounter(prefix + ".errors");
  Histogram latency = telemetry->AddHistogram(prefix + ".latency");
  load::SloStreamHooks hooks;
  hooks.on_complete = [offered, good, errors, latency](
                          SimTime /*intended*/, Duration honest, bool ok,
                          bool under_slo) mutable {
    offered.Add();
    if (!ok) {
      errors.Add();
      return;
    }
    latency.Record(honest);
    if (under_slo) good.Add();
  };
  hooks.on_shed = [offered, shed](SimTime /*intended*/) mutable {
    offered.Add();
    shed.Add();
  };
  return hooks;
}

}  // namespace wimpy::obs
