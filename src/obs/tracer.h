// Deterministic event tracing for the simulation engine and the workload
// layers (see docs/observability.md).
//
// A `Tracer` records a flat, execution-ordered stream of trace events:
// engine-level per-event hooks (time, sequence number) wired into
// `sim::Scheduler`, and explicit application-level instants and
// begin/end spans emitted by instrumented components (web requests,
// MapReduce tasks, network timeouts). Spans can additionally carry a
// causal identity (`TraceContext`: trace/span/parent ids) so a sampled
// request forms a cross-node span tree that the critical-path analyzer
// (obs/critical_path.h, tools/trace_analyze.py) can reconstruct from the
// export alone. The stream is a pure function of the simulation — no
// wall-clock, no pointers, no thread identity — so a trace taken at any
// `--threads` count is byte-identical for the same seed once
// per-replication tracers are merged in index order (the same contract
// as `sim::RunSweep` results).
//
// Overhead contract:
//  * Call sites hold a `Tracer*` that is null by default; an
//    uninstrumented run performs no calls at all.
//  * A disabled tracer (`set_enabled(false)`) returns from every record
//    call after a single predictable branch and never allocates.
//  * The engine hook costs the scheduler one null-check per executed
//    event when no tracer is attached; bench_engine_micro's
//    BM_SchedulerEventThroughput pins this at <= 2% against the
//    BENCH_engine.json baseline (tools/check_bench_regression.sh).
#ifndef WIMPY_OBS_TRACER_H_
#define WIMPY_OBS_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "obs/context.h"
#include "sim/scheduler.h"

namespace wimpy::obs {

// Coarse event taxonomy; exported as the Chrome trace `cat` field.
enum class Category : std::uint8_t {
  kEngine = 0,  // scheduler-executed events (engine hook)
  kRequest,     // web connections/calls
  kTask,        // MapReduce map/reduce tasks
  kNet,         // TCP/fabric events (SYN drops, timeouts)
  kApp,         // anything else (tests, experiments)
  kAlert,       // telemetry alert-rule firings (obs/telemetry.h)
  kHealth,      // per-node health-score samples (obs::NodeHealth)
};
const char* CategoryName(Category category);

// One trace record. `name` must point at a string with static lifetime —
// either a literal or a string interned through `Tracer::Intern` (which
// outlives every log taken from that tracer); events are plain values so
// logs can be moved across threads and merged.
struct TraceEvent {
  SimTime time = 0;
  // Engine sequence number for kEngine hook events; a tracer-local
  // monotonic counter otherwise. Strictly increasing within one tracer
  // for a given source, which makes traces diffable.
  std::uint64_t seq = 0;
  const char* name = "";
  std::int64_t arg = 0;
  std::int32_t track = 0;  // Chrome trace `tid`: one logical timeline
  Category category = Category::kApp;
  char phase = 'i';  // 'i' instant, 'B' span begin, 'E' span end
  // Causal identity (0 = none). Span begins/ends carry all three;
  // causal instants carry trace_id + parent_id (the enclosing span).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

// A detached, mergeable trace: what a replication returns from a sweep.
// `interned` shares ownership of the originating tracer's intern arena,
// so `name` pointers produced by `Tracer::Intern` stay valid even after
// the per-replication tracer is destroyed (the sweep idiom: tracers die
// at replication end, logs are exported from main afterwards).
struct TraceLog {
  std::vector<TraceEvent> events;
  std::shared_ptr<const std::set<std::string, std::less<>>> interned;
};

class Tracer {
 public:
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // --- causal identity --------------------------------------------------
  // Fresh ids for a new request/job tree or a new span within one.
  // Tracer-local counters: deterministic, never reused, never 0.
  std::uint64_t NewTraceId() { return next_trace_id_++; }
  std::uint64_t NewSpanId() { return next_span_id_++; }

  // Interns a dynamic span name (e.g. a per-node label or a job name)
  // and returns a pointer suitable for `TraceEvent::name`, valid as long
  // as the tracer or any log taken from it lives (TakeLog gives each
  // detached log shared ownership of the arena). Deduplicated: interning
  // the same text twice returns the same pointer. Never cleared.
  const char* Intern(std::string_view name);

  // --- explicit-time records -------------------------------------------
  // The *At forms take the timestamp explicitly so non-engine clocks
  // (e.g. the reference scheduler in tests) can share one tracer.
  void InstantAt(SimTime t, const char* name, Category category,
                 std::int32_t track, std::int64_t arg = 0) {
    if (!enabled_) return;
    Record(t, name, category, track, arg, 'i', TraceContext{});
  }
  // Causal instant: belongs to `ctx.trace_id`, nested under
  // `ctx.parent_id` (callers pass the enclosing span's id there).
  void InstantAt(SimTime t, const char* name, Category category,
                 std::int32_t track, const TraceContext& ctx,
                 std::int64_t arg = 0) {
    if (!enabled_) return;
    Record(t, name, category, track, arg, 'i', ctx);
  }
  void BeginSpanAt(SimTime t, const char* name, Category category,
                   std::int32_t track, std::int64_t arg = 0) {
    BeginSpanAt(t, name, category, track, TraceContext{}, arg);
  }
  void BeginSpanAt(SimTime t, const char* name, Category category,
                   std::int32_t track, const TraceContext& ctx,
                   std::int64_t arg = 0) {
    if (!enabled_) return;
    ++open_spans_[track];
    Record(t, name, category, track, arg, 'B', ctx);
  }
  void EndSpanAt(SimTime t, const char* name, Category category,
                 std::int32_t track, std::int64_t arg = 0) {
    EndSpanAt(t, name, category, track, TraceContext{}, arg);
  }
  void EndSpanAt(SimTime t, const char* name, Category category,
                 std::int32_t track, const TraceContext& ctx,
                 std::int64_t arg = 0) {
    if (!enabled_) return;
    auto it = open_spans_.find(track);
    if (it != open_spans_.end() && --it->second <= 0) {
      // Erase balanced tracks so long runs with millions of sampled
      // request timelines don't grow the map without bound.
      open_spans_.erase(it);
    }
    Record(t, name, category, track, arg, 'E', ctx);
  }

  // --- engine hook ------------------------------------------------------
  // Records every event the scheduler executes as a kEngine instant
  // (time = execution time, seq = the engine's global sequence number,
  // track 0). One tracer per scheduler; attaching replaces any previous
  // hook, detaching (or destruction) restores the null hook.
  void AttachEngineHook(sim::Scheduler* sched);
  void DetachEngineHook();

  // --- introspection ----------------------------------------------------
  // Read-only view of the recorded stream in execution order. The arena
  // chunks are flattened into a contiguous vector on first call (O(n)
  // memcpy) and the result is cached: repeated calls while no new events
  // arrive are O(1) and return the same vector object, so references and
  // iterators obtained after recording finished stay valid until the next
  // record/Clear/TakeLog.
  const std::vector<TraceEvent>& events() const {
    if (flat_cache_.size() != count_) Flatten();
    return flat_cache_;
  }
  // Currently-open span depth on a track (0 when balanced). Tests use
  // this to pin span nesting.
  int open_spans(std::int32_t track) const;
  // Number of tracks with at least one open span — the unbalanced-span
  // check: 0 after a fully drained run (tracks balance back to zero and
  // are erased).
  std::size_t open_tracks() const { return open_spans_.size(); }
  std::size_t size() const { return count_; }
  void Clear();

  // Moves the recorded stream out (e.g. into a sweep result), leaving the
  // tracer empty but still attached/enabled. Arena chunks are recycled
  // into the freelist, so a tracer that records/takes in a loop reaches a
  // steady state with zero allocations per cycle.
  TraceLog TakeLog();

  // Arena telemetry (bench JSON context): chunks newly allocated vs
  // recycled from the freelist over the tracer's lifetime.
  std::size_t arena_chunk_allocs() const { return chunk_allocs_; }
  std::size_t arena_chunk_reuses() const { return chunk_reuses_; }

 private:
  // Records live in fixed 16 Ki-event chunks (1 MiB of 64-byte events)
  // filled by bump pointer. Compared to a flat vector this removes the
  // doubling-growth copy storms from the hot record path (a 100k-event
  // trace used to re-memcpy ~2x its size) and lets Clear/TakeLog recycle
  // chunks through a freelist instead of re-touching pages. Chunks are
  // raw byte storage: slots are placement-new'd on record, so a fresh
  // chunk costs one allocation, not a 1 MiB value-initialisation sweep
  // (TraceEvent is trivially copyable and trivially destructible, which
  // the flatten memcpy below relies on).
  static constexpr std::size_t kChunkEvents = 16384;
  using ChunkPtr = std::unique_ptr<std::byte[]>;
  static TraceEvent* ChunkData(const ChunkPtr& chunk) {
    return reinterpret_cast<TraceEvent*>(chunk.get());
  }

  static void EngineTrampoline(void* ctx, SimTime t, std::uint64_t seq);

  void NewChunk();
  void Flatten() const;
  void RecycleChunks();

  void Record(SimTime t, const char* name, Category category,
              std::int32_t track, std::int64_t arg, char phase,
              const TraceContext& ctx) {
    if (cur_ == cur_end_) NewChunk();
    ::new (static_cast<void*>(cur_++))
        TraceEvent{t, next_seq_++, name, arg, track, category, phase,
                   ctx.trace_id, ctx.span_id, ctx.parent_id};
    ++count_;
  }

  bool enabled_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  sim::Scheduler* hooked_ = nullptr;
  std::vector<ChunkPtr> chunks_;       // recording order
  std::vector<ChunkPtr> free_chunks_;  // recycled by Clear/TakeLog
  TraceEvent* cur_ = nullptr;          // bump pointer into chunks_.back()
  TraceEvent* cur_end_ = nullptr;
  std::size_t count_ = 0;
  std::size_t chunk_allocs_ = 0;
  std::size_t chunk_reuses_ = 0;
  // events() cache; flat_cache_.size() == count_ means it is current
  // (count_ only grows between rebuilds; every reset path clears both).
  mutable std::vector<TraceEvent> flat_cache_;
  std::map<std::int32_t, int> open_spans_;
  // Node-stable storage: set elements never move, so the returned
  // c_str() pointers stay valid for the arena's lifetime. Shared so
  // TakeLog can hand each detached log a keepalive reference.
  std::shared_ptr<std::set<std::string, std::less<>>> interned_ =
      std::make_shared<std::set<std::string, std::less<>>>();
};

// RAII span: begins on construction, ends (at the scheduler's then-current
// time) on destruction — robust to early co_return in coroutine processes.
// A default-constructed or null-tracer guard is a no-op.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, sim::Scheduler* sched, const char* name,
             Category category, std::int32_t track, std::int64_t arg = 0)
      : tracer_(tracer), sched_(sched), name_(name), category_(category),
        track_(track), arg_(arg) {
    if (tracer_ != nullptr) {
      tracer_->BeginSpanAt(sched_->now(), name_, category_, track_, arg_);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->EndSpanAt(sched_->now(), name_, category_, track_, arg_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  sim::Scheduler* sched_ = nullptr;
  const char* name_ = "";
  Category category_ = Category::kApp;
  std::int32_t track_ = 0;
  std::int64_t arg_ = 0;
};

// RAII *causal* span: allocates a span id under `parent`'s context,
// begins on construction, ends on destruction. `handle()` is the context
// to propagate into callees (its `ctx.span_id` is this span, so children
// constructed from it nest correctly). With a null-tracer parent the
// whole object is a no-op and `handle()` stays null — one branch per
// layer, zero allocations.
class CausalSpan {
 public:
  CausalSpan() = default;
  // Inherits the parent's track (the common nested-span case).
  CausalSpan(const TraceHandle& parent, const char* name, Category category,
             std::int64_t arg = 0)
      : CausalSpan(parent, parent.track, name, category, arg) {}
  // Explicit track: cross-node children that get their own timeline
  // (e.g. MapReduce task attempts under the job span). The exporter
  // renders a Perfetto flow arrow when parent and child tracks differ.
  CausalSpan(const TraceHandle& parent, std::int32_t track,
             const char* name, Category category, std::int64_t arg = 0)
      : h_(parent), name_(name), category_(category), arg_(arg) {
    if (h_.tracer == nullptr) return;
    h_.track = track;
    h_.ctx.parent_id = parent.ctx.span_id;
    h_.ctx.span_id = h_.tracer->NewSpanId();
    h_.tracer->BeginSpanAt(h_.sched->now(), name_, category_, h_.track,
                           h_.ctx, arg_);
  }
  ~CausalSpan() {
    if (h_.tracer != nullptr) {
      h_.tracer->EndSpanAt(h_.sched->now(), name_, category_, h_.track,
                           h_.ctx, arg_);
    }
  }

  CausalSpan(const CausalSpan&) = delete;
  CausalSpan& operator=(const CausalSpan&) = delete;

  // Context for callees: ctx.span_id is this span.
  const TraceHandle& handle() const { return h_; }

  // Point event inside this span (e.g. "http_500", "syn_retry").
  void Instant(const char* name, std::int64_t arg = 0) {
    if (h_.tracer == nullptr) return;
    h_.tracer->InstantAt(
        h_.sched->now(), name, category_, h_.track,
        TraceContext{h_.ctx.trace_id, 0, h_.ctx.span_id}, arg);
  }

 private:
  TraceHandle h_;
  const char* name_ = "";
  Category category_ = Category::kApp;
  std::int64_t arg_ = 0;
};

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_TRACER_H_
