// Deterministic event tracing for the simulation engine and the workload
// layers (see docs/observability.md).
//
// A `Tracer` records a flat, execution-ordered stream of trace events:
// engine-level per-event hooks (time, sequence number) wired into
// `sim::Scheduler`, and explicit application-level instants and
// begin/end spans emitted by instrumented components (web requests,
// MapReduce tasks, network timeouts). The stream is a pure function of
// the simulation — no wall-clock, no pointers, no thread identity — so a
// trace taken at any `--threads` count is byte-identical for the same
// seed once per-replication tracers are merged in index order (the same
// contract as `sim::RunSweep` results).
//
// Overhead contract:
//  * Call sites hold a `Tracer*` that is null by default; an
//    uninstrumented run performs no calls at all.
//  * A disabled tracer (`set_enabled(false)`) returns from every record
//    call after a single predictable branch and never allocates.
//  * The engine hook costs the scheduler one null-check per executed
//    event when no tracer is attached; bench_engine_micro's
//    BM_SchedulerEventThroughput pins this at <= 2% against the
//    BENCH_engine.json baseline (tools/check_bench_regression.sh).
#ifndef WIMPY_OBS_TRACER_H_
#define WIMPY_OBS_TRACER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.h"
#include "sim/scheduler.h"

namespace wimpy::obs {

// Coarse event taxonomy; exported as the Chrome trace `cat` field.
enum class Category : std::uint8_t {
  kEngine = 0,  // scheduler-executed events (engine hook)
  kRequest,     // web connections/calls
  kTask,        // MapReduce map/reduce tasks
  kNet,         // TCP/fabric events (SYN drops, timeouts)
  kApp,         // anything else (tests, experiments)
};
const char* CategoryName(Category category);

// One trace record. `name` must point at a string with static lifetime
// (call sites use literals); events are plain values so logs can be moved
// across threads and merged.
struct TraceEvent {
  SimTime time = 0;
  // Engine sequence number for kEngine hook events; a tracer-local
  // monotonic counter otherwise. Strictly increasing within one tracer
  // for a given source, which makes traces diffable.
  std::uint64_t seq = 0;
  const char* name = "";
  std::int64_t arg = 0;
  std::int32_t track = 0;  // Chrome trace `tid`: one logical timeline
  Category category = Category::kApp;
  char phase = 'i';  // 'i' instant, 'B' span begin, 'E' span end
};

// A detached, mergeable trace: what a replication returns from a sweep.
struct TraceLog {
  std::vector<TraceEvent> events;
};

class Tracer {
 public:
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // --- explicit-time records -------------------------------------------
  // The *At forms take the timestamp explicitly so non-engine clocks
  // (e.g. the reference scheduler in tests) can share one tracer.
  void InstantAt(SimTime t, const char* name, Category category,
                 std::int32_t track, std::int64_t arg = 0) {
    if (!enabled_) return;
    Record(t, name, category, track, arg, 'i');
  }
  void BeginSpanAt(SimTime t, const char* name, Category category,
                   std::int32_t track, std::int64_t arg = 0) {
    if (!enabled_) return;
    ++open_spans_[track];
    Record(t, name, category, track, arg, 'B');
  }
  void EndSpanAt(SimTime t, const char* name, Category category,
                 std::int32_t track, std::int64_t arg = 0) {
    if (!enabled_) return;
    auto it = open_spans_.find(track);
    if (it != open_spans_.end() && it->second > 0) --it->second;
    Record(t, name, category, track, arg, 'E');
  }

  // --- engine hook ------------------------------------------------------
  // Records every event the scheduler executes as a kEngine instant
  // (time = execution time, seq = the engine's global sequence number,
  // track 0). One tracer per scheduler; attaching replaces any previous
  // hook, detaching (or destruction) restores the null hook.
  void AttachEngineHook(sim::Scheduler* sched);
  void DetachEngineHook();

  // --- introspection ----------------------------------------------------
  const std::vector<TraceEvent>& events() const { return events_; }
  // Currently-open span depth on a track (0 when balanced). Tests use
  // this to pin span nesting.
  int open_spans(std::int32_t track) const;
  std::size_t size() const { return events_.size(); }
  void Clear();

  // Moves the recorded stream out (e.g. into a sweep result), leaving the
  // tracer empty but still attached/enabled.
  TraceLog TakeLog();

 private:
  static void EngineTrampoline(void* ctx, SimTime t, std::uint64_t seq);

  void Record(SimTime t, const char* name, Category category,
              std::int32_t track, std::int64_t arg, char phase) {
    events_.push_back(
        TraceEvent{t, next_seq_++, name, arg, track, category, phase});
  }

  bool enabled_;
  std::uint64_t next_seq_ = 1;
  sim::Scheduler* hooked_ = nullptr;
  std::vector<TraceEvent> events_;
  std::map<std::int32_t, int> open_spans_;
};

// RAII span: begins on construction, ends (at the scheduler's then-current
// time) on destruction — robust to early co_return in coroutine processes.
// A default-constructed or null-tracer guard is a no-op.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, sim::Scheduler* sched, const char* name,
             Category category, std::int32_t track, std::int64_t arg = 0)
      : tracer_(tracer), sched_(sched), name_(name), category_(category),
        track_(track), arg_(arg) {
    if (tracer_ != nullptr) {
      tracer_->BeginSpanAt(sched_->now(), name_, category_, track_, arg_);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->EndSpanAt(sched_->now(), name_, category_, track_, arg_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  sim::Scheduler* sched_ = nullptr;
  const char* name_ = "";
  Category category_ = Category::kApp;
  std::int32_t track_ = 0;
  std::int64_t arg_ = 0;
};

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_TRACER_H_
