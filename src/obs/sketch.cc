#include "obs/sketch.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace wimpy::obs {

namespace {
constexpr double kDomainMin = 0x1p-30;  // 2^(kMinExp - 1)
constexpr double kDomainMax = 0x1p20;   // 2^kMaxExp
}  // namespace

HdrSketch::HdrSketch() : counts_(kBucketCount, 0) {}

int HdrSketch::BucketIndex(double value) {
  if (!(value >= kDomainMin)) return 0;  // <=0, subnormal-small, NaN
  if (value >= kDomainMax) return kBucketCount - 1;  // includes +inf
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp
  int sub = static_cast<int>((mantissa * 2.0 - 1.0) * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double HdrSketch::BucketLower(int index) {
  assert(index >= 0 && index < kBucketCount);
  if (index == 0) return 0.0;
  if (index == kBucketCount - 1) return kDomainMax;
  const int k = index - 1;
  const int exp = kMinExp + k / kSubBuckets;
  const double base = std::ldexp(1.0, exp - 1);  // octave start 2^(exp-1)
  const double width = base / kSubBuckets;
  return base + (k % kSubBuckets) * width;
}

double HdrSketch::BucketUpper(int index) {
  assert(index >= 0 && index < kBucketCount);
  if (index == 0) return kDomainMin;
  if (index == kBucketCount - 1) return 2.0 * kDomainMax;
  const int k = index - 1;
  const int exp = kMinExp + k / kSubBuckets;
  const double base = std::ldexp(1.0, exp - 1);
  const double width = base / kSubBuckets;
  return base + (k % kSubBuckets + 1) * width;
}

void HdrSketch::Record(double value) {
  ++counts_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

void HdrSketch::Merge(const HdrSketch& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void HdrSketch::AddBucketCount(int index, std::uint64_t n) {
  assert(index >= 0 && index < kBucketCount);
  if (n == 0) return;
  counts_[index] += n;
  const double mid = 0.5 * (BucketLower(index) + BucketUpper(index));
  if (count_ == 0) {
    min_ = mid;
    max_ = mid;
  } else {
    if (mid < min_) min_ = mid;
    if (mid > max_) max_ = mid;
  }
  count_ += n;
  sum_ += static_cast<double>(n) * mid;
}

double HdrSketch::Quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double need = q * static_cast<double>(count_);
  double cum = 0.0;
  for (int i = 0; i < kBucketCount; ++i) {
    if (counts_[i] == 0) continue;
    cum += static_cast<double>(counts_[i]);
    if (cum >= need) {
      double mid = 0.5 * (BucketLower(i) + BucketUpper(i));
      if (mid < min_) mid = min_;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;  // q == 1 with fp round-off
}

double HdrSketch::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double HdrSketch::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

void HdrSketch::Reset() {
  counts_.assign(kBucketCount, 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

// Sum is deliberately excluded: it is order-sensitive floating-point
// accumulation, so merge-of-shards and whole-stream agree on ranks and
// extremes (everything quantiles depend on) but may differ in sum's
// last ulp.
bool HdrSketch::operator==(const HdrSketch& other) const {
  if (count_ != other.count_) return false;
  if (count_ != 0 && (min_ != other.min_ || max_ != other.max_))
    return false;
  return counts_ == other.counts_;
}

}  // namespace wimpy::obs
