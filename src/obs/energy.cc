#include "obs/energy.h"

#include "sim/scheduler.h"

namespace wimpy::obs {

std::function<void(SimTime, Watts)> EnergyAttributor::ObserveNode(
    sim::Scheduler* sched, int node_id, Watts initial_watts) {
  sched_ = sched;
  NodeState& node = nodes_[node_id];
  node.watts = initial_watts;
  node.last = sched->now();
  return [this, node_id](SimTime t, Watts w) {
    NodeState& n = nodes_[node_id];
    Accrue(n, t);
    n.watts = w;
  };
}

void EnergyAttributor::Accrue(NodeState& node, SimTime now) {
  if (now <= node.last) {
    node.last = now;
    return;
  }
  const Joules joules = node.watts * (now - node.last);
  node.last = now;
  ledger_.total_joules += joules;
  if (in_window_) ledger_.window_joules += joules;
  if (node.resident_rows.empty()) {
    ledger_.unattributed_joules += joules;
    return;
  }
  const Joules share = joules / static_cast<double>(node.resident_rows.size());
  for (std::size_t idx : node.resident_rows) {
    ledger_.rows[idx].joules += share;
  }
}

void EnergyAttributor::AccrueAll() {
  if (sched_ == nullptr) return;
  const SimTime now = sched_->now();
  for (auto& [id, node] : nodes_) Accrue(node, now);
}

void EnergyAttributor::SpanEnter(int node_id, const TraceHandle& handle,
                                 const char* name) {
  if (!handle) return;
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return;
  NodeState& node = it->second;
  Accrue(node, handle.sched->now());
  const auto key = std::make_pair(handle.ctx.span_id, node_id);
  auto [row_it, inserted] = row_index_.emplace(key, ledger_.rows.size());
  if (inserted) {
    ledger_.rows.push_back(SpanEnergyRow{handle.ctx.trace_id,
                                         handle.ctx.span_id, name, node_id, 0});
  }
  node.resident_rows.push_back(row_it->second);
}

void EnergyAttributor::SpanLeave(int node_id, const TraceHandle& handle) {
  if (!handle) return;
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return;
  NodeState& node = it->second;
  Accrue(node, handle.sched->now());
  auto row_it = row_index_.find(std::make_pair(handle.ctx.span_id, node_id));
  if (row_it == row_index_.end()) return;
  // Erase one occurrence (re-entrant residency enters more than once).
  for (auto r = node.resident_rows.rbegin(); r != node.resident_rows.rend();
       ++r) {
    if (*r == row_it->second) {
      node.resident_rows.erase(std::next(r).base());
      break;
    }
  }
}

void EnergyAttributor::BeginWindow() {
  AccrueAll();
  in_window_ = true;
}

void EnergyAttributor::EndWindow() {
  AccrueAll();
  in_window_ = false;
}

EnergyLedger EnergyAttributor::TakeLedger() {
  AccrueAll();
  EnergyLedger out = std::move(ledger_);
  ledger_ = EnergyLedger{};
  row_index_.clear();
  for (auto& [id, node] : nodes_) node.resident_rows.clear();
  return out;
}

}  // namespace wimpy::obs
