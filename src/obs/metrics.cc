#include "obs/metrics.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace wimpy::obs {

namespace {
[[noreturn]] void DieDetached(const char* what) {
  std::fprintf(stderr,
               "MetricsRegistry::%s on a detached registry: probes were "
               "severed because their components are gone\n",
               what);
  std::abort();
}
}  // namespace

MetricsRegistry::~MetricsRegistry() { Stop(); }

void MetricsRegistry::Add(std::string name, std::function<double()> probe) {
  assert(series_.times.empty() &&
         "register all probes before the first sample");
  // Registering a live probe re-arms a detached registry: the guard
  // exists to catch sampling through *severed* closures, not to make
  // registries single-use.
  detached_ = false;
  probes_.push_back(Probe{std::move(name), std::move(probe)});
  series_.names.push_back(probes_.back().name);
}

void MetricsRegistry::AddGauge(std::string name,
                               std::function<double()> probe) {
  Add(std::move(name), std::move(probe));
}

void MetricsRegistry::AddCounter(std::string name,
                                 std::function<double()> probe) {
  Add(std::move(name), std::move(probe));
}

void MetricsRegistry::Start(sim::Scheduler* sched, Duration period) {
  if (detached_) DieDetached("Start");
  Stop();
  sched_ = sched;
  period_ = period > 0 ? period : 1.0;
  running_ = true;
  Tick();
}

void MetricsRegistry::Stop() {
  running_ = false;
  if (pending_ != 0 && sched_ != nullptr) {
    sched_->Cancel(pending_);
    pending_ = 0;
  }
}

void MetricsRegistry::Detach() {
  Stop();
  for (Probe& probe : probes_) probe.fn = nullptr;
  detached_ = true;
}

void MetricsRegistry::SampleNow() {
  if (detached_) DieDetached("SampleNow");
  if (sched_ == nullptr) return;
  series_.times.push_back(sched_->now());
  auto& row = series_.rows.emplace_back();
  row.reserve(probes_.size());
  for (const Probe& probe : probes_) row.push_back(probe.fn());
}

void MetricsRegistry::Tick() {
  if (!running_) return;
  SampleNow();
  pending_ = sched_->ScheduleAfter(period_, [this] {
    pending_ = 0;
    Tick();
  });
}

MetricsSeries MetricsRegistry::TakeSeries() {
  MetricsSeries out = std::move(series_);
  series_ = MetricsSeries{};
  series_.names = out.names;  // probes remain registered
  return out;
}

}  // namespace wimpy::obs
