// Per-span energy attribution (see docs/observability.md).
//
// The paper's headline metric is work-done-per-joule; hw::NodePowerModel
// integrates each node's piecewise-constant P(t) exactly, but by itself
// that answers "what did the node burn", not "what did this request
// burn". An `EnergyAttributor` closes the gap: it subscribes to every
// observed node's power-change events and keeps, per node, the set of
// causal spans currently *resident* there (a request being served, a KV
// get, a replication write). Between consecutive boundary events — a
// power change, a span entering or leaving, a window mark — P(t) is
// constant, so the energy of the interval is exact on the simulated
// clock; it is split equally among the spans resident for that interval,
// or accrued as `unattributed` (idle/background) when none are.
//
// Everything is driven by simulated-clock callbacks in deterministic
// order, so ledgers — like traces — are byte-identical at any --threads
// once per-replication attributors are merged in index order.
//
// Ownership: the attributor borrows nothing after the subscription
// closure is installed; `hw::ServerNode::ObserveEnergy` wires the
// closure so layering stays one-way (obs knows no hw types).
#ifndef WIMPY_OBS_ENERGY_H_
#define WIMPY_OBS_ENERGY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "obs/context.h"

namespace wimpy::obs {

// One attribution row: the joules a span consumed on one node. A span
// that touches several nodes (e.g. a replicated write) gets one row per
// node, in first-residency order.
struct SpanEnergyRow {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  const char* name = "";
  int node_id = 0;
  Joules joules = 0;
};

// The detached result of a replication: plain data, mergeable.
struct EnergyLedger {
  std::vector<SpanEnergyRow> rows;
  // Node energy accrued while no span was resident (idle + background).
  Joules unattributed_joules = 0;
  // All observed nodes, whole run: rows + unattributed == total exactly.
  Joules total_joules = 0;
  // Subtotal accrued between BeginWindow() and EndWindow() — the same
  // number the experiments difference out of CumulativeJoules for their
  // measurement window, re-derivable here from the trace side.
  Joules window_joules = 0;
};

class EnergyAttributor {
 public:
  EnergyAttributor() = default;

  EnergyAttributor(const EnergyAttributor&) = delete;
  EnergyAttributor& operator=(const EnergyAttributor&) = delete;

  // Starts observing a node at the scheduler's current time and returns
  // the power-change listener to install via
  // `hw::NodePowerModel::SetPowerListener` (callers use
  // `hw::ServerNode::ObserveEnergy`, which wires it). `initial_watts` is
  // the node's current level at subscription time.
  std::function<void(SimTime, Watts)> ObserveNode(sim::Scheduler* sched,
                                                  int node_id,
                                                  Watts initial_watts);

  bool observing(int node_id) const {
    return nodes_.find(node_id) != nodes_.end();
  }
  std::size_t node_count() const { return nodes_.size(); }

  // Span residency. Entering an unobserved node (e.g. a client machine)
  // or passing a null handle is a no-op, so call sites can be
  // unconditional. `name` must have static or tracer-interned lifetime.
  void SpanEnter(int node_id, const TraceHandle& handle, const char* name);
  void SpanLeave(int node_id, const TraceHandle& handle);

  // Measurement-window marks at the scheduler's current time; energy
  // accrued between the marks lands in `EnergyLedger::window_joules`.
  void BeginWindow();
  void EndWindow();

  // Settles all nodes at the current time and moves the ledger out,
  // zeroing the accumulators but keeping node subscriptions live.
  EnergyLedger TakeLedger();

 private:
  struct NodeState {
    Watts watts = 0;
    SimTime last = 0;
    std::vector<std::size_t> resident_rows;  // indices into ledger_.rows
  };

  void Accrue(NodeState& node, SimTime now);
  void AccrueAll();

  sim::Scheduler* sched_ = nullptr;
  bool in_window_ = false;
  std::map<int, NodeState> nodes_;
  // (span_id, node_id) -> row index, so re-entering accumulates.
  std::map<std::pair<std::uint64_t, int>, std::size_t> row_index_;
  EnergyLedger ledger_;
};

// RAII residency: enters on construction, leaves on destruction. No-op
// for a null handle or an unobserved node — stack it right next to the
// CausalSpan whose work runs on `node_id`.
class ScopedResidency {
 public:
  ScopedResidency() = default;
  ScopedResidency(EnergyAttributor* attributor, int node_id,
                  const TraceHandle& handle, const char* name)
      : attributor_(attributor), node_id_(node_id), handle_(handle) {
    if (attributor_ != nullptr) {
      attributor_->SpanEnter(node_id_, handle_, name);
    }
  }
  ~ScopedResidency() {
    if (attributor_ != nullptr) {
      attributor_->SpanLeave(node_id_, handle_);
    }
  }

  ScopedResidency(const ScopedResidency&) = delete;
  ScopedResidency& operator=(const ScopedResidency&) = delete;

 private:
  EnergyAttributor* attributor_ = nullptr;
  int node_id_ = 0;
  TraceHandle handle_;
};

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_ENERGY_H_
