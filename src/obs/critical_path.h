// Causal-trace reconstruction and critical-path/joule analysis.
//
// Input is the flat `TraceLog` a `Tracer` records: span begin/end pairs
// keyed by causal span ids (obs/context.h), plus causal instants. This
// module rebuilds the per-request span trees and answers the two
// questions the paper's tables reduce to — where did the latency go
// (critical-path decomposition, Table 7's db/cache/total delay split)
// and what did it cost (joules per request, FAWN-style queries/joule) —
// from the export alone, without access to the live testbed. The Python
// twin (tools/trace_analyze.py) implements the same algorithm over the
// JSON export; the golden test pins them against each other.
//
// All outputs are deterministic functions of the log: spans sort by
// (begin, span_id), ties in the backward walk break toward the later
// begin then the larger span_id.
#ifndef WIMPY_OBS_CRITICAL_PATH_H_
#define WIMPY_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "obs/energy.h"
#include "obs/tracer.h"

namespace wimpy::obs {

// One reconstructed span. `complete` is false when the log held a begin
// with no matching end (the run's horizon cut it); its `end` is then the
// log's maximum timestamp.
struct SpanRecord {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  const char* name = "";
  SimTime begin = 0;
  SimTime end = 0;
  std::int64_t arg = 0;
  bool complete = true;
  std::vector<std::size_t> children;  // indices into TraceTree::spans
};

// A causal instant attached to a trace (parent_id = enclosing span).
struct InstantRecord {
  SimTime time = 0;
  const char* name = "";
  std::int64_t arg = 0;
  std::uint64_t parent_id = 0;
};

// One request/job tree: all spans sharing a trace_id. `root` indexes the
// earliest parentless span (parent_id 0 or absent from the log).
struct TraceTree {
  std::uint64_t trace_id = 0;
  std::size_t root = 0;
  bool complete = true;  // every span in the tree has a matching end
  std::vector<SpanRecord> spans;
  std::vector<InstantRecord> instants;
};

// Rebuilds the span trees of one log. Trees come back ordered by
// trace_id; spans within a tree by (begin, span_id). Non-causal events
// (trace_id 0, e.g. the engine hook stream) are ignored.
std::vector<TraceTree> BuildTraceTrees(const TraceLog& log);

// A maximal constant-attribution stretch of the critical path: during
// [begin, end) the tree's latency was waiting on `spans[span]`
// exclusively (none of its children were the bottleneck).
struct PathSegment {
  std::size_t span = 0;
  SimTime begin = 0;
  SimTime end = 0;
};

// Backward walk from the root's end to its begin. At each point the path
// descends into the child whose effective end (min(child end, current
// time)) is largest; gaps with no child running are the parent's own
// self time. Segments come back in forward time order and exactly tile
// [root.begin, root.end].
std::vector<PathSegment> CriticalPath(const TraceTree& tree);

// Sums critical-path self time by span name — the per-request latency
// decomposition ("serve" self vs "db" vs "cache" vs transfer spans).
std::map<std::string_view, Duration> DecomposeCriticalPath(
    const TraceTree& tree);

// Per-trace roll-up row for the --trace-summary CSV.
struct TraceSummaryRow {
  int series = 0;  // replication index, mirrors the trace export pid
  std::uint64_t trace_id = 0;
  const char* root_name = "";
  SimTime begin = 0;
  Duration latency = 0;
  std::size_t span_count = 0;
  bool complete = true;
  Joules joules = 0;  // attributed energy summed over the tree's spans
};

// One row per trace per log, logs in index order ([config][replication]
// flattening upstream), traces by trace_id. `ledgers` pairs with `logs`
// by index; pass an empty vector when energy attribution was off (the
// joules column is then 0).
std::vector<TraceSummaryRow> SummarizeTraces(
    const std::vector<TraceLog>& logs,
    const std::vector<EnergyLedger>& ledgers);

// SLO-conditioned goodput derived purely from the exports
// (docs/openloop.md): sampled traces whose root begins inside the
// [measure_start, measure_end) window marks, completed with latency <=
// slo, per joule of the ledgers' window subtotal (∫P dt between
// BeginWindow/EndWindow). With 1-in-N trace sampling the numerator counts
// sampled traces only; at trace_sample_every=1 it matches the live
// report's under-SLO counter exactly (tests/obs_energy_test.cc).
struct SloSummary {
  std::int64_t window_traces = 0;    // sampled roots beginning in-window
  std::int64_t under_slo = 0;        // of those: complete && latency <= slo
  Joules window_joules = 0;          // summed over ledgers
  double slo_goodput_per_joule = 0;  // under_slo / window_joules
};
SloSummary SummarizeSloGoodput(const std::vector<TraceLog>& logs,
                               const std::vector<EnergyLedger>& ledgers,
                               Duration slo);

// CSV with header
//   series,trace_id,root,begin_s,latency_s,spans,complete,joules
// Numbers render with the same %.9g contract as the trace/metrics
// exporters, so the file is byte-identical across --threads. When
// `slo` > 0 (--slo-ms) an extra `under_slo` column appends 1 for rows
// that completed within the bound — the default header stays
// byte-identical for existing consumers.
std::string RenderTraceSummaryCsv(const std::vector<TraceLog>& logs,
                                  const std::vector<EnergyLedger>& ledgers,
                                  Duration slo = 0.0);
Status WriteTraceSummaryCsv(const std::vector<TraceLog>& logs,
                            const std::vector<EnergyLedger>& ledgers,
                            const std::string& path, Duration slo = 0.0);

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_CRITICAL_PATH_H_
