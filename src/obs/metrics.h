// Named time-series probes sampled on a simulated-time clock (see
// docs/observability.md).
//
// A `MetricsRegistry` owns a set of named probes — closures reading live
// simulation state (per-node utilisation, queue depths, per-component
// power/energy) — and samples every probe at a fixed simulated period,
// appending one row per tick. Components publish probes through their
// `PublishMetrics(registry, prefix)` members (hw::ServerNode,
// net::TcpHost/Fabric, mapreduce::Yarn/Hdfs, the web testbed).
//
// Lifetime contract: probes borrow the component they read. Register all
// probes before Start(); never sample (Start/SampleNow) after any probed
// component has been destroyed. Owners that outlive their probed
// components (the experiment idiom: a caller-owned registry, probes into
// a function-local testbed) call `Detach()` when the components go away;
// a detached registry refuses to sample — a checked, fatal error instead
// of a read through dangling probe closures. The extracted
// `MetricsSeries` is plain data and outlives everything.
//
// Determinism: rows are a pure function of the simulation — sampled at
// deterministic instants, in registration order — so a sweep's merged
// series are byte-identical at any worker-thread count when merged in
// index order.
#ifndef WIMPY_OBS_METRICS_H_
#define WIMPY_OBS_METRICS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/scheduler.h"

namespace wimpy::obs {

// The extracted time series: what a replication returns from a sweep.
// `rows[i]` aligns with `times[i]`; row width equals `names.size()`.
struct MetricsSeries {
  std::vector<std::string> names;
  std::vector<SimTime> times;
  std::vector<std::vector<double>> rows;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers a probe. Gauges are instantaneous levels (utilisation,
  // queue depth, watts); counters are cumulative monotonic values
  // (joules, drops) exported as-is so post-processing can difference
  // them. Both are sampled identically — the split is documentation for
  // consumers of the exported series. Must be called before the first
  // sample is taken.
  void AddGauge(std::string name, std::function<double()> probe);
  void AddCounter(std::string name, std::function<double()> probe);

  // Begins periodic sampling: one sample immediately, then every
  // `period` of simulated time until Stop(). The pending tick is a
  // cancellable scheduler event, so a stopped registry never prevents
  // the event queue from draining.
  void Start(sim::Scheduler* sched, Duration period);
  void Stop();

  // Takes one sample at the scheduler's current time, outside the
  // periodic clock (e.g. a final sample after the run drains so
  // cumulative counters capture the full simulation).
  void SampleNow();

  // Severs the probes: Stop(), drop every probe closure, and mark the
  // registry detached. Call when the probed components are about to be
  // destroyed (end of an experiment's Measure). After this, sampling
  // (Start/SampleNow) aborts with a diagnostic instead of invoking
  // dangling closures; TakeSeries/series() remain valid. Registering a
  // fresh (live) probe re-arms the registry.
  void Detach();
  bool detached() const { return detached_; }

  bool running() const { return running_; }
  std::size_t probe_count() const { return probes_.size(); }
  const MetricsSeries& series() const { return series_; }

  // Moves the collected series out (e.g. into a sweep result); the
  // registry keeps its probes and may keep sampling into a fresh series.
  MetricsSeries TakeSeries();

 private:
  struct Probe {
    std::string name;
    std::function<double()> fn;
  };

  void Add(std::string name, std::function<double()> probe);
  void Tick();

  std::vector<Probe> probes_;
  sim::Scheduler* sched_ = nullptr;
  Duration period_ = 1.0;
  bool detached_ = false;
  bool running_ = false;
  sim::EventId pending_ = 0;
  MetricsSeries series_;
};

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_METRICS_H_
