// Trace/metrics exporters (see docs/observability.md).
//
// Chrome trace-event JSON: the `{"traceEvents": [...]}` object format,
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing. One event
// object per line; `ts` is simulated microseconds; `pid` is the log's
// index in the merge (config*replications + rep for sweep benches);
// `tid` is the event's track.
//
// Metrics CSV: long format, one sampled value per row —
// `series,time_s,metric,value` — so series with different column sets
// (different node counts per sweep cell) merge into one file.
//
// Both renderers format floating-point fields with a fixed "%.9g", so
// output is byte-identical for identical inputs: a sweep exported at
// --threads=8 matches --threads=1 exactly (pinned by tests).
#ifndef WIMPY_OBS_EXPORT_H_
#define WIMPY_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::obs {

// Renders logs merged in index order (pid = index).
std::string RenderChromeTrace(const std::vector<TraceLog>& logs);
Status WriteChromeTrace(const std::vector<TraceLog>& logs,
                        const std::string& path);

// Renders series merged in index order (series column = index).
std::string RenderMetricsCsv(const std::vector<MetricsSeries>& series);
Status WriteMetricsCsv(const std::vector<MetricsSeries>& series,
                       const std::string& path);

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_EXPORT_H_
