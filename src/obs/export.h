// Trace/metrics exporters (see docs/observability.md).
//
// Chrome trace-event JSON: the `{"traceEvents": [...]}` object format,
// loadable by Perfetto (ui.perfetto.dev) and chrome://tracing. One event
// object per line; `ts` is simulated microseconds; `pid` is the log's
// index in the merge (config*replications + rep for sweep benches);
// `tid` is the event's track.
//
// Metrics CSV: long format, one sampled value per row —
// `series,time_s,metric,value` — so series with different column sets
// (different node counts per sweep cell) merge into one file.
//
// Both renderers format floating-point fields with a fixed "%.9g", so
// output is byte-identical for identical inputs: a sweep exported at
// --threads=8 matches --threads=1 exactly (pinned by tests).
#ifndef WIMPY_OBS_EXPORT_H_
#define WIMPY_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace wimpy::obs {

// Renders logs merged in index order (pid = index).
std::string RenderChromeTrace(const std::vector<TraceLog>& logs);
Status WriteChromeTrace(const std::vector<TraceLog>& logs,
                        const std::string& path);

// Renders series merged in index order (series column = index).
std::string RenderMetricsCsv(const std::vector<MetricsSeries>& series);
Status WriteMetricsCsv(const std::vector<MetricsSeries>& series,
                       const std::string& path);

// Telemetry rollup rows, long format with the *same* header as the
// metrics CSV (`series,time_s,metric,value`), so every existing CSV
// consumer (flamegraph.py --metrics, check_trace.sh validation) works
// unchanged on rollup exports. Merged in index order.
std::string RenderTelemetryCsv(const std::vector<TelemetrySeries>& series);
Status WriteTelemetryCsv(const std::vector<TelemetrySeries>& series,
                         const std::string& path);

// Fired alerts, one row each: `series,time_s,rule,metric,value,
// threshold,window_s`. Merged in index order; byte-identical at any
// --threads for the same seed (the golden/determinism surface in
// tools/check_trace.sh).
std::string RenderAlertsCsv(const std::vector<AlertLog>& logs);
Status WriteAlertsCsv(const std::vector<AlertLog>& logs,
                      const std::string& path);

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_EXPORT_H_
