// Mergeable log-bucketed quantile sketch (docs/telemetry.md).
//
// `HdrSketch` is an HdrHistogram-style fixed-geometry sketch: the value
// domain [2^-30, 2^20) is split into octaves (one per binary exponent)
// and each octave into `kSubBuckets` equal-width linear sub-buckets, so
// the relative bucket width is bounded by 1/kSubBuckets (~3.1%)
// everywhere. The geometry is a compile-time constant — every sketch in
// the process has the same buckets — which makes `Merge` exact: merging
// shard sketches is element-wise count addition and yields bit-identical
// state to recording the concatenated stream.
//
// `Record` is allocation-free (the count array is sized at
// construction) and O(1): a frexp, a multiply, and two increments.
// Quantiles are answered by a rank walk returning the bucket midpoint,
// clamped to the exact min/max tracked alongside the counts, so the
// error is at most one bucket width.
//
// Values below the domain (including <= 0) land in the underflow
// bucket, values at or above 2^20 in the overflow bucket; both merge
// and rank like any other bucket.
#ifndef WIMPY_OBS_SKETCH_H_
#define WIMPY_OBS_SKETCH_H_

#include <cstdint>
#include <vector>

namespace wimpy::obs {

class HdrSketch {
 public:
  // Geometry: exponents kMinExp..kMaxExp (frexp convention: value v has
  // exponent e when v in [2^(e-1), 2^e)), kSubBuckets linear sub-buckets
  // per octave, plus underflow (index 0) and overflow (last index).
  static constexpr int kMinExp = -29;   // smallest octave: [2^-30, 2^-29)
  static constexpr int kMaxExp = 20;    // largest octave: [2^19, 2^20)
  static constexpr int kSubBuckets = 32;
  static constexpr int kOctaves = kMaxExp - kMinExp + 1;
  static constexpr int kBucketCount = kOctaves * kSubBuckets + 2;

  HdrSketch();

  // O(1), allocation-free.
  void Record(double value);

  // Maps a value to its bucket index (0 = underflow, kBucketCount-1 =
  // overflow). Exposed so tests and CSV recomputation can pin geometry.
  static int BucketIndex(double value);
  // Inclusive lower / exclusive upper value bound of a bucket. The
  // underflow bucket reports [0, 2^-30); the overflow bucket
  // [2^20, 2^21) purely for midpoint purposes.
  static double BucketLower(int index);
  static double BucketUpper(int index);

  // Element-wise count addition; exact (same fixed geometry everywhere).
  // min/max/sum/count fold in the obvious way.
  void Merge(const HdrSketch& other);

  // Adds `n` observations directly to bucket `index`, using the bucket
  // midpoint for sum and min/max. This is how a sketch is reconstructed
  // from exported `name.b<idx>` CSV rows; reconstruction then yields the
  // same quantiles as the live sketch.
  void AddBucketCount(int index, std::uint64_t n);

  // Quantile in [0, 1] via rank walk; returns the bucket midpoint
  // clamped to [min, max]. NaN when empty.
  double Quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;  // NaN when empty
  double max() const;  // NaN when empty

  std::uint64_t bucket_count(int index) const { return counts_[index]; }

  // Calls fn(index, count) for every non-zero bucket in index order.
  template <typename Fn>
  void ForEachNonZero(Fn&& fn) const {
    for (int i = 0; i < kBucketCount; ++i) {
      if (counts_[i] != 0) fn(i, counts_[i]);
    }
  }

  // Drops all observations; keeps the allocation.
  void Reset();

  bool operator==(const HdrSketch& other) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_SKETCH_H_
