// Online telemetry plane: streaming rollups, declarative alert rules,
// and a composite node-health model on the simulated clock
// (docs/telemetry.md).
//
// Where `MetricsRegistry` samples raw probe values for post-hoc
// analysis, `Telemetry` aggregates *online*: push instruments
// (`Counter`, `Histogram`) and pull probes (gauges) feed per-instrument
// `Rollup` state — a ring of tumbling buckets, one per `slide` of
// simulated time — so any window that is a multiple of the slide can be
// answered mid-run in O(window/slide) via `Telemetry::Query`. That live
// query surface is what the ROADMAP's autoscaling/power-management
// controller consumes; alert rules (thresholds and multi-window SLO
// burn rates) and the `NodeHealth` score are the first consumers,
// firing deterministic instants onto the trace.
//
// Determinism contract (same as the rest of src/obs): every bucket
// boundary, query result, alert instant, and exported row is a pure
// function of the simulation. Sweeps keep one `Telemetry` per
// replication and merge the extracted series/alert logs in index order,
// so exports are byte-identical at any `--threads`.
//
// Overhead contract: a null `Telemetry*` in a config means no calls at
// all; a disabled one (`set_enabled(false)`) returns from `Add`/`Record`
// after a single branch and never allocates (pinned by
// BM_RollupRecordDisabled against the bench baseline).
#ifndef WIMPY_OBS_TELEMETRY_H_
#define WIMPY_OBS_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "load/openloop.h"
#include "obs/metrics.h"
#include "obs/sketch.h"
#include "obs/tracer.h"
#include "sim/scheduler.h"

namespace wimpy::obs {

class Telemetry;

// Scalar aggregations over a window; what alert rules reference.
enum class Agg : std::uint8_t {
  kRate,      // count / window
  kMean,      // sum / count
  kMin,
  kMax,
  kIntegral,  // sum over buckets of bucket-mean * slide (gauge area)
  kP50,       // histogram instruments only (0 otherwise)
  kP90,
  kP99,
};
const char* AggName(Agg agg);

// Everything `Query` knows about a window. `window` is the covered
// span: n * slide where n = min(requested / slide, closed buckets) —
// early in a run it is smaller than asked. Quantiles are only
// meaningful when `has_sketch` (histogram instruments).
struct RollupResult {
  Duration window = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // valid when count > 0
  double max = 0.0;  // valid when count > 0
  double rate = 0.0;
  double mean = 0.0;
  double integral = 0.0;
  bool has_sketch = false;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// One instrument's windowed state: an accumulating open bucket plus a
// ring of up to `ring_buckets` closed ones, tumbled every `slide` by the
// owning Telemetry's tick. Histogram rollups carry an HdrSketch per
// bucket; closed sketches are recycled through the ring, so steady-state
// tumbling allocates nothing.
class Rollup {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  std::uint64_t closed_buckets() const { return closed_total_; }

  // Aggregates the most recent `window / slide` *closed* buckets (the
  // open bucket is excluded, so a query result never changes until the
  // next tick — and matches post-hoc recomputation from exported rows).
  RollupResult Query(Duration window) const;
  double QueryAgg(Agg agg, Duration window) const;

 private:
  friend class Telemetry;
  friend class Counter;
  friend class Histogram;

  struct Bucket {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  Rollup(std::string name, Kind kind, Duration slide, int ring_buckets);

  void Observe(double value);           // counter delta / histogram sample
  void Close();                         // tumble open bucket into the ring

  std::string name_;
  Kind kind_;
  Duration slide_;
  std::size_t ring_cap_;
  std::function<double()> probe_;       // gauges only
  double total_ = 0.0;                  // counters: cumulative sum
  Bucket open_;
  HdrSketch open_sketch_;               // histograms only (empty otherwise)
  std::deque<Bucket> ring_;             // closed buckets, oldest first
  std::deque<HdrSketch> ring_sketch_;   // parallel to ring_ for histograms
  std::uint64_t closed_total_ = 0;
};

// Value handles onto a Telemetry-owned Rollup; copyable, cheap, and a
// no-op when default-constructed. Valid as long as the Telemetry lives.
class Counter {
 public:
  Counter() = default;
  void Add(double delta = 1.0);
  double total() const;
  bool valid() const { return rollup_ != nullptr; }

 private:
  friend class Telemetry;
  Counter(Telemetry* telemetry, Rollup* rollup)
      : telemetry_(telemetry), rollup_(rollup) {}
  Telemetry* telemetry_ = nullptr;
  Rollup* rollup_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void Record(double value);
  bool valid() const { return rollup_ != nullptr; }

 private:
  friend class Telemetry;
  Histogram(Telemetry* telemetry, Rollup* rollup)
      : telemetry_(telemetry), rollup_(rollup) {}
  Telemetry* telemetry_ = nullptr;
  Rollup* rollup_ = nullptr;
};

// --- alert rules ----------------------------------------------------------

// Fires (rising edge) when `agg` of `metric` over `window` crosses
// `threshold`: above=true means value > threshold, false means <.
struct ThresholdRule {
  std::string name;
  std::string metric;
  Agg agg = Agg::kMean;
  double threshold = 0.0;
  bool above = true;
  Duration window = 5.0;
};

// Multi-window SLO burn rate (the SRE alerting idiom): with error
// budget 1 - slo_target, burn = (1 - good/total) / (1 - slo_target)
// computed from the two counters' window sums. Fires (rising edge) when
// burn exceeds `burn_threshold` on BOTH windows — the short window makes
// it responsive, the long window keeps a transient blip from paging.
struct BurnRateRule {
  std::string name;
  std::string good_metric;   // counter: in-SLO completions
  std::string total_metric;  // counter: everything offered
  double slo_target = 0.99;
  double burn_threshold = 1.0;
  Duration short_window = 5.0;
  Duration long_window = 60.0;
};

// One fired alert. `value` is the observed aggregate (short-window burn
// for burn rules); `window` the short window. Plain data, mergeable
// across replications in index order.
struct Alert {
  SimTime time = 0.0;
  std::string rule;
  std::string metric;
  double value = 0.0;
  double threshold = 0.0;
  Duration window = 0.0;
};

struct AlertLog {
  std::vector<Alert> alerts;
};

// One exported rollup row (long format, same shape as the metrics CSV):
// per closed non-empty bucket, `<name>.count/.sum/.min/.max` rows plus
// sparse `<name>.b<idx>` sketch-bucket rows for histograms. `time` is
// the bucket's closing edge.
struct TelemetryRow {
  SimTime time = 0.0;
  std::string metric;
  double value = 0.0;
};

struct TelemetrySeries {
  std::vector<TelemetryRow> rows;
};

struct TelemetryConfig {
  Duration slide = 1.0;    // bucket width and tick period
  int ring_buckets = 120;  // deepest queryable window = slide * this
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = TelemetryConfig{});
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  const TelemetryConfig& config() const { return config_; }

  // --- instruments (register before Start) ------------------------------
  // Names are unique; registering a duplicate is a programming error.
  Counter AddCounter(std::string name);
  Histogram AddHistogram(std::string name);
  // Pull gauge: sampled once per tick into the closing bucket. The probe
  // borrows the component it reads — same lifetime contract as
  // MetricsRegistry probes.
  void AddProbe(std::string name, std::function<double()> probe);

  // --- rules ------------------------------------------------------------
  void AddThresholdRule(ThresholdRule rule);
  void AddBurnRateRule(BurnRateRule rule);

  // --- clock ------------------------------------------------------------
  // Ticks every `slide` from now: each tick samples gauges, tumbles every
  // rollup, appends export rows, evaluates rules (alerts go to the alert
  // log and, when `tracer` is non-null, onto the trace as kAlert
  // instants), then runs tick hooks. Stop() cancels the pending tick; if
  // a full bucket is due exactly now (the window-end ScheduleAt runs
  // before the tick scheduled for the same instant), it is closed first
  // so the last bucket is never lost.
  void Start(sim::Scheduler* sched, Tracer* tracer = nullptr);
  void Stop();
  bool running() const { return running_; }
  std::uint64_t ticks() const { return ticks_; }

  // Runs after rule evaluation on every tick — how NodeHealth (or a
  // future controller) gets a deterministic periodic callback.
  void AddTickHook(std::function<void(SimTime)> hook);

  // --- live queries -----------------------------------------------------
  const Rollup* Find(std::string_view name) const;
  // Unknown names return an empty result / 0 — callers (rules wired from
  // config strings) should not crash the sim.
  RollupResult Query(std::string_view name, Duration window) const;
  double QueryAgg(std::string_view name, Agg agg, Duration window) const;

  // --- extraction (sweep idiom) -----------------------------------------
  const std::vector<Alert>& alerts() const { return alerts_; }
  const TelemetrySeries& series() const { return series_; }
  AlertLog TakeAlerts();
  TelemetrySeries TakeSeries();

 private:
  Rollup* AddInstrument(std::string name, Rollup::Kind kind);
  void Tick();
  void CloseBuckets(SimTime bucket_end);
  void EvaluateRules(SimTime now);
  void Fire(SimTime now, const std::string& rule, const std::string& metric,
            double value, double threshold, Duration window);

  struct ThresholdState {
    ThresholdRule rule;
    bool firing = false;
  };
  struct BurnState {
    BurnRateRule rule;
    bool firing = false;
  };

  TelemetryConfig config_;
  bool enabled_ = true;
  std::vector<std::unique_ptr<Rollup>> instruments_;  // registration order
  std::map<std::string, Rollup*, std::less<>> by_name_;
  std::vector<ThresholdState> threshold_rules_;
  std::vector<BurnState> burn_rules_;
  std::vector<std::function<void(SimTime)>> tick_hooks_;
  sim::Scheduler* sched_ = nullptr;
  Tracer* tracer_ = nullptr;
  bool running_ = false;
  sim::EventId pending_ = 0;
  SimTime open_start_ = 0.0;
  std::uint64_t ticks_ = 0;
  std::vector<Alert> alerts_;
  TelemetrySeries series_;
};

inline void Counter::Add(double delta) {
  if (telemetry_ == nullptr || !telemetry_->enabled()) return;
  rollup_->Observe(delta);
}

inline void Histogram::Record(double value) {
  if (telemetry_ == nullptr || !telemetry_->enabled()) return;
  rollup_->Observe(value);
}

// --- node health ----------------------------------------------------------

// Instrument names feeding one node's score; empty names drop the term
// and its weight is renormalised away, so heterogeneous tiers (a web
// node has no migration lag) share one config.
struct NodeHealthInputs {
  std::string utilization;  // gauge in [0, 1]
  std::string power;        // gauge, watts
  std::string queue_depth;  // gauge
  std::string shed;         // counter; contributes via rate
  std::string lag;          // gauge (e.g. migration catch-up backlog)
};

struct NodeHealthConfig {
  Duration window = 8.0;
  // Caps map raw aggregates to a [0, 1] penalty (value/cap, clamped).
  double queue_cap = 64.0;
  double shed_rate_cap = 100.0;  // sheds/s that saturate the shed term
  double power_cap_w = 0.0;      // <= 0 drops the power term
  double lag_cap = 8.0;
  // Term weights, renormalised over the terms a node actually has.
  double w_util = 0.25;
  double w_power = 0.10;
  double w_queue = 0.25;
  double w_shed = 0.30;
  double w_lag = 0.10;
};

// Composite per-node health in [0, 1] (1 = healthy): one minus the
// weighted, capped penalty over queue depth, shed rate, utilisation,
// power draw, and lag, each aggregated over `window`. Live via
// `Score`; exported as metrics-CSV columns via `PublishMetrics`; on the
// trace as per-tick kHealth instants via `EmitTraceInstants`.
class NodeHealth {
 public:
  explicit NodeHealth(Telemetry* telemetry,
                      NodeHealthConfig config = NodeHealthConfig{});

  void AddNode(int node_id, NodeHealthInputs inputs);
  double Score(int node_id) const;  // 1.0 for unknown nodes
  std::size_t node_count() const { return nodes_.size(); }

  // Registers one gauge per node — `<prefix>.node<id>` — so health lands
  // in the standard metrics CSV next to the raw signals it summarises.
  void PublishMetrics(MetricsRegistry* registry, const std::string& prefix);

  // Emits a kHealth instant per node per telemetry tick: name "health",
  // track = node id, arg = round(score * 1000). Registers a tick hook,
  // so call at most once, before the run; `this` must outlive the ticks.
  void EmitTraceInstants(Tracer* tracer);

 private:
  struct Node {
    int id;
    NodeHealthInputs inputs;
  };

  double ScoreOf(const Node& node) const;

  Telemetry* telemetry_;
  NodeHealthConfig config_;
  std::vector<Node> nodes_;  // registration order
};

// --- glue -----------------------------------------------------------------

// Builds OpenLoopRecorder stream hooks feeding five instruments:
// `<prefix>.offered` / `.good` / `.shed` / `.errors` counters and a
// `<prefix>.latency` histogram of honest (intended-arrival) latency for
// OK completions. `.good` counts under-SLO OK completions, `.offered`
// counts completions + sheds — exactly the SloGoodFraction numerator and
// denominator, so a BurnRateRule over {prefix}.good / {prefix}.offered
// alerts on the same quantity the post-hoc report prints.
load::SloStreamHooks SloStreamInto(Telemetry* telemetry,
                                   const std::string& prefix);

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_TELEMETRY_H_
