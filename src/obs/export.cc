#include "obs/export.h"

#include <cstdio>

namespace wimpy::obs {

namespace {

// Fixed-width-independent, locale-independent double rendering; the
// byte-identical-across-threads guarantee rests on this being a pure
// function of the value.
std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Escapes the JSON string subset our static names can contain.
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

Status WriteString(const std::string& doc, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open for writing: " + path);
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::Unavailable("short write to: " + path);
  }
  return Status::Ok();
}

}  // namespace

namespace {

// Shared prefix of every rendered event: name/cat/ph + optional instant
// scope, then ts/pid/tid.
std::string EventHead(const char* name, Category category, char phase,
                      SimTime time, std::size_t pid, std::int32_t tid) {
  std::string out = "{\"name\":\"" + JsonEscape(name) + "\",\"cat\":\"";
  out += CategoryName(category);
  out += "\",\"ph\":\"";
  out += phase;
  out += '"';
  if (phase == 'i') out += ",\"s\":\"t\"";
  out += ",\"ts\":" + Num(time * 1e6);
  out += ",\"pid\":" + std::to_string(pid);
  out += ",\"tid\":" + std::to_string(tid);
  return out;
}

// Causal identity args, rendered only when present so non-causal events
// (the engine hook stream) keep their compact form.
std::string CausalArgs(const TraceEvent& e) {
  std::string out;
  if (e.trace_id != 0) out += ",\"trace\":" + std::to_string(e.trace_id);
  if (e.span_id != 0) out += ",\"span\":" + std::to_string(e.span_id);
  if (e.parent_id != 0) out += ",\"parent\":" + std::to_string(e.parent_id);
  return out;
}

// Stable cross-process-unique flow id: pid + child span id.
std::string FlowId(std::size_t pid, std::uint64_t span_id) {
  return "\"p" + std::to_string(pid) + ".s" + std::to_string(span_id) + "\"";
}

}  // namespace

std::string RenderChromeTrace(const std::vector<TraceLog>& logs) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };
  for (std::size_t pid = 0; pid < logs.size(); ++pid) {
    const TraceLog& log = logs[pid];
    SimTime horizon = 0;
    for (const TraceEvent& e : log.events) {
      if (e.time > horizon) horizon = e.time;
    }
    // Track of each causally-open span, for flow-arrow endpoints; LIFO
    // stacks of open B events per tid, for closed-at-horizon synthesis.
    std::map<std::uint64_t, std::int32_t> open_track;
    std::map<std::int32_t, std::vector<const TraceEvent*>> open_stack;
    for (const TraceEvent& e : log.events) {
      if (e.phase == 'B' && e.span_id != 0 && e.parent_id != 0) {
        const auto parent = open_track.find(e.parent_id);
        if (parent != open_track.end() && parent->second != e.track) {
          // Cross-track causal edge: Perfetto flow arrow from the
          // parent's track to the child's, both at the child's begin
          // time (the log is time-ordered, so per-tid ts stays
          // non-decreasing). `bp:"e"` binds the arrival to the
          // enclosing slice.
          const std::string id = FlowId(pid, e.span_id);
          emit(EventHead(e.name, e.category, 's', e.time, pid,
                         parent->second) +
               ",\"id\":" + id + ",\"args\":{}}");
          emit(EventHead(e.name, e.category, 'f', e.time, pid, e.track) +
               ",\"bp\":\"e\",\"id\":" + id + ",\"args\":{}}");
        }
      }
      emit(EventHead(e.name, e.category, e.phase, e.time, pid, e.track) +
           ",\"args\":{\"seq\":" + std::to_string(e.seq) +
           ",\"arg\":" + std::to_string(e.arg) + CausalArgs(e) + "}}");
      if (e.phase == 'B') {
        if (e.span_id != 0) open_track[e.span_id] = e.track;
        open_stack[e.track].push_back(&e);
      } else if (e.phase == 'E') {
        if (e.span_id != 0) open_track.erase(e.span_id);
        auto& stack = open_stack[e.track];
        if (!stack.empty()) stack.pop_back();
      }
    }
    // Spans still open when the run's horizon cut them: close them at
    // the log's last timestamp (innermost first, so B/E stay properly
    // nested per tid) and flag them for tools/consumers.
    for (auto& [tid, stack] : open_stack) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        const TraceEvent& b = **it;
        emit(EventHead(b.name, b.category, 'E', horizon, pid, tid) +
             ",\"args\":{\"seq\":" + std::to_string(b.seq) +
             ",\"arg\":" + std::to_string(b.arg) + CausalArgs(b) +
             ",\"closed_at_horizon\":1}}");
      }
    }
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::vector<TraceLog>& logs,
                        const std::string& path) {
  return WriteString(RenderChromeTrace(logs), path);
}

std::string RenderMetricsCsv(const std::vector<MetricsSeries>& series) {
  std::string out = "series,time_s,metric,value\n";
  for (std::size_t idx = 0; idx < series.size(); ++idx) {
    const MetricsSeries& s = series[idx];
    for (std::size_t row = 0; row < s.rows.size(); ++row) {
      const std::string prefix =
          std::to_string(idx) + "," + Num(s.times[row]) + ",";
      for (std::size_t col = 0;
           col < s.names.size() && col < s.rows[row].size(); ++col) {
        out += prefix;
        out += s.names[col];
        out += ',';
        out += Num(s.rows[row][col]);
        out += '\n';
      }
    }
  }
  return out;
}

Status WriteMetricsCsv(const std::vector<MetricsSeries>& series,
                       const std::string& path) {
  return WriteString(RenderMetricsCsv(series), path);
}

std::string RenderTelemetryCsv(const std::vector<TelemetrySeries>& series) {
  std::string out = "series,time_s,metric,value\n";
  for (std::size_t idx = 0; idx < series.size(); ++idx) {
    for (const TelemetryRow& row : series[idx].rows) {
      out += std::to_string(idx);
      out += ',';
      out += Num(row.time);
      out += ',';
      out += row.metric;
      out += ',';
      out += Num(row.value);
      out += '\n';
    }
  }
  return out;
}

Status WriteTelemetryCsv(const std::vector<TelemetrySeries>& series,
                         const std::string& path) {
  return WriteString(RenderTelemetryCsv(series), path);
}

std::string RenderAlertsCsv(const std::vector<AlertLog>& logs) {
  std::string out = "series,time_s,rule,metric,value,threshold,window_s\n";
  for (std::size_t idx = 0; idx < logs.size(); ++idx) {
    for (const Alert& alert : logs[idx].alerts) {
      out += std::to_string(idx);
      out += ',';
      out += Num(alert.time);
      out += ',';
      out += alert.rule;
      out += ',';
      out += alert.metric;
      out += ',';
      out += Num(alert.value);
      out += ',';
      out += Num(alert.threshold);
      out += ',';
      out += Num(alert.window);
      out += '\n';
    }
  }
  return out;
}

Status WriteAlertsCsv(const std::vector<AlertLog>& logs,
                      const std::string& path) {
  return WriteString(RenderAlertsCsv(logs), path);
}

}  // namespace wimpy::obs
