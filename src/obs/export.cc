#include "obs/export.h"

#include <cstdio>

namespace wimpy::obs {

namespace {

// Fixed-width-independent, locale-independent double rendering; the
// byte-identical-across-threads guarantee rests on this being a pure
// function of the value.
std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Escapes the JSON string subset our static names can contain.
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out;
}

Status WriteString(const std::string& doc, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open for writing: " + path);
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::Unavailable("short write to: " + path);
  }
  return Status::Ok();
}

}  // namespace

std::string RenderChromeTrace(const std::vector<TraceLog>& logs) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t pid = 0; pid < logs.size(); ++pid) {
    for (const TraceEvent& e : logs[pid].events) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"";
      out += CategoryName(e.category);
      out += "\",\"ph\":\"";
      out += e.phase;
      out += '"';
      if (e.phase == 'i') out += ",\"s\":\"t\"";
      out += ",\"ts\":" + Num(e.time * 1e6);
      out += ",\"pid\":" + std::to_string(pid);
      out += ",\"tid\":" + std::to_string(e.track);
      out += ",\"args\":{\"seq\":" + std::to_string(e.seq);
      out += ",\"arg\":" + std::to_string(e.arg) + "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::vector<TraceLog>& logs,
                        const std::string& path) {
  return WriteString(RenderChromeTrace(logs), path);
}

std::string RenderMetricsCsv(const std::vector<MetricsSeries>& series) {
  std::string out = "series,time_s,metric,value\n";
  for (std::size_t idx = 0; idx < series.size(); ++idx) {
    const MetricsSeries& s = series[idx];
    for (std::size_t row = 0; row < s.rows.size(); ++row) {
      const std::string prefix =
          std::to_string(idx) + "," + Num(s.times[row]) + ",";
      for (std::size_t col = 0;
           col < s.names.size() && col < s.rows[row].size(); ++col) {
        out += prefix;
        out += s.names[col];
        out += ',';
        out += Num(s.rows[row][col]);
        out += '\n';
      }
    }
  }
  return out;
}

Status WriteMetricsCsv(const std::vector<MetricsSeries>& series,
                       const std::string& path) {
  return WriteString(RenderMetricsCsv(series), path);
}

}  // namespace wimpy::obs
