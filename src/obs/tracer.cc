#include "obs/tracer.h"

#include <algorithm>
#include <type_traits>

namespace wimpy::obs {

// The arena stores events in raw byte chunks and flattens with memcpy;
// both are only sound for a trivially copyable, trivially destructible
// record.
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(std::is_trivially_destructible_v<TraceEvent>);

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kEngine:
      return "engine";
    case Category::kRequest:
      return "request";
    case Category::kTask:
      return "task";
    case Category::kNet:
      return "net";
    case Category::kApp:
      return "app";
    case Category::kAlert:
      return "alert";
    case Category::kHealth:
      return "health";
  }
  return "app";
}

Tracer::~Tracer() { DetachEngineHook(); }

const char* Tracer::Intern(std::string_view name) {
  auto it = interned_->find(name);
  if (it == interned_->end()) {
    it = interned_->emplace(name).first;
  }
  return it->c_str();
}

void Tracer::AttachEngineHook(sim::Scheduler* sched) {
  DetachEngineHook();
  hooked_ = sched;
  sched->SetExecuteHook(&Tracer::EngineTrampoline, this);
}

void Tracer::DetachEngineHook() {
  if (hooked_ != nullptr) {
    hooked_->SetExecuteHook(nullptr, nullptr);
    hooked_ = nullptr;
  }
}

void Tracer::EngineTrampoline(void* ctx, SimTime t, std::uint64_t seq) {
  Tracer* self = static_cast<Tracer*>(ctx);
  if (!self->enabled_) return;
  // Engine hook events keep the scheduler's own sequence number instead
  // of consuming a tracer-local one (kEngine records stay diffable
  // against the engine's executed-event stream).
  if (self->cur_ == self->cur_end_) self->NewChunk();
  ::new (static_cast<void*>(self->cur_++))
      TraceEvent{t, seq, "event", 0, 0, Category::kEngine, 'i'};
  ++self->count_;
}

void Tracer::NewChunk() {
  ChunkPtr chunk;
  if (!free_chunks_.empty()) {
    chunk = std::move(free_chunks_.back());
    free_chunks_.pop_back();
    ++chunk_reuses_;
  } else {
    chunk.reset(new std::byte[kChunkEvents * sizeof(TraceEvent)]);
    ++chunk_allocs_;
  }
  cur_ = ChunkData(chunk);
  cur_end_ = cur_ + kChunkEvents;
  chunks_.push_back(std::move(chunk));
}

void Tracer::Flatten() const {
  flat_cache_.clear();
  flat_cache_.reserve(count_);
  std::size_t remaining = count_;
  for (const ChunkPtr& chunk : chunks_) {
    const std::size_t n = std::min(kChunkEvents, remaining);
    const TraceEvent* data = ChunkData(chunk);
    flat_cache_.insert(flat_cache_.end(), data, data + n);
    remaining -= n;
  }
}

void Tracer::RecycleChunks() {
  for (ChunkPtr& chunk : chunks_) {
    free_chunks_.push_back(std::move(chunk));
  }
  chunks_.clear();
  cur_ = nullptr;
  cur_end_ = nullptr;
  count_ = 0;
}

int Tracer::open_spans(std::int32_t track) const {
  auto it = open_spans_.find(track);
  return it == open_spans_.end() ? 0 : it->second;
}

void Tracer::Clear() {
  RecycleChunks();
  flat_cache_.clear();
  open_spans_.clear();
  next_seq_ = 1;
}

TraceLog Tracer::TakeLog() {
  TraceLog log;
  if (flat_cache_.size() == count_) {
    // events() already paid for the flatten — hand the vector over.
    log.events = std::move(flat_cache_);
  } else {
    log.events.reserve(count_);
    std::size_t remaining = count_;
    for (const ChunkPtr& chunk : chunks_) {
      const std::size_t n = std::min(kChunkEvents, remaining);
      const TraceEvent* data = ChunkData(chunk);
      log.events.insert(log.events.end(), data, data + n);
      remaining -= n;
    }
  }
  log.interned = interned_;  // keepalive for Intern'd name pointers
  RecycleChunks();
  flat_cache_.clear();
  open_spans_.clear();
  return log;
}

}  // namespace wimpy::obs
