#include "obs/tracer.h"

namespace wimpy::obs {

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kEngine:
      return "engine";
    case Category::kRequest:
      return "request";
    case Category::kTask:
      return "task";
    case Category::kNet:
      return "net";
    case Category::kApp:
      return "app";
  }
  return "app";
}

Tracer::~Tracer() { DetachEngineHook(); }

const char* Tracer::Intern(std::string_view name) {
  auto it = interned_->find(name);
  if (it == interned_->end()) {
    it = interned_->emplace(name).first;
  }
  return it->c_str();
}

void Tracer::AttachEngineHook(sim::Scheduler* sched) {
  DetachEngineHook();
  hooked_ = sched;
  sched->SetExecuteHook(&Tracer::EngineTrampoline, this);
}

void Tracer::DetachEngineHook() {
  if (hooked_ != nullptr) {
    hooked_->SetExecuteHook(nullptr, nullptr);
    hooked_ = nullptr;
  }
}

void Tracer::EngineTrampoline(void* ctx, SimTime t, std::uint64_t seq) {
  Tracer* self = static_cast<Tracer*>(ctx);
  if (!self->enabled_) return;
  self->events_.push_back(
      TraceEvent{t, seq, "event", 0, 0, Category::kEngine, 'i'});
}

int Tracer::open_spans(std::int32_t track) const {
  auto it = open_spans_.find(track);
  return it == open_spans_.end() ? 0 : it->second;
}

void Tracer::Clear() {
  events_.clear();
  open_spans_.clear();
  next_seq_ = 1;
}

TraceLog Tracer::TakeLog() {
  TraceLog log;
  log.events = std::move(events_);
  log.interned = interned_;  // keepalive for Intern'd name pointers
  events_.clear();
  open_spans_.clear();
  return log;
}

}  // namespace wimpy::obs
