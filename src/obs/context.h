// Causal trace identity (see docs/observability.md).
//
// A `TraceContext` names one span inside one request/job tree:
// `trace_id` identifies the tree (one per sampled web connection, KV
// query, or MapReduce job), `span_id` the span itself, `parent_id` the
// span it is causally nested under (0 = root). Ids are tracer-local
// monotonic counters, so like everything the tracer records they are a
// pure function of the simulation and byte-identical at any --threads.
//
// A `TraceHandle` is the value that *propagates*: call sites pass it down
// through the web tier (proxy -> server -> memcached/MySQL models),
// `net::Fabric` transfers, KV store operations, and MapReduce task
// attempts — the simulated equivalent of a context header riding on every
// message. A default-constructed handle (null tracer) makes every
// downstream tracing call a no-op, which keeps the untraced path free.
#ifndef WIMPY_OBS_CONTEXT_H_
#define WIMPY_OBS_CONTEXT_H_

#include <cstdint>

namespace wimpy::sim {
class Scheduler;
}  // namespace wimpy::sim

namespace wimpy::obs {

class Tracer;

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

// The propagated unit: tracer + clock + timeline + causal position.
// Copyable plain value; null `tracer` means "not sampled".
struct TraceHandle {
  Tracer* tracer = nullptr;
  sim::Scheduler* sched = nullptr;
  std::int32_t track = 0;
  TraceContext ctx;

  explicit operator bool() const { return tracer != nullptr; }
};

}  // namespace wimpy::obs

#endif  // WIMPY_OBS_CONTEXT_H_
