#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>

namespace wimpy::obs {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Same rendering contract as obs/export.cc: pure function of the value.
std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Backward walk over [span.begin, min(until, span.end)], appending
// segments in reverse time order (CriticalPath reverses once at the end).
void Walk(const TraceTree& tree, std::size_t si, SimTime until,
          std::vector<PathSegment>& out) {
  const SpanRecord& s = tree.spans[si];
  SimTime t = std::min(until, s.end);
  while (t > s.begin) {
    // The bottleneck child at time t: latest effective end, ties broken
    // toward the later begin then the larger span_id so overlapping
    // children resolve deterministically.
    std::size_t best = kNone;
    SimTime best_ce = 0;
    for (std::size_t ci : s.children) {
      const SpanRecord& c = tree.spans[ci];
      if (c.begin >= t) continue;
      const SimTime ce = std::min(c.end, t);
      if (ce <= s.begin) continue;
      const SpanRecord* b = best == kNone ? nullptr : &tree.spans[best];
      if (b == nullptr || ce > best_ce ||
          (ce == best_ce &&
           (c.begin > b->begin ||
            (c.begin == b->begin && c.span_id > b->span_id)))) {
        best = ci;
        best_ce = ce;
      }
    }
    if (best == kNone) {
      out.push_back(PathSegment{si, s.begin, t});
      return;
    }
    if (best_ce < t) out.push_back(PathSegment{si, best_ce, t});
    Walk(tree, best, best_ce, out);
    t = std::max(tree.spans[best].begin, s.begin);
  }
}

}  // namespace

std::vector<TraceTree> BuildTraceTrees(const TraceLog& log) {
  SimTime horizon = 0;
  for (const TraceEvent& e : log.events) horizon = std::max(horizon, e.time);

  // trace_id -> tree under construction; span_id -> (trace_id, index).
  std::map<std::uint64_t, TraceTree> trees;
  std::map<std::uint64_t, std::pair<std::uint64_t, std::size_t>> by_span;
  for (const TraceEvent& e : log.events) {
    if (e.trace_id == 0) continue;
    TraceTree& tree = trees[e.trace_id];
    tree.trace_id = e.trace_id;
    if (e.phase == 'B') {
      by_span[e.span_id] = {e.trace_id, tree.spans.size()};
      tree.spans.push_back(SpanRecord{e.span_id, e.parent_id, e.name, e.time,
                                      e.time, e.arg, false, {}});
    } else if (e.phase == 'E') {
      auto it = by_span.find(e.span_id);
      if (it != by_span.end() && it->second.first == e.trace_id) {
        SpanRecord& s = trees[e.trace_id].spans[it->second.second];
        s.end = e.time;
        s.complete = true;
      }
    } else {
      tree.instants.push_back(InstantRecord{e.time, e.name, e.arg,
                                            e.parent_id});
    }
  }

  std::vector<TraceTree> out;
  out.reserve(trees.size());
  for (auto& [id, tree] : trees) {
    for (SpanRecord& s : tree.spans) {
      if (!s.complete) {
        s.end = horizon;
        tree.complete = false;
      }
    }
    std::sort(tree.spans.begin(), tree.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.begin != b.begin ? a.begin < b.begin
                                          : a.span_id < b.span_id;
              });
    std::map<std::uint64_t, std::size_t> index;
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      index[tree.spans[i].span_id] = i;
    }
    bool have_root = false;
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      SpanRecord& s = tree.spans[i];
      auto parent = index.find(s.parent_id);
      if (s.parent_id != 0 && parent != index.end()) {
        tree.spans[parent->second].children.push_back(i);
      } else if (!have_root) {
        // Earliest parentless span (parent 0, or parent outside the log
        // — an unsampled enclosing span) anchors the tree.
        tree.root = i;
        have_root = true;
      }
    }
    out.push_back(std::move(tree));
  }
  return out;
}

std::vector<PathSegment> CriticalPath(const TraceTree& tree) {
  std::vector<PathSegment> out;
  if (tree.spans.empty()) return out;
  Walk(tree, tree.root, tree.spans[tree.root].end, out);
  std::reverse(out.begin(), out.end());
  return out;
}

std::map<std::string_view, Duration> DecomposeCriticalPath(
    const TraceTree& tree) {
  std::map<std::string_view, Duration> by_name;
  for (const PathSegment& seg : CriticalPath(tree)) {
    by_name[tree.spans[seg.span].name] += seg.end - seg.begin;
  }
  return by_name;
}

std::vector<TraceSummaryRow> SummarizeTraces(
    const std::vector<TraceLog>& logs,
    const std::vector<EnergyLedger>& ledgers) {
  std::vector<TraceSummaryRow> rows;
  for (std::size_t series = 0; series < logs.size(); ++series) {
    std::map<std::uint64_t, Joules> joules_by_trace;
    if (series < ledgers.size()) {
      for (const SpanEnergyRow& row : ledgers[series].rows) {
        joules_by_trace[row.trace_id] += row.joules;
      }
    }
    for (const TraceTree& tree : BuildTraceTrees(logs[series])) {
      if (tree.spans.empty()) continue;
      const SpanRecord& root = tree.spans[tree.root];
      auto j = joules_by_trace.find(tree.trace_id);
      rows.push_back(TraceSummaryRow{
          static_cast<int>(series), tree.trace_id, root.name, root.begin,
          root.end - root.begin, tree.spans.size(), tree.complete,
          j == joules_by_trace.end() ? 0 : j->second});
    }
  }
  return rows;
}

SloSummary SummarizeSloGoodput(const std::vector<TraceLog>& logs,
                               const std::vector<EnergyLedger>& ledgers,
                               Duration slo) {
  SloSummary summary;
  for (const TraceLog& log : logs) {
    // Window marks are plain instants in the event stream; a log without
    // them (no measurement window) contributes no traces.
    SimTime measure_start = -1;
    SimTime measure_end = -1;
    for (const TraceEvent& e : log.events) {
      const std::string_view name(e.name);
      if (name == "measure_start") measure_start = e.time;
      if (name == "measure_end") measure_end = e.time;
    }
    if (measure_start < 0 || measure_end <= measure_start) continue;
    for (const TraceTree& tree : BuildTraceTrees(log)) {
      if (tree.spans.empty()) continue;
      const SpanRecord& root = tree.spans[tree.root];
      if (root.begin < measure_start || root.begin >= measure_end) continue;
      ++summary.window_traces;
      if (tree.complete && root.end - root.begin <= slo) {
        ++summary.under_slo;
      }
    }
  }
  for (const EnergyLedger& ledger : ledgers) {
    summary.window_joules += ledger.window_joules;
  }
  summary.slo_goodput_per_joule =
      summary.window_joules > 0
          ? static_cast<double>(summary.under_slo) / summary.window_joules
          : 0.0;
  return summary;
}

std::string RenderTraceSummaryCsv(const std::vector<TraceLog>& logs,
                                  const std::vector<EnergyLedger>& ledgers,
                                  Duration slo) {
  std::string out = "series,trace_id,root,begin_s,latency_s,spans,complete,joules";
  if (slo > 0.0) out += ",under_slo";
  out += '\n';
  for (const TraceSummaryRow& r : SummarizeTraces(logs, ledgers)) {
    out += std::to_string(r.series);
    out += ',';
    out += std::to_string(r.trace_id);
    out += ',';
    out += r.root_name;
    out += ',';
    out += Num(r.begin);
    out += ',';
    out += Num(r.latency);
    out += ',';
    out += std::to_string(r.span_count);
    out += ',';
    out += r.complete ? '1' : '0';
    out += ',';
    out += Num(r.joules);
    if (slo > 0.0) {
      out += ',';
      out += (r.complete && r.latency <= slo) ? '1' : '0';
    }
    out += '\n';
  }
  return out;
}

Status WriteTraceSummaryCsv(const std::vector<TraceLog>& logs,
                            const std::vector<EnergyLedger>& ledgers,
                            const std::string& path, Duration slo) {
  const std::string doc = RenderTraceSummaryCsv(logs, ledgers, slo);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open for writing: " + path);
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::Unavailable("short write to: " + path);
  }
  return Status::Ok();
}

}  // namespace wimpy::obs
