// Diurnal-load evaluation: what the proportionality story costs over a
// real day.
//
// The paper's TCO model (§6) reduces a day to a single utilisation bound;
// datacenter load actually swings diurnally (Barroso's classic curves,
// [22][37]). This module drives the full simulated web testbeds through a
// 24-hour load profile and integrates energy, giving the daily-joules
// comparison between platforms — and quantifying how much the Dell
// cluster's flat power curve costs during the trough hours.
#ifndef WIMPY_CORE_DIURNAL_H_
#define WIMPY_CORE_DIURNAL_H_

#include <vector>

#include "common/units.h"
#include "web/service.h"

namespace wimpy::core {

// Smooth day shape: trough in the early morning, peak in the evening.
struct DiurnalPattern {
  double peak_rps = 7000;
  double trough_fraction = 0.25;  // trough load as a fraction of peak

  // Offered request rate at `hour` in [0, 24).
  double RateAt(double hour) const;
};

struct HourlyEnergy {
  double hour = 0;
  double offered_rps = 0;
  double achieved_rps = 0;
  Watts power = 0;
};

struct DailyReport {
  std::vector<HourlyEnergy> hours;
  Joules daily_joules = 0;
  double daily_requests = 0;
  double requests_per_joule = 0;
};

// Samples the day at `samples` evenly spaced hours, runs each as a short
// closed-loop measurement on a fresh testbed, and scales to 24 h.
DailyReport MeasureDailyEnergy(const web::WebTestbedConfig& config,
                               const DiurnalPattern& pattern,
                               int samples = 8);

}  // namespace wimpy::core

#endif  // WIMPY_CORE_DIURNAL_H_
