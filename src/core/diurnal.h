// Diurnal-load evaluation: what the proportionality story costs over a
// real day.
//
// The paper's TCO model (§6) reduces a day to a single utilisation bound;
// datacenter load actually swings diurnally (Barroso's classic curves,
// [22][37]). This module drives the full simulated web testbeds through a
// 24-hour load profile and integrates energy, giving the daily-joules
// comparison between platforms — and quantifying how much the Dell
// cluster's flat power curve costs during the trough hours.
#ifndef WIMPY_CORE_DIURNAL_H_
#define WIMPY_CORE_DIURNAL_H_

#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "web/service.h"

namespace wimpy::core {

// Smooth day shape: trough in the early morning, peak in the evening.
struct DiurnalPattern {
  double peak_rps = 7000;
  double trough_fraction = 0.25;  // trough load as a fraction of peak

  // Offered request rate at `hour` in [0, 24).
  double RateAt(double hour) const;
};

struct HourlyEnergy {
  double hour = 0;
  double offered_rps = 0;
  double achieved_rps = 0;
  Watts power = 0;
};

struct DailyReport {
  std::vector<HourlyEnergy> hours;
  Joules daily_joules = 0;
  double daily_requests = 0;
  double requests_per_joule = 0;
  // Per-sampled-hour observability capture (hour order), populated only
  // when requested. Every hour runs on a fresh testbed whose simulated
  // clock restarts at zero, so each hour keeps its own log — exporters
  // emit them as separate trace pids / metric series rather than
  // concatenating timelines.
  std::vector<obs::TraceLog> hour_traces;
  std::vector<obs::MetricsSeries> hour_metrics;
};

// Samples the day at `samples` evenly spaced hours, runs each as a short
// closed-loop measurement on a fresh testbed, and scales to 24 h. Any
// tracer/metrics sinks in `config` are ignored; when `capture_trace` /
// `capture_metrics` is set, per-hour sinks are created internally (fresh
// probes per testbed) and their logs returned in the report.
DailyReport MeasureDailyEnergy(const web::WebTestbedConfig& config,
                               const DiurnalPattern& pattern,
                               int samples = 8,
                               bool capture_trace = false,
                               bool capture_metrics = false);

}  // namespace wimpy::core

#endif  // WIMPY_CORE_DIURNAL_H_
