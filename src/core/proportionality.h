// Energy-proportionality analysis (paper §1/§2 background).
//
// Barroso & Hölzle's critique — which motivates the whole micro-server
// agenda — is that conventional servers idle at ~50% of peak power, so
// power does not track load. This module measures a profile's power-vs-
// load curve on the simulated hardware and reduces it to standard metrics:
//
//   * dynamic range   = (Pbusy - Pidle) / Pbusy  (paper: "narrow power
//     spectrum between idling and full utilization");
//   * proportionality gap = mean over load L of (P(L)/Pbusy - L), the
//     area between the measured curve and the ideal diagonal;
//   * energy-proportionality coefficient EP = 1 - gap/0.5 (1 = ideal,
//     0 = constant power).
#ifndef WIMPY_CORE_PROPORTIONALITY_H_
#define WIMPY_CORE_PROPORTIONALITY_H_

#include <vector>

#include "common/units.h"
#include "hw/profile.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::core {

struct PowerCurvePoint {
  double load = 0;      // offered CPU utilisation in [0, 1]
  Watts power = 0;      // measured mean node power at that load
  double normalized = 0;  // power / busy power
};

struct ProportionalityReport {
  std::vector<PowerCurvePoint> curve;
  double dynamic_range = 0;
  double proportionality_gap = 0;
  double ep_coefficient = 0;  // 1 ideal, 0 constant-power
  Watts idle_power = 0;
  Watts busy_power = 0;
  // Per-load-point observability capture (curve order), populated only
  // when requested. Each load point runs on a fresh scheduler whose
  // clock restarts at zero, so each keeps its own log.
  std::vector<obs::TraceLog> point_traces;
  std::vector<obs::MetricsSeries> point_metrics;
};

// Measures the node's power at each load level by running duty-cycled CPU
// work on the simulated hardware and integrating joules. When
// `capture_trace` / `capture_metrics` is set, each load point records a
// "load_point" span plus per-second `node.*` probe samples into the
// report's per-point logs.
ProportionalityReport MeasureProportionality(
    const hw::HardwareProfile& profile,
    const std::vector<double>& loads = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                        0.6, 0.7, 0.8, 0.9, 1.0},
    bool capture_trace = false, bool capture_metrics = false);

}  // namespace wimpy::core

#endif  // WIMPY_CORE_PROPORTIONALITY_H_
