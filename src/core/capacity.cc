#include "core/capacity.h"

#include <algorithm>
#include <cmath>

namespace wimpy::core {

ReplacementRatios ComputeReplacement(const hw::HardwareProfile& small,
                                     const hw::HardwareProfile& big) {
  ReplacementRatios r;
  // §3.1 uses nameplate core-count x clock, without hyper-threading.
  const double small_nameplate = small.cpu.cores * small.cpu.clock_hz;
  const double big_nameplate = big.cpu.cores * big.cpu.clock_hz;
  r.by_cpu_nameplate = big_nameplate / small_nameplate;
  r.by_cpu_measured = big.cpu.total_dmips() / small.cpu.total_dmips();
  r.by_memory = static_cast<double>(big.memory.total) /
                static_cast<double>(small.memory.total);
  r.by_nic = big.nic.bandwidth / small.nic.bandwidth;
  r.nodes_to_replace_one = static_cast<int>(std::ceil(
      std::max({r.by_cpu_nameplate, r.by_memory, r.by_nic})));
  r.nodes_to_replace_one_measured = static_cast<int>(std::ceil(
      std::max({r.by_cpu_measured, r.by_memory, r.by_nic})));
  return r;
}

DensityEstimate EdisonRackDensity() {
  DensityEstimate d;
  // §3: one Edison micro server with Ethernet adapter and extension boards
  // measures 4.3 x 1.2 x 1.2 inches; a 1U enclosure is 39 x 19 x 1.75.
  d.module_volume_cubic_in = 4.3 * 1.2 * 1.2;
  d.rack_1u_volume_cubic_in = 39.0 * 19.0 * 1.75;
  // The paper quotes 200 per 1U (practical packing, not pure volume).
  d.modules_per_1u = static_cast<int>(
      d.rack_1u_volume_cubic_in / d.module_volume_cubic_in * 0.96);
  return d;
}

}  // namespace wimpy::core
