// Capacity planning: the back-of-the-envelope replacement argument of
// paper §3.1 / Table 2, generalised to any pair of hardware profiles.
#ifndef WIMPY_CORE_CAPACITY_H_
#define WIMPY_CORE_CAPACITY_H_

#include <string>
#include <vector>

#include "hw/profile.h"

namespace wimpy::core {

// How many `small` nodes match one `big` node on a given resource axis.
struct ReplacementRatios {
  double by_cpu_nameplate = 0;  // clock x cores (no SMT), as §3.1 computes
  double by_cpu_measured = 0;   // measured DMIPS (the §4.1 reality check)
  double by_memory = 0;
  double by_nic = 0;
  // max(nameplate cpu, memory, nic): the paper's "16 Edisons per Dell".
  int nodes_to_replace_one = 0;
  // Same using measured CPU: the ~100x caveat of §7.
  int nodes_to_replace_one_measured = 0;
};

ReplacementRatios ComputeReplacement(const hw::HardwareProfile& small,
                                     const hw::HardwareProfile& big);

// Rack-density estimate of §3: how many units fit a 1U enclosure given the
// module dimensions (the paper estimates 200 Edisons per 1U).
struct DensityEstimate {
  double module_volume_cubic_in = 0;
  double rack_1u_volume_cubic_in = 0;
  int modules_per_1u = 0;
};

DensityEstimate EdisonRackDensity();

}  // namespace wimpy::core

#endif  // WIMPY_CORE_CAPACITY_H_
