// Total-cost-of-ownership model (paper §6, Equation 1, Tables 9 & 10).
//
//   C = Cs + Ce = Cs + Ts * Ceph * (U * Pp + (1 - U) * Pi)
//
// Server cost plus electricity over the deployment lifetime, with the
// server drawing peak power while active and idle power otherwise.
#ifndef WIMPY_CORE_TCO_H_
#define WIMPY_CORE_TCO_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "hw/profile.h"

namespace wimpy::core {

struct TcoParams {
  double unit_cost_usd = 0;        // Cs per node
  Watts peak_power = 0;            // Pp
  Watts idle_power = 0;            // Pi
  double electricity_usd_per_kwh = 0.10;  // Ceph (US average)
  double lifetime_years = 3;              // Ts
};

// Builds params from a hardware profile (Table 9 values for the
// built-ins).
TcoParams TcoParamsFor(const hw::HardwareProfile& profile);

// Mean electrical power at utilisation U.
Watts MeanPower(const TcoParams& params, double utilization);

// Lifetime electricity cost for `servers` nodes at utilisation U.
double ElectricityCostUsd(const TcoParams& params, int servers,
                          double utilization);

// Full TCO: purchase + electricity.
double TcoUsd(const TcoParams& params, int servers, double utilization);

// One Table 10 row: a named scenario comparing two deployments.
struct TcoScenario {
  std::string name;
  TcoParams a_params;
  int a_servers = 0;
  double a_utilization = 0;
  TcoParams b_params;
  int b_servers = 0;
  double b_utilization = 0;
};

struct TcoComparison {
  std::string name;
  double a_total_usd = 0;
  double b_total_usd = 0;
  double savings_fraction = 0;  // 1 - b/a
};

TcoComparison Compare(const TcoScenario& scenario);

// The paper's four Table 10 rows: web service and big data, each at the
// low and high utilisation bounds (Dell is deployment A, Edison B).
std::vector<TcoScenario> PaperTable10Scenarios();

}  // namespace wimpy::core

#endif  // WIMPY_CORE_TCO_H_
