#include "core/diurnal.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace wimpy::core {

double DiurnalPattern::RateAt(double hour) const {
  // Cosine day: trough at 04:00, peak at 16:00.
  const double phase =
      std::cos((hour - 16.0) / 24.0 * 2.0 * std::numbers::pi);
  const double low = peak_rps * trough_fraction;
  return low + (peak_rps - low) * 0.5 * (1.0 + phase);
}

DailyReport MeasureDailyEnergy(const web::WebTestbedConfig& config,
                               const DiurnalPattern& pattern,
                               int samples, bool capture_trace,
                               bool capture_metrics) {
  DailyReport report;
  samples = std::max(1, samples);
  const double hours_per_sample = 24.0 / samples;

  for (int i = 0; i < samples; ++i) {
    const double hour = (i + 0.5) * hours_per_sample;
    const double rate = pattern.RateAt(hour);

    // Per-hour sinks: each hour's testbed registers fresh probes, so the
    // registry must not outlive its hour (stale probes would dangle).
    obs::Tracer tracer;
    obs::MetricsRegistry registry;
    web::WebTestbedConfig hour_config = config;
    hour_config.tracer = capture_trace ? &tracer : nullptr;
    hour_config.metrics = capture_metrics ? &registry : nullptr;

    web::WebExperiment experiment(hour_config);
    // Closed-loop at the hour's offered load; short window, scaled up.
    const double concurrency = std::max(1.0, rate / 10.0);
    const web::LevelReport level = experiment.MeasureClosedLoop(
        web::LightMix(), concurrency, 10, Seconds(2), Seconds(8));
    if (capture_trace) report.hour_traces.push_back(tracer.TakeLog());
    if (capture_metrics) {
      report.hour_metrics.push_back(registry.TakeSeries());
    }

    HourlyEnergy entry;
    entry.hour = hour;
    entry.offered_rps = rate;
    entry.achieved_rps = level.achieved_rps;
    entry.power = level.middle_tier_power;
    report.hours.push_back(entry);

    report.daily_joules += level.middle_tier_power * hours_per_sample *
                           3600.0;
    report.daily_requests +=
        level.achieved_rps * hours_per_sample * 3600.0;
  }
  report.requests_per_joule =
      report.daily_joules > 0 ? report.daily_requests / report.daily_joules
                              : 0;
  return report;
}

}  // namespace wimpy::core
