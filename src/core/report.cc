#include "core/report.h"

#include <cmath>
#include <cstdio>

#include "core/capacity.h"
#include "core/experiments.h"
#include "core/tco.h"
#include "hw/profiles.h"
#include "web/service.h"

namespace wimpy::core {

int ReproductionReport::holds() const {
  int n = 0;
  for (const auto& e : entries) n += e.Holds();
  return n;
}

int ReproductionReport::diverged() const {
  return static_cast<int>(entries.size()) - holds();
}

namespace {

std::string Render(const ReproductionReport& report, bool markdown) {
  std::string out;
  char buf[256];
  if (markdown) {
    out += "| Experiment | Metric | Paper | Measured | Error | Verdict |\n";
    out += "|---|---|---|---|---|---|\n";
  }
  for (const auto& e : report.entries) {
    if (markdown) {
      std::snprintf(buf, sizeof(buf),
                    "| %s | %s | %.4g | %.4g | %+.1f%% | %s |\n",
                    e.experiment.c_str(), e.metric.c_str(), e.paper_value,
                    e.measured_value, 100 * e.RelativeError(),
                    e.Holds() ? "holds" : "DIVERGED");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%-28s %-22s paper %10.4g  measured %10.4g  "
                    "(%+6.1f%%)  %s\n",
                    e.experiment.c_str(), e.metric.c_str(), e.paper_value,
                    e.measured_value, 100 * e.RelativeError(),
                    e.Holds() ? "holds" : "DIVERGED");
    }
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "\n%d/%zu shapes hold.\n",
                report.holds(), report.entries.size());
  out += buf;
  return out;
}

}  // namespace

std::string ReproductionReport::ToText() const { return Render(*this, false); }
std::string ReproductionReport::ToMarkdown() const {
  return Render(*this, true);
}

ReproductionReport RunReproductionChecks() {
  ReproductionReport report;
  auto add = [&](std::string experiment, std::string metric, double paper,
                 double measured, double tolerance) {
    report.entries.push_back(ReportEntry{std::move(experiment),
                                         std::move(metric), paper, measured,
                                         tolerance});
  };

  // --- Capacity planning (§3.1) --------------------------------------------
  const auto ratios = ComputeReplacement(hw::EdisonProfile(),
                                         hw::DellR620Profile());
  add("Table 2", "Edisons per Dell", 16, ratios.nodes_to_replace_one,
      0.01);
  add("S4.1", "whole-node CPU gap", 100, ratios.by_cpu_measured, 0.10);

  // --- TCO (§6) --------------------------------------------------------------
  const auto scenarios = PaperTable10Scenarios();
  const double paper_cells[][2] = {{7948.7, 4329.5},
                                   {8236.8, 4346.1},
                                   {5348.2, 4352.4},
                                   {5495.0, 4352.4}};
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto cmp = Compare(scenarios[i]);
    add("Table 10", scenarios[i].name + " (Dell $)", paper_cells[i][0],
        cmp.a_total_usd, 0.02);
    add("Table 10", scenarios[i].name + " (Edison $)", paper_cells[i][1],
        cmp.b_total_usd, 0.02);
  }

  // --- MapReduce headline runs (§5.2, Table 8 full-scale column) -----------
  struct MrCheck {
    PaperJob job;
    double paper_edison_s, paper_edison_j;
    double paper_dell_s, paper_dell_j;
  };
  const MrCheck checks[] = {
      {PaperJob::kWordCount, 310, 17670, 213, 40214},
      {PaperJob::kWordCount2, 182, 10370, 66, 11695},
      {PaperJob::kPi, 200, 11445, 50, 9285},
  };
  for (const auto& check : checks) {
    const auto edison =
        RunPaperJob(check.job, mapreduce::EdisonMrCluster(35));
    const auto dell = RunPaperJob(check.job, mapreduce::DellMrCluster(2));
    const std::string name(PaperJobName(check.job));
    add(name, "Edison runtime (s)", check.paper_edison_s,
        edison.job.elapsed, 0.25);
    add(name, "Edison energy (J)", check.paper_edison_j,
        edison.slave_joules, 0.25);
    add(name, "Dell runtime (s)", check.paper_dell_s, dell.job.elapsed,
        0.35);
    add(name, "Dell energy (J)", check.paper_dell_j, dell.slave_joules,
        0.35);
    const double paper_ratio =
        check.paper_dell_j / check.paper_edison_j;
    add(name, "energy-efficiency ratio", paper_ratio,
        EnergyEfficiencyRatio(edison.slave_joules, dell.slave_joules),
        0.35);
  }

  // --- Web peak probe (full scale, at the paper's peak level) ---------------
  // The 3.5x headline holds *at peak throughput*; at partial load the
  // Edison advantage only widens (its idle floor is 49 W vs 156 W).
  {
    web::WebExperiment edison(web::EdisonWebTestbed(24, 11));
    web::WebExperiment dell(web::DellWebTestbed(2, 1));
    const auto e = edison.MeasureClosedLoop(web::LightMix(), 512, 14,
                                            Seconds(2), Seconds(8));
    const auto d = dell.MeasureClosedLoop(web::LightMix(), 512, 14,
                                          Seconds(2), Seconds(8));
    const double e_eff = e.achieved_rps / e.middle_tier_power;
    const double d_eff = d.achieved_rps / d.middle_tier_power;
    add("Fig 4 (peak)", "web req/J ratio", 3.5, e_eff / d_eff, 0.25);
    add("Fig 4 (peak)", "peak rps parity", 1.0,
        e.achieved_rps / std::max(1.0, d.achieved_rps), 0.15);
    add("Fig 7", "low-load delay ratio", 5.0,
        e.mean_response / d.mean_response, 0.45);
  }

  return report;
}

}  // namespace wimpy::core
