#include "core/hybrid.h"

#include <algorithm>
#include <cmath>

#include "core/experiments.h"
#include "core/tco.h"
#include "mapreduce/jobs.h"
#include "web/service.h"

namespace wimpy::core {

namespace {

// Calibration scale: small testbeds keep the probe runs fast while the
// per-node rates transfer linearly (web tiers scale linearly per §5.1.2).
constexpr int kWebProbeServers = 4;
constexpr int kWebProbeCaches = 2;
constexpr int kMrProbeSlaves = 4;

double ProbeWebPeak(const hw::HardwareProfile& profile,
                    Duration* latency_out) {
  web::WebTestbedConfig config =
      profile.name == "dell-r620"
          ? web::DellWebTestbed(kWebProbeServers, kWebProbeCaches)
          : web::EdisonWebTestbed(kWebProbeServers, kWebProbeCaches);
  config.middle_profile = profile;
  web::WebExperiment experiment(config);

  // Latency at easy load.
  const web::LevelReport easy = experiment.MeasureClosedLoop(
      web::LightMix(), 16, 8, Seconds(2), Seconds(6));
  if (latency_out != nullptr) *latency_out = easy.mean_response;

  // Ramp concurrency until errors appear or throughput stops growing.
  double best_rps = easy.achieved_rps;
  for (double conc : {64.0, 128.0, 256.0, 512.0}) {
    const web::LevelReport r = experiment.MeasureClosedLoop(
        web::LightMix(), conc,
        std::max(1, static_cast<int>(1200 * kWebProbeServers / conc)),
        Seconds(2), Seconds(6));
    if (r.error_rate > 0.02) break;
    best_rps = std::max(best_rps, r.achieved_rps);
  }
  return best_rps / kWebProbeServers;
}

double ProbeMrThroughput(const hw::HardwareProfile& profile) {
  mapreduce::MrClusterConfig config =
      profile.name == "dell-r620"
          ? mapreduce::DellMrCluster(kMrProbeSlaves)
          : mapreduce::EdisonMrCluster(kMrProbeSlaves);
  config.slave_profile = profile;
  mapreduce::MrTestbed testbed(config);
  mapreduce::JobSpec spec = mapreduce::WordCount2Job(testbed.config());
  // Scale the input down for probe speed.
  spec.input_files = 40;
  spec.input_bytes = MB(200);
  spec.max_split_size = std::max<Bytes>(
      MiB(1), static_cast<Bytes>(1.1 * spec.input_bytes /
                                 mapreduce::TotalVcores(config)));
  spec.reducers = mapreduce::TotalVcores(config);
  mapreduce::LoadInputFor(spec, &testbed);
  const mapreduce::MrRunResult result = testbed.RunJob(spec);
  const double mbps = static_cast<double>(spec.input_bytes) / 1e6 /
                      result.job.elapsed;
  return mbps / kMrProbeSlaves;
}

}  // namespace

NodeCapability CalibrateNode(const hw::HardwareProfile& profile) {
  NodeCapability cap;
  cap.profile_name = profile.name;
  Duration latency = 0;
  cap.web_rps_per_node = ProbeWebPeak(profile, &latency);
  cap.web_latency = latency;
  cap.mr_mbps_per_node = ProbeMrThroughput(profile);
  cap.busy_power = profile.power.busy;
  cap.idle_power = profile.power.idle;
  cap.unit_cost_usd = profile.unit_cost_usd;
  return cap;
}

namespace {

int NodesFor(double demand, double per_node) {
  if (per_node <= 0) return 0;
  return static_cast<int>(std::ceil(demand / per_node));
}

FleetPlan Assemble(const std::string& name, const WorkloadTarget& target,
                   const NodeCapability& latency_tier,
                   const NodeCapability& web_tier,
                   const NodeCapability& batch_tier,
                   double slo_bound_fraction, double usd_per_kwh) {
  FleetPlan plan;
  plan.name = name;
  plan.latency_profile = latency_tier.profile_name;
  plan.web_profile = web_tier.profile_name;
  plan.batch_profile = batch_tier.profile_name;

  // Latency feasibility: a tier can only serve the SLO-bound share if its
  // response time fits the bound.
  if (latency_tier.web_latency > target.web_latency_slo) {
    plan.feasible = false;
    plan.note = latency_tier.profile_name + " cannot meet the latency SLO";
    return plan;
  }
  plan.feasible = true;

  const double slo_rps = target.web_rps * slo_bound_fraction;
  const double bulk_rps = target.web_rps - slo_rps;
  plan.latency_nodes = NodesFor(slo_rps, latency_tier.web_rps_per_node);
  plan.web_nodes = NodesFor(bulk_rps, web_tier.web_rps_per_node);
  const double mr_mbps_needed = target.mr_mb_per_day / 86400.0;
  plan.batch_nodes = NodesFor(mr_mbps_needed, batch_tier.mr_mbps_per_node);

  // Web tiers run near-busy at peak-provisioned utilisation ~60%; batch
  // runs flat out (the paper's big-data TCO assumption).
  auto tier_power = [](const NodeCapability& cap, int nodes, double util) {
    return nodes * (cap.idle_power +
                    (cap.busy_power - cap.idle_power) * util);
  };
  plan.mean_power = tier_power(latency_tier, plan.latency_nodes, 0.6) +
                    tier_power(web_tier, plan.web_nodes, 0.6) +
                    tier_power(batch_tier, plan.batch_nodes, 1.0);

  const double purchase = latency_tier.unit_cost_usd * plan.latency_nodes +
                          web_tier.unit_cost_usd * plan.web_nodes +
                          batch_tier.unit_cost_usd * plan.batch_nodes;
  const double kwh = plan.mean_power * 3 * 365 * 24 / 1000.0;
  plan.tco_3yr_usd = purchase + kwh * usd_per_kwh;
  return plan;
}

}  // namespace

std::vector<FleetPlan> PlanFleet(const WorkloadTarget& target,
                                 const NodeCapability& wimpy,
                                 const NodeCapability& brawny,
                                 double slo_bound_fraction,
                                 double electricity_usd_per_kwh) {
  std::vector<FleetPlan> plans;
  plans.push_back(Assemble("all-brawny", target, brawny, brawny, brawny,
                           slo_bound_fraction, electricity_usd_per_kwh));
  plans.push_back(Assemble("all-wimpy", target, wimpy, wimpy, wimpy,
                           slo_bound_fraction, electricity_usd_per_kwh));
  plans.push_back(Assemble("hybrid", target, brawny, wimpy, wimpy,
                           slo_bound_fraction, electricity_usd_per_kwh));
  return plans;
}

}  // namespace wimpy::core
