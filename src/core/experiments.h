// High-level experiment drivers shared by the bench binaries and examples.
//
// These wrap the workload layers into one-call reproductions of the
// paper's experiment units: "run paper job X on platform Y at cluster size
// N" and the derived metrics (work-done-per-joule ratios, scalability
// speed-ups).
#ifndef WIMPY_CORE_EXPERIMENTS_H_
#define WIMPY_CORE_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mapreduce/jobs.h"
#include "mapreduce/testbed.h"

namespace wimpy::core {

// The six paper jobs, in Table 8 order.
enum class PaperJob {
  kWordCount,
  kWordCount2,
  kLogCount,
  kLogCount2,
  kPi,
  kTeraSort,
};

std::string_view PaperJobName(PaperJob job);
const std::vector<PaperJob>& AllPaperJobs();

// Builds the right spec for `job` on `config`.
mapreduce::JobSpec SpecFor(PaperJob job,
                           const mapreduce::MrClusterConfig& config);

// Builds a testbed (with the terasort block-size override when needed),
// loads input, runs the job, returns the result.
mapreduce::MrRunResult RunPaperJob(PaperJob job,
                                   mapreduce::MrClusterConfig config);

// work-done-per-joule ratio of A over B for equal work: joules_b/joules_a.
double EnergyEfficiencyRatio(Joules a_joules, Joules b_joules);

// Mean speed-up per cluster-size doubling over a (size, runtime) ladder,
// e.g. {35: 310 s, 17: 1065 s, 8: 1817 s, 4: 3283 s} -> ~1.9 (paper §5.3).
double MeanSpeedupPerDoubling(
    const std::vector<std::pair<int, Duration>>& ladder);

}  // namespace wimpy::core

#endif  // WIMPY_CORE_EXPERIMENTS_H_
