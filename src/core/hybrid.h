// Hybrid datacenter planning — the design the paper's conclusion (§7)
// envisions: "a hybrid future datacenter design that orchestrates micro
// servers and conventional servers would achieve both high performance and
// low power consumption."
//
// The planner self-calibrates by running small simulated experiments on
// each candidate profile (peak web throughput per node, MapReduce MB/s per
// node, low-load response latency), then sizes a mixed fleet for a target
// workload under a latency SLO and reports TCO and energy for pure-brawny,
// pure-wimpy and hybrid deployments.
#ifndef WIMPY_CORE_HYBRID_H_
#define WIMPY_CORE_HYBRID_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "hw/profile.h"

namespace wimpy::core {

// Per-node capability measured by calibration runs.
struct NodeCapability {
  std::string profile_name;
  double web_rps_per_node = 0;     // sustainable requests/sec per web node
  Duration web_latency = 0;        // mean response at moderate load
  double mr_mbps_per_node = 0;     // MapReduce input MB/s per slave
  Watts busy_power = 0;
  Watts idle_power = 0;
  double unit_cost_usd = 0;
};

// Measures capability by running scaled-down experiments (a few seconds
// of simulated time each).
NodeCapability CalibrateNode(const hw::HardwareProfile& profile);

// What the datacenter must serve.
struct WorkloadTarget {
  double web_rps = 10000;              // sustained request rate
  Duration web_latency_slo = Milliseconds(50);  // mean-latency bound
  double mr_mb_per_day = 500000;       // batch input volume per day
};

struct FleetPlan {
  std::string name;
  int latency_nodes = 0;   // brawny nodes serving the SLO-bound share
  int web_nodes = 0;       // nodes serving the latency-tolerant web share
  int batch_nodes = 0;     // MapReduce slaves
  std::string latency_profile;
  std::string web_profile;
  std::string batch_profile;
  double tco_3yr_usd = 0;
  Watts mean_power = 0;
  bool feasible = false;
  std::string note;
};

// Produces three plans: all-brawny, all-wimpy, and hybrid (brawny for the
// SLO-bound fraction, wimpy elsewhere). `slo_bound_fraction` is the share
// of web traffic that must meet the SLO (the rest is latency-tolerant).
std::vector<FleetPlan> PlanFleet(const WorkloadTarget& target,
                                 const NodeCapability& wimpy,
                                 const NodeCapability& brawny,
                                 double slo_bound_fraction = 0.3,
                                 double electricity_usd_per_kwh = 0.10);

}  // namespace wimpy::core

#endif  // WIMPY_CORE_HYBRID_H_
