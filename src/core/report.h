// One-shot reproduction report: runs the headline experiments at reduced
// scale, compares against the paper's published numbers, and renders a
// verdict table (text or Markdown). This is the "is the reproduction
// still intact?" tool — run it after modifying any model constant.
#ifndef WIMPY_CORE_REPORT_H_
#define WIMPY_CORE_REPORT_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace wimpy::core {

struct ReportEntry {
  std::string experiment;
  std::string metric;
  double paper_value = 0;
  double measured_value = 0;
  // Accepted relative deviation before the verdict flips to DIVERGED.
  double tolerance = 0.25;

  double RelativeError() const {
    return paper_value == 0
               ? 0.0
               : (measured_value - paper_value) / paper_value;
  }
  bool Holds() const {
    return std::abs(RelativeError()) <= tolerance;
  }
};

struct ReproductionReport {
  std::vector<ReportEntry> entries;

  int holds() const;
  int diverged() const;
  // All headline shapes within tolerance?
  bool AllHold() const { return diverged() == 0; }

  std::string ToText() const;
  std::string ToMarkdown() const;
};

// Runs the quick verification set:
//   * capacity-planning ratios (Table 2) — exact;
//   * TCO cells (Table 10) — exact model;
//   * the six MapReduce headline runs at full paper scale (fast in
//     simulated time);
//   * a web peak probe at quarter scale (rps/W ratio).
// Total runtime is dominated by the web probe (a few seconds of real
// time).
ReproductionReport RunReproductionChecks();

}  // namespace wimpy::core

#endif  // WIMPY_CORE_REPORT_H_
