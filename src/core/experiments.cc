#include "core/experiments.h"

#include <cassert>
#include <cmath>

namespace wimpy::core {

std::string_view PaperJobName(PaperJob job) {
  switch (job) {
    case PaperJob::kWordCount:
      return "wordcount";
    case PaperJob::kWordCount2:
      return "wordcount2";
    case PaperJob::kLogCount:
      return "logcount";
    case PaperJob::kLogCount2:
      return "logcount2";
    case PaperJob::kPi:
      return "pi";
    case PaperJob::kTeraSort:
      return "terasort";
  }
  return "?";
}

const std::vector<PaperJob>& AllPaperJobs() {
  static const std::vector<PaperJob>* jobs = new std::vector<PaperJob>{
      PaperJob::kWordCount, PaperJob::kWordCount2, PaperJob::kLogCount,
      PaperJob::kLogCount2, PaperJob::kPi,         PaperJob::kTeraSort};
  return *jobs;
}

mapreduce::JobSpec SpecFor(PaperJob job,
                           const mapreduce::MrClusterConfig& config) {
  switch (job) {
    case PaperJob::kWordCount:
      return mapreduce::WordCountJob(config);
    case PaperJob::kWordCount2:
      return mapreduce::WordCount2Job(config);
    case PaperJob::kLogCount:
      return mapreduce::LogCountJob(config);
    case PaperJob::kLogCount2:
      return mapreduce::LogCount2Job(config);
    case PaperJob::kPi:
      return mapreduce::PiJob(config);
    case PaperJob::kTeraSort:
      return mapreduce::TeraSortJob(config);
  }
  assert(false);
  return {};
}

mapreduce::MrRunResult RunPaperJob(PaperJob job,
                                   mapreduce::MrClusterConfig config) {
  if (job == PaperJob::kTeraSort) {
    config = mapreduce::TeraSortClusterConfig(config);
  }
  mapreduce::MrTestbed testbed(config);
  const mapreduce::JobSpec spec = SpecFor(job, testbed.config());
  mapreduce::LoadInputFor(spec, &testbed);
  return testbed.RunJob(spec);
}

double EnergyEfficiencyRatio(Joules a_joules, Joules b_joules) {
  return a_joules <= 0 ? 0.0 : b_joules / a_joules;
}

double MeanSpeedupPerDoubling(
    const std::vector<std::pair<int, Duration>>& ladder) {
  if (ladder.size() < 2) return 0.0;
  // Ladder entries are (cluster size, runtime), any order; sort ascending
  // by size and average consecutive speed-ups normalised per doubling.
  auto sorted = ladder;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  int steps = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const double size_ratio = static_cast<double>(sorted[i].first) /
                              static_cast<double>(sorted[i - 1].first);
    const double speedup = sorted[i - 1].second / sorted[i].second;
    // Normalise to one doubling: speedup^(1/log2(size_ratio)).
    const double doublings = std::log2(size_ratio);
    if (doublings <= 0) continue;
    sum += std::pow(speedup, 1.0 / doublings);
    ++steps;
  }
  return steps == 0 ? 0.0 : sum / steps;
}

}  // namespace wimpy::core
