// Cluster power-down strategies from the paper's related work (§2):
//
//   * Covering Set (CS, Leverich & Kozyrakis; Lang & Patel): keep a small
//     replica-covering subset of nodes powered and run the batch work on
//     it, powering the rest off;
//   * All-In Strategy (AIS, Lang & Patel): run the job on the whole
//     cluster as fast as possible, then power everything off.
//
// The paper contrasts these software proportionality techniques with its
// hardware route (micro servers). This module evaluates both strategies on
// simulated clusters using real MapReduce runs at the corresponding
// cluster sizes, charging powered-off nodes nothing and counting
// transition costs.
#ifndef WIMPY_CORE_POWERDOWN_H_
#define WIMPY_CORE_POWERDOWN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiments.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::core {

struct PowerDownCosts {
  // Wake-on-LAN + boot + daemon start, per node.
  Duration wake_time = Seconds(90);
  // Power drawn during wake/shutdown transitions (near busy).
  double transition_power_factor = 0.9;  // of busy power
  Duration shutdown_time = Seconds(30);
};

struct StrategyOutcome {
  std::string strategy;
  int active_nodes = 0;
  Duration makespan = 0;        // job time + transitions
  Joules cluster_joules = 0;    // active nodes + transition energy
  double work_done_per_joule = 0;  // input MB / joules (0 if no input)
  // Observability capture for this strategy's MapReduce run (empty
  // unless requested via PowerDownOptions). Each strategy runs its own
  // testbed, so each outcome keeps its own log.
  obs::TraceLog trace;
  obs::MetricsSeries metrics;
};

struct PowerDownOptions {
  // Seed applied to every strategy's cluster config; 0 keeps the
  // config's built-in default, preserving existing golden outputs.
  std::uint64_t seed = 0;
  bool capture_trace = false;
  bool capture_metrics = false;
};

// Evaluates one batch job arriving at an idle, fully powered-down cluster
// of `total_nodes`:
//   * AIS wakes everything, runs at full width, shuts down;
//   * CS wakes only `covering_nodes` (>= replication factor's worth of
//     data coverage), runs narrow, shuts down.
// Both are compared to "always-on": the full cluster powered the whole
// `horizon` with the job run at full width.
std::vector<StrategyOutcome> EvaluatePowerDown(
    PaperJob job, bool edison_cluster, int total_nodes, int covering_nodes,
    Duration horizon = Hours(1), PowerDownCosts costs = {},
    PowerDownOptions options = {});

}  // namespace wimpy::core

#endif  // WIMPY_CORE_POWERDOWN_H_
