#include "core/proportionality.h"

#include <algorithm>

#include "hw/server_node.h"
#include "sim/process.h"

namespace wimpy::core {

namespace {

// Drives every hardware thread at `load` utilisation via short duty
// cycles for `duration` seconds.
sim::Process DriveLoad(hw::ServerNode& node, double load,
                       Duration duration) {
  const double period = 1.0;
  const int cycles = static_cast<int>(duration / period);
  const int threads = node.cpu().vcores();
  for (int c = 0; c < cycles; ++c) {
    if (load > 0) {
      std::vector<sim::ProcessRef> refs;
      for (int t = 0; t < threads; ++t) {
        auto burn = [](hw::ServerNode& n, double work) -> sim::Process {
          co_await n.Compute(work);
        };
        refs.push_back(sim::Spawn(
            node.scheduler(),
            burn(node,
                 node.cpu().spec().dmips_per_thread * period * load)));
      }
      for (auto& ref : refs) co_await ref.Join();
    }
    // Sleep out the remainder of this duty period.
    const Duration rest = (c + 1) * period - node.scheduler().now();
    if (rest > 0) co_await sim::Delay(node.scheduler(), rest);
  }
}

}  // namespace

ProportionalityReport MeasureProportionality(
    const hw::HardwareProfile& profile, const std::vector<double>& loads,
    bool capture_trace, bool capture_metrics) {
  ProportionalityReport report;
  report.idle_power = profile.power.idle;
  report.busy_power = profile.power.busy;
  report.dynamic_range =
      (profile.power.busy - profile.power.idle) / profile.power.busy;

  constexpr Duration kWindow = Seconds(60);
  double gap_sum = 0;
  int point_index = 0;
  for (double load : loads) {
    sim::Scheduler sched;
    hw::ServerNode node(&sched, profile, 0);
    // Per-point sinks: each point's node registers fresh probes, so the
    // registry must not outlive its scheduler.
    obs::Tracer tracer;
    obs::MetricsRegistry registry;
    if (capture_metrics) {
      node.PublishMetrics(&registry, "node");
      registry.Start(&sched, Seconds(1));
    }
    if (capture_trace) {
      tracer.BeginSpanAt(0, "load_point", obs::Category::kApp,
                         /*track=*/0, point_index);
    }
    sim::Spawn(sched, DriveLoad(node, std::clamp(load, 0.0, 1.0),
                                kWindow));
    sched.Run(kWindow);
    if (capture_metrics) {
      registry.Stop();
      registry.SampleNow();
    }
    if (capture_trace) {
      tracer.EndSpanAt(sched.now(), "load_point", obs::Category::kApp,
                       /*track=*/0, point_index);
    }
    PowerCurvePoint point;
    point.load = load;
    point.power = node.power().CumulativeJoules() / kWindow;
    point.normalized = point.power / profile.power.busy;
    report.curve.push_back(point);
    gap_sum += point.normalized - load *
        (profile.power.busy - 0) / profile.power.busy;
    sched.Run();
    if (capture_trace) report.point_traces.push_back(tracer.TakeLog());
    if (capture_metrics) {
      report.point_metrics.push_back(registry.TakeSeries());
    }
    ++point_index;
  }
  report.proportionality_gap =
      gap_sum / static_cast<double>(loads.size());
  report.ep_coefficient =
      1.0 - report.proportionality_gap / 0.5;
  return report;
}

}  // namespace wimpy::core
