#include "core/tco.h"

#include "hw/profiles.h"

namespace wimpy::core {

TcoParams TcoParamsFor(const hw::HardwareProfile& profile) {
  TcoParams params;
  params.unit_cost_usd = profile.unit_cost_usd;
  params.peak_power = profile.power.busy;
  params.idle_power = profile.power.idle;
  return params;
}

Watts MeanPower(const TcoParams& params, double utilization) {
  return utilization * params.peak_power +
         (1.0 - utilization) * params.idle_power;
}

double ElectricityCostUsd(const TcoParams& params, int servers,
                          double utilization) {
  const double hours = params.lifetime_years * 365.0 * 24.0;
  const double kwh =
      MeanPower(params, utilization) * servers * hours / 1000.0;
  return kwh * params.electricity_usd_per_kwh;
}

double TcoUsd(const TcoParams& params, int servers, double utilization) {
  return params.unit_cost_usd * servers +
         ElectricityCostUsd(params, servers, utilization);
}

TcoComparison Compare(const TcoScenario& scenario) {
  TcoComparison cmp;
  cmp.name = scenario.name;
  cmp.a_total_usd =
      TcoUsd(scenario.a_params, scenario.a_servers, scenario.a_utilization);
  cmp.b_total_usd =
      TcoUsd(scenario.b_params, scenario.b_servers, scenario.b_utilization);
  cmp.savings_fraction =
      cmp.a_total_usd <= 0 ? 0.0 : 1.0 - cmp.b_total_usd / cmp.a_total_usd;
  return cmp;
}

std::vector<TcoScenario> PaperTable10Scenarios() {
  const TcoParams edison = TcoParamsFor(hw::EdisonProfile());
  const TcoParams dell = TcoParamsFor(hw::DellR620Profile());

  std::vector<TcoScenario> scenarios;
  // Web service: 35 Edisons replace 3 Dells; utilisation 10% (typical
  // public-cloud low bound) to 75% (Google high bound) on both.
  scenarios.push_back({"Web service, low utilization", dell, 3, 0.10,
                       edison, 35, 0.10});
  scenarios.push_back({"Web service, high utilization", dell, 3, 0.75,
                       edison, 35, 0.75});
  // Big data: 35 Edisons replace 2 Dells; the Edison cluster takes 1.35-4x
  // longer per job, so it is modelled at constant 100% utilisation while
  // Dell spans 25-74%.
  scenarios.push_back({"Big data, low utilization", dell, 2, 0.25, edison,
                       35, 1.0});
  scenarios.push_back({"Big data, high utilization", dell, 2, 0.74, edison,
                       35, 1.0});
  return scenarios;
}

}  // namespace wimpy::core
