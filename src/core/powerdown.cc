#include "core/powerdown.h"

#include <algorithm>

namespace wimpy::core {

namespace {

// Energy of `nodes` nodes idling for `time`.
Joules IdleEnergy(const hw::HardwareProfile& profile, int nodes,
                  Duration time) {
  return profile.power.idle * nodes * std::max(0.0, time);
}

Joules TransitionEnergy(const hw::HardwareProfile& profile, int nodes,
                        const PowerDownCosts& costs) {
  return profile.power.busy * costs.transition_power_factor * nodes *
         (costs.wake_time + costs.shutdown_time);
}

}  // namespace

std::vector<StrategyOutcome> EvaluatePowerDown(PaperJob job,
                                               bool edison_cluster,
                                               int total_nodes,
                                               int covering_nodes,
                                               Duration horizon,
                                               PowerDownCosts costs,
                                               PowerDownOptions options) {
  covering_nodes = std::clamp(covering_nodes, 1, total_nodes);
  auto config_for = [&](int nodes) {
    return edison_cluster ? mapreduce::EdisonMrCluster(nodes)
                          : mapreduce::DellMrCluster(nodes);
  };
  // Runs one strategy's job with per-run observability sinks (a fresh
  // testbed registers fresh probes, so the registry must not be shared
  // across strategy runs).
  auto run_strategy = [&](int nodes, StrategyOutcome* outcome) {
    mapreduce::MrClusterConfig config = config_for(nodes);
    if (options.seed != 0) config.seed = options.seed;
    obs::Tracer tracer;
    obs::MetricsRegistry registry;
    if (options.capture_trace) config.tracer = &tracer;
    if (options.capture_metrics) config.metrics = &registry;
    const auto run = RunPaperJob(job, std::move(config));
    if (options.capture_trace) outcome->trace = tracer.TakeLog();
    if (options.capture_metrics) {
      outcome->metrics = registry.TakeSeries();
    }
    return run;
  };
  const hw::HardwareProfile profile =
      config_for(total_nodes).slave_profile;
  const Bytes input =
      SpecFor(job, config_for(total_nodes)).input_bytes;

  std::vector<StrategyOutcome> outcomes;

  // Always-on baseline: full-width run, every node powered all horizon.
  {
    StrategyOutcome outcome;
    const auto run = run_strategy(total_nodes, &outcome);
    outcome.strategy = "always-on";
    outcome.active_nodes = total_nodes;
    outcome.makespan = run.job.elapsed;
    outcome.cluster_joules =
        run.slave_joules +
        IdleEnergy(profile, total_nodes, horizon - run.job.elapsed);
    if (input > 0) {
      outcome.work_done_per_joule =
          static_cast<double>(input) / 1e6 / outcome.cluster_joules;
    }
    outcomes.push_back(outcome);
  }

  // All-In Strategy: wake all, sprint, shut down; zero power otherwise.
  {
    StrategyOutcome outcome;
    const auto run = run_strategy(total_nodes, &outcome);
    outcome.strategy = "all-in (AIS)";
    outcome.active_nodes = total_nodes;
    outcome.makespan =
        costs.wake_time + run.job.elapsed + costs.shutdown_time;
    outcome.cluster_joules =
        run.slave_joules + TransitionEnergy(profile, total_nodes, costs);
    if (input > 0) {
      outcome.work_done_per_joule =
          static_cast<double>(input) / 1e6 / outcome.cluster_joules;
    }
    outcomes.push_back(outcome);
  }

  // Covering Set: wake the covering subset only.
  {
    StrategyOutcome outcome;
    const auto run = run_strategy(covering_nodes, &outcome);
    outcome.strategy = "covering-set (CS)";
    outcome.active_nodes = covering_nodes;
    outcome.makespan =
        costs.wake_time + run.job.elapsed + costs.shutdown_time;
    outcome.cluster_joules =
        run.slave_joules +
        TransitionEnergy(profile, covering_nodes, costs);
    if (input > 0) {
      outcome.work_done_per_joule =
          static_cast<double>(input) / 1e6 / outcome.cluster_joules;
    }
    outcomes.push_back(outcome);
  }

  return outcomes;
}

}  // namespace wimpy::core
