#include "kernels/sysbench.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

namespace wimpy::kernels {

std::int64_t CountPrimes(std::int64_t limit) {
  std::int64_t count = 0;
  for (std::int64_t c = 3; c <= limit; ++c) {
    bool prime = true;
    for (std::int64_t t = 2; t * t <= c; ++t) {
      if (c % t == 0) {
        prime = false;
        break;
      }
    }
    if (prime) ++count;
  }
  return limit >= 2 ? count + 1 : count;
}

double SysbenchCpuEventDemandMinstr(std::int64_t max_prime) {
  // Calibration anchor: 36.0 Minstr per event at max_prime = 20000 puts one
  // Edison thread (632.3 DMIPS) at 56.9 ms/event -> 569 s for 10000 events,
  // and one Dell thread (11383 DMIPS) at 3.16 ms/event -> 31.6 s, the
  // measured 18x gap.
  constexpr double kAnchorDemand = 36.0;
  constexpr double kAnchorMaxPrime = 20000.0;
  const double scale =
      std::pow(static_cast<double>(max_prime) / kAnchorMaxPrime, 1.5);
  return kAnchorDemand * scale;
}

double SysbenchCpuTotalDemandMinstr(int events, std::int64_t max_prime) {
  return static_cast<double>(events) * SysbenchCpuEventDemandMinstr(max_prime);
}

MemoryBenchResult RunHostMemoryBench(Bytes block_size, Bytes total_bytes) {
  MemoryBenchResult result;
  result.block_size = block_size;
  result.threads = 1;
  std::vector<char> src(static_cast<std::size_t>(block_size), 'x');
  std::vector<char> dst(static_cast<std::size_t>(block_size));
  const std::int64_t ops = std::max<std::int64_t>(1, total_bytes / block_size);
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < ops; ++i) {
    std::memcpy(dst.data(), src.data(), static_cast<std::size_t>(block_size));
    // Touch a byte so the copy is observable.
    src[static_cast<std::size_t>(i % block_size)] =
        static_cast<char>(dst[0] + 1);
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  result.rate = seconds > 0
                    ? static_cast<double>(ops * block_size) / seconds
                    : 0;
  return result;
}

BytesPerSecond ModelMemoryRate(const hw::MemorySpec& spec, Bytes block_size,
                               int threads) {
  // Per-operation overhead makes small blocks inefficient; 256 KiB blocks
  // reach ~94% of peak, matching the measured plateau from 256 KiB to 1 MiB.
  constexpr double kOverheadBytes = 16.0 * 1024.0;
  const double efficiency =
      static_cast<double>(block_size) /
      (static_cast<double>(block_size) + kOverheadBytes);
  const double raw = std::min(spec.peak_bandwidth,
                              spec.per_thread_bandwidth * threads);
  return raw * efficiency;
}

}  // namespace wimpy::kernels
