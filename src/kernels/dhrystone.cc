#include "kernels/dhrystone.h"

#include <chrono>
#include <cstring>

namespace wimpy::kernels {

namespace {

// Miniature rendition of the Dhrystone 2.1 data mix: records, enum
// dispatch, string copy/compare, array writes, and call-heavy integer
// arithmetic. The absolute score is not meant to match the original
// benchmark; the *relative* load per iteration is stable, which is all the
// calibration needs.
enum class Ident { kIdent1, kIdent2, kIdent3, kIdent4, kIdent5 };

struct Record {
  Record* next = nullptr;
  Ident discr = Ident::kIdent1;
  int int_comp = 0;
  char string_comp[31] = {};
};

// Like the original Dhrystone Func_1: "identical" result only when the
// characters DIFFER (the benchmark's famously confusing convention, which
// is what makes Func_2's loop terminate).
int Func1(char ch1, char ch2) { return ch1 == ch2 ? 1 : 0; }

bool Func2(const char* s1, const char* s2) {
  int int_loc = 2;
  char ch_loc = 'A';
  while (int_loc <= 2) {
    if (Func1(s1[int_loc], s2[int_loc + 1]) == 0) {
      ch_loc = 'A';
      ++int_loc;
    } else {
      // Characters matched (cannot happen for the canonical strings, but
      // keeps the loop total for any input).
      ++int_loc;
      ch_loc = 'R';
    }
  }
  if (ch_loc >= 'W' && ch_loc < 'Z') int_loc = 7;
  if (ch_loc == 'R') return true;
  return std::strcmp(s1, s2) > 0;
}

int Proc7(int a, int b) { return b + a + 2; }

void Proc8(int* array1, int (*array2)[50], int int_par1, int int_par2) {
  const int idx = int_par1 + 5;
  array1[idx] = int_par2;
  array1[idx + 1] = array1[idx];
  array1[idx + 30] = idx;
  for (int i = idx; i <= idx + 1; ++i) (*array2)[i] = array1[idx];
  (*array2)[idx + 20] += array1[idx];
}

}  // namespace

DhrystoneResult RunDhrystone(std::int64_t iterations) {
  Record glob{};
  Record next_glob{};
  glob.next = &next_glob;
  glob.discr = Ident::kIdent1;
  glob.int_comp = 40;
  std::strcpy(glob.string_comp, "DHRYSTONE PROGRAM, SOME STRING");

  char string1[31] = "DHRYSTONE PROGRAM, 1'ST STRING";
  char string2[31];
  int array1[80] = {};
  int array2[80][50] = {};

  std::uint64_t checksum = 0;

  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t run = 0; run < iterations; ++run) {
    int int1 = 2;
    int int2 = 3;
    std::strcpy(string2, "DHRYSTONE PROGRAM, 2'ND STRING");
    bool bool_glob = !Func2(string1, string2);
    int int3 = 0;
    while (int1 < int2) {
      int3 = 5 * int1 - int2;
      int3 = Proc7(int1, int2);
      ++int1;
    }
    Proc8(array1, &array2[int1], int1, int3);
    glob.next->int_comp = glob.int_comp + (bool_glob ? 5 : 7);
    glob.next->discr =
        glob.int_comp % 2 == 0 ? Ident::kIdent1 : Ident::kIdent2;
    checksum += static_cast<std::uint64_t>(glob.next->int_comp) +
                static_cast<std::uint64_t>(int3) +
                static_cast<std::uint64_t>(string2[7]);
    // Rotate mutated state so iterations are not trivially foldable.
    glob.int_comp = static_cast<int>(checksum % 50) + 10;
  }
  const auto end = std::chrono::steady_clock::now();

  DhrystoneResult result;
  result.iterations = iterations;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.checksum = checksum;
  if (result.seconds > 0) {
    result.dhrystones_per_sec =
        static_cast<double>(iterations) / result.seconds;
    result.dmips = result.dhrystones_per_sec / kDhrystonesPerMip;
  }
  return result;
}

}  // namespace wimpy::kernels
