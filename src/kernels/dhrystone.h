// Dhrystone-style synthetic CPU kernel (after Weicker's Dhrystone 2.1).
//
// Two uses:
//  1. Host execution (`RunDhrystone`) — genuinely runs the integer/string/
//     record mix on the build machine and reports DMIPS, like the paper's
//     §4.1 methodology (score = iterations/sec ÷ 1757).
//  2. Work-unit definition — all simulated CPU demands in this library are
//     measured in millions of Dhrystone-equivalent instructions (Minstr),
//     and a hardware profile's `dmips_per_thread` is its service rate.
//     `MinstrForIterations` converts an iteration count into that unit.
#ifndef WIMPY_KERNELS_DHRYSTONE_H_
#define WIMPY_KERNELS_DHRYSTONE_H_

#include <cstdint>

namespace wimpy::kernels {

// VAX 11/780 reference: 1757 Dhrystones/second == 1 MIPS.
inline constexpr double kDhrystonesPerMip = 1757.0;

struct DhrystoneResult {
  std::int64_t iterations = 0;
  double seconds = 0;            // host wall time
  double dhrystones_per_sec = 0;
  double dmips = 0;
  // Checksum of kernel state; consumed so the optimiser cannot delete the
  // loop, and useful as a correctness probe (deterministic per count).
  std::uint64_t checksum = 0;
};

// Executes `iterations` passes of the synthetic mix on the host.
DhrystoneResult RunDhrystone(std::int64_t iterations);

// Simulation demand for a Dhrystone run: N iterations at 1 DMIPS take
// N / 1757 seconds, so the demand is N / 1757 Minstr.
inline double MinstrForIterations(double iterations) {
  return iterations / kDhrystonesPerMip;
}

}  // namespace wimpy::kernels

#endif  // WIMPY_KERNELS_DHRYSTONE_H_
