// Sysbench-equivalent CPU and memory kernels (paper §4.1, §4.2).
//
// The CPU test finds all primes below a limit by trial division; the memory
// test streams blocks through a buffer. Both have a host-executable form
// and a calibrated simulation-demand form so Figures 2/3 and the §4.2
// bandwidth table can be regenerated on simulated Edison/Dell hardware.
#ifndef WIMPY_KERNELS_SYSBENCH_H_
#define WIMPY_KERNELS_SYSBENCH_H_

#include <cstdint>

#include "common/units.h"
#include "hw/profile.h"

namespace wimpy::kernels {

// --- CPU test ---------------------------------------------------------------

// Host execution: counts primes <= limit by trial division (the sysbench
// 0.5 "cpu" loop body).
std::int64_t CountPrimes(std::int64_t limit);

// sysbench runs a fixed number of "events", each computing all primes below
// `max_prime`. Default parameters used in the paper's plots.
inline constexpr int kSysbenchEvents = 10000;
inline constexpr std::int64_t kSysbenchMaxPrime = 20000;

// Simulated demand per event, in Minstr. Calibrated so one Edison thread
// completes the 10000-event test in ~570 s and one Dell thread in ~32 s —
// the 15-18x single-thread gap of Figures 2/3. Scales as n^1.5, the cost of
// trial division up to sqrt(n) for all candidates.
double SysbenchCpuEventDemandMinstr(std::int64_t max_prime);

// Total demand of a whole test run.
double SysbenchCpuTotalDemandMinstr(int events, std::int64_t max_prime);

// --- Memory test -------------------------------------------------------------

struct MemoryBenchResult {
  Bytes block_size = 0;
  int threads = 0;
  BytesPerSecond rate = 0;
};

// Host execution: streams `total_bytes` through a `block_size` buffer and
// returns the achieved rate (single thread).
MemoryBenchResult RunHostMemoryBench(Bytes block_size, Bytes total_bytes);

// Analytic model of the sysbench memory result on a hardware profile:
// threads scale the rate linearly up to bus saturation, and small blocks
// pay a fixed per-operation overhead (rates plateau for 256 KiB..1 MiB
// blocks, matching §4.2).
BytesPerSecond ModelMemoryRate(const hw::MemorySpec& spec, Bytes block_size,
                               int threads);

}  // namespace wimpy::kernels

#endif  // WIMPY_KERNELS_SYSBENCH_H_
