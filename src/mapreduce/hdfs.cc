#include "mapreduce/hdfs.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace wimpy::mapreduce {

Hdfs::Hdfs(net::Fabric* fabric, std::vector<hw::ServerNode*> datanodes,
           const HdfsConfig& config, std::uint64_t seed)
    : fabric_(fabric),
      datanodes_(std::move(datanodes)),
      config_(config),
      rng_(seed) {
  assert(!datanodes_.empty());
  assert(config_.replication >= 1);
  assert(config_.replication <=
         static_cast<int>(datanodes_.size()));
  placement_cursor_ = rng_.NextBelow(datanodes_.size());
}

std::vector<int> Hdfs::PlaceReplicas() {
  std::vector<int> replicas;
  replicas.reserve(config_.replication);
  for (int r = 0; r < config_.replication; ++r) {
    replicas.push_back(
        datanodes_[(placement_cursor_ + r) % datanodes_.size()]->id());
  }
  ++placement_cursor_;
  return replicas;
}

HdfsFile Hdfs::MakeFile(const std::string& name, Bytes size) {
  HdfsFile file;
  file.name = name;
  file.size = size;
  Bytes remaining = size;
  while (remaining > 0) {
    HdfsBlock block;
    block.id = next_block_id_++;
    block.size = std::min(remaining, config_.block_size);
    block.replica_nodes = PlaceReplicas();
    remaining -= block.size;
    file.blocks.push_back(std::move(block));
  }
  return file;
}

const HdfsFile& Hdfs::LoadFile(const std::string& name, Bytes size) {
  auto [it, inserted] = files_.emplace(name, MakeFile(name, size));
  assert(inserted && "file already exists");
  (void)inserted;
  return it->second;
}

std::vector<std::string> Hdfs::LoadFiles(const std::string& prefix,
                                         int file_count, Bytes total_size) {
  std::vector<std::string> names;
  names.reserve(file_count);
  const Bytes each = total_size / file_count;
  for (int i = 0; i < file_count; ++i) {
    const std::string name = prefix + "-" + std::to_string(i);
    // Last file absorbs the rounding remainder.
    const Bytes size =
        i == file_count - 1 ? total_size - each * (file_count - 1) : each;
    LoadFile(name, size);
    names.push_back(name);
  }
  return names;
}

sim::Task<void> Hdfs::WriteFile(const std::string& name, Bytes size,
                                int writer_node) {
  const HdfsFile& file = LoadFile(name, size);
  for (const HdfsBlock& block : file.blocks) {
    // Pipeline: writer ships the block to the first replica (free if
    // local), which persists and forwards along the chain.
    int upstream = writer_node;
    for (int replica : block.replica_nodes) {
      if (replica != upstream) {
        co_await fabric_->Transfer(upstream, replica, block.size);
      }
      hw::ServerNode* holder = nullptr;
      for (auto* node : datanodes_) {
        if (node->id() == replica) {
          holder = node;
          break;
        }
      }
      assert(holder != nullptr);
      co_await holder->storage().Write(block.size, /*buffered=*/true);
      upstream = replica;
    }
  }
}

sim::Task<void> Hdfs::ReadBlock(const HdfsBlock& block, int reader_node) {
  // Prefer a local replica.
  int source = block.replica_nodes.front();
  for (int replica : block.replica_nodes) {
    if (replica == reader_node) {
      source = replica;
      break;
    }
  }
  hw::ServerNode* holder = nullptr;
  for (auto* node : datanodes_) {
    if (node->id() == source) {
      holder = node;
      break;
    }
  }
  assert(holder != nullptr);
  co_await holder->storage().Read(block.size, /*buffered=*/false);
  if (source != reader_node) {
    co_await fabric_->Transfer(source, reader_node, block.size);
  }
}

StatusOr<HdfsFile> Hdfs::GetFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no HDFS file named '" + name + "'");
  }
  return it->second;
}

bool Hdfs::HasLocalReplica(const HdfsBlock& block, int node_id) const {
  return std::find(block.replica_nodes.begin(), block.replica_nodes.end(),
                   node_id) != block.replica_nodes.end();
}

void Hdfs::RecordMapLocality(bool local) {
  ++total_reads_;
  if (local) ++local_reads_;
}

double Hdfs::DataLocalFraction() const {
  return total_reads_ == 0 ? 0.0
                           : static_cast<double>(local_reads_) /
                                 static_cast<double>(total_reads_);
}

void Hdfs::PublishMetrics(obs::MetricsRegistry* registry,
                          const std::string& prefix) {
  registry->AddCounter(prefix + ".blocks", [this] {
    return static_cast<double>(total_blocks());
  });
  registry->AddGauge(prefix + ".data_local_frac",
                     [this] { return DataLocalFraction(); });
}

}  // namespace wimpy::mapreduce
