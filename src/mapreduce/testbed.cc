#include "mapreduce/testbed.h"

#include "hw/profiles.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/process.h"

namespace wimpy::mapreduce {

MrClusterConfig EdisonMrCluster(int slaves) {
  MrClusterConfig cfg;
  cfg.slave_profile = hw::EdisonProfile();
  cfg.slave_count = slaves;
  cfg.slave_group = "edison-room";
  cfg.hdfs.block_size = MiB(16);
  cfg.hdfs.replication = slaves >= 2 ? 2 : 1;
  cfg.yarn.node_usable_memory = MB(600);
  cfg.yarn.node_vcores = 2;
  cfg.yarn.am_memory = MB(100);
  cfg.slave_baseline_memory = MB(360);
  return cfg;
}

MrClusterConfig DellMrCluster(int slaves) {
  MrClusterConfig cfg;
  cfg.slave_profile = hw::DellR620Profile();
  cfg.slave_count = slaves;
  cfg.slave_group = "dell-room";
  cfg.hdfs.block_size = MiB(64);
  cfg.hdfs.replication = 1;
  cfg.yarn.node_usable_memory = GB(12);
  cfg.yarn.node_vcores = 12;
  cfg.yarn.am_memory = MB(500);
  cfg.slave_baseline_memory = GB(4);
  return cfg;
}

MrTestbed::MrTestbed(const MrClusterConfig& config)
    : config_(config), fabric_(&sched_), cluster_(&sched_, &fabric_) {
  // The hybrid deployment: a Dell master holds namenode + RM (excluded
  // from energy accounting); the slaves run the data/compute planes.
  cluster_.AddNodes(hw::DellR620Profile(), 1, "master", "dell-room");
  if (config_.throttled_slaves > 0) {
    // Heterogeneous fleet: the first K slaves run degraded CPUs.
    hw::HardwareProfile slow = config_.slave_profile;
    slow.name = config_.slave_profile.name + "-throttled";
    slow.cpu.dmips_per_thread *= config_.throttle_factor;
    const int k = std::min(config_.throttled_slaves, config_.slave_count);
    slaves_ = cluster_.AddNodes(slow, k, "mr-slave", config_.slave_group);
    auto healthy = cluster_.AddNodes(config_.slave_profile,
                                     config_.slave_count - k, "mr-slave",
                                     config_.slave_group);
    slaves_.insert(slaves_.end(), healthy.begin(), healthy.end());
  } else {
    slaves_ = cluster_.AddNodes(config_.slave_profile, config_.slave_count,
                                "mr-slave", config_.slave_group);
  }
  if (config_.slave_group != "dell-room") {
    fabric_.SetGroupLink(config_.slave_group, "dell-room", Gbps(1),
                         Milliseconds(0.02));
  }

  // OS + datanode + nodemanager resident baselines, so memory telemetry
  // starts where the paper's does (~37% on Edison).
  for (auto* node : slaves_) {
    node->memory().TryReserve(config_.slave_baseline_memory);
  }

  Rng seeder(config_.seed);
  hdfs_ = std::make_unique<Hdfs>(&fabric_, slaves_, config_.hdfs,
                                 seeder.Next());
  yarn_ = std::make_unique<Yarn>(slaves_, config_.yarn);
  job_seed_ = seeder.Next();

  if (config_.metrics != nullptr) {
    for (std::size_t i = 0; i < slaves_.size(); ++i) {
      slaves_[i]->PublishMetrics(config_.metrics,
                                 "slave" + std::to_string(i));
    }
    yarn_->PublishMetrics(config_.metrics, "yarn");
    hdfs_->PublishMetrics(config_.metrics, "hdfs");
    fabric_.PublishMetrics(config_.metrics, "net");
  }
}

void MrTestbed::LoadInput(const std::string& prefix, int files,
                          Bytes total_bytes) {
  hdfs_->LoadFiles(prefix, files, total_bytes);
}

MrRunResult MrTestbed::RunJob(const JobSpec& spec) {
  MapReduceJob job(&fabric_, hdfs_.get(), yarn_.get(), spec, config_.costs,
                   config_.slave_profile.name, job_seed_++);

  // Root of the job's causal trace tree: a span on track 0 named after
  // the job itself (dynamic name, interned for tracer lifetime); task
  // attempts become cross-track children, so Perfetto draws flow arrows
  // job -> attempt.
  obs::TraceHandle job_trace;
  std::unique_ptr<obs::CausalSpan> job_span;
  if (config_.tracer != nullptr) {
    job_trace.tracer = config_.tracer;
    job_trace.sched = &sched_;
    job_trace.track = 0;
    job_trace.ctx.trace_id = config_.tracer->NewTraceId();
    job_span = std::make_unique<obs::CausalSpan>(
        job_trace, config_.tracer->Intern(spec.name), obs::Category::kApp);
  }
  job.set_trace(job_span != nullptr ? job_span->handle()
                                    : obs::TraceHandle{});

  cluster::MetricsSampler sampler(&cluster_, {"mr-slave"}, Seconds(1));
  sampler.SetProgressProbe([&job] {
    return std::make_pair(job.MapProgressPct(), job.ReduceProgressPct());
  });

  const Joules joules_before = cluster_.CumulativeJoules({"mr-slave"});
  sampler.Start();
  if (config_.metrics != nullptr) {
    config_.metrics->Start(&sched_, Seconds(1));
  }
  sim::ProcessRef ref = job.Start();

  // Stop telemetry the moment the job driver finishes so the event queue
  // can drain.
  auto watcher = [this](sim::ProcessRef target,
                        cluster::MetricsSampler* s) -> sim::Process {
    co_await target.Join();
    s->Stop();
    if (config_.metrics != nullptr) config_.metrics->Stop();
  };
  sim::Spawn(sched_, watcher(ref, &sampler));
  sched_.Run();
  job_span.reset();  // closes the "job" span at the drained end time
  if (config_.metrics != nullptr) config_.metrics->SampleNow();

  MrRunResult result;
  result.job = job.result();
  result.slave_joules =
      cluster_.CumulativeJoules({"mr-slave"}) - joules_before;
  result.mean_slave_power =
      result.job.elapsed > 0 ? result.slave_joules / result.job.elapsed : 0;
  result.timeline = sampler.samples();
  if (spec.input_bytes > 0 && result.slave_joules > 0) {
    result.work_done_per_joule =
        static_cast<double>(spec.input_bytes) / 1e6 / result.slave_joules;
  }
  return result;
}

}  // namespace wimpy::mapreduce
