#include "mapreduce/textgen.h"

#include <cmath>
#include <cstdio>

namespace wimpy::mapreduce {

namespace {

// Deterministic pseudo-English word for a vocabulary index.
std::string WordForIndex(int index) {
  static const char* kSyllables[] = {"da", "ta", "cen", "ter", "mi", "cro",
                                     "ser", "ver", "e", "di", "son", "pow",
                                     "er", "jou", "le", "work"};
  constexpr int kNum = 16;
  std::string word;
  int x = index + 1;
  while (x > 0) {
    word += kSyllables[x % kNum];
    x /= kNum;
  }
  return word;
}

// Samples a Zipf(1.0)-distributed rank in [0, n) via rejection-free
// inverse-CDF over precomputed harmonic weights (built once per call site
// size; vocabulary sizes are small).
class ZipfSampler {
 public:
  explicit ZipfSampler(int n) : cdf_(n) {
    double h = 0;
    for (int i = 0; i < n; ++i) {
      h += 1.0 / static_cast<double>(i + 1);
      cdf_[i] = h;
    }
    for (auto& c : cdf_) c /= h;
  }

  int Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search the CDF.
    int lo = 0, hi = static_cast<int>(cdf_.size()) - 1;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::string GenerateTextCorpus(Bytes bytes, int vocabulary, Rng& rng) {
  ZipfSampler zipf(vocabulary);
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 16);
  int words_on_line = 0;
  while (static_cast<Bytes>(out.size()) < bytes) {
    out += WordForIndex(zipf.Sample(rng));
    if (++words_on_line >= 12) {
      out += '\n';
      words_on_line = 0;
    } else {
      out += ' ';
    }
  }
  return out;
}

std::string GenerateLogFile(Bytes bytes, int days, Rng& rng) {
  static const char* kLevels[] = {"INFO", "DEBUG", "WARN", "ERROR"};
  const std::vector<double> level_weights = {0.80, 0.12, 0.06, 0.02};
  static const char* kComponents[] = {
      "org.apache.hadoop.yarn.server.nodemanager.NodeManager",
      "org.apache.hadoop.hdfs.server.datanode.DataNode",
      "org.apache.hadoop.mapreduce.v2.app.MRAppMaster",
      "org.apache.hadoop.yarn.server.resourcemanager.ResourceManager"};
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 160);
  char line[256];
  while (static_cast<Bytes>(out.size()) < bytes) {
    const int day = static_cast<int>(rng.NextBelow(days)) + 1;
    const int hour = static_cast<int>(rng.NextBelow(24));
    const int minute = static_cast<int>(rng.NextBelow(60));
    const int second = static_cast<int>(rng.NextBelow(60));
    const char* level = kLevels[rng.WeightedIndex(level_weights)];
    const char* component = kComponents[rng.NextBelow(4)];
    std::snprintf(line, sizeof(line),
                  "2016-02-%02d %02d:%02d:%02d,%03d %s %s: container "
                  "update event processed for attempt %llu\n",
                  day, hour, minute, second,
                  static_cast<int>(rng.NextBelow(1000)), level, component,
                  static_cast<unsigned long long>(rng.NextBelow(100000)));
    out += line;
  }
  return out;
}

std::string GenerateTeraRecords(std::int64_t count, Rng& rng) {
  std::string out;
  out.reserve(static_cast<std::size_t>(count * kTeraRecordBytes));
  for (std::int64_t i = 0; i < count; ++i) {
    // 10-byte printable key.
    for (int k = 0; k < 10; ++k) {
      out += static_cast<char>(' ' + rng.NextBelow(95));
    }
    // 90-byte payload: record number + filler, as teragen does.
    char payload[91];
    std::snprintf(payload, sizeof(payload), "%022lld",
                  static_cast<long long>(i));
    std::string pay(payload);
    pay.resize(90, 'F');
    out += pay;
  }
  return out;
}

}  // namespace wimpy::mapreduce
