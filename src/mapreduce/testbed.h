// MapReduce testbed: 1 Dell master + N slaves, HDFS + YARN + telemetry.
//
// Mirrors the paper's hybrid deployment (§5.2): the namenode and resource
// manager always run on a Dell R620 master (an Edison master cannot hold
// the global state), the slaves run datanode + nodemanager. Energy
// accounting EXCLUDES the master on both platforms, exactly as the paper
// computes its joules (the master idles at ~1% CPU either way).
#ifndef WIMPY_MAPREDUCE_TESTBED_H_
#define WIMPY_MAPREDUCE_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/metrics.h"
#include "mapreduce/hdfs.h"
#include "mapreduce/job.h"
#include "mapreduce/yarn.h"

namespace wimpy::obs {
class MetricsRegistry;
class Tracer;
}  // namespace wimpy::obs

namespace wimpy::mapreduce {

struct MrClusterConfig {
  hw::HardwareProfile slave_profile;
  int slave_count = 35;
  std::string slave_group = "edison-room";
  HdfsConfig hdfs;
  YarnConfig yarn;
  FrameworkCosts costs;
  // OS + datanode + nodemanager resident memory per slave (360 MB Edison,
  // 4 GB Dell per §5.2).
  Bytes slave_baseline_memory = MB(360);
  // Heterogeneity/straggler injection: the first `throttled_slaves` nodes
  // run their CPU at `throttle_factor` of nominal (e.g. thermal
  // throttling, a weak card, a failing breakout board — §7 reliability).
  int throttled_slaves = 0;
  double throttle_factor = 0.5;
  std::uint64_t seed = 20160501;
  // Optional observability sinks (docs/observability.md); borrowed, may
  // be null. With `tracer`, RunJob wraps the job in a span and every
  // map/reduce attempt gets its own. With `metrics`, the testbed
  // publishes per-slave utilisation/power, YARN, HDFS and link probes
  // sampled at 1 s of simulated time for the duration of each job.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

// §5.2 tunings: block 16 MB / replication 2 / 600 MB usable / 2 vcores on
// Edison; block 64 MB / replication 1 / 12 GB / 12 vcores on Dell.
MrClusterConfig EdisonMrCluster(int slaves);
MrClusterConfig DellMrCluster(int slaves);

struct MrRunResult {
  JobResult job;
  Joules slave_joules = 0;  // master excluded
  Watts mean_slave_power = 0;
  std::vector<cluster::MetricsSample> timeline;  // 1 Hz, slaves only
  double work_done_per_joule = 0;  // input MB per joule (0 for pi)
};

class MrTestbed {
 public:
  explicit MrTestbed(const MrClusterConfig& config);

  MrTestbed(const MrTestbed&) = delete;
  MrTestbed& operator=(const MrTestbed&) = delete;

  Hdfs& hdfs() { return *hdfs_; }
  Yarn& yarn() { return *yarn_; }
  cluster::Cluster& cluster() { return cluster_; }
  sim::Scheduler& scheduler() { return sched_; }
  const MrClusterConfig& config() const { return config_; }

  // Registers input files (metadata + placement only, like pre-loaded
  // HDFS data).
  void LoadInput(const std::string& prefix, int files, Bytes total_bytes);

  // Runs one job to completion on this testbed and reports runtime,
  // energy, and the 1 Hz telemetry timeline.
  MrRunResult RunJob(const JobSpec& spec);

 private:
  MrClusterConfig config_;
  sim::Scheduler sched_;
  net::Fabric fabric_;
  cluster::Cluster cluster_;
  std::vector<hw::ServerNode*> slaves_;
  std::unique_ptr<Hdfs> hdfs_;
  std::unique_ptr<Yarn> yarn_;
  std::uint64_t job_seed_ = 1;
};

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_TESTBED_H_
