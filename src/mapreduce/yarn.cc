#include "mapreduce/yarn.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace wimpy::mapreduce {

Yarn::Yarn(std::vector<hw::ServerNode*> slaves, const YarnConfig& config)
    : slaves_(std::move(slaves)), config_(config) {
  assert(!slaves_.empty());
  for (auto* node : slaves_) {
    free_memory_[node->id()] = config_.node_usable_memory;
  }
}

bool Yarn::HeartbeatBudgetLeft(int node_id) {
  const Duration now = slaves_.front()->scheduler().now();
  HeartbeatWindow& window = heartbeat_[node_id];
  if (window.window_start < 0 ||
      now - window.window_start >= config_.heartbeat) {
    window.window_start = now;
    window.assigned = 0;
  }
  return window.assigned < config_.containers_per_node_heartbeat;
}

hw::ServerNode* Yarn::TryPick(Bytes memory,
                              const std::vector<int>& preferred_nodes) {
  // Locality first.
  for (int id : preferred_nodes) {
    auto it = free_memory_.find(id);
    if (it != free_memory_.end() && it->second >= memory &&
        HeartbeatBudgetLeft(id)) {
      for (auto* node : slaves_) {
        if (node->id() == id) {
          last_preferred_ = true;
          return node;
        }
      }
    }
  }
  // Fall back to the node with the most free container memory (spread).
  hw::ServerNode* best = nullptr;
  Bytes best_free = memory - 1;
  for (auto* node : slaves_) {
    const Bytes free = free_memory_[node->id()];
    if (free > best_free && HeartbeatBudgetLeft(node->id())) {
      best_free = free;
      best = node;
    }
  }
  last_preferred_ = false;
  return best;
}

sim::Task<Container> Yarn::Allocate(
    Bytes memory, const std::vector<int>& preferred_nodes) {
  sim::Scheduler& sched = slaves_.front()->scheduler();
  for (;;) {
    hw::ServerNode* node = TryPick(memory, preferred_nodes);
    if (node != nullptr) {
      ++heartbeat_[node->id()].assigned;
      free_memory_[node->id()] -= memory;
      // Mirror into the hardware model so memory telemetry is truthful;
      // best-effort because daemons may already occupy headroom.
      const bool reserved = node->memory().TryReserve(memory);
      ++allocated_;
      co_return Container{node, memory, reserved};
    }
    co_await sim::Delay(sched, config_.heartbeat);
  }
}

void Yarn::Release(const Container& container) {
  assert(container.valid());
  free_memory_[container.node->id()] += container.memory;
  if (container.hw_reserved) {
    container.node->memory().Free(container.memory);
  }
}

Bytes Yarn::FreeMemory(int node_id) const {
  auto it = free_memory_.find(node_id);
  return it == free_memory_.end() ? 0 : it->second;
}

hw::ServerNode* Yarn::NodeById(int node_id) const {
  for (auto* node : slaves_) {
    if (node->id() == node_id) return node;
  }
  return nullptr;
}

void Yarn::PublishMetrics(obs::MetricsRegistry* registry,
                          const std::string& prefix) {
  registry->AddCounter(prefix + ".containers", [this] {
    return static_cast<double>(allocated_);
  });
  registry->AddGauge(prefix + ".mem_used_frac", [this] {
    Bytes free = 0;
    for (const auto& [id, bytes] : free_memory_) free += bytes;
    const Bytes total = TotalUsableMemory();
    if (total <= 0) return 0.0;
    return 1.0 - static_cast<double>(free) / static_cast<double>(total);
  });
}

}  // namespace wimpy::mapreduce
