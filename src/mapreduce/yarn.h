// YARN model: ResourceManager + NodeManagers allocating memory-sized
// containers on slave nodes.
//
// Like the real CapacityScheduler default, admission is *memory-based*:
// vcores are advisory. That is what lets the paper run four 150 MB map
// containers on a 2-vcore Edison (wordcount) — oversubscribing the cores —
// while wordcount2's 300 MB containers pin one per vcore.
//
// Allocation requests are served FIFO at resource-manager heartbeat
// granularity; the heartbeat plus JVM spin-up is the "container allocation
// overhead" the paper repeatedly identifies (§5.2.1: the CPU-usage rise
// lags job start by ~45 s on Edison, ~20 s on Dell).
#ifndef WIMPY_MAPREDUCE_YARN_H_
#define WIMPY_MAPREDUCE_YARN_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "hw/server_node.h"
#include "sim/process.h"
#include "sim/task.h"

namespace wimpy::obs {
class MetricsRegistry;
}  // namespace wimpy::obs

namespace wimpy::mapreduce {

struct YarnConfig {
  // Memory available for containers per node, after OS + datanode +
  // node-manager baselines (600 MB Edison, 12 GB Dell in the paper).
  Bytes node_usable_memory = MB(600);
  int node_vcores = 2;
  // Application-master container (100 MB Edison, 500 MB Dell).
  Bytes am_memory = MB(100);
  // RM scheduling heartbeat.
  Duration heartbeat = Seconds(1.0);
  // Containers the RM assigns to one node per heartbeat. This is the
  // dominant container-allocation overhead: a job with hundreds of tiny
  // splits drains slowly onto a 2-node Dell cluster (2 nodes x k per
  // second) but quickly onto 35 Edisons — the paper's §5.2.1 observation
  // that "huge parallelism helps the Edison cluster when there are higher
  // container allocation overheads".
  int containers_per_node_heartbeat = 2;
};

struct Container {
  hw::ServerNode* node = nullptr;
  Bytes memory = 0;
  // Whether the hardware memory model accepted the mirrored reservation
  // (it may be full of daemon baselines); Release only frees what was
  // actually reserved.
  bool hw_reserved = false;
  bool valid() const { return node != nullptr; }
};

class Yarn {
 public:
  Yarn(std::vector<hw::ServerNode*> slaves, const YarnConfig& config);

  Yarn(const Yarn&) = delete;
  Yarn& operator=(const Yarn&) = delete;

  // Awaits a container of `memory` bytes. `preferred_nodes` (e.g. the
  // nodes holding the input block's replicas) win ties; allocation falls
  // back to the least-loaded node otherwise. Also reserves the memory in
  // the node's hardware model so utilisation telemetry sees it.
  sim::Task<Container> Allocate(Bytes memory,
                                const std::vector<int>& preferred_nodes);

  void Release(const Container& container);

  const YarnConfig& config() const { return config_; }
  std::int64_t containers_allocated() const { return allocated_; }
  // True when the chosen node was in the preferred list.
  bool last_allocation_was_preferred() const { return last_preferred_; }

  // Free container memory on a node (for tests/telemetry).
  Bytes FreeMemory(int node_id) const;

  // Slave lookup by node id; nullptr when unknown.
  hw::ServerNode* NodeById(int node_id) const;

  // Total container memory across all slaves (for share bounds).
  Bytes TotalUsableMemory() const {
    return config_.node_usable_memory *
           static_cast<Bytes>(slaves_.size());
  }

  // Registers scheduler probes: `<prefix>.containers` (cumulative
  // allocations) and `<prefix>.mem_used_frac` (allocated fraction of the
  // cluster's container memory). See docs/observability.md.
  void PublishMetrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

 private:
  // Returns the chosen node or nullptr when nothing fits.
  hw::ServerNode* TryPick(Bytes memory,
                          const std::vector<int>& preferred_nodes);
  // Rolls the node's heartbeat window forward and reports whether it can
  // still be assigned a container this heartbeat.
  bool HeartbeatBudgetLeft(int node_id);

  std::vector<hw::ServerNode*> slaves_;
  YarnConfig config_;
  std::map<int, Bytes> free_memory_;  // node id -> unallocated bytes
  // Per-node heartbeat window accounting for assignment rate limiting.
  struct HeartbeatWindow {
    Duration window_start = -1;
    int assigned = 0;
  };
  std::map<int, HeartbeatWindow> heartbeat_;
  std::int64_t allocated_ = 0;
  bool last_preferred_ = false;
};

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_YARN_H_
