#include "mapreduce/compute.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "mapreduce/textgen.h"

namespace wimpy::mapreduce {

MapStats WordCountMap(std::string_view text,
                      std::map<std::string, std::int64_t>* counts) {
  MapStats stats;
  stats.input_bytes = static_cast<std::int64_t>(text.size());
  std::map<std::string, std::int64_t> local;
  auto& sink = counts != nullptr ? *counts : local;

  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      if (text[i] == '\n') ++stats.input_records;
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      const std::string word(text.substr(start, i - start));
      ++sink[word];
      ++stats.output_records;
      // Hadoop Text key + IntWritable value serialisation overhead.
      stats.output_bytes += static_cast<std::int64_t>(word.size()) + 6;
    }
  }
  if (!text.empty() && text.back() != '\n') ++stats.input_records;
  stats.distinct_keys = static_cast<std::int64_t>(sink.size());
  return stats;
}

MapStats LogCountMap(std::string_view log_text,
                     std::map<std::string, std::int64_t>* counts) {
  MapStats stats;
  stats.input_bytes = static_cast<std::int64_t>(log_text.size());
  std::map<std::string, std::int64_t> local;
  auto& sink = counts != nullptr ? *counts : local;

  std::size_t pos = 0;
  while (pos < log_text.size()) {
    std::size_t eol = log_text.find('\n', pos);
    if (eol == std::string_view::npos) eol = log_text.size();
    const std::string_view line = log_text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.size() < 24) continue;
    ++stats.input_records;
    // "YYYY-MM-DD HH:MM:SS,mmm LEVEL ..." -> key "YYYY-MM-DD LEVEL".
    const std::string_view date = line.substr(0, 10);
    const std::size_t level_start = line.find(' ', 11);
    if (level_start == std::string_view::npos) continue;
    const std::size_t level_end = line.find(' ', level_start + 1);
    if (level_end == std::string_view::npos) continue;
    const std::string_view level =
        line.substr(level_start + 1, level_end - level_start - 1);
    if (level.empty() || level.size() > 5) continue;
    std::string key(date);
    key += ' ';
    key += level;
    ++sink[key];
    ++stats.output_records;
    stats.output_bytes += static_cast<std::int64_t>(key.size()) + 6;
  }
  stats.distinct_keys = static_cast<std::int64_t>(sink.size());
  return stats;
}

std::string TeraSortRecords(std::string_view records) {
  const std::size_t n = records.size() / kTeraRecordBytes;
  std::vector<std::uint32_t> index(n);
  for (std::size_t i = 0; i < n; ++i) index[i] = static_cast<std::uint32_t>(i);
  std::sort(index.begin(), index.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return records.compare(a * kTeraRecordBytes, 10, records,
                                     b * kTeraRecordBytes, 10) < 0;
            });
  std::string out;
  out.reserve(records.size());
  for (std::uint32_t i : index) {
    out.append(records.substr(i * kTeraRecordBytes, kTeraRecordBytes));
  }
  return out;
}

bool TeraValidate(std::string_view sorted_records) {
  const std::size_t n = sorted_records.size() / kTeraRecordBytes;
  for (std::size_t i = 1; i < n; ++i) {
    if (sorted_records.compare((i - 1) * kTeraRecordBytes, 10,
                               sorted_records, i * kTeraRecordBytes,
                               10) > 0) {
      return false;
    }
  }
  return true;
}

PiResult EstimatePi(std::int64_t samples, Rng& rng) {
  PiResult result;
  result.samples = samples;
  for (std::int64_t i = 0; i < samples; ++i) {
    const double x = rng.NextDouble() * 2 - 1;
    const double y = rng.NextDouble() * 2 - 1;
    if (x * x + y * y <= 1.0) ++result.inside;
  }
  result.estimate =
      samples == 0 ? 0.0
                   : 4.0 * static_cast<double>(result.inside) /
                         static_cast<double>(samples);
  return result;
}

}  // namespace wimpy::mapreduce
