// The actual map/reduce computations (host-executable).
//
// These run for real: wordcount tokenises and counts, logcount extracts
// <date, level> keys, terasort sorts 100-byte records and validates order,
// and the pi estimator throws darts. The simulator uses the statistics they
// report (records in/out, bytes out) to parameterise job cost models, and
// the tests use them as correctness oracles.
#ifndef WIMPY_MAPREDUCE_COMPUTE_H_
#define WIMPY_MAPREDUCE_COMPUTE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace wimpy::mapreduce {

// Statistics of one map-side computation over a data sample; ratios are
// what the simulator consumes.
struct MapStats {
  std::int64_t input_bytes = 0;
  std::int64_t input_records = 0;   // lines (or samples)
  std::int64_t output_records = 0;  // emitted key/value pairs
  std::int64_t output_bytes = 0;    // serialised map output
  std::int64_t distinct_keys = 0;

  double OutputRatio() const {
    return input_bytes == 0
               ? 0.0
               : static_cast<double>(output_bytes) /
                     static_cast<double>(input_bytes);
  }
  // Fraction of output surviving a combiner (one record per distinct key).
  double CombinerSurvival() const {
    return output_records == 0
               ? 1.0
               : static_cast<double>(distinct_keys) /
                     static_cast<double>(output_records);
  }
};

// --- wordcount ---------------------------------------------------------------

// Tokenises `text` and counts words. `counts` may be null if only stats are
// needed.
MapStats WordCountMap(std::string_view text,
                      std::map<std::string, std::int64_t>* counts);

// --- logcount ----------------------------------------------------------------

// Extracts "<date> <LEVEL>" keys from Hadoop log lines and counts them
// (the example the paper cites: <'2016-02-01 INFO', 1>).
MapStats LogCountMap(std::string_view log_text,
                     std::map<std::string, std::int64_t>* counts);

// --- terasort ----------------------------------------------------------------

// Sorts concatenated 100-byte records by their 10-byte key, in place over a
// copy; returns the sorted buffer.
std::string TeraSortRecords(std::string_view records);

// Validates global order; returns false on any inversion (teravalidate).
bool TeraValidate(std::string_view sorted_records);

// --- pi ----------------------------------------------------------------------

struct PiResult {
  std::int64_t samples = 0;
  std::int64_t inside = 0;
  double estimate = 0;
};

// Monte-carlo pi over `samples` darts (the Hadoop pi example's kernel).
PiResult EstimatePi(std::int64_t samples, Rng& rng);

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_COMPUTE_H_
