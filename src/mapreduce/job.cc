#include "mapreduce/job.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/tracer.h"

namespace wimpy::mapreduce {

MapReduceJob::MapReduceJob(net::Fabric* fabric, Hdfs* hdfs, Yarn* yarn,
                           JobSpec spec, FrameworkCosts costs,
                           std::string platform_profile, std::uint64_t seed)
    : fabric_(fabric),
      hdfs_(hdfs),
      yarn_(yarn),
      spec_(std::move(spec)),
      costs_(costs),
      efficiency_(spec_.EfficiencyFor(platform_profile)),
      rng_(seed) {
  assert(efficiency_ > 0);
  for (int r = 0; r < spec_.reducers; ++r) {
    shuffle_.push_back(std::make_unique<sim::WaitQueue<MapOutputPart>>(
        &fabric_->scheduler()));
  }
}

std::vector<MapReduceJob::Split> MapReduceJob::ComputeSplits() const {
  std::vector<Split> splits;

  if (spec_.synthetic_map_tasks > 0) {
    // Input-less job (pi): equal synthetic tasks, no blocks.
    splits.resize(spec_.synthetic_map_tasks);
    return splits;
  }

  // Gather all blocks of all input files in file order.
  std::vector<HdfsBlock> blocks;
  for (int i = 0; i < spec_.input_files; ++i) {
    auto file = hdfs_->GetFile(spec_.input_prefix + "-" + std::to_string(i));
    assert(file.ok());
    for (const auto& b : file->blocks) blocks.push_back(b);
  }

  if (!spec_.combine_inputs) {
    // One split per block; small files therefore cost one container each.
    for (const auto& block : blocks) {
      Split split;
      split.bytes = block.size;
      split.blocks.push_back(block);
      split.preferred_nodes = block.replica_nodes;
      splits.push_back(std::move(split));
    }
    return splits;
  }

  // CombineFileInputFormat packs blocks into splits up to max_split_size,
  // grouping by replica holder first — like the real implementation's
  // node-local pass — so a combined split stays data-local (the paper
  // observes ~95% locality for the tuned jobs).
  assert(spec_.max_split_size > 0);
  std::map<int, std::vector<HdfsBlock>> by_node;
  for (const auto& block : blocks) {
    by_node[block.replica_nodes.front()].push_back(block);
  }
  for (auto& [node, node_blocks] : by_node) {
    // Balance the group's bytes across ceil(bytes/max) splits so waves
    // stay even (one oversized straggler split would double the phase).
    Bytes group_bytes = 0;
    for (const auto& block : node_blocks) group_bytes += block.size;
    const int group_splits = static_cast<int>(
        (group_bytes + spec_.max_split_size - 1) / spec_.max_split_size);
    const Bytes target =
        (group_bytes + group_splits - 1) / std::max(1, group_splits);

    Split current;
    for (const auto& block : node_blocks) {
      if (current.bytes > 0 &&
          current.bytes + block.size > spec_.max_split_size) {
        splits.push_back(std::move(current));
        current = Split{};
      }
      if (current.blocks.empty()) {
        current.preferred_nodes = block.replica_nodes;
      }
      current.bytes += block.size;
      current.blocks.push_back(block);
      // Close the split once it reaches the balanced target (it may
      // exceed the target by part of one block but never max_split).
      if (current.bytes >= target) {
        splits.push_back(std::move(current));
        current = Split{};
      }
    }
    if (current.bytes > 0) splits.push_back(std::move(current));
  }
  return splits;
}

sim::ProcessRef MapReduceJob::Start() {
  return sim::Spawn(fabric_->scheduler(), Driver());
}

sim::Process MapReduceJob::Driver() {
  sim::Scheduler& sched = fabric_->scheduler();
  result_.job_name = spec_.name;
  result_.started = sched.now();

  // Application master: initialisation time scales with the input file
  // count (split computation). The AM itself is hosted next to the
  // resource manager on the Dell master — keeping every slave's container
  // memory for tasks reproduces the paper's stated concurrency (e.g. all
  // 70 pi containers running at once on 35 Edisons).
  co_await sim::Delay(sched, costs_.am_init_base +
                                 costs_.am_init_per_file *
                                     static_cast<double>(spec_.input_files));

  splits_ = ComputeSplits();
  total_maps_ = static_cast<int>(splits_.size());
  result_.map_tasks = total_maps_;
  result_.reduce_tasks = spec_.reducers;
  map_committed_.assign(total_maps_, false);
  map_speculated_.assign(total_maps_, false);
  map_started_.assign(total_maps_, 0.0);

  for (int i = 0; i < total_maps_; ++i) {
    map_refs_.push_back(sim::Spawn(sched, MapTask(splits_[i], i)));
  }
  if (spec_.speculative_execution) {
    sim::Spawn(sched, SpeculationMonitor());
  }

  // Reduce slow start: wait for the configured map fraction.
  const int threshold = std::max(
      1, static_cast<int>(std::ceil(spec_.reduce_slowstart * total_maps_)));
  while (completed_maps_ < threshold) {
    co_await sim::Delay(sched, 0.5);  // AM progress poll
  }
  result_.first_reduce_launch = sched.now();
  for (int r = 0; r < spec_.reducers; ++r) {
    reduce_refs_.push_back(sim::Spawn(sched, ReduceTask(r)));
  }

  // Index loop: the speculation monitor may append duplicate attempts
  // while we wait.
  for (std::size_t i = 0; i < map_refs_.size(); ++i) {
    co_await map_refs_[i].Join();
  }
  result_.map_phase_end = sched.now();
  for (std::size_t i = 0; i < reduce_refs_.size(); ++i) {
    co_await reduce_refs_[i].Join();
  }

  result_.finished = sched.now();
  result_.elapsed = result_.finished - result_.started;
  result_.data_local_fraction = hdfs_->DataLocalFraction();
  result_.map_output_bytes = map_output_bytes_;
  result_.job_output_bytes = static_cast<Bytes>(
      spec_.job_output_ratio * static_cast<double>(spec_.input_bytes));
  done_ = true;
}

sim::Process MapReduceJob::MapTask(Split split, int task_index) {
  sim::Scheduler& sched = fabric_->scheduler();
  const std::int32_t track = next_span_track_++;
  obs::CausalSpan task_span(trace_, track, "map", obs::Category::kTask,
                            task_index);
  Container container =
      co_await yarn_->Allocate(spec_.map_container_mem,
                               split.preferred_nodes);
  hw::ServerNode* node = container.node;
  if (result_.first_map_launch == 0) result_.first_map_launch = sched.now();
  // A speculative duplicate may already have finished this task while we
  // waited for a container.
  if (map_committed_[task_index]) {
    yarn_->Release(container);
    co_return;
  }
  const SimTime attempt_start = sched.now();
  if (map_started_[task_index] == 0) {
    map_started_[task_index] = attempt_start;
  }

  // JVM + task bootstrap.
  co_await node->cpu().Execute(Derated(costs_.jvm_start_minstr));

  // Read the split from HDFS.
  for (const auto& block : split.blocks) {
    if (map_committed_[task_index]) {  // superseded: abort (Hadoop kill)
      yarn_->Release(container);
      co_return;
    }
    hdfs_->RecordMapLocality(hdfs_->HasLocalReplica(block, node->id()));
    co_await hdfs_->ReadBlock(block, node->id());
  }

  // Map computation: CPU plus streaming the input through the memory bus.
  // Executed in slices so a superseded attempt can abort promptly.
  const double input_mb = static_cast<double>(split.bytes) / 1e6;
  if (split.bytes > 0) {
    co_await node->memory().Transfer(split.bytes);
  }
  const double map_minstr =
      spec_.map_fixed_minstr + spec_.map_minstr_per_mb * input_mb;
  constexpr int kSlices = 8;
  for (int slice = 0; slice < kSlices; ++slice) {
    if (map_committed_[task_index]) {
      yarn_->Release(container);
      co_return;
    }
    co_await node->cpu().Execute(Derated(map_minstr / kSlices));
  }

  // Map output, optionally combined, spilled to local disk. The combine +
  // spill write is the map-side "spill" phase: a child span nested inside
  // this attempt's "map" span (same track).
  Bytes output = static_cast<Bytes>(spec_.map_output_ratio *
                                    static_cast<double>(split.bytes));
  if (output > 0) {
    obs::CausalSpan spill_span(task_span.handle(), "spill",
                               obs::Category::kTask, task_index);
    if (spec_.has_combiner) {
      const double output_mb = static_cast<double>(output) / 1e6;
      co_await node->cpu().Execute(
          Derated(spec_.combiner_minstr_per_mb * output_mb));
      output = static_cast<Bytes>(spec_.combiner_survival *
                                  static_cast<double>(output));
    }
    if (output > 0) {
      co_await node->storage().Write(output, /*buffered=*/true);
    }
  }

  // First finisher publishes; a losing duplicate discards its work.
  if (map_committed_[task_index]) {
    yarn_->Release(container);
    co_return;
  }
  map_committed_[task_index] = true;
  map_output_bytes_ += output;
  map_durations_.push_back(sched.now() - attempt_start);

  // Publish one partition per reducer.
  const Bytes partition =
      spec_.reducers > 0 ? output / spec_.reducers : 0;
  for (auto& queue : shuffle_) {
    queue->Push(MapOutputPart{node->id(), partition});
  }

  ++completed_maps_;
  yarn_->Release(container);
}

sim::Process MapReduceJob::SpeculationMonitor() {
  sim::Scheduler& sched = fabric_->scheduler();
  while (completed_maps_ < total_maps_) {
    co_await sim::Delay(sched, 5.0);
    const double done_fraction =
        static_cast<double>(completed_maps_) /
        std::max(1, total_maps_);
    if (done_fraction < spec_.speculation_phase_threshold ||
        map_durations_.empty()) {
      continue;
    }
    std::vector<double> durations = map_durations_;
    std::nth_element(durations.begin(),
                     durations.begin() + durations.size() / 2,
                     durations.end());
    const double median = durations[durations.size() / 2];
    for (int i = 0; i < total_maps_; ++i) {
      if (map_committed_[i] || map_speculated_[i] ||
          map_started_[i] <= 0) {
        continue;
      }
      if (sched.now() - map_started_[i] >
          spec_.speculation_slowdown * median) {
        map_speculated_[i] = true;
        ++speculative_launched_;
        map_refs_.push_back(sim::Spawn(sched, MapTask(splits_[i], i)));
      }
    }
  }
}

sim::Process MapReduceJob::ReduceTask(int reduce_index) {
  sim::Scheduler& sched = fabric_->scheduler();
  const std::int32_t track = next_span_track_++;
  obs::CausalSpan task_span(trace_, track, "reduce", obs::Category::kTask,
                            reduce_index);
  // Guard against the classic slow-start deadlock: reducers hold their
  // containers until every map output arrives, so if they occupied every
  // slot while maps were still pending the job would stall forever. Like
  // Hadoop's reducer-preemption/limits, bound early reducers to half the
  // cluster's container memory until the map phase completes.
  const int max_early_reducers = std::max<int>(
      1, static_cast<int>(yarn_->TotalUsableMemory() / 2 /
                          spec_.reduce_container_mem));
  while (reduce_index >= max_early_reducers &&
         completed_maps_ < total_maps_) {
    co_await sim::Delay(sched, 1.0);
  }
  Container container =
      co_await yarn_->Allocate(spec_.reduce_container_mem, {});
  hw::ServerNode* node = container.node;

  co_await node->cpu().Execute(Derated(costs_.jvm_start_minstr));

  // Shuffle: fetch this reducer's partition from every map output as they
  // become available — the "shuffle" phase, a child span nested inside
  // this attempt's "reduce" span (same track).
  Bytes shuffled = 0;
  {
    obs::CausalSpan shuffle_span(task_span.handle(), "shuffle",
                                 obs::Category::kTask, reduce_index);
    for (int m = 0; m < total_maps_; ++m) {
      MapOutputPart part = co_await shuffle_[reduce_index]->Get();
      ++fetches_done_;
      if (part.bytes <= 0) continue;
      shuffled += part.bytes;
      // Source-side read of the spilled segment, then the wire for remote
      // fetches.
      hw::ServerNode* source = yarn_->NodeById(part.source_node);
      assert(source != nullptr);
      co_await source->storage().Read(part.bytes, /*buffered=*/true);
      if (part.source_node != node->id()) {
        co_await fabric_->Transfer(part.source_node, node->id(),
                                   part.bytes);
      }
    }
  }

  // Merge pass: buffered write+read of the shuffled data on local disk —
  // the reduce-side "spill" when the merge overflows the container.
  if (shuffled > spec_.reduce_container_mem) {
    obs::CausalSpan spill_span(task_span.handle(), "spill",
                               obs::Category::kTask, reduce_index);
    co_await node->storage().Write(shuffled, /*buffered=*/true);
    co_await node->storage().Read(shuffled, /*buffered=*/true);
  } else if (shuffled > 0) {
    co_await node->memory().Transfer(shuffled);
  }

  // Reduce computation.
  const double shuffled_mb = static_cast<double>(shuffled) / 1e6;
  co_await node->cpu().Execute(
      Derated(spec_.reduce_fixed_minstr +
              spec_.reduce_minstr_per_mb * shuffled_mb));

  // Write this reducer's share of the job output to HDFS (replicated).
  const Bytes output_share = static_cast<Bytes>(
      spec_.job_output_ratio * static_cast<double>(spec_.input_bytes) /
      std::max(1, spec_.reducers));
  if (output_share > 0) {
    co_await hdfs_->WriteFile(
        spec_.name + "-out-" + std::to_string(reduce_index), output_share,
        node->id());
  }

  ++completed_reducers_;
  yarn_->Release(container);
}

double MapReduceJob::MapProgressPct() const {
  if (total_maps_ == 0) return done_ ? 100.0 : 0.0;
  return 100.0 * static_cast<double>(completed_maps_) /
         static_cast<double>(total_maps_);
}

double MapReduceJob::ReduceProgressPct() const {
  if (spec_.reducers == 0) return done_ ? 100.0 : 0.0;
  const double total_fetches =
      static_cast<double>(total_maps_) * spec_.reducers;
  const double fetch_part =
      total_fetches == 0
          ? 0.0
          : static_cast<double>(fetches_done_) / total_fetches;
  const double reduce_part = static_cast<double>(completed_reducers_) /
                             static_cast<double>(spec_.reducers);
  return 100.0 * (0.67 * fetch_part + 0.33 * reduce_part);
}

}  // namespace wimpy::mapreduce
