// MapReduce job engine: splits, map tasks, shuffle, reduce tasks.
//
// The execution model mirrors Hadoop 2.x on YARN at the fidelity the paper
// measures:
//   * an application master initialises the job (split computation scales
//     with the number of input files — the overhead that penalises the
//     original wordcount/logcount with 200-500 tiny files);
//   * each map task costs a container allocation + JVM spin-up, an HDFS
//     split read (local or remote), CPU proportional to input, an optional
//     combiner, and a spill write of its output;
//   * reducers launch after a slow-start fraction of maps complete, fetch
//     every map's partition over the fabric, and write replicated output;
//   * all CPU work is derated by a per-platform efficiency factor
//     (JVM/data-path IPC differs from Dhrystone IPC; see DESIGN.md).
#ifndef WIMPY_MAPREDUCE_JOB_H_
#define WIMPY_MAPREDUCE_JOB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "mapreduce/hdfs.h"
#include "mapreduce/yarn.h"
#include "net/fabric.h"
#include "obs/context.h"
#include "sim/process.h"
#include "sim/wait_queue.h"

namespace wimpy::mapreduce {

// Framework-level cost constants (independent of the particular job).
struct FrameworkCosts {
  // JVM + task bootstrap per container, million instructions.
  double jvm_start_minstr = 8000;
  // AM startup and per-input-file split computation.
  Duration am_init_base = Seconds(4);
  Duration am_init_per_file = Seconds(0.05);
};

struct JobSpec {
  std::string name;

  // ---- input ----
  std::string input_prefix = "input";
  int input_files = 0;       // 0 -> synthetic (no HDFS input, e.g. pi)
  Bytes input_bytes = 0;
  bool combine_inputs = false;  // CombineFileInputFormat (wordcount2)
  Bytes max_split_size = 0;     // only with combine_inputs

  // Synthetic jobs: fixed task count, each costing map_fixed_minstr.
  int synthetic_map_tasks = 0;

  // ---- map ----
  Bytes map_container_mem = MB(150);
  double map_minstr_per_mb = 0;   // CPU per MB of input
  double map_fixed_minstr = 200;  // per-task setup/teardown (or full cost
                                  // of a synthetic task)
  double map_output_ratio = 1.0;  // map output bytes / input bytes

  // ---- combiner ----
  bool has_combiner = false;
  double combiner_survival = 1.0;   // output fraction surviving combine
  double combiner_minstr_per_mb = 0;

  // ---- reduce ----
  int reducers = 1;
  Bytes reduce_container_mem = MB(300);
  double reduce_fixed_minstr = 300;  // per-reduce-task setup/teardown
  double reduce_minstr_per_mb = 0;   // CPU per MB of shuffled data
  double reduce_slowstart = 0.5;    // map fraction before reducers launch
  double job_output_ratio = 0.0;    // final output bytes / input bytes

  // ---- speculative execution (Hadoop's straggler remedy) ----
  // When enabled, map tasks that run `speculation_slowdown` times longer
  // than the median completed map — once `speculation_phase_threshold` of
  // maps have finished — get a duplicate attempt on another node; the
  // first finisher wins and the loser aborts at its next preemption
  // point. Off by default (the paper's clusters were homogeneous).
  bool speculative_execution = false;
  double speculation_slowdown = 2.0;
  double speculation_phase_threshold = 0.6;

  // Per-platform CPU efficiency relative to Dhrystone throughput,
  // calibrated from the paper's measured runtimes (profile name -> eff).
  std::map<std::string, double> efficiency_by_profile;

  double EfficiencyFor(const std::string& profile_name) const {
    auto it = efficiency_by_profile.find(profile_name);
    return it == efficiency_by_profile.end() ? 1.0 : it->second;
  }
};

struct JobResult {
  std::string job_name;
  Duration elapsed = 0;
  SimTime started = 0;
  SimTime finished = 0;
  SimTime first_map_launch = 0;  // first map container running (CPU rise)
  SimTime map_phase_end = 0;
  SimTime first_reduce_launch = 0;
  int map_tasks = 0;
  int reduce_tasks = 0;
  double data_local_fraction = 0;
  Bytes map_output_bytes = 0;   // after combiner; equals shuffled bytes
  Bytes job_output_bytes = 0;
};

class MapReduceJob {
 public:
  MapReduceJob(net::Fabric* fabric, Hdfs* hdfs, Yarn* yarn, JobSpec spec,
               FrameworkCosts costs, std::string platform_profile,
               std::uint64_t seed);

  MapReduceJob(const MapReduceJob&) = delete;
  MapReduceJob& operator=(const MapReduceJob&) = delete;

  // Spawns the job driver; join the returned ref (or poll done()).
  sim::ProcessRef Start();

  bool done() const { return done_; }
  const JobResult& result() const { return result_; }

  // Progress probes for the timeline figures, in [0, 100].
  double MapProgressPct() const;
  double ReduceProgressPct() const;

  // Duplicate map attempts launched by speculation (0 when disabled).
  int speculative_attempts() const { return speculative_launched_; }

  // Optional causal tracing (docs/observability.md): `trace` is the
  // job's root span handle (normally the testbed's "job" span). Every
  // map/reduce attempt becomes a child span on its own track
  // (speculative duplicates get a distinct track, so spans never
  // interleave within a track), which the exporter renders as Perfetto
  // flow arrows job -> attempt. Set before Start(); a null handle
  // disables tracing. The tracer must outlive the job.
  void set_trace(const obs::TraceHandle& trace) { trace_ = trace; }

 private:
  struct Split {
    Bytes bytes = 0;
    std::vector<HdfsBlock> blocks;
    std::vector<int> preferred_nodes;
  };
  struct MapOutputPart {
    int source_node = 0;
    Bytes bytes = 0;
  };

  std::vector<Split> ComputeSplits() const;
  sim::Process Driver();
  sim::Process MapTask(Split split, int task_index);
  sim::Process ReduceTask(int reduce_index);
  // Watches for straggling maps and launches duplicates.
  sim::Process SpeculationMonitor();

  double Derated(double minstr) const { return minstr / efficiency_; }

  net::Fabric* fabric_;
  Hdfs* hdfs_;
  Yarn* yarn_;
  JobSpec spec_;
  FrameworkCosts costs_;
  double efficiency_;
  Rng rng_;
  obs::TraceHandle trace_;
  std::int32_t next_span_track_ = 1;

  int total_maps_ = 0;
  int completed_maps_ = 0;
  int completed_reducers_ = 0;
  std::int64_t fetches_done_ = 0;
  Bytes map_output_bytes_ = 0;
  bool done_ = false;
  JobResult result_;
  // Per-reducer shuffle inbox; map tasks push their partition on finish.
  std::vector<std::unique_ptr<sim::WaitQueue<MapOutputPart>>> shuffle_;
  std::vector<sim::ProcessRef> map_refs_;
  std::vector<sim::ProcessRef> reduce_refs_;
  // Speculation bookkeeping (one entry per map task).
  std::vector<Split> splits_;
  std::vector<bool> map_committed_;   // first finisher already published
  std::vector<bool> map_speculated_;  // duplicate already launched
  std::vector<SimTime> map_started_;  // container-acquired time (0 = not)
  std::vector<double> map_durations_;
  int speculative_launched_ = 0;
};

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_JOB_H_
