// Synthetic input generators for the MapReduce workloads.
//
// The paper's inputs — 1 GB of text across 200 files for wordcount, 500
// Hadoop/Yarn log files for logcount, 10 GB of teragen records — are not
// redistributable, so we generate statistically equivalent data: Zipf-
// distributed English-like words, Hadoop-format log lines, and 100-byte
// teragen records. The *real* map/reduce computations in compute.h run over
// this data; the simulator consumes the measured record/byte statistics.
#ifndef WIMPY_MAPREDUCE_TEXTGEN_H_
#define WIMPY_MAPREDUCE_TEXTGEN_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace wimpy::mapreduce {

// Generates ~`bytes` of space/newline separated words drawn from a Zipf
// distribution over `vocabulary` distinct words.
std::string GenerateTextCorpus(Bytes bytes, int vocabulary, Rng& rng);

// Generates ~`bytes` of Hadoop-style log lines:
//   "2016-02-01 13:45:07,123 INFO org.apache...: message words"
// Dates span `days` days; levels are INFO/DEBUG/WARN/ERROR with realistic
// skew.
std::string GenerateLogFile(Bytes bytes, int days, Rng& rng);

// One teragen record: 10-byte key + 90-byte payload (100 bytes total).
inline constexpr Bytes kTeraRecordBytes = 100;

// Generates `count` teragen records (concatenated 100-byte records).
std::string GenerateTeraRecords(std::int64_t count, Rng& rng);

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_TEXTGEN_H_
