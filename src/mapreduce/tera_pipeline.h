// The full three-stage Tera pipeline of §5.2.4: Teragen (map-only
// generation writing to HDFS), Terasort (the stage the paper times), and
// Teravalidate (order check, mapper per sorted partition, one reducer).
//
// The paper reports only the sort stage's time/energy; the pipeline here
// reproduces the surrounding stages so the experiment is runnable end to
// end, including the generation I/O that constrains block size choices.
#ifndef WIMPY_MAPREDUCE_TERA_PIPELINE_H_
#define WIMPY_MAPREDUCE_TERA_PIPELINE_H_

#include "mapreduce/jobs.h"
#include "mapreduce/testbed.h"

namespace wimpy::mapreduce {

// Teragen: `input_files` map tasks, each generating one 64 MiB block of
// 100-byte records and writing it to HDFS (replicated per the cluster
// config). No shuffle, no reducers.
JobSpec TeraGenJob(const MrClusterConfig& config);

// Teravalidate: one map per sorted partition (the paper: "the mapper
// number is equal to the reducer number of the Terasort"), checking order
// locally; a single reducer verifies global boundaries.
JobSpec TeraValidateJob(const MrClusterConfig& config);

struct TeraPipelineResult {
  MrRunResult teragen;
  MrRunResult terasort;
  MrRunResult teravalidate;
};

// Runs all three stages on one testbed (gen output feeds sort, sort
// output feeds validate). The testbed must be built with
// TeraSortClusterConfig(...) so both platforms use 64 MiB blocks.
TeraPipelineResult RunTeraPipeline(MrTestbed* testbed);

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_TERA_PIPELINE_H_
