// HDFS model: block-structured files, replica placement, locality-aware
// reads and replicated pipelined writes.
//
// Paper-relevant behaviours: block size is 16 MB on the Edison cluster and
// 64 MB on Dell (except terasort, 64 MB on both); replication is 2 on
// Edison and 1 on Dell so both clusters see ~95% data-local map tasks; a
// non-local read ships the block across the fabric from a replica holder.
#ifndef WIMPY_MAPREDUCE_HDFS_H_
#define WIMPY_MAPREDUCE_HDFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "hw/server_node.h"
#include "net/fabric.h"
#include "sim/task.h"

namespace wimpy::obs {
class MetricsRegistry;
}  // namespace wimpy::obs

namespace wimpy::mapreduce {

struct HdfsBlock {
  std::int64_t id = 0;
  Bytes size = 0;
  std::vector<int> replica_nodes;  // node ids holding a replica
};

struct HdfsFile {
  std::string name;
  Bytes size = 0;
  std::vector<HdfsBlock> blocks;
};

struct HdfsConfig {
  Bytes block_size = MiB(64);
  int replication = 1;
};

class Hdfs {
 public:
  // `datanodes` host blocks; placement is round-robin with a random start
  // plus distinct-node replicas, like the default HDFS placer in one rack.
  Hdfs(net::Fabric* fabric, std::vector<hw::ServerNode*> datanodes,
       const HdfsConfig& config, std::uint64_t seed);

  Hdfs(const Hdfs&) = delete;
  Hdfs& operator=(const Hdfs&) = delete;

  // Registers a file's metadata and places replicas without simulating the
  // ingest I/O (pre-loaded inputs, like the paper's wordcount corpus).
  const HdfsFile& LoadFile(const std::string& name, Bytes size);

  // As LoadFile, but splits the total across `file_count` equal files
  // (e.g. "200 input files totalling 1 GB"). Returns their names.
  std::vector<std::string> LoadFiles(const std::string& prefix,
                                     int file_count, Bytes total_size);

  // Simulated write of a new file from `writer_node`: each block is
  // written to its first replica (storage) and pipelined to the others
  // (fabric + storage). Used by teragen and job output.
  sim::Task<void> WriteFile(const std::string& name, Bytes size,
                            int writer_node);

  // Simulated read of one block by `reader_node`: local replicas read
  // storage only; remote reads add the fabric transfer from the replica.
  sim::Task<void> ReadBlock(const HdfsBlock& block, int reader_node);

  StatusOr<HdfsFile> GetFile(const std::string& name) const;
  bool HasLocalReplica(const HdfsBlock& block, int node_id) const;

  const HdfsConfig& config() const { return config_; }
  std::int64_t total_blocks() const { return next_block_id_; }

  // Fraction of scheduled map tasks that were data-local (set by the job
  // runner; exposed for reports).
  void RecordMapLocality(bool local);
  double DataLocalFraction() const;

  // Registers namenode probes: `<prefix>.blocks` (cumulative blocks
  // placed) and `<prefix>.data_local_frac`. See docs/observability.md.
  void PublishMetrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

 private:
  std::vector<int> PlaceReplicas();
  HdfsFile MakeFile(const std::string& name, Bytes size);

  net::Fabric* fabric_;
  std::vector<hw::ServerNode*> datanodes_;
  HdfsConfig config_;
  Rng rng_;
  std::map<std::string, HdfsFile> files_;
  std::int64_t next_block_id_ = 0;
  std::size_t placement_cursor_ = 0;
  std::int64_t local_reads_ = 0;
  std::int64_t total_reads_ = 0;
};

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_HDFS_H_
