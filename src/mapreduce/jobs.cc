#include "mapreduce/jobs.h"

#include <algorithm>

namespace wimpy::mapreduce {

namespace {

// Per-platform CPU efficiency relative to Dhrystone throughput, calibrated
// per job family from Table 8 (Edison is the 1.0 reference).
// wordcount's 200 short-lived containers never warm the JIT, so the Xeon
// loses more of its Dhrystone edge than on the combined-input variant.
constexpr double kDellColdJvmTextEff = 0.28;
constexpr double kDellTextEff = 0.45;  // combined-input text processing
// logcount also runs 500 cold-JVM containers; its Dell efficiency matches
// the wordcount cold figure. The combined variants keep the JIT warm.
constexpr double kDellColdLogEff = 0.26;
constexpr double kDellWarmLogEff = 0.50;
constexpr double kDellPiEff = 0.70;    // arithmetic-heavy, closer to Dhrystone
constexpr double kDellSortEff = 0.40;  // memory-bound sort/merge

bool IsEdison(const MrClusterConfig& config) {
  return config.slave_profile.name == "edison";
}

Bytes MapMemSmall(const MrClusterConfig& config) {
  return IsEdison(config) ? MB(150) : MB(500);
}
Bytes MapMemLarge(const MrClusterConfig& config) {
  return IsEdison(config) ? MB(300) : GB(1);
}
Bytes ReduceMem(const MrClusterConfig& config) {
  return IsEdison(config) ? MB(300) : GB(1);
}

}  // namespace

int TotalVcores(const MrClusterConfig& config) {
  return config.slave_count * config.yarn.node_vcores;
}

JobSpec WordCountJob(const MrClusterConfig& config) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_prefix = "wc";
  spec.input_files = kWordCountFiles;
  spec.input_bytes = kTextInputBytes;
  spec.map_container_mem = MapMemSmall(config);
  spec.map_minstr_per_mb = 4600;   // tokenising + emitting every word
  spec.map_fixed_minstr = 14000;   // per-container task init (cold JVM)
  spec.map_output_ratio = 1.6;     // word + serialisation per occurrence
  spec.has_combiner = false;
  spec.reducers = TotalVcores(config);
  spec.reduce_container_mem = ReduceMem(config);
  spec.reduce_fixed_minstr = 300;
  spec.reduce_minstr_per_mb = 1500;
  spec.reduce_slowstart = 0.6;
  spec.job_output_ratio = 0.10;
  spec.efficiency_by_profile = {{"dell-r620", kDellColdJvmTextEff}};
  return spec;
}

JobSpec WordCount2Job(const MrClusterConfig& config) {
  JobSpec spec = WordCountJob(config);
  spec.name = "wordcount2";
  spec.combine_inputs = true;
  // One split per vcore with 10% packing slack, as the paper tunes
  // (15 MB splits on 35 Edisons, 44 MB on 2 Dells for the 1 GB input).
  spec.max_split_size = std::max<Bytes>(
      MiB(1), static_cast<Bytes>(1.2 * spec.input_bytes /
                                 TotalVcores(config)));
  spec.map_container_mem = MapMemLarge(config);
  spec.has_combiner = true;
  spec.combiner_survival = 0.05;  // few distinct words per split
  spec.combiner_minstr_per_mb = 500;
  spec.reduce_minstr_per_mb = 400;  // far fewer records reach reducers
  // Long-lived containers keep the Xeon's JIT warm.
  spec.efficiency_by_profile = {{"dell-r620", kDellTextEff}};
  return spec;
}

JobSpec LogCountJob(const MrClusterConfig& config) {
  JobSpec spec;
  spec.name = "logcount";
  spec.input_prefix = "log";
  spec.input_files = kLogCountFiles;
  spec.input_bytes = kTextInputBytes;
  spec.map_container_mem = MapMemSmall(config);
  spec.map_minstr_per_mb = 3000;  // one key per line, much lighter map
  spec.map_fixed_minstr = 7000;   // per-container task init
  spec.map_output_ratio = 0.22;   // "<date> <LEVEL>" key per ~95 B line
  spec.has_combiner = true;       // original logcount ships a combiner
  spec.combiner_survival = 0.002; // a handful of distinct date/level keys
  spec.combiner_minstr_per_mb = 300;
  spec.reducers = TotalVcores(config);
  spec.reduce_container_mem = ReduceMem(config);
  spec.reduce_fixed_minstr = 200;
  spec.reduce_minstr_per_mb = 200;
  spec.reduce_slowstart = 0.6;
  spec.job_output_ratio = 1e-6;
  spec.efficiency_by_profile = {{"dell-r620", kDellColdLogEff}};
  return spec;
}

JobSpec LogCount2Job(const MrClusterConfig& config) {
  JobSpec spec = LogCountJob(config);
  spec.name = "logcount2";
  spec.combine_inputs = true;
  spec.max_split_size = std::max<Bytes>(
      MiB(1), static_cast<Bytes>(1.2 * spec.input_bytes /
                                 TotalVcores(config)));
  spec.map_container_mem = MapMemLarge(config);
  spec.efficiency_by_profile = {{"dell-r620", kDellWarmLogEff}};
  return spec;
}

JobSpec PiJob(const MrClusterConfig& config, std::int64_t samples) {
  JobSpec spec;
  spec.name = "pi";
  spec.input_files = 0;
  spec.input_bytes = 0;
  // One map per vcore (70 on the full Edison cluster, 24 on 2 Dells).
  spec.synthetic_map_tasks = TotalVcores(config);
  spec.map_container_mem = MapMemLarge(config);
  // ~760 Dhrystone-equivalent instructions per dart (Java RNG + FP),
  // calibrated so the full Edison cluster matches the paper's 200 s.
  const double minstr_per_sample = 760e-6;
  spec.map_fixed_minstr = static_cast<double>(samples) /
                          spec.synthetic_map_tasks * minstr_per_sample;
  spec.map_output_ratio = 0;
  spec.reducers = 1;
  spec.reduce_container_mem = ReduceMem(config);
  spec.reduce_minstr_per_mb = 0;
  spec.reduce_slowstart = 1.0;  // single reducer tallies at the end
  spec.job_output_ratio = 0;
  spec.efficiency_by_profile = {{"dell-r620", kDellPiEff}};
  return spec;
}

JobSpec TeraSortJob(const MrClusterConfig& config) {
  JobSpec spec;
  spec.name = "terasort";
  spec.input_prefix = "tera";
  // 64 MiB blocks on both platforms, one block per input file (teragen
  // writes block-sized files). Round the total down to a whole number of
  // blocks so a file never spills into a tiny second block.
  spec.input_files = static_cast<int>(kTeraInputBytes / MiB(64));
  spec.input_bytes = static_cast<Bytes>(spec.input_files) * MiB(64);
  spec.map_container_mem = MapMemLarge(config);
  spec.map_minstr_per_mb = 1150;  // identity map + partition + spill sort
  spec.map_fixed_minstr = 8000;
  spec.map_output_ratio = 1.0;
  spec.has_combiner = false;
  spec.reducers = TotalVcores(config);
  spec.reduce_container_mem = ReduceMem(config);
  spec.reduce_fixed_minstr = 300;
  spec.reduce_minstr_per_mb = 900;  // streaming merge, cheaper than map-side sort
  spec.reduce_slowstart = 0.5;
  spec.job_output_ratio = 1.0;  // sorted data is written back in full
  spec.efficiency_by_profile = {{"dell-r620", kDellSortEff}};
  return spec;
}

MrClusterConfig TeraSortClusterConfig(MrClusterConfig config) {
  config.hdfs.block_size = MiB(64);
  return config;
}

void LoadInputFor(const JobSpec& spec, MrTestbed* testbed) {
  if (spec.input_files <= 0) return;
  testbed->LoadInput(spec.input_prefix, spec.input_files, spec.input_bytes);
}

}  // namespace wimpy::mapreduce
