// The paper's six MapReduce jobs, with per-cluster tuning (§5.2.1-5.2.4).
//
// Cost constants (Minstr per MB etc.) are calibrated against the paper's
// measured runtimes and energies in Table 8; per-platform CPU efficiency
// captures the measured JVM/data-path IPC gap between the in-order Atom
// and the Xeon relative to their Dhrystone scores (see DESIGN.md,
// substitution table).
#ifndef WIMPY_MAPREDUCE_JOBS_H_
#define WIMPY_MAPREDUCE_JOBS_H_

#include <cstdint>

#include "mapreduce/job.h"
#include "mapreduce/testbed.h"

namespace wimpy::mapreduce {

// Paper inputs: wordcount/logcount corpora are 1 GB; terasort is scaled
// down to 10 GB; pi throws 10 billion darts.
inline constexpr Bytes kTextInputBytes = GB(1);
inline constexpr int kWordCountFiles = 200;
inline constexpr int kLogCountFiles = 500;
inline constexpr Bytes kTeraInputBytes = GB(10);
inline constexpr std::int64_t kPiSamples = 10'000'000'000LL;

// Helper: total vcores of a cluster config (reducer counts and combined
// split sizing are tuned to "one container per vcore", as the paper does).
int TotalVcores(const MrClusterConfig& config);

// wordcount: 200 small files, no combiner, one container per file.
JobSpec WordCountJob(const MrClusterConfig& config);
// wordcount2: CombineFileInputFormat + combiner, one split per vcore.
JobSpec WordCount2Job(const MrClusterConfig& config);
// logcount: 500 small log files, combiner only.
JobSpec LogCountJob(const MrClusterConfig& config);
// logcount2: combined inputs + combiner.
JobSpec LogCount2Job(const MrClusterConfig& config);
// pi: compute-only, one map per vcore, one reducer.
JobSpec PiJob(const MrClusterConfig& config,
              std::int64_t samples = kPiSamples);
// terasort (sort stage only, as the paper compares): identity map,
// full-data shuffle, replicated output. Use TeraSortClusterConfig so both
// platforms run 64 MB blocks.
JobSpec TeraSortJob(const MrClusterConfig& config);

// Returns `config` adjusted for the terasort experiment (64 MB block size
// on both clusters, per §5.2.4).
MrClusterConfig TeraSortClusterConfig(MrClusterConfig config);

// Loads the right input for `spec` into the testbed (file count and bytes
// must match what the Job factory assumed).
void LoadInputFor(const JobSpec& spec, MrTestbed* testbed);

}  // namespace wimpy::mapreduce

#endif  // WIMPY_MAPREDUCE_JOBS_H_
