// Growable ring-buffer FIFO with steady-state allocation-free push/pop.
//
// libstdc++'s std::deque allocates and frees a block every ~512 bytes of
// throughput even when the queue's *size* is stable — at 100k+
// connections that is a malloc per handful of semaphore waits or
// TIME_WAIT arms (docs/scale.md). RingDeque keeps one power-of-two
// backing array: push_back/pop_front are index bumps, and the array only
// reallocates when the high-water population grows, so after warm-up the
// serve path performs zero heap operations here
// (tests/model_alloc_test.cc pins this).
//
// Supports exactly the FIFO surface the sim layer needs: push_back,
// pop_front, front, size and random access by queue position (index 0 is
// the front) — the BatchTimerQueue's token arithmetic indexes resident
// entries that way. T must be default-constructible and movable.
#ifndef WIMPY_SIM_RING_BUFFER_H_
#define WIMPY_SIM_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace wimpy::sim {

template <typename T>
class RingDeque {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() {
    assert(count_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return slots_[head_];
  }

  // Queue-position access: (*this)[0] is the front, [size()-1] the back.
  T& operator[](std::size_t i) {
    assert(i < count_);
    return slots_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    assert(i < count_);
    return slots_[(head_ + i) & mask_];
  }

  void push_back(T value) {
    if (count_ == slots_.size()) Grow();
    slots_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    slots_[head_] = T{};  // release resources held by the slot now
    head_ = (head_ + 1) & mask_;
    --count_;
  }

 private:
  void Grow() {
    const std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<T> grown(capacity);
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(grown);
    head_ = 0;
    mask_ = capacity - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_RING_BUFFER_H_
