// Lazy awaitable coroutine subroutine.
//
// `Task<T>` is the composition primitive below `Process`: a coroutine that
// starts when awaited, transfers control back to its awaiter on completion
// (symmetric transfer, so arbitrarily deep chains use O(1) native stack),
// and yields a value of type T.
//
//   sim::Task<Bytes> ReadBlock(StorageDevice& dev, Bytes n) {
//     co_await dev.Read(n);
//     co_return n;
//   }
//
//   sim::Process TopLevel(...) {        // spawned on the scheduler
//     Bytes n = co_await ReadBlock(dev, MiB(16));
//   }
//
// A Task must be awaited at most once; destroying an unawaited Task frees
// the frame. Tasks are move-only.
#ifndef WIMPY_SIM_TASK_H_
#define WIMPY_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

#include "sim/frame_pool.h"

namespace wimpy::sim {

namespace internal_task {

struct PromiseBase {
  std::coroutine_handle<> continuation;

  // Task frames are the model layer's steady-state allocation (one per
  // co_await'd subroutine); recycle them through the thread-local frame
  // pool so the serve path is allocation-free after warm-up.
  static void* operator new(std::size_t bytes) { return PoolAlloc(bytes); }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    PoolFree(p, bytes);
  }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Resume whoever awaited us; the frame is destroyed by ~Task.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { std::abort(); }
};

}  // namespace internal_task

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal_task::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // start the task now
      }
      T await_resume() {
        assert(handle.promise().value.has_value());
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal_task::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_TASK_H_
