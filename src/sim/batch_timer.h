// Batched identical-delay timers.
//
// Connection models arm many timers with the *same* delay — TCP
// TIME_WAIT expiry is the canonical case: every closed connection holds
// its slot for exactly `time_wait` seconds. Scheduling one engine event
// per timer puts one timestamp chain per connection on the scheduler's
// pending set; with thousands of closes per simulated second that is
// pure overhead, because equal delays armed at non-decreasing times
// expire in exactly the order they were armed.
//
// A BatchTimerQueue exploits that: it keeps a FIFO of {due, closure}
// entries (the per-delay analogue of the scheduler's timestamp chains,
// keyed by delay at arm time) and arms exactly ONE engine event, for the
// front entry. Arm is an O(1) ring append; Cancel is an O(1) closure
// reset (the dead entry is skipped for free when the FIFO drains); the
// engine's pending set holds one chain per queue instead of one per
// timer — TIME_WAIT handling is O(1) end to end (ROADMAP item). The
// queue routes through whichever scheduler tier fits its delay: short
// delays (< the wheel horizon, ~65 ms) land the head event in the
// timing wheel, long ones (TIME_WAIT's seconds) in the overflow heap —
// either way, one resident chain per queue.
//
// Ordering semantics: entries due at the same instant run back-to-back
// inside one engine event, in arm order. Relative order against
// *unrelated* events at the exact same timestamp is not specified (the
// same lossy-tie freedom the scheduler's chain cache already has); the
// engine's own golden-trace contract is untouched because this type is a
// client of the scheduler, not a change to it.
#ifndef WIMPY_SIM_BATCH_TIMER_H_
#define WIMPY_SIM_BATCH_TIMER_H_

#include <cstdint>

#include "common/units.h"
#include "sim/event_fn.h"
#include "sim/ring_buffer.h"
#include "sim/scheduler.h"

namespace wimpy::sim {

class BatchTimerQueue {
 public:
  // Identifies an armed timer for cancellation; 0 is never valid.
  using Token = std::uint64_t;

  // All timers armed on this queue fire `delay` seconds after their Arm
  // call (negative treated as 0).
  BatchTimerQueue(Scheduler* sched, Duration delay);
  ~BatchTimerQueue();

  BatchTimerQueue(const BatchTimerQueue&) = delete;
  BatchTimerQueue& operator=(const BatchTimerQueue&) = delete;

  // Arms `fn` to fire after the queue's delay. O(1), amortised
  // allocation-free: at most one engine event is pending per queue.
  Token Arm(EventFn fn);

  // Cancels a pending timer in O(1). Returns false if it already fired
  // or was cancelled before.
  bool Cancel(Token token);

  Duration delay() const { return delay_; }
  // Live (armed, not yet fired or cancelled) timers. The class invariant
  // — checked after every mutation in debug builds — is that this equals
  // the number of non-empty closures resident in the FIFO.
  std::size_t pending_count() const { return live_; }
  std::size_t pending() const { return live_; }  // legacy alias
  // Engine events this queue has consumed; tests pin the batching win
  // (many arms, few engine events).
  std::uint64_t engine_events_armed() const { return engine_events_armed_; }

 private:
  struct Entry {
    SimTime due;
    EventFn fn;  // empty = cancelled, skipped when drained
  };

  void ArmHead();
  void OnFire();
  // Debug-only consistency walk: token arithmetic, live-entry count, and
  // head-event armed state must all agree. No-op under NDEBUG.
  void CheckInvariants() const;

  Scheduler* sched_;
  Duration delay_;
  RingDeque<Entry> fifo_;  // fifo_[i] holds token first_token_ + i
  Token first_token_ = 1;
  Token next_token_ = 1;
  std::size_t live_ = 0;
  EventId head_event_ = 0;
  bool in_fire_ = false;
  std::uint64_t engine_events_armed_ = 0;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_BATCH_TIMER_H_
