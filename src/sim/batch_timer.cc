#include "sim/batch_timer.h"

#include <cassert>
#include <utility>

namespace wimpy::sim {

BatchTimerQueue::BatchTimerQueue(Scheduler* sched, Duration delay)
    : sched_(sched), delay_(delay < 0 ? 0 : delay) {}

BatchTimerQueue::~BatchTimerQueue() {
  if (head_event_ != 0) sched_->Cancel(head_event_);
}

BatchTimerQueue::Token BatchTimerQueue::Arm(EventFn fn) {
  // Time only moves forward and the delay is fixed, so due times are
  // non-decreasing in arm order — the FIFO invariant.
  fifo_.push_back(Entry{sched_->now() + delay_, std::move(fn)});
  ++live_;
  const Token token = next_token_++;
  // Only the queue front needs an engine event; OnFire re-arms after the
  // drain loop, so don't double-arm from inside it.
  if (head_event_ == 0 && !in_fire_) ArmHead();
  CheckInvariants();
  return token;
}

bool BatchTimerQueue::Cancel(Token token) {
  if (token < first_token_ || token >= next_token_) return false;
  Entry& entry = fifo_[static_cast<std::size_t>(token - first_token_)];
  if (!entry.fn) return false;
  entry.fn.Reset();
  --live_;
  // Trim the cancelled prefix eagerly: TIME_WAIT churn cancels mostly in
  // arm order, and without this the deque accumulates a dead prefix that
  // the drain loop would only release at expiry (delay seconds later).
  // The armed head event is left alone — it fires at (or before) the new
  // front's due time, drains nothing, and re-arms correctly.
  while (!fifo_.empty() && !fifo_.front().fn) {
    fifo_.pop_front();
    ++first_token_;
  }
  if (fifo_.empty() && head_event_ != 0) {
    sched_->Cancel(head_event_);
    head_event_ = 0;
  }
  CheckInvariants();
  return true;
}

void BatchTimerQueue::ArmHead() {
  head_event_ = sched_->ScheduleAt(fifo_.front().due, [this] { OnFire(); });
  ++engine_events_armed_;
}

void BatchTimerQueue::OnFire() {
  head_event_ = 0;
  in_fire_ = true;
  // Run every entry that is due (equal-due entries batch into this one
  // engine event, in arm order); skip cancelled ones for free.
  while (!fifo_.empty() && fifo_.front().due <= sched_->now()) {
    Entry entry = std::move(fifo_.front());
    fifo_.pop_front();
    ++first_token_;
    if (entry.fn) {
      --live_;
      entry.fn();
    }
  }
  in_fire_ = false;
  if (!fifo_.empty()) ArmHead();
  CheckInvariants();
}

void BatchTimerQueue::CheckInvariants() const {
#ifndef NDEBUG
  // Token arithmetic: every entry ever armed has a token, and resident
  // entries are exactly the token window [first_token_, next_token_).
  assert(first_token_ + fifo_.size() == next_token_);
  // No double accounting: live_ must equal the resident live closures.
  std::size_t live = 0;
  for (std::size_t i = 0; i < fifo_.size(); ++i) {
    if (fifo_[i].fn) ++live;
  }
  assert(live == live_);
  // Exactly one engine event is pending whenever entries are resident
  // (except mid-fire, when OnFire re-arms after its drain loop).
  assert((head_event_ != 0) == (!fifo_.empty() && !in_fire_));
#endif
}

}  // namespace wimpy::sim
