#include "sim/batch_timer.h"

#include <utility>

namespace wimpy::sim {

BatchTimerQueue::BatchTimerQueue(Scheduler* sched, Duration delay)
    : sched_(sched), delay_(delay < 0 ? 0 : delay) {}

BatchTimerQueue::~BatchTimerQueue() {
  if (head_event_ != 0) sched_->Cancel(head_event_);
}

BatchTimerQueue::Token BatchTimerQueue::Arm(EventFn fn) {
  // Time only moves forward and the delay is fixed, so due times are
  // non-decreasing in arm order — the FIFO invariant.
  fifo_.push_back(Entry{sched_->now() + delay_, std::move(fn)});
  ++live_;
  const Token token = next_token_++;
  // Only the queue front needs an engine event; OnFire re-arms after the
  // drain loop, so don't double-arm from inside it.
  if (head_event_ == 0 && !in_fire_) ArmHead();
  return token;
}

bool BatchTimerQueue::Cancel(Token token) {
  if (token < first_token_ || token >= next_token_) return false;
  Entry& entry = fifo_[static_cast<std::size_t>(token - first_token_)];
  if (!entry.fn) return false;
  entry.fn.Reset();
  --live_;
  // The head event (if this was the front) fires as a cheap no-op and
  // re-arms for the next live entry — the same lazy-unhook scheme the
  // scheduler uses for cancelled chain links.
  return true;
}

void BatchTimerQueue::ArmHead() {
  head_event_ = sched_->ScheduleAt(fifo_.front().due, [this] { OnFire(); });
  ++engine_events_armed_;
}

void BatchTimerQueue::OnFire() {
  head_event_ = 0;
  in_fire_ = true;
  // Run every entry that is due (equal-due entries batch into this one
  // engine event, in arm order); skip cancelled ones for free.
  while (!fifo_.empty() && fifo_.front().due <= sched_->now()) {
    Entry entry = std::move(fifo_.front());
    fifo_.pop_front();
    ++first_token_;
    if (entry.fn) {
      --live_;
      entry.fn();
    }
  }
  in_fire_ = false;
  if (!fifo_.empty()) ArmHead();
}

}  // namespace wimpy::sim
