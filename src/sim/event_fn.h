// Small-buffer-optimised move-only callable for scheduler events.
//
// The discrete-event hot path schedules millions of short-lived closures.
// std::function costs an indirect manager call per move plus a potential
// heap allocation per event; EventFn stores captures up to kInlineCapacity
// bytes directly in the event slot and falls back to the heap only for
// oversized captures. The scheduler counts heap fallbacks
// (Scheduler::fn_heap_allocations) so tests can assert the hot paths stay
// allocation-free.
#ifndef WIMPY_SIM_EVENT_FN_H_
#define WIMPY_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wimpy::sim {

class EventFn {
 public:
  // Inline capture budget. 40 bytes covers every closure the library
  // schedules today (the largest is a handful of pointers), and keeps the
  // whole EventFn at 48 bytes so a scheduler slot fits one cache line.
  // Grow it deliberately if a new call site exceeds it rather than
  // letting that site silently heap-allocate per event.
  static constexpr std::size_t kInlineCapacity = 40;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      using Ptr = D*;
      ::new (static_cast<void*>(storage_)) Ptr(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(other);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        Relocate(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when the capture spilled to the heap (larger than
  // kInlineCapacity, over-aligned, or throwing move).
  bool heap_allocated() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst from src and destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
    // Trivially relocatable: moving is a fixed-size memcpy and the source
    // needs no destruction. Scheduler slots move every event through two
    // relocations (into the slot, out at dispatch); turning the indirect
    // call into a predicted branch + inline copy pays for itself there.
    bool trivial;
  };

  // Shared by the move constructor and move assignment after ops_ has been
  // taken from `other`; precondition: ops_ != nullptr.
  void Relocate(EventFn& other) noexcept {
    if (ops_->trivial) {
      std::memcpy(storage_, other.storage_, kInlineCapacity);
    } else {
      ops_->relocate(storage_, other.storage_);
    }
  }

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineCapacity &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* Stored(void* p) noexcept {
    return std::launder(reinterpret_cast<D*>(p));
  }
  template <typename D>
  static D** StoredPtr(void* p) noexcept {
    return std::launder(reinterpret_cast<D**>(p));
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*Stored<D>(p))(); },
      [](void* dst, void* src) noexcept {
        D* s = Stored<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { Stored<D>(p)->~D(); },
      /*heap=*/false,
      /*trivial=*/std::is_trivially_copyable_v<D> &&
          std::is_trivially_destructible_v<D>};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**StoredPtr<D>(p))(); },
      [](void* dst, void* src) noexcept {
        using Ptr = D*;
        ::new (dst) Ptr(*StoredPtr<D>(src));
      },
      [](void* p) noexcept { delete *StoredPtr<D>(p); },
      /*heap=*/true,
      // Relocation only moves the owning pointer, so it is always a
      // memcpy (destruction, of course, is not).
      /*trivial=*/true};

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_EVENT_FN_H_
