#include "sim/fair_share.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wimpy::sim {

namespace {
// Completion slack guards against floating-point residue when the minimum
// job is advanced exactly to its threshold.
constexpr double kRelativeTolerance = 1e-9;
}  // namespace

FairShareServer::FairShareServer(Scheduler* sched, double capacity,
                                 double per_job_cap, std::string name)
    : sched_(sched),
      capacity_(capacity),
      per_job_cap_(per_job_cap > 0 ? per_job_cap : capacity),
      cap_tracks_capacity_(per_job_cap <= 0),
      name_(std::move(name)) {
  assert(sched != nullptr);
  assert(capacity > 0);
  last_update_ = sched_->now();
  busy_history_.Set(last_update_, 0.0);
}

FairShareServer::~FairShareServer() {
  if (pending_event_ != 0) sched_->Cancel(pending_event_);
}

double FairShareServer::CurrentRatePerJob() const {
  if (jobs_.empty()) return 0.0;
  return std::min(per_job_cap_,
                  capacity_ / static_cast<double>(jobs_.size()));
}

double FairShareServer::busy_fraction() const {
  if (jobs_.empty()) return 0.0;
  const double used = std::min(
      capacity_, per_job_cap_ * static_cast<double>(jobs_.size()));
  return used / capacity_;
}

double FairShareServer::AverageBusyFraction() const {
  return busy_history_.AverageUntil(sched_->now());
}

void FairShareServer::SetUsageListener(
    std::function<void(double)> listener) {
  usage_listener_ = std::move(listener);
}

void FairShareServer::SetCapacity(double capacity) {
  assert(capacity > 0);
  Advance();
  capacity_ = capacity;
  if (cap_tracks_capacity_) per_job_cap_ = capacity;
  Reschedule();
}

void FairShareServer::SetRates(double capacity, double per_job_cap) {
  assert(capacity > 0);
  assert(per_job_cap > 0);
  Advance();
  capacity_ = capacity;
  per_job_cap_ = per_job_cap;
  cap_tracks_capacity_ = false;
  Reschedule();
}

void FairShareServer::AddJob(double demand, std::coroutine_handle<> handle,
                             std::uint32_t* countdown) {
  assert(demand > 0);
  Advance();
  // Rebase the aggregate counter whenever the server is empty: no
  // outstanding thresholds reference it, and keeping its magnitude small
  // preserves floating-point resolution over arbitrarily long runs.
  if (jobs_.empty()) served_per_job_ = 0.0;
  // Every active job receives service at the same (time-varying) rate, so
  // a job that arrives when the aggregate per-job service counter is A
  // finishes when the counter reaches A + demand. This keeps each event
  // O(log n) instead of O(n).
  Job job;
  job.finish_threshold = served_per_job_ + demand;
  job.tolerance = std::max(1.0, demand) * kRelativeTolerance;
  job.handle = handle;
  job.countdown = countdown;
  jobs_.push(job);
  Reschedule();
}

void FairShareServer::FinishJob(const Job& job) {
  if (job.countdown == nullptr || --*job.countdown == 0) {
    sched_->ResumeLater(job.handle);
  }
}

void FairShareServer::Advance() {
  const SimTime now = sched_->now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0 || jobs_.empty()) return;
  const double rate = CurrentRatePerJob();
  served_per_job_ += rate * dt;
  total_served_ += rate * dt * static_cast<double>(jobs_.size());
}

void FairShareServer::Reschedule() {
  if (jobs_.empty() && pending_event_ != 0) {
    sched_->Cancel(pending_event_);
    pending_event_ = 0;
  }

  const double busy = busy_fraction();
  if (busy != last_busy_fraction_) {
    last_busy_fraction_ = busy;
    busy_history_.Set(sched_->now(), busy);
    if (usage_listener_) usage_listener_(busy);
  }

  if (jobs_.empty()) return;

  const double rate = CurrentRatePerJob();
  const double min_remaining =
      std::max(0.0, jobs_.top().finish_threshold - served_per_job_);
  const Duration delay = min_remaining / rate;
  // Re-arm the pending completion event in place when one exists: same
  // semantics as Cancel + ScheduleAfter (fresh sequence number, identical
  // ordering) but the heap slot and closure are reused, so the dominant
  // arrival path pays no slot free/acquire pair and leaves no dead link.
  if (pending_event_ != 0) {
    pending_event_ = sched_->RescheduleAfter(pending_event_, delay);
    if (pending_event_ != 0) return;
  }
  pending_event_ = sched_->ScheduleAfter(delay,
                                         [this] { OnCompletionEvent(); });
}

void FairShareServer::OnCompletionEvent() {
  pending_event_ = 0;
  Advance();
  // The pending event is cancelled and rebuilt whenever membership or
  // capacity changes, so when it actually fires the heap top is due by
  // construction. Pop it unconditionally: relying on the tolerance alone
  // can live-lock when the counter is so large that the residue exceeds
  // the tolerance but is below one representable step of simulated time.
  if (!jobs_.empty()) {
    FinishJob(jobs_.top());
    jobs_.pop();
  }
  while (!jobs_.empty() &&
         jobs_.top().finish_threshold - served_per_job_ <=
             jobs_.top().tolerance) {
    FinishJob(jobs_.top());
    jobs_.pop();
  }
  if (jobs_.empty()) served_per_job_ = 0.0;
  Reschedule();
}

}  // namespace wimpy::sim
