// Counting semaphore with multi-permit requests and FIFO hand-off.
//
// Models bounded resources held for spans of virtual time: worker threads,
// connection slots, YARN container memory, cache capacity. Requests may ask
// for several permits at once (e.g. megabytes of RAM); the queue is strictly
// FIFO — a large request at the head blocks later smaller ones, which is the
// no-starvation behaviour of the admission queues being modelled.
#ifndef WIMPY_SIM_SEMAPHORE_H_
#define WIMPY_SIM_SEMAPHORE_H_

#include <coroutine>
#include <cstdint>

#include "sim/ring_buffer.h"
#include "sim/scheduler.h"

namespace wimpy::sim {

class Semaphore {
 public:
  // `permits` is the initial count.
  Semaphore(Scheduler* sched, std::int64_t permits);

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Awaitable acquisition of `n` permits:  co_await sem.Acquire(n);
  auto Acquire(std::int64_t n = 1) {
    struct Awaiter {
      Semaphore* sem;
      std::int64_t n;
      bool await_ready() const { return sem->TryAcquire(n); }
      void await_suspend(std::coroutine_handle<> h) {
        sem->EnqueueWaiter(h, n);
      }
      void await_resume() const {}
    };
    return Awaiter{this, n};
  }

  // Non-blocking acquisition; returns true on success.
  bool TryAcquire(std::int64_t n = 1);

  // Returns `n` permits; wakes queued waiters whose requests now fit.
  void Release(std::int64_t n = 1);

  // Grows the permit pool (dynamic resizing); wakes waiters that now fit.
  void AddPermits(std::int64_t n);

  std::int64_t available() const { return available_; }
  std::size_t queue_length() const { return waiters_.size(); }
  std::size_t peak_queue_length() const { return peak_queue_; }
  std::int64_t in_use() const { return in_use_; }

  // Internal: appends a suspended acquirer. Used by the awaiter types in
  // this header; not part of the user API.
  void EnqueueWaiter(std::coroutine_handle<> h, std::int64_t n);

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t n;
  };

  // Wakes front waiters while their requests fit in available_.
  void Drain();

  Scheduler* sched_;
  std::int64_t available_;
  std::int64_t in_use_ = 0;
  std::size_t peak_queue_ = 0;
  RingDeque<Waiter> waiters_;  // steady-state allocation-free FIFO
};

// RAII scoped permit block for coroutine code paths that may exit early:
//
//   SemaphoreGuard guard(sem, megabytes);
//   co_await guard.Acquired();
//   ... // permits released when guard leaves scope
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem, std::int64_t n = 1)
      : sem_(&sem), n_(n) {}
  ~SemaphoreGuard() {
    if (held_) sem_->Release(n_);
  }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

  auto Acquired() {
    struct Awaiter {
      SemaphoreGuard* guard;
      bool await_ready() const {
        if (guard->sem_->TryAcquire(guard->n_)) {
          guard->held_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        guard->sem_->EnqueueWaiter(h, guard->n_);
      }
      // On wake-up the permits were already transferred to this waiter.
      void await_resume() const { guard->held_ = true; }
    };
    return Awaiter{this};
  }

  bool held() const { return held_; }

  // Releases early (e.g. before a long phase that should not hold it).
  void Release() {
    if (held_) {
      sem_->Release(n_);
      held_ = false;
    }
  }

 private:
  Semaphore* sem_;
  std::int64_t n_;
  bool held_ = false;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_SEMAPHORE_H_
