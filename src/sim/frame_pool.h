// Thread-local recycling pool for coroutine frames and other fixed-size
// steady-state allocations (docs/scale.md).
//
// Every co_await'd Task and every spawned Process allocates one coroutine
// frame; at 100k+ connections those frames are THE steady-state heap
// traffic of the model layer. Frame sizes are a small fixed set (one per
// coroutine function), so a size-bucketed freelist turns the serve path's
// allocate/free churn into pointer pushes after warm-up — zero heap
// blocks per request (tests/model_alloc_test.cc pins this).
//
// Design:
//  * Buckets of 64 bytes up to 4 KiB; larger requests fall through to
//    ::operator new (rare: no model-layer frame is that big).
//  * Thread-local caches, no locks and no cross-thread coordination:
//    replications are single-threaded by contract (sim/replication.h),
//    so a frame is freed on the thread that allocated it and the pool
//    adds no synchronization the TSan build would have to reason about.
//    A block freed on a foreign thread (harmless: sweeps reuse worker
//    threads) simply migrates to that thread's cache.
//  * Memory is retained until thread exit — the high-water set of a
//    replication, reused by every subsequent replication on the worker.
//
// Under ASan the pool is compiled out (plain new/delete) so recycling
// does not mask use-after-free of coroutine frames.
#ifndef WIMPY_SIM_FRAME_POOL_H_
#define WIMPY_SIM_FRAME_POOL_H_

#include <cstddef>
#include <new>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WIMPY_FRAME_POOL_DISABLED 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define WIMPY_FRAME_POOL_DISABLED 1
#endif

namespace wimpy::sim {

#if defined(WIMPY_FRAME_POOL_DISABLED)

inline void* PoolAlloc(std::size_t bytes) {
  return ::operator new(bytes == 0 ? 1 : bytes);
}
inline void PoolFree(void* p, std::size_t /*bytes*/) noexcept {
  ::operator delete(p);
}

#else

namespace internal_pool {

inline constexpr std::size_t kGranularity = 64;
inline constexpr std::size_t kMaxPooled = 4096;
inline constexpr std::size_t kBuckets = kMaxPooled / kGranularity;

struct FreeNode {
  FreeNode* next;
};

struct ThreadCache {
  FreeNode* buckets[kBuckets] = {};
  ~ThreadCache() {
    for (FreeNode* node : buckets) {
      while (node != nullptr) {
        FreeNode* next = node->next;
        ::operator delete(node);
        node = next;
      }
    }
  }
};

inline ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

inline std::size_t BucketFor(std::size_t bytes) {
  return (bytes + kGranularity - 1) / kGranularity - 1;
}

}  // namespace internal_pool

inline void* PoolAlloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > internal_pool::kMaxPooled) return ::operator new(bytes);
  const std::size_t b = internal_pool::BucketFor(bytes);
  auto& cache = internal_pool::Cache();
  if (internal_pool::FreeNode* node = cache.buckets[b]) {
    cache.buckets[b] = node->next;
    return node;
  }
  return ::operator new((b + 1) * internal_pool::kGranularity);
}

inline void PoolFree(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > internal_pool::kMaxPooled) {
    ::operator delete(p);
    return;
  }
  auto* node = static_cast<internal_pool::FreeNode*>(p);
  auto& cache = internal_pool::Cache();
  const std::size_t b = internal_pool::BucketFor(bytes);
  node->next = cache.buckets[b];
  cache.buckets[b] = node;
}

#endif  // WIMPY_FRAME_POOL_DISABLED

// Minimal allocator over the pool, for containers and control blocks
// that live on the steady-state path (e.g. the Process shared state via
// std::allocate_shared).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(PoolAlloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    PoolFree(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_FRAME_POOL_H_
