// Generalised processor-sharing server with a per-job rate cap.
//
// This single primitive models every rate-shared hardware resource in the
// library:
//
//   * CPU:   capacity = cores × per-thread rate, per-job cap = one thread's
//            rate (a single task cannot use more than one hardware thread);
//   * NIC:   capacity = link bandwidth, per-job cap = link bandwidth
//            (flows share the wire fairly);
//   * disk:  capacity = device throughput, per-job cap = device throughput;
//   * memory bus: capacity = peak bandwidth, per-job cap = single-thread
//            achievable bandwidth.
//
// With n active jobs each receives rate
//     r(n) = min(per_job_cap, capacity / n)
// so utilisation rises linearly with n until the capacity saturates —
// exactly the behaviour the paper measures for threads-vs-time curves
// (Figures 2/3) and memory-bandwidth saturation (Section 4.2).
//
// Jobs submit a demand in abstract units; `co_await server.Serve(demand)`
// resumes when the demand has been delivered. The server emits utilisation
// change events that the power model integrates into joules.
#ifndef WIMPY_SIM_FAIR_SHARE_H_
#define WIMPY_SIM_FAIR_SHARE_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/scheduler.h"

namespace wimpy::sim {

class FairShareServer {
 public:
  // `capacity` and `per_job_cap` are in units/second; both must be > 0.
  // `per_job_cap` defaults to the full capacity (pure processor sharing).
  FairShareServer(Scheduler* sched, double capacity, double per_job_cap = 0,
                  std::string name = "");

  FairShareServer(const FairShareServer&) = delete;
  FairShareServer& operator=(const FairShareServer&) = delete;

  ~FairShareServer();

  // Awaitable service of `demand` units. Zero/negative demand completes
  // immediately without suspension.
  auto Serve(double demand) {
    struct Awaiter {
      FairShareServer* server;
      double demand;
      bool await_ready() const { return demand <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        server->AddJob(demand, h);
      }
      void await_resume() const {}
    };
    return Awaiter{this, demand};
  }

  // Submits `demand` as one leg of a multi-segment join (see
  // net::Fabric::Transfer): when the job completes, `*countdown` is
  // decremented and `handle` is resumed only when it reaches zero — the
  // slowest segment wakes the awaiting coroutine. `*countdown` must
  // outlive all joined jobs (it lives in the awaiting coroutine's frame).
  // Completion is always asynchronous, via the same-time resume lane.
  void ServeJoined(double demand, std::uint32_t* countdown,
                   std::coroutine_handle<> handle) {
    AddJob(demand, handle, countdown);
  }

  // Instantaneous per-job service rate for the current job count.
  double CurrentRatePerJob() const;

  // Fraction of capacity currently in use, in [0, 1].
  double busy_fraction() const;

  // Time-averaged busy fraction since construction.
  double AverageBusyFraction() const;

  std::size_t active_jobs() const { return jobs_.size(); }
  double capacity() const { return capacity_; }
  double per_job_cap() const { return per_job_cap_; }
  double total_work_served() const { return total_served_; }
  const std::string& name() const { return name_; }

  // Invoked with the new busy fraction whenever it changes (job arrives or
  // departs). The power model subscribes here.
  void SetUsageListener(std::function<void(double busy_fraction)> listener);

  // Changes the capacity (e.g. DVFS experiments). In-flight jobs continue
  // with the new rate from the current instant.
  void SetCapacity(double capacity);

  // Changes capacity and per-job cap together (frequency scaling affects
  // both the pool and a single thread's speed).
  void SetRates(double capacity, double per_job_cap);

 private:
  // Jobs all progress at the same per-job rate, so each job is fully
  // described by the value the aggregate per-job service counter must
  // reach for it to finish. A min-heap on that threshold yields the next
  // completion in O(log n).
  struct Job {
    double finish_threshold;
    double tolerance;  // completion slack, relative to original demand
    std::coroutine_handle<> handle;
    // Non-null for joined jobs: decrement on completion, resume `handle`
    // only at zero.
    std::uint32_t* countdown = nullptr;
  };
  struct JobOrder {
    bool operator()(const Job& a, const Job& b) const {
      return a.finish_threshold > b.finish_threshold;  // min-heap
    }
  };

  void AddJob(double demand, std::coroutine_handle<> handle,
              std::uint32_t* countdown = nullptr);
  // Resumes the job's awaiter (or decrements its join countdown).
  void FinishJob(const Job& job);
  // Integrates the aggregate service counter from last_update_ to now.
  void Advance();
  // Recomputes the shared rate, fires the usage listener if the busy
  // fraction changed, and (re)schedules the next completion event.
  void Reschedule();
  void OnCompletionEvent();

  Scheduler* sched_;
  double capacity_;
  double per_job_cap_;
  // True when the constructor defaulted per_job_cap_ to the capacity;
  // SetCapacity keeps them in lockstep in that case.
  bool cap_tracks_capacity_;
  std::string name_;

  std::priority_queue<Job, std::vector<Job>, JobOrder> jobs_;
  double served_per_job_ = 0.0;  // aggregate service delivered per job
  SimTime last_update_ = 0.0;
  EventId pending_event_ = 0;
  double total_served_ = 0.0;
  double last_busy_fraction_ = 0.0;
  TimeWeightedAverage busy_history_;
  std::function<void(double)> usage_listener_;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_FAIR_SHARE_H_
