#include "sim/semaphore.h"

#include <cassert>

namespace wimpy::sim {

Semaphore::Semaphore(Scheduler* sched, std::int64_t permits)
    : sched_(sched), available_(permits) {
  assert(sched != nullptr);
  assert(permits >= 0);
}

bool Semaphore::TryAcquire(std::int64_t n) {
  assert(n > 0);
  // FIFO fairness: cannot jump ahead of queued waiters.
  if (waiters_.empty() && available_ >= n) {
    available_ -= n;
    in_use_ += n;
    return true;
  }
  return false;
}

void Semaphore::EnqueueWaiter(std::coroutine_handle<> h, std::int64_t n) {
  assert(n > 0);
  waiters_.push_back(Waiter{h, n});
  if (waiters_.size() > peak_queue_) peak_queue_ = waiters_.size();
}

void Semaphore::Drain() {
  while (!waiters_.empty() && waiters_.front().n <= available_) {
    Waiter w = waiters_.front();
    waiters_.pop_front();
    available_ -= w.n;
    in_use_ += w.n;
    sched_->ResumeLater(w.handle);
  }
}

void Semaphore::Release(std::int64_t n) {
  assert(n > 0);
  assert(in_use_ >= n);
  in_use_ -= n;
  available_ += n;
  Drain();
}

void Semaphore::AddPermits(std::int64_t n) {
  assert(n >= 0);
  available_ += n;
  Drain();
}

}  // namespace wimpy::sim
