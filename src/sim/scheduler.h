// Discrete-event simulation core.
//
// A `Scheduler` owns the virtual clock and a time-ordered event queue.
// Events scheduled for the same instant execute in scheduling order
// (FIFO by sequence number), which makes every simulation in this library
// fully deterministic for a given seed. Every ScheduleAt / ScheduleAfter /
// ResumeLater call consumes exactly one sequence number, so the global
// execution order is the strict (time, sequence) order of those calls.
//
// Internals are built for the hot path (see docs/engine.md):
//
//  * Callbacks are `EventFn` — small-buffer-optimised closures stored
//    inline in a per-event slot; no heap allocation for captures up to
//    EventFn::kInlineCapacity bytes.
//  * The pending set is a 4-ary min-heap of *timestamp chains*: one
//    compact 16-byte heap entry per distinct pending timestamp, with all
//    events at that instant linked through their slots in FIFO order.
//    Events at an already-pending timestamp append in O(1) (found via a
//    small lossy cache; a miss just starts another chain for the same
//    instant, which the heap merges back in sequence order), so heap size
//    tracks the number of distinct pending *times*, not events.
//  * `Cancel` is O(1): the event's closure is destroyed and its slot
//    marked dead; the chain link is skipped for free when its timestamp
//    is reached. Accounting (`pending_events`) stays exact — there is no
//    hash-set tombstone scheme and a stale cancel returns false.
//  * `ResumeLater` bypasses the heap entirely: raw coroutine handles go
//    through a FIFO ring (the fast lane) and are interleaved with heap
//    events by sequence number, preserving the deterministic order while
//    making the dominant wake-up path allocation-free and O(1).
//
// Clock semantics of `Run(until)`: the clock never advances beyond
// `until`, and when the run stops at the time limit — whether because the
// next event lies beyond `until` or because the queue drained before
// reaching it — the clock lands exactly on `until` (when finite).
// Draining an unbounded `Run()` leaves the clock at the last executed
// event.
//
// Higher layers rarely post raw callbacks; they write C++20 coroutine
// processes (see process.h) whose suspensions are implemented on top of
// this queue.
#ifndef WIMPY_SIM_SCHEDULER_H_
#define WIMPY_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.h"
#include "sim/event_fn.h"

namespace wimpy::sim {

// Identifies a scheduled event for cancellation. Packed
// {sequence:40, slot:24}; 0 is never a valid id. Sequence numbers are
// globally unique, so an id goes stale the moment its event fires or is
// cancelled, and a stale Cancel is a cheap, exact no-op (returns false)
// instead of corrupting accounting.
using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulated time in seconds.
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to now if in the past).
  EventId ScheduleAt(SimTime t, EventFn fn);

  // Schedules `fn` after `delay` seconds (negative treated as 0).
  EventId ScheduleAfter(Duration delay, EventFn fn);

  // Cancels a pending event in O(1). Returns false if it already ran or
  // was cancelled before.
  bool Cancel(EventId id);

  // Re-arms a pending event at `now + delay`, keeping its closure: the
  // semantic equivalent of Cancel(id) + ScheduleAfter(delay, same fn) —
  // the event consumes a fresh sequence number, so ordering against other
  // events is identical — without destroying and reconstructing the
  // closure. When the event is the tail of its timestamp chain (the
  // overwhelmingly common case for the arm/cancel/re-arm pattern of
  // FairShareServer::Reschedule), its slot is reused in place, saving the
  // slot free/acquire pair and leaving no dead link behind in the old
  // chain. Returns the new EventId (the old one goes stale), or 0 if `id`
  // already ran or was cancelled — the caller should then schedule afresh.
  EventId RescheduleAfter(EventId id, Duration delay);

  // Schedules a coroutine resumption at the current time via the fast
  // lane: the raw handle is pushed onto a FIFO ring (no allocation, no
  // heap operation) and drained in (time, sequence) order exactly as if
  // it had been scheduled with ScheduleAt(now(), ...).
  void ResumeLater(std::coroutine_handle<> handle);

  // Drains the queue until it is empty, `until` is passed, or `max_events`
  // have run. The clock never advances beyond `until`; if the run stops at
  // the time limit (next event beyond `until`, or queue drained with
  // `until` finite) the clock lands exactly on `until`. Returns the number
  // of events executed.
  std::size_t Run(SimTime until = std::numeric_limits<SimTime>::infinity(),
                  std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  // Executes exactly one event if available. Returns false on empty queue.
  bool Step();

  bool empty() const { return pending_events() == 0; }
  std::size_t pending_events() const {
    return live_scheduled_ + ring_count_;
  }
  std::size_t executed_events() const { return executed_events_; }

  // Opt-in per-event execution hook (obs::Tracer wires this up; see
  // docs/observability.md). Called after the clock lands on the event's
  // time and immediately before its closure or coroutine runs, with the
  // event's execution time and global sequence number. Null by default;
  // the disabled path costs one predictable branch per executed event
  // (pinned <= 2% by bench_engine_micro's BM_SchedulerEventThroughput
  // against BENCH_engine.json). Pass (nullptr, nullptr) to detach.
  using ExecuteHook = void (*)(void* ctx, SimTime time, std::uint64_t seq);
  void SetExecuteHook(ExecuteHook hook, void* ctx) {
    exec_hook_ = hook;
    exec_hook_ctx_ = ctx;
  }

  // Introspection counters for tests and benchmarks.
  // Closures whose captures exceeded EventFn::kInlineCapacity and spilled
  // to the heap. The library's own call sites keep this at zero.
  std::uint64_t fn_heap_allocations() const { return fn_heap_allocs_; }
  // Wake-ups that took the fast lane instead of the heap.
  std::uint64_t fast_lane_resumes() const { return fast_lane_resumes_; }

 private:
  // One heap entry per pending timestamp chain. `key` packs
  // {seq:40, slot:24} of the chain's current head, so a single integer
  // compare breaks time ties FIFO and names the head slot.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;
  };
  // Per-event storage, sized and aligned to exactly one cache line so a
  // heap pop touches one line of slot memory. `seq` is the event's unique
  // sequence number (0 = slot free); an empty `fn` on an occupied slot
  // marks a cancelled event awaiting cheap removal when its timestamp is
  // reached. `next_key` is the full chain key {seq:40, slot:24} of the
  // next same-time event, or kNullKey at the chain tail.
  struct alignas(64) Slot {
    EventFn fn;
    std::uint64_t seq = 0;
    std::uint64_t next_key = kNullKey;
  };
  struct RingEntry {
    std::coroutine_handle<> handle;
    std::uint64_t seq;
  };
  // Lossy map from timestamp to the tail of a pending chain at that time.
  // A stale entry is detected by checking the slot still holds the cached
  // sequence number and is still a tail; a miss merely starts a second
  // chain for the same instant.
  struct CacheEntry {
    SimTime time = 0.0;
    std::uint64_t tail_seq = 0;
    std::uint32_t tail = 0;
  };

  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kNullKey = 0;  // real keys are >= 1<<24
  static constexpr std::size_t kCacheSize = 512;  // power of two

  static bool EntryLess(const HeapEntry& a, const HeapEntry& b) {
    return a.time < b.time || (a.time == b.time && a.key < b.key);
  }
  static std::size_t CacheIndex(SimTime t);

  std::uint32_t AcquireSlot();
  // Links an occupied slot (seq already assigned) into the chain/cache/
  // heap structures at time `t` and returns its chain key.
  EventId LinkSlot(std::uint32_t slot, SimTime t);
  void FreeSlot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn.Reset();
    s.seq = 0;  // stale EventIds and cache entries now fail validation
    free_slots_.push_back(slot);
  }

  void HeapSiftUp(std::size_t pos);
  void HeapSiftDown(std::size_t pos);
  void PopRootEntry();

  // Drops cancelled events off the top chain (freeing their slots) until
  // the heap is empty or its top names a live chain head.
  void ResolveTop();

  // True when the next event in (time, seq) order is the ring front.
  // Precondition: top resolved.
  bool TakeRingNext() const;
  void RingPush(std::coroutine_handle<> handle, std::uint64_t seq);
  RingEntry RingPop();
  void RingGrow();

  // Executes the globally minimal pending event.
  // Precondition: pending_events() > 0.
  void ExecuteNext();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t executed_events_ = 0;
  std::size_t live_scheduled_ = 0;

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<CacheEntry> chain_cache_;

  // Fast-lane FIFO ring (power-of-two capacity).
  std::vector<RingEntry> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;

  std::uint64_t fn_heap_allocs_ = 0;
  std::uint64_t fast_lane_resumes_ = 0;

  ExecuteHook exec_hook_ = nullptr;
  void* exec_hook_ctx_ = nullptr;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_SCHEDULER_H_
