// Discrete-event simulation core.
//
// A `Scheduler` owns the virtual clock and a time-ordered event queue.
// Events scheduled for the same instant execute in scheduling order
// (FIFO by sequence number), which makes every simulation in this library
// fully deterministic for a given seed.
//
// Higher layers rarely post raw callbacks; they write C++20 coroutine
// processes (see process.h) whose suspensions are implemented on top of
// this queue.
#ifndef WIMPY_SIM_SCHEDULER_H_
#define WIMPY_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace wimpy::sim {

// Identifies a scheduled event for cancellation.
using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulated time in seconds.
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to now if in the past).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules `fn` after `delay` seconds (negative treated as 0).
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  // Cancels a pending event. Returns false if it already ran or was
  // cancelled before.
  bool Cancel(EventId id);

  // Schedules a coroutine resumption at the current time. All coroutine
  // wake-ups go through the queue so resumption order is deterministic and
  // the native stack stays shallow.
  void ResumeLater(std::coroutine_handle<> handle);

  // Drains the queue until it is empty, `until` is passed, or `max_events`
  // have run. The clock never advances beyond `until`. Returns the number
  // of events executed.
  std::size_t Run(SimTime until = std::numeric_limits<SimTime>::infinity(),
                  std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  // Executes exactly one event if available. Returns false on empty queue.
  bool Step();

  bool empty() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::size_t executed_events() const { return executed_events_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // min-heap: earlier id first at equal times
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t live_events_ = 0;
  std::size_t executed_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_SCHEDULER_H_
