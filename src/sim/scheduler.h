// Discrete-event simulation core.
//
// A `Scheduler` owns the virtual clock and a time-ordered event queue.
// Events scheduled for the same instant execute in scheduling order
// (FIFO by sequence number), which makes every simulation in this library
// fully deterministic for a given seed. Every ScheduleAt / ScheduleAfter /
// ResumeLater call consumes exactly one sequence number, so the global
// execution order is the strict (time, sequence) order of those calls.
//
// Internals are built for the hot path (see docs/engine.md):
//
//  * Callbacks are `EventFn` — small-buffer-optimised closures. Storage
//    is SoA: the hot per-event metadata (sequence number + chain link,
//    16 bytes) lives in `meta_`, packed four to a cache line, while the
//    48-byte closure payload sits in a parallel chunked store and is
//    only touched twice per event (store on schedule, move-out on fire).
//    Chunking means growth never relocates live closures.
//  * The pending set is two-tiered. A hierarchical timing wheel
//    (4 levels x 256 buckets, 1 µs tick) absorbs the dense short-delay
//    traffic that dominates web runs — insertion is O(1), no comparisons.
//    A 4-ary min-heap of *timestamp chains* is the overflow/frontier
//    tier: due and near-due chains, far-future chains beyond the wheel
//    horizon (~4300 s of lookahead), and non-finite timestamps. Wheel
//    buckets are promoted wholesale into the heap before the clock can
//    reach them, so the heap comparator — (time, key), key packing
//    {seq:40, slot:24} — restores the exact global order and the wheel
//    never has to be ordered internally.
//  * Events at an already-pending timestamp append to that timestamp's
//    chain in O(1) (found via a small lossy cache; a miss just starts
//    another chain for the same instant, which the heap merges back in
//    sequence order), so wheel/heap size tracks the number of distinct
//    pending *times*, not events.
//  * `Run` drains each same-timestamp chain as one *big step*: the whole
//    chain executes without re-touching the heap between events (one
//    key write-through per event, no sift), falling back to the generic
//    single-event path only when another same-time chain, a fast-lane
//    wake-up, or a mutation from inside a callback interleaves.
//  * `Cancel` is O(1): the event's closure is destroyed and its slot
//    marked dead; the chain link is skipped for free when its timestamp
//    is reached. Accounting (`pending_events`) stays exact — there is no
//    hash-set tombstone scheme and a stale cancel returns false.
//  * `ResumeLater` bypasses both tiers entirely: raw coroutine handles go
//    through a FIFO ring (the fast lane) and are interleaved with timed
//    events by sequence number, preserving the deterministic order while
//    making the dominant wake-up path allocation-free and O(1).
//
// Clock semantics of `Run(until)`: the clock never advances beyond
// `until`, and when the run stops at the time limit — whether because the
// next event lies beyond `until` or because the queue drained before
// reaching it — the clock lands exactly on `until` (when finite).
// Draining an unbounded `Run()` leaves the clock at the last executed
// event.
//
// Higher layers rarely post raw callbacks; they write C++20 coroutine
// processes (see process.h) whose suspensions are implemented on top of
// this queue.
#ifndef WIMPY_SIM_SCHEDULER_H_
#define WIMPY_SIM_SCHEDULER_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/event_fn.h"

namespace wimpy::sim {

// Identifies a scheduled event for cancellation. Packed
// {sequence:40, slot:24}; 0 is never a valid id. Sequence numbers are
// globally unique, so an id goes stale the moment its event fires or is
// cancelled, and a stale Cancel is a cheap, exact no-op (returns false)
// instead of corrupting accounting.
using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Current simulated time in seconds.
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (clamped to now if in the past).
  EventId ScheduleAt(SimTime t, EventFn fn);

  // Schedules `fn` after `delay` seconds (negative treated as 0).
  EventId ScheduleAfter(Duration delay, EventFn fn);

  // Cancels a pending event in O(1). Returns false if it already ran or
  // was cancelled before.
  bool Cancel(EventId id);

  // Re-arms a pending event at `now + delay`, keeping its closure: the
  // semantic equivalent of Cancel(id) + ScheduleAfter(delay, same fn) —
  // the event consumes a fresh sequence number, so ordering against other
  // events is identical — without destroying and reconstructing the
  // closure. When the event is the tail of its timestamp chain (the
  // overwhelmingly common case for the arm/cancel/re-arm pattern of
  // FairShareServer::Reschedule), its slot is reused in place, saving the
  // slot free/acquire pair and leaving no dead link behind in the old
  // chain. The new chain enters whichever tier (wheel or heap) the new
  // timestamp calls for, independent of where the old one lived. Returns
  // the new EventId (the old one goes stale), or 0 if `id` already ran or
  // was cancelled — the caller should then schedule afresh.
  EventId RescheduleAfter(EventId id, Duration delay);

  // Schedules a coroutine resumption at the current time via the fast
  // lane: the raw handle is pushed onto a FIFO ring (no allocation, no
  // heap operation) and drained in (time, sequence) order exactly as if
  // it had been scheduled with ScheduleAt(now(), ...).
  void ResumeLater(std::coroutine_handle<> handle);

  // Drains the queue until it is empty, `until` is passed, or `max_events`
  // have run. The clock never advances beyond `until`; if the run stops at
  // the time limit (next event beyond `until`, or queue drained with
  // `until` finite) the clock lands exactly on `until`. Returns the number
  // of events executed.
  std::size_t Run(SimTime until = std::numeric_limits<SimTime>::infinity(),
                  std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  // Executes exactly one event if available. Returns false on empty queue.
  bool Step();

  bool empty() const { return pending_events() == 0; }
  std::size_t pending_events() const {
    return live_scheduled_ + ring_count_;
  }
  std::size_t executed_events() const { return executed_events_; }

  // Opt-in per-event execution hook (obs::Tracer wires this up; see
  // docs/observability.md). Called after the clock lands on the event's
  // time and immediately before its closure or coroutine runs, with the
  // event's execution time and global sequence number. Null by default;
  // the disabled path costs one predictable branch per executed event
  // (pinned <= 2% by bench_engine_micro's BM_SchedulerEventThroughput
  // against BENCH_engine.json). Pass (nullptr, nullptr) to detach.
  using ExecuteHook = void (*)(void* ctx, SimTime time, std::uint64_t seq);
  void SetExecuteHook(ExecuteHook hook, void* ctx) {
    exec_hook_ = hook;
    exec_hook_ctx_ = ctx;
  }

  // Introspection counters for tests and benchmarks.
  // Closures whose captures exceeded EventFn::kInlineCapacity and spilled
  // to the heap. The library's own call sites keep this at zero.
  std::uint64_t fn_heap_allocations() const { return fn_heap_allocs_; }
  // Wake-ups that took the fast lane instead of the heap.
  std::uint64_t fast_lane_resumes() const { return fast_lane_resumes_; }
  // Timestamp chains that entered through the timing wheel (vs the heap).
  std::uint64_t wheel_inserts() const { return wheel_inserts_; }
  // Bucket promotions: one per wheel bucket moved wholesale to the heap.
  std::uint64_t wheel_promotions() const { return wheel_promotions_; }
  // Chains that spilled straight to the heap because their timestamp lay
  // beyond the wheel horizon (or was not finite).
  std::uint64_t wheel_overflow_spills() const { return wheel_overflow_; }
  // Chains currently resident in wheel buckets (not yet promoted).
  std::size_t wheel_resident_chains() const { return wheel_chains_; }

  // Static wheel geometry, for benchmark context and diagnostics.
  struct WheelGeometry {
    unsigned levels;
    unsigned buckets_per_level;
    double tick_seconds;
    std::uint64_t horizon_ticks;  // exclusive: beyond this -> heap
  };
  static constexpr WheelGeometry wheel_geometry() {
    return {kWheelLevels, kWheelBuckets, kTickSeconds,
            1ull << (kWheelBits * kWheelLevels)};
  }

 private:
  // One heap entry per pending timestamp chain. `key` packs
  // {seq:40, slot:24} of the chain's current head, so a single integer
  // compare breaks time ties FIFO and names the head slot.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;
  };
  // Hot per-event metadata, four to a cache line (SoA: the closure
  // payload lives in the parallel chunked store, see FnAt). `seq` is the
  // event's unique sequence number (0 = slot free); an empty FnAt(slot)
  // on an occupied slot marks a cancelled event awaiting cheap removal
  // when its timestamp is reached. `next_key` is the full chain key
  // {seq:40, slot:24} of the next same-time event, or kNullKey at the
  // chain tail.
  struct SlotMeta {
    std::uint64_t seq = 0;
    std::uint64_t next_key = kNullKey;
  };
  // One wheel-resident timestamp chain: the same (time, key) payload a
  // heap entry carries, plus an intrusive link to the next chain in the
  // same bucket (buckets are unordered singly linked lists; `next` doubles
  // as the node freelist link).
  struct WheelNode {
    SimTime time;
    std::uint64_t key;
    std::uint32_t next;
  };
  struct RingEntry {
    std::coroutine_handle<> handle;
    std::uint64_t seq;
  };
  // Lossy map from timestamp to the tail of a pending chain at that time.
  // A stale entry is detected by checking the slot still holds the cached
  // sequence number and is still a tail; a miss merely starts a second
  // chain for the same instant. 16 bytes — `tail_key` is the tail's full
  // chain key {seq:40, slot:24}, so hit validation and update are one
  // load and one store each.
  struct CacheEntry {
    SimTime time = 0.0;
    std::uint64_t tail_key = kNullKey;
  };

  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kNullKey = 0;  // real keys are >= 1<<24
  static constexpr std::size_t kCacheSize = 512;  // power of two

  // Closure payloads live in fixed-size chunks (4096 x 48 B = 192 KiB)
  // indexed by slot. Unlike a flat vector, growing by a chunk never
  // move-relocates the EventFns already in flight — with 100k+ pending
  // events that relocation storm used to dominate the schedule path.
  // Chunks are raw storage: a slot's EventFn is placement-new'd the
  // first time the slot is acquired (slots below the high-water mark
  // stay constructed, empty, across freelist reuse; the destructor
  // destroys exactly [0, meta_.size())), so a fresh chunk costs one
  // allocation instead of a 4096-element value-initialisation sweep.
  static constexpr unsigned kFnChunkBits = 12;
  static constexpr std::size_t kFnChunkSize = 1u << kFnChunkBits;

  // Timing-wheel geometry: 2 levels of 256 buckets at a 1 µs tick.
  // Level L spans ticks [2^(8L), 2^(8(L+1))) ahead of the clock, so the
  // horizon is 2^16 ticks ≈ 65.5 ms of lookahead. The wheel exists for
  // the dense short-delay traffic the serving benches generate (µs–ms
  // service and network hops); longer timers — TIME_WAIT churn,
  // keepalives, sweep deadlines — are sparse, usually cancelled, and go
  // straight to the overflow heap where a push/lazy-pop is cheaper than
  // riding a bucket through promotion. Ticks that do not fit (inf/NaN)
  // overflow to the heap as well.
  static constexpr unsigned kWheelBits = 8;
  static constexpr std::uint32_t kWheelBuckets = 1u << kWheelBits;
  static constexpr unsigned kWheelLevels = 2;
  static constexpr double kTickSeconds = 1e-6;
  static constexpr double kInvTick = 1e6;
  // Ticks must survive the double->uint64 conversion exactly; 2^53 is
  // the last integer doubles can still count to, far past the horizon.
  static constexpr double kTickLimit = 9007199254740992.0;  // 2^53
  static constexpr std::uint64_t kMaxTick =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr std::uint32_t kNilNode = 0xffffffffu;

  static bool EntryLess(const HeapEntry& a, const HeapEntry& b) {
    return a.time < b.time || (a.time == b.time && a.key < b.key);
  }
  static std::size_t CacheIndex(SimTime t);
  // Floor tick of a timestamp; kMaxTick for NaN/inf/past-2^53 values.
  static std::uint64_t TickOf(SimTime t) {
    const double scaled = t * kInvTick;
    if (!(scaled < kTickLimit)) return kMaxTick;  // NaN-safe form
    return scaled <= 0.0 ? 0 : static_cast<std::uint64_t>(scaled);
  }

  std::uint32_t AcquireSlot();
  // Links an occupied slot (seq already assigned) into the chain/cache/
  // tier structures at time `t` and returns its chain key.
  EventId LinkSlot(std::uint32_t slot, std::uint64_t seq, SimTime t);
  EventFn& FnAt(std::uint32_t slot) {
    return reinterpret_cast<EventFn*>(
        fn_chunks_[slot >> kFnChunkBits].get())[slot & (kFnChunkSize - 1)];
  }
  const EventFn& FnAt(std::uint32_t slot) const {
    return reinterpret_cast<const EventFn*>(
        fn_chunks_[slot >> kFnChunkBits].get())[slot & (kFnChunkSize - 1)];
  }
  void FreeSlot(std::uint32_t slot) {
    FnAt(slot).Reset();
    meta_[slot].seq = 0;  // stale EventIds and cache entries fail validation
    free_slots_.push_back(slot);
  }

  // Starts a new chain headed by (t, key) in whichever tier its distance
  // from the clock calls for.
  void StartChain(SimTime t, std::uint64_t key);
  void HeapPush(SimTime t, std::uint64_t key);
  void WheelInsert(unsigned level, std::uint64_t tick, SimTime t,
                   std::uint64_t key);
  // Exact lower bound (in ticks) on the earliest wheel-resident chain;
  // also reports which (level, bucket) attains it. Precondition:
  // wheel_chains_ > 0.
  std::uint64_t WheelMinLowerBound(unsigned* level, std::uint32_t* bucket)
      const;
  // Moves one bucket's chains wholesale into the heap and refreshes the
  // cached wheel lower bound.
  void PromoteBucket(unsigned level, std::uint32_t bucket);
  void AdvanceClock(SimTime t) {
    now_ = t;
    cursor_tick_ = TickOf(t);
  }

  void HeapSiftUp(std::size_t pos);
  void HeapSiftDown(std::size_t pos);
  void PopRootEntry();

  // Drops cancelled events off the top chain (freeing their slots) until
  // the heap is empty or its top names a live chain head.
  void ResolveTop();
  // Promotes every wheel bucket that could precede the heap top and
  // resolves cancelled heads. Postcondition: the heap top names a live
  // chain head that is globally minimal among timed events, or the heap
  // AND wheel are both empty.
  void PrepareNext();

  // True when the next event in (time, seq) order is the ring front.
  // Precondition: PrepareNext() ran.
  bool TakeRingNext() const;
  void RingPush(std::coroutine_handle<> handle, std::uint64_t seq);
  RingEntry RingPop();
  void RingGrow();

  // Executes the globally minimal pending event.
  // Precondition: pending_events() > 0.
  void ExecuteNext();
  // Big-step drain: executes up to `budget` events off the heap-top
  // timestamp chain without re-touching the heap between events,
  // interleaving ring wake-ups by sequence number. Returns to the generic
  // loop (with the heap left valid) as soon as another chain, a budget
  // limit, or a callback-made structural change interleaves.
  // Precondition: PrepareNext() ran, heap top live, budget >= 1.
  std::size_t DrainTopChain(std::size_t budget);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t executed_events_ = 0;
  std::size_t live_scheduled_ = 0;

  std::vector<HeapEntry> heap_;
  std::vector<SlotMeta> meta_;
  std::vector<std::unique_ptr<std::byte[]>> fn_chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<CacheEntry> chain_cache_;

  // Timing wheel: per-(level, bucket) chain-list heads, a 256-bit
  // occupancy bitmap per level, and a pooled node array with an intrusive
  // freelist. `cursor_tick_` mirrors TickOf(now_); the promotion rule in
  // PrepareNext guarantees the cursor never enters an occupied bucket's
  // tick window, so every occupied bucket's unwrapped lower bound is
  // exact and strictly ahead of the clock. `wheel_next_lb_tick_` caches a
  // conservative (never above the true) lower bound so the per-event cost
  // of the wheel on the drain path is one compare.
  std::vector<std::uint32_t> bucket_head_;  // kWheelLevels * kWheelBuckets
  std::uint64_t occupancy_[kWheelLevels][kWheelBuckets / 64] = {};
  std::uint32_t level_chains_[kWheelLevels] = {};  // resident chains/level
  std::vector<WheelNode> nodes_;
  std::uint32_t free_node_ = kNilNode;
  std::uint64_t cursor_tick_ = 0;
  std::uint64_t wheel_next_lb_tick_ = kMaxTick;
  std::size_t wheel_chains_ = 0;

  // Bumped on every heap structural change (push, pop, promotion, root
  // advance) so DrainTopChain can detect callback-made mutations and fall
  // back to the generic path.
  std::uint64_t heap_gen_ = 0;

  // Fast-lane FIFO ring (power-of-two capacity).
  std::vector<RingEntry> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;

  std::uint64_t fn_heap_allocs_ = 0;
  std::uint64_t fast_lane_resumes_ = 0;
  std::uint64_t wheel_inserts_ = 0;
  std::uint64_t wheel_promotions_ = 0;
  std::uint64_t wheel_overflow_ = 0;

  ExecuteHook exec_hook_ = nullptr;
  void* exec_hook_ctx_ = nullptr;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_SCHEDULER_H_
