// Coroutine-based simulation processes.
//
// A simulation actor is written as a plain C++20 coroutine returning
// `Process`:
//
//   sim::Process Worker(sim::Scheduler& sched, Server& server) {
//     co_await sim::Delay(sched, 0.5);        // sleep virtual time
//     co_await server.cpu().Serve(1e6);       // consume resources
//   }
//
//   sim::ProcessRef ref = sim::Spawn(sched, Worker(sched, server));
//   ...
//   co_await ref.Join();                      // wait for completion
//
// Lifetime model: `Spawn` hands the coroutine frame to the scheduler. The
// frame destroys itself when the coroutine finishes (at final suspend),
// after marking a shared completion state and waking joiners. `ProcessRef`
// only references that shared state, so it is safe to keep or drop at any
// time. A `Process` that is never spawned destroys its frame in the
// destructor.
#ifndef WIMPY_SIM_PROCESS_H_
#define WIMPY_SIM_PROCESS_H_

#include <array>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/frame_pool.h"
#include "sim/scheduler.h"

namespace wimpy::sim {

namespace internal_process {

// Shared between the running coroutine and any ProcessRef handles.
// Joiners nearly always number 0 or 1 (a Transfer joining its segment
// pumps, a parent joining a child), so the first two live inline and
// only pathological fan-in touches the overflow vector — keeping the
// spawn/join path allocation-free.
struct ProcessState {
  Scheduler* sched = nullptr;
  bool spawned = false;
  bool done = false;
  std::uint8_t inline_joiners = 0;
  std::array<std::coroutine_handle<>, 2> joiners{};
  std::vector<std::coroutine_handle<>> overflow_joiners;

  void AddJoiner(std::coroutine_handle<> h) {
    if (inline_joiners < joiners.size()) {
      joiners[inline_joiners++] = h;
    } else {
      overflow_joiners.push_back(h);
    }
  }

  // Wakes joiners in arrival order (inline slots filled first).
  void WakeJoiners() {
    for (std::uint8_t i = 0; i < inline_joiners; ++i) {
      sched->ResumeLater(joiners[i]);
    }
    inline_joiners = 0;
    for (auto joiner : overflow_joiners) sched->ResumeLater(joiner);
    overflow_joiners.clear();
  }
};

}  // namespace internal_process

// Join handle for a spawned process. Copyable and cheap.
class ProcessRef {
 public:
  ProcessRef() = default;
  explicit ProcessRef(std::shared_ptr<internal_process::ProcessState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ == nullptr || state_->done; }

  // Awaitable that completes when the process finishes. Safe to await after
  // completion (resumes immediately) and from multiple joiners.
  auto Join() const {
    struct Awaiter {
      std::shared_ptr<internal_process::ProcessState> state;
      bool await_ready() const noexcept {
        return state == nullptr || state->done;
      }
      void await_suspend(std::coroutine_handle<> h) {
        state->AddJoiner(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<internal_process::ProcessState> state_;
};

// Coroutine return type for simulation processes.
class Process {
 public:
  struct promise_type {
    // State and frame both recycle through the frame pool: the shared
    // state's control block via allocate_shared, the coroutine frame via
    // the pooled operator new below.
    std::shared_ptr<internal_process::ProcessState> state =
        std::allocate_shared<internal_process::ProcessState>(
            PoolAllocator<internal_process::ProcessState>{});

    static void* operator new(std::size_t bytes) { return PoolAlloc(bytes); }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      PoolFree(p, bytes);
    }

    Process get_return_object() {
      return Process(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto state = h.promise().state;  // keep alive past destroy()
        state->done = true;
        state->WakeJoiners();
        h.destroy();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { std::abort(); }
  };

  Process(Process&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      DestroyIfUnspawned();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ~Process() { DestroyIfUnspawned(); }

 private:
  friend ProcessRef Spawn(Scheduler& sched, Process process);

  explicit Process(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  void DestroyIfUnspawned() {
    if (handle_ != nullptr) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_ = nullptr;
};

// Starts a process at the scheduler's current time. The coroutine begins
// executing when the scheduler reaches the spawn event, not inside Spawn().
// The initial resumption rides the scheduler's fast lane (no allocation,
// no heap operation) while keeping its place in the deterministic
// (time, sequence) order.
inline ProcessRef Spawn(Scheduler& sched, Process process) {
  assert(process.handle_ != nullptr && "process already spawned or moved");
  auto handle = process.handle_;
  process.handle_ = nullptr;  // scheduler/frame owns itself from here
  auto state = handle.promise().state;
  assert(!state->spawned);
  state->sched = &sched;
  state->spawned = true;
  sched.ResumeLater(handle);
  return ProcessRef(state);
}

// Awaitable virtual-time sleep. A zero (or negative) delay still yields
// through the event queue — via the fast lane, since it is just a same-time
// wake-up — which is the idiomatic way to defer to other same-time events.
inline auto Delay(Scheduler& sched, Duration delay) {
  struct Awaiter {
    Scheduler* sched;
    Duration delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (delay <= 0) {
        sched->ResumeLater(h);
      } else {
        sched->ScheduleAfter(delay, [h] { h.resume(); });
      }
    }
    void await_resume() const noexcept {}
  };
  return Awaiter{&sched, delay};
}

// Awaits all processes in the list.
inline Process JoinAll(std::vector<ProcessRef> refs) {
  for (auto& ref : refs) co_await ref.Join();
}

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_PROCESS_H_
