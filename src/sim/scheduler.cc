#include "sim/scheduler.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace wimpy::sim {

namespace {
constexpr std::uint64_t ChainKey(std::uint64_t seq, std::uint32_t slot) {
  return (seq << 24) | slot;
}
}  // namespace

std::size_t Scheduler::CacheIndex(SimTime t) {
  // Hash the raw bits. Small integer timestamps keep their entropy in the
  // top mantissa/exponent bits (the low 52 bits are zero), so fold the
  // high half down before multiplying or every such time lands in the
  // same line.
  std::uint64_t bits;
  std::memcpy(&bits, &t, sizeof(bits));
  bits ^= bits >> 33;
  bits *= 0x9e3779b97f4a7c15ull;
  bits ^= bits >> 29;
  return static_cast<std::size_t>(bits) & (kCacheSize - 1);
}

EventId Scheduler::LinkSlot(std::uint32_t slot, SimTime t) {
  Slot& s = slots_[slot];
  s.next_key = kNullKey;
  const std::uint64_t key = ChainKey(s.seq, slot);

  if (chain_cache_.empty()) chain_cache_.resize(kCacheSize);
  CacheEntry& c = chain_cache_[CacheIndex(t)];
  // A cached tail is usable iff its slot still holds the cached event
  // (seq match) and it is still a tail. Which same-time chain it belongs
  // to does not matter: every chain is internally seq-sorted, and the
  // heap merges chain heads by (time, seq), so the global order stays
  // exact either way. A self-append is impossible: `s.seq` was freshly
  // assigned and has never been written to the cache.
  if (c.time == t && c.tail_seq != 0) {
    Slot& tail = slots_[c.tail];
    if (tail.seq == c.tail_seq && tail.next_key == kNullKey) {
      tail.next_key = key;
      c.tail_seq = s.seq;
      c.tail = slot;
      return key;
    }
  }
  // Miss: start a new chain for this timestamp.
  heap_.push_back(HeapEntry{t, key});
  HeapSiftUp(heap_.size() - 1);
  c.time = t;
  c.tail_seq = s.seq;
  c.tail = slot;
  return key;
}

EventId Scheduler::ScheduleAt(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  if (fn.heap_allocated()) ++fn_heap_allocs_;
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = next_seq_++;
  ++live_scheduled_;
  return LinkSlot(slot, t);
}

EventId Scheduler::ScheduleAfter(Duration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
  const std::uint64_t seq = id >> kSlotBits;
  if (seq == 0 || slot >= slots_.size() || slots_[slot].seq != seq ||
      !slots_[slot].fn) {
    return false;  // never issued, already ran, or already cancelled
  }
  // O(1): destroy the closure now; the dead link is unhooked for free when
  // its timestamp chain is drained.
  slots_[slot].fn.Reset();
  --live_scheduled_;
  return true;
}

EventId Scheduler::RescheduleAfter(EventId id, Duration delay) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
  const std::uint64_t seq = id >> kSlotBits;
  if (seq == 0 || slot >= slots_.size() || slots_[slot].seq != seq ||
      !slots_[slot].fn) {
    return 0;  // never issued, already ran, or already cancelled
  }
  if (delay < 0) delay = 0;
  const SimTime t = now_ + delay;
  Slot& s = slots_[slot];
  if (s.next_key != kNullKey) {
    // Mid-chain: later links would be lost if this slot were relinked, so
    // detach the closure and re-enter through the normal path (the dead
    // link is unhooked lazily, exactly as a Cancel would leave it).
    EventFn fn = std::move(s.fn);
    --live_scheduled_;
    return ScheduleAt(t, std::move(fn));
  }
  // Chain tail (or sole member): reuse the slot in place under a fresh
  // sequence number. The old chain now ends at this link — any stale
  // reference {old seq, slot} fails its sequence check in ResolveTop and
  // is treated as the chain end without freeing the (live) slot.
  s.seq = next_seq_++;
  return LinkSlot(slot, t);
}

void Scheduler::ResumeLater(std::coroutine_handle<> handle) {
  RingPush(handle, next_seq_++);
  ++fast_lane_resumes_;
}

std::uint32_t Scheduler::AcquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  assert(slots_.size() < (1ull << kSlotBits) && "too many pending events");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::HeapSiftUp(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    if (!EntryLess(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void Scheduler::HeapSiftDown(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = (pos << 2) + 1;
    if (child >= n) break;
    const std::size_t end = child + 4 < n ? child + 4 : n;
    std::size_t best = child;
    for (std::size_t c = child + 1; c < end; ++c) {
      if (EntryLess(heap_[c], heap_[best])) best = c;
    }
    if (!EntryLess(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = e;
}

void Scheduler::PopRootEntry() {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    heap_.pop_back();
    HeapSiftDown(0);
  } else {
    heap_.pop_back();
  }
}

void Scheduler::ResolveTop() {
  // Invariant: every heap entry's key names its chain's current head, so a
  // live head means the top is accurate and the loop is O(1) on the common
  // path. Cancelled heads are unhooked here, amortised against Cancel.
  while (!heap_.empty()) {
    const std::uint32_t head =
        static_cast<std::uint32_t>(heap_[0].key & kSlotMask);
    Slot& s = slots_[head];
    if (s.seq != heap_[0].key >> kSlotBits) {
      // The slot moved on since this link was forged — it was a chain
      // tail rescheduled in place (RescheduleAfter), and the slot now
      // lives in another chain under a newer sequence number (or has
      // since fired and been reacquired). Either way this chain ends
      // here; the slot itself must not be freed.
      PopRootEntry();
      continue;
    }
    if (s.fn) return;
    const std::uint64_t next_key = s.next_key;
    FreeSlot(head);
    if (next_key == kNullKey) {
      PopRootEntry();
    } else {
      heap_[0].key = next_key;
      HeapSiftDown(0);
    }
  }
}

bool Scheduler::TakeRingNext() const {
  if (ring_count_ == 0) return false;
  if (heap_.empty()) return true;
  const HeapEntry& top = heap_[0];
  // Ring entries were posted at the current instant (the clock cannot
  // advance past a pending wake-up), so any strictly-future heap event
  // loses; at the current instant the smaller sequence number wins.
  if (top.time > now_) return true;
  assert(top.time == now_);
  return (top.key >> kSlotBits) > ring_[ring_head_].seq;
}

void Scheduler::RingPush(std::coroutine_handle<> handle, std::uint64_t seq) {
  if (ring_count_ == ring_.size()) RingGrow();
  ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] =
      RingEntry{handle, seq};
  ++ring_count_;
}

Scheduler::RingEntry Scheduler::RingPop() {
  const RingEntry e = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
  --ring_count_;
  return e;
}

void Scheduler::RingGrow() {
  const std::size_t old_cap = ring_.size();
  const std::size_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
  std::vector<RingEntry> grown(new_cap);
  for (std::size_t i = 0; i < ring_count_; ++i) {
    grown[i] = ring_[(ring_head_ + i) & (old_cap - 1)];
  }
  ring_ = std::move(grown);
  ring_head_ = 0;
}

void Scheduler::ExecuteNext() {
  ResolveTop();
  if (TakeRingNext()) {
    const RingEntry e = RingPop();
    ++executed_events_;
    if (exec_hook_) exec_hook_(exec_hook_ctx_, now_, e.seq);
    e.handle.resume();
    return;
  }
  const HeapEntry top = heap_[0];
  const std::uint32_t head =
      static_cast<std::uint32_t>(top.key & kSlotMask);
  EventFn fn = std::move(slots_[head].fn);
  const std::uint64_t next_key = slots_[head].next_key;
  FreeSlot(head);
  if (next_key == kNullKey) {
    PopRootEntry();
  } else {
    // Chain continues at the same time: bump the key to the new head's
    // sequence so other same-time chains can interleave correctly. The
    // sift is O(1) unless another chain shares this timestamp, and the
    // prefetch hides the stride to the next pop's slot behind this
    // event's execution.
    __builtin_prefetch(&slots_[next_key & kSlotMask]);
    heap_[0].key = next_key;
    HeapSiftDown(0);
  }
  --live_scheduled_;
  assert(top.time >= now_);
  now_ = top.time;
  ++executed_events_;
  if (exec_hook_) exec_hook_(exec_hook_ctx_, now_, top.key >> kSlotBits);
  fn();
}

bool Scheduler::Step() {
  if (empty()) return false;
  ExecuteNext();
  return true;
}

std::size_t Scheduler::Run(SimTime until, std::size_t max_events) {
  if (until < now_) return 0;
  std::size_t executed = 0;
  while (executed < max_events) {
    if (ring_count_ == 0) {
      ResolveTop();
      if (heap_.empty()) {
        // Queue drained before the time limit: land the clock on `until`,
        // matching the next-event-beyond-`until` exit below.
        if (until > now_ && std::isfinite(until)) now_ = until;
        break;
      }
      if (heap_[0].time > until) {
        if (until > now_) now_ = until;
        break;
      }
    }
    // A non-empty ring always has work due at the current instant, which
    // is <= until by the loop invariant.
    ExecuteNext();
    ++executed;
  }
  return executed;
}

}  // namespace wimpy::sim
