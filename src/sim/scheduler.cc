#include "sim/scheduler.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <new>
#include <utility>

namespace wimpy::sim {

Scheduler::~Scheduler() {
  // Chunks are raw storage; exactly the slots ever acquired hold
  // constructed EventFns (freelist reuse keeps them constructed-but-empty).
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    FnAt(static_cast<std::uint32_t>(i)).~EventFn();
  }
}

namespace {
constexpr std::uint64_t ChainKey(std::uint64_t seq, std::uint32_t slot) {
  return (seq << 24) | slot;
}
}  // namespace

std::size_t Scheduler::CacheIndex(SimTime t) {
  // Hash the raw bits. Small integer timestamps keep their entropy in the
  // top mantissa/exponent bits (the low 52 bits are zero), so fold the
  // high half down before multiplying or every such time lands in the
  // same line.
  std::uint64_t bits;
  std::memcpy(&bits, &t, sizeof(bits));
  bits ^= bits >> 33;
  bits *= 0x9e3779b97f4a7c15ull;
  bits ^= bits >> 29;
  return static_cast<std::size_t>(bits) & (kCacheSize - 1);
}

EventId Scheduler::LinkSlot(std::uint32_t slot, std::uint64_t seq,
                            SimTime t) {
  const std::uint64_t key = ChainKey(seq, slot);

  if (chain_cache_.empty()) chain_cache_.resize(kCacheSize);
  CacheEntry& c = chain_cache_[CacheIndex(t)];
  // A cached tail is usable iff its slot still holds the cached event
  // (seq match) and it is still a tail. Which same-time chain it belongs
  // to does not matter: every chain is internally seq-sorted, and the
  // heap merges chain heads by (time, seq), so the global order stays
  // exact either way. A self-append is impossible: `seq` was freshly
  // assigned and has never been written to the cache. Appending also
  // never cares which tier the chain's head entered through — the tail
  // link lives in slot metadata either way.
  if (c.time == t && c.tail_key != kNullKey) {
    SlotMeta& tail = meta_[c.tail_key & kSlotMask];
    if (tail.seq == c.tail_key >> kSlotBits && tail.next_key == kNullKey) {
      tail.next_key = key;
      c.tail_key = key;
      return key;
    }
  }
  // Miss: start a new chain for this timestamp.
  StartChain(t, key);
  c.time = t;
  c.tail_key = key;
  return key;
}

void Scheduler::StartChain(SimTime t, std::uint64_t key) {
  static_assert(kWheelBits == 8, "level arithmetic assumes 8-bit wheels");
  const std::uint64_t tick = TickOf(t);
  if (tick > cursor_tick_) {
    if (tick != kMaxTick) {
      const std::uint64_t delta = tick - cursor_tick_;
      const unsigned level =
          static_cast<unsigned>(std::bit_width(delta) - 1) >> 3;
      if (level < kWheelLevels) {
        WheelInsert(level, tick, t, key);
        return;
      }
    }
    // Beyond the wheel horizon (or non-finite): the heap is the overflow
    // tier. Same-tick-as-now chains below also land here, but those are
    // due traffic, not spills.
    ++wheel_overflow_;
  }
  HeapPush(t, key);
}

void Scheduler::HeapPush(SimTime t, std::uint64_t key) {
  // First growth jumps straight to a useful capacity so warmed-up runs
  // never reallocate on the schedule path (sim_scheduler_stress_test pins
  // this with an operator-new override).
  if (heap_.size() == heap_.capacity() && heap_.capacity() < 64) {
    heap_.reserve(64);
  }
  heap_.push_back(HeapEntry{t, key});
  HeapSiftUp(heap_.size() - 1);
  ++heap_gen_;
}

void Scheduler::WheelInsert(unsigned level, std::uint64_t tick, SimTime t,
                            std::uint64_t key) {
  if (bucket_head_.empty()) {
    bucket_head_.assign(kWheelLevels * kWheelBuckets, kNilNode);
    // One bucket's worth of nodes up front: enough that warmed-up
    // workloads recycle through the freelist instead of growing the pool.
    nodes_.reserve(kWheelBuckets);
  }
  const std::uint32_t bucket = static_cast<std::uint32_t>(
      (tick >> (level * kWheelBits)) & (kWheelBuckets - 1));
  const std::uint32_t idx = level * kWheelBuckets + bucket;
  std::uint32_t node;
  if (free_node_ != kNilNode) {
    node = free_node_;
    free_node_ = nodes_[node].next;
  } else {
    node = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[node] = WheelNode{t, key, bucket_head_[idx]};
  bucket_head_[idx] = node;
  occupancy_[level][bucket >> 6] |= 1ull << (bucket & 63);
  ++wheel_chains_;
  ++level_chains_[level];
  ++wheel_inserts_;
  if (tick < wheel_next_lb_tick_) wheel_next_lb_tick_ = tick;
}

std::uint64_t Scheduler::WheelMinLowerBound(unsigned* level,
                                            std::uint32_t* bucket) const {
  // Per level: unwrap bucket indices against the cursor. The promotion
  // rule keeps every occupied bucket's tick window strictly ahead of the
  // cursor, so a bucket index above the cursor's belongs to the current
  // rotation of its level and one at or below it to the next — the
  // resulting window start is an exact lower bound (exact tick at
  // level 0, where a bucket is one tick wide).
  auto first_occupied = [this](unsigned l, std::uint32_t from) -> int {
    if (from >= kWheelBuckets) return -1;
    std::uint32_t w = from >> 6;
    std::uint64_t word = occupancy_[l][w] & (~0ull << (from & 63));
    for (;;) {
      if (word != 0) {
        return static_cast<int>((w << 6) + std::countr_zero(word));
      }
      if (++w >= kWheelBuckets / 64) return -1;
      word = occupancy_[l][w];
    }
  };
  std::uint64_t best = kMaxTick;
  for (unsigned l = 0; l < kWheelLevels; ++l) {
    if (level_chains_[l] == 0) continue;  // skip scanning empty levels
    const unsigned shift = l * kWheelBits;
    const std::uint64_t base = cursor_tick_ >> (shift + kWheelBits);
    const std::uint32_t c = static_cast<std::uint32_t>(
        (cursor_tick_ >> shift) & (kWheelBuckets - 1));
    int b = first_occupied(l, c + 1);
    std::uint64_t prefix;
    if (b >= 0) {
      prefix = (base << kWheelBits) | static_cast<std::uint32_t>(b);
    } else {
      b = first_occupied(l, 0);
      if (b < 0) continue;  // level empty
      prefix = ((base + 1) << kWheelBits) | static_cast<std::uint32_t>(b);
    }
    const std::uint64_t lb = prefix << shift;
    if (lb < best) {
      best = lb;
      *level = l;
      *bucket = static_cast<std::uint32_t>(b);
    }
  }
  return best;
}

void Scheduler::PromoteBucket(unsigned level, std::uint32_t bucket) {
  const std::uint32_t idx = level * kWheelBuckets + bucket;
  std::uint32_t node = bucket_head_[idx];
  bucket_head_[idx] = kNilNode;
  occupancy_[level][bucket >> 6] &= ~(1ull << (bucket & 63));
  while (node != kNilNode) {
    const std::uint32_t next = nodes_[node].next;
    const SimTime t = nodes_[node].time;
    std::uint64_t key = nodes_[node].key;
    nodes_[node].next = free_node_;
    free_node_ = node;
    node = next;
    --wheel_chains_;
    --level_chains_[level];
    // Resolve the chain head before it ever touches the heap: cancelled
    // links are freed inline and a fully dead or stale chain (the
    // Cancel-heavy and RescheduleAfter-tail patterns leave those behind
    // in wheel buckets) costs no heap push/pop/sift at all. Execution
    // order is untouched — only events that were never going to run are
    // skipped, exactly as ResolveTop would have dropped them later.
    for (;;) {
      const std::uint32_t slot = static_cast<std::uint32_t>(key & kSlotMask);
      SlotMeta& m = meta_[slot];
      if (m.seq != key >> kSlotBits) {
        key = kNullKey;  // stale link: chain ends, slot lives elsewhere
        break;
      }
      if (FnAt(slot)) break;  // live head
      const std::uint64_t nk = m.next_key;
      FreeSlot(slot);
      if (nk == kNullKey) {
        key = kNullKey;
        break;
      }
      key = nk;
    }
    if (key != kNullKey) HeapPush(t, key);
  }
  ++wheel_promotions_;
  // The cached lower bound is left as-is: the promoted bucket attained
  // the minimum, so the cache stays conservative (never above the true
  // bound) and PrepareNext recomputes exactly only when it has to —
  // re-scanning here would double the bitmap scans on bulk promotion.
  if (wheel_chains_ == 0) wheel_next_lb_tick_ = kMaxTick;
}

EventId Scheduler::ScheduleAt(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  if (fn.heap_allocated()) ++fn_heap_allocs_;
  const std::uint32_t slot = AcquireSlot();
  FnAt(slot) = std::move(fn);
  const std::uint64_t seq = next_seq_++;
  meta_[slot] = SlotMeta{seq, kNullKey};  // one 16-byte store
  ++live_scheduled_;
  return LinkSlot(slot, seq, t);
}

EventId Scheduler::ScheduleAfter(Duration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
  const std::uint64_t seq = id >> kSlotBits;
  if (seq == 0 || slot >= meta_.size() || meta_[slot].seq != seq ||
      !FnAt(slot)) {
    return false;  // never issued, already ran, or already cancelled
  }
  // O(1): destroy the closure now; the dead link is unhooked for free when
  // its timestamp chain is drained (wheel-resident chains included — a
  // fully dead chain still gets promoted and dropped by ResolveTop).
  FnAt(slot).Reset();
  --live_scheduled_;
  return true;
}

EventId Scheduler::RescheduleAfter(EventId id, Duration delay) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
  const std::uint64_t seq = id >> kSlotBits;
  if (seq == 0 || slot >= meta_.size() || meta_[slot].seq != seq ||
      !FnAt(slot)) {
    return 0;  // never issued, already ran, or already cancelled
  }
  if (delay < 0) delay = 0;
  const SimTime t = now_ + delay;
  SlotMeta& m = meta_[slot];
  if (m.next_key != kNullKey) {
    // Mid-chain: later links would be lost if this slot were relinked, so
    // detach the closure and re-enter through the normal path (the dead
    // link is unhooked lazily, exactly as a Cancel would leave it).
    EventFn fn = std::move(FnAt(slot));
    --live_scheduled_;
    return ScheduleAt(t, std::move(fn));
  }
  // Chain tail (or sole member): reuse the slot in place under a fresh
  // sequence number. The old chain now ends at this link — any stale
  // reference {old seq, slot} fails its sequence check in the dispatcher
  // and is treated as the chain end without freeing the (live) slot. The
  // old chain entry keeps sitting in its tier (wheel bucket or heap)
  // until its timestamp is reached; the new chain enters whichever tier
  // the new time calls for.
  const std::uint64_t fresh = next_seq_++;
  m.seq = fresh;
  return LinkSlot(slot, fresh, t);
}

void Scheduler::ResumeLater(std::coroutine_handle<> handle) {
  RingPush(handle, next_seq_++);
  ++fast_lane_resumes_;
}

std::uint32_t Scheduler::AcquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(meta_.size());
  assert(slot < (1ull << kSlotBits) && "too many pending events");
  if ((slot >> kFnChunkBits) == fn_chunks_.size()) {
    fn_chunks_.emplace_back(new std::byte[kFnChunkSize * sizeof(EventFn)]);
  }
  meta_.emplace_back();
  ::new (static_cast<void*>(&FnAt(slot))) EventFn();
  return slot;
}

void Scheduler::HeapSiftUp(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    if (!EntryLess(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void Scheduler::HeapSiftDown(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = (pos << 2) + 1;
    if (child >= n) break;
    const std::size_t end = child + 4 < n ? child + 4 : n;
    std::size_t best = child;
    for (std::size_t c = child + 1; c < end; ++c) {
      if (EntryLess(heap_[c], heap_[best])) best = c;
    }
    if (!EntryLess(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = e;
}

void Scheduler::PopRootEntry() {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    heap_.pop_back();
    HeapSiftDown(0);
  } else {
    heap_.pop_back();
  }
  ++heap_gen_;
}

void Scheduler::ResolveTop() {
  // Invariant: every heap entry's key names its chain's current head, so a
  // live head means the top is accurate and the loop is O(1) on the common
  // path. Cancelled heads are unhooked here, amortised against Cancel.
  while (!heap_.empty()) {
    const std::uint32_t head =
        static_cast<std::uint32_t>(heap_[0].key & kSlotMask);
    SlotMeta& m = meta_[head];
    if (m.seq != heap_[0].key >> kSlotBits) {
      // The slot moved on since this link was forged — it was a chain
      // tail rescheduled in place (RescheduleAfter), and the slot now
      // lives in another chain under a newer sequence number (or has
      // since fired and been reacquired). Either way this chain ends
      // here; the slot itself must not be freed.
      PopRootEntry();
      continue;
    }
    if (FnAt(head)) return;
    const std::uint64_t next_key = m.next_key;
    FreeSlot(head);
    if (next_key == kNullKey) {
      PopRootEntry();
    } else {
      heap_[0].key = next_key;
      HeapSiftDown(0);
      ++heap_gen_;
    }
  }
}

void Scheduler::PrepareNext() {
  ResolveTop();
  while (wheel_chains_ != 0) {
    const std::uint64_t heap_tick =
        heap_.empty() ? kMaxTick : TickOf(heap_[0].time);
    // Fast path: the cached bound is conservative (never above the true
    // bound), so clearing it proves no wheel chain can precede the top.
    if (wheel_next_lb_tick_ > heap_tick) return;
    unsigned level;
    std::uint32_t bucket;
    const std::uint64_t lb = WheelMinLowerBound(&level, &bucket);
    wheel_next_lb_tick_ = lb;
    if (lb > heap_tick) return;
    // A wheel bucket could hold a chain ordered before the heap top (tick
    // ties included — the heap comparator settles those exactly once both
    // sides are in the heap): promote it wholesale and re-resolve.
    PromoteBucket(level, bucket);
    ResolveTop();
  }
}

bool Scheduler::TakeRingNext() const {
  if (ring_count_ == 0) return false;
  if (heap_.empty()) return true;
  const HeapEntry& top = heap_[0];
  // Ring entries were posted at the current instant (the clock cannot
  // advance past a pending wake-up), so any strictly-future heap event
  // loses; at the current instant the smaller sequence number wins.
  // Wheel-resident chains are strictly future by construction and never
  // compete with the ring.
  if (top.time > now_) return true;
  assert(top.time == now_);
  return (top.key >> kSlotBits) > ring_[ring_head_].seq;
}

void Scheduler::RingPush(std::coroutine_handle<> handle, std::uint64_t seq) {
  if (ring_count_ == ring_.size()) RingGrow();
  ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] =
      RingEntry{handle, seq};
  ++ring_count_;
}

Scheduler::RingEntry Scheduler::RingPop() {
  const RingEntry e = ring_[ring_head_];
  ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
  --ring_count_;
  return e;
}

void Scheduler::RingGrow() {
  const std::size_t old_cap = ring_.size();
  const std::size_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
  std::vector<RingEntry> grown(new_cap);
  for (std::size_t i = 0; i < ring_count_; ++i) {
    grown[i] = ring_[(ring_head_ + i) & (old_cap - 1)];
  }
  ring_ = std::move(grown);
  ring_head_ = 0;
}

void Scheduler::ExecuteNext() {
  ResolveTop();
  if (TakeRingNext()) {
    const RingEntry e = RingPop();
    ++executed_events_;
    if (exec_hook_) exec_hook_(exec_hook_ctx_, now_, e.seq);
    e.handle.resume();
    return;
  }
  // The ring lost (or is empty), so the next event is timed: settle the
  // wheel-vs-heap frontier before trusting the top. When the ring lost
  // against a same-instant heap top this is a single compare.
  PrepareNext();
  const HeapEntry top = heap_[0];
  const std::uint32_t head =
      static_cast<std::uint32_t>(top.key & kSlotMask);
  EventFn fn = std::move(FnAt(head));
  SlotMeta& hm = meta_[head];
  const std::uint64_t next_key = hm.next_key;
  hm.seq = 0;  // moved-from slot: free without the redundant Reset
  free_slots_.push_back(head);
  if (next_key == kNullKey) {
    PopRootEntry();
  } else {
    // Chain continues at the same time: bump the key to the new head's
    // sequence so other same-time chains can interleave correctly. The
    // sift is O(1) unless another chain shares this timestamp, and the
    // prefetch hides the stride to the next pop's slot behind this
    // event's execution.
    __builtin_prefetch(&meta_[next_key & kSlotMask]);
    __builtin_prefetch(&FnAt(static_cast<std::uint32_t>(
        next_key & kSlotMask)));
    heap_[0].key = next_key;
    HeapSiftDown(0);
    ++heap_gen_;
  }
  --live_scheduled_;
  assert(top.time >= now_);
  AdvanceClock(top.time);
  ++executed_events_;
  if (exec_hook_) exec_hook_(exec_hook_ctx_, now_, top.key >> kSlotBits);
  fn();
}

std::size_t Scheduler::DrainTopChain(std::size_t budget) {
  // The whole heap-top chain is due at one instant: land the clock once,
  // then walk the chain with a single root-key write-through per event —
  // no sift, no ResolveTop, no ring scan unless something interleaves.
  //
  // Three guards keep the order exact:
  //  * `competitor` — the smallest key among same-time sibling chains.
  //    The heap property puts every same-time chain head among the root's
  //    direct children (a deeper entry at the top timestamp would need a
  //    same-time parent, which would itself be such a child), so four
  //    compares bound the whole drain. The moment the chain's next link
  //    exceeds it, the root is sifted back in and the generic loop
  //    arbitrates.
  //  * the ring front — wake-ups posted by drained events carry fresh
  //    sequence numbers and interleave by seq exactly as the generic
  //    dispatcher would order them.
  //  * `heap_gen_` — any structural heap change made from inside a
  //    callback (a new chain pushed, a nested Run) bails out to the
  //    generic loop, which re-resolves from scratch.
  const SimTime T = heap_[0].time;
  assert(T >= now_);
  AdvanceClock(T);
  ++heap_gen_;  // nested drains must force the outer one to re-resolve
  std::uint64_t competitor = std::numeric_limits<std::uint64_t>::max();
  const std::size_t nchild = heap_.size() < 5 ? heap_.size() : 5;
  for (std::size_t i = 1; i < nchild; ++i) {
    if (heap_[i].time == T && heap_[i].key < competitor) {
      competitor = heap_[i].key;
    }
  }
  std::uint64_t key = heap_[0].key;
  std::size_t n = 0;
  for (;;) {
    const std::uint64_t seq = key >> kSlotBits;
    if (ring_count_ != 0 && ring_[ring_head_].seq < seq) {
      if (n >= budget) return n;
      const RingEntry e = RingPop();
      ++executed_events_;
      ++n;
      const std::uint64_t gen = heap_gen_;
      if (exec_hook_) exec_hook_(exec_hook_ctx_, now_, e.seq);
      e.handle.resume();
      if (heap_gen_ != gen) return n;
      continue;
    }
    if (competitor < key) return n;  // sibling chain runs first
    if (n >= budget) return n;
    const std::uint32_t slot = static_cast<std::uint32_t>(key & kSlotMask);
    SlotMeta& m = meta_[slot];
    if (m.seq != seq) {
      // Stale link (tail rescheduled in place): chain ends here; the slot
      // lives on elsewhere and must not be freed.
      PopRootEntry();
      return n;
    }
    const std::uint64_t nk = m.next_key;
    if (!FnAt(slot)) {
      // Cancelled: unhook for free, no execution.
      FreeSlot(slot);
      if (nk == kNullKey) {
        PopRootEntry();
        return n;
      }
      if (competitor < nk) {
        heap_[0].key = nk;
        HeapSiftDown(0);
        return n;
      }
      heap_[0].key = nk;
      key = nk;
      continue;
    }
    EventFn fn = std::move(FnAt(slot));
    m.seq = 0;  // moved-from slot: free without the redundant Reset
    free_slots_.push_back(slot);
    // Advance the root past this link *before* running it, so the heap is
    // consistent for anything the callback does.
    bool exit_after = false;
    if (nk == kNullKey) {
      PopRootEntry();
      exit_after = true;
    } else if (competitor < nk) {
      heap_[0].key = nk;
      HeapSiftDown(0);
      exit_after = true;
    } else {
      heap_[0].key = nk;
      __builtin_prefetch(&meta_[nk & kSlotMask]);
      __builtin_prefetch(&FnAt(static_cast<std::uint32_t>(nk & kSlotMask)));
    }
    --live_scheduled_;
    ++executed_events_;
    ++n;
    const std::uint64_t gen = heap_gen_;
    if (exec_hook_) exec_hook_(exec_hook_ctx_, now_, seq);
    fn();
    if (exit_after || heap_gen_ != gen) return n;
    key = nk;
  }
}

bool Scheduler::Step() {
  if (empty()) return false;
  ExecuteNext();
  return true;
}

std::size_t Scheduler::Run(SimTime until, std::size_t max_events) {
  if (until < now_) return 0;
  std::size_t executed = 0;
  while (executed < max_events) {
    if (ring_count_ == 0) {
      PrepareNext();
      if (heap_.empty()) {
        // Queue drained (wheel included — PrepareNext empties it before
        // leaving the heap empty) before the time limit: land the clock
        // on `until`, matching the next-event-beyond-`until` exit below.
        if (until > now_ && std::isfinite(until)) AdvanceClock(until);
        break;
      }
      if (heap_[0].time > until) {
        if (until > now_) AdvanceClock(until);
        break;
      }
      executed += DrainTopChain(max_events - executed);
      continue;
    }
    // A non-empty ring always has work due at the current instant, which
    // is <= until by the loop invariant.
    ExecuteNext();
    ++executed;
  }
  return executed;
}

}  // namespace wimpy::sim
