#include "sim/scheduler.h"

#include <cassert>
#include <utility>

namespace wimpy::sim {

EventId Scheduler::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  ++live_events_;
  return id;
}

EventId Scheduler::ScheduleAfter(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Tombstone; the heap entry is skipped when popped.
  const bool inserted = cancelled_.insert(id).second;
  if (inserted) {
    assert(live_events_ > 0);
    --live_events_;
  }
  return inserted;
}

void Scheduler::ResumeLater(std::coroutine_handle<> handle) {
  ScheduleAt(now_, [handle] { handle.resume(); });
}

bool Scheduler::Step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // tombstoned; live_events_ already decremented
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    --live_events_;
    ++executed_events_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Scheduler::Run(SimTime until, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && !queue_.empty()) {
    // Peek for the time limit, skipping tombstones.
    while (!queue_.empty() &&
           cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty()) break;
    if (queue_.top().time > until) {
      if (until > now_) now_ = until;
      break;
    }
    if (Step()) ++executed;
  }
  return executed;
}

}  // namespace wimpy::sim
