#include "sim/replication.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace wimpy::sim {

std::uint64_t ReplicationSeed(std::uint64_t base_seed, int config_index,
                              int rep_index) {
  // splitmix64 finalizer over a counter built from the three inputs. The
  // golden-ratio strides keep (config, rep) cells far apart even for
  // adjacent indices; the final mix decorrelates the xoshiro states the
  // Rng constructor expands from the seed.
  std::uint64_t z = base_seed;
  z += 0x9e3779b97f4a7c15ULL *
       (static_cast<std::uint64_t>(config_index) + 1);
  z += 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(rep_index) + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

namespace internal {

void RunIndexedTasks(int n_tasks, int threads,
                     const std::function<void(int)>& fn) {
  if (n_tasks <= 0) return;
  if (threads > n_tasks) threads = n_tasks;
  if (threads <= 1) {
    for (int i = 0; i < n_tasks; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const int task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= n_tasks) return;
      try {
        fn(task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace internal
}  // namespace wimpy::sim
