// Parallel replication runner: N seeds × M configs on worker threads with
// deterministic aggregation (see docs/parallel.md).
//
// Every evaluation in EXPERIMENTS.md is a grid of *independent*
// single-threaded simulations — each cell builds its own Scheduler, its
// own hardware models, and draws from its own root Rng. That makes
// multi-seed sweeps embarrassingly parallel, provided nothing is shared:
// this runner enforces the no-shared-state contract structurally by
// handing each replication a private root `Rng` derived from
// (base_seed, config_index, rep_index) and nothing else.
//
// Determinism guarantee: results are a pure function of the seed tree and
// the configs. Worker count and completion order never leak into either
// the per-replication draws (seeds are derived by counter hashing, not by
// work order) or the aggregation (results land in a pre-sized
// [config][replication] grid, merged in index order). A sweep at
// --threads=8 is bit-identical to --threads=1; tests pin this.
#ifndef WIMPY_SIM_REPLICATION_H_
#define WIMPY_SIM_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"

namespace wimpy::sim {

// How to run a sweep. `threads` bounds the fixed worker pool; the
// effective pool never exceeds the task count, and 1 runs inline on the
// caller's thread (useful as the serial reference in determinism tests).
struct SweepPlan {
  int replications = 1;
  int threads = 1;
  std::uint64_t base_seed = 0x5EED2016;
};

// Root seed for replication `rep_index` of configuration `config_index`:
// a splitmix64-style counter hash of the three inputs. Properties the
// tests pin down:
//  * pure function of its arguments — independent of thread count,
//    scheduling, and every other (config, rep) cell;
//  * appending configurations or replications never perturbs the seeds
//    of existing cells (the fork-tree property at sweep granularity).
std::uint64_t ReplicationSeed(std::uint64_t base_seed, int config_index,
                              int rep_index);

namespace internal {
// Runs fn(0..n_tasks-1), each exactly once, on up to `threads` workers.
// Tasks are claimed by atomic counter; the call returns after all workers
// join, so writes made by tasks happen-before the return. The first
// exception thrown by a task is rethrown on the caller's thread after the
// pool drains.
void RunIndexedTasks(int n_tasks, int threads,
                     const std::function<void(int)>& fn);
}  // namespace internal

// Runs `replication(config, root_rng)` for every (config, replication)
// pair of the plan on a fixed thread pool and returns results indexed
// [config_index][rep_index] — deterministic regardless of scheduling.
//
// The functor must build all simulation state (Scheduler, testbeds,
// metrics) locally from its two arguments; it runs concurrently with
// other replications and must not touch shared mutable state. Library
// facilities that are safe to use from inside a replication: the hw
// profile registry (internally synchronized), logging, and anything
// constructed locally.
template <typename Config, typename Replication>
auto RunSweep(const std::vector<Config>& configs, const SweepPlan& plan,
              Replication&& replication)
    -> std::vector<std::vector<
        decltype(replication(configs[0], std::declval<Rng&>()))>> {
  using Result = decltype(replication(configs[0], std::declval<Rng&>()));
  const int n_configs = static_cast<int>(configs.size());
  const int reps = plan.replications < 1 ? 1 : plan.replications;
  std::vector<std::vector<Result>> results(n_configs);
  for (auto& per_config : results) per_config.resize(reps);
  internal::RunIndexedTasks(
      n_configs * reps, plan.threads, [&](int task) {
        const int c = task / reps;
        const int r = task % reps;
        Rng root(ReplicationSeed(plan.base_seed, c, r));
        results[c][r] = replication(configs[c], root);
      });
  return results;
}

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_REPLICATION_H_
