// Unbounded FIFO channel between simulation processes.
//
// Producers call Push() (never blocks); consumers `co_await queue.Get()`.
// Used for request queues, shuffle streams and task dispatch. Delivery is
// strictly FIFO for both items and waiting consumers.
#ifndef WIMPY_SIM_WAIT_QUEUE_H_
#define WIMPY_SIM_WAIT_QUEUE_H_

#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/scheduler.h"

namespace wimpy::sim {

template <typename T>
class WaitQueue {
 public:
  explicit WaitQueue(Scheduler* sched) : sched_(sched) {
    assert(sched != nullptr);
  }

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Enqueues an item; if a consumer is waiting, delivers to the one that
  // has waited longest.
  void Push(T item) {
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->value = std::move(item);
      sched_->ResumeLater(w->handle);
      return;
    }
    items_.push_back(std::move(item));
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
  }

  // Awaitable retrieval:  T item = co_await queue.Get();
  auto Get() {
    struct Awaiter {
      WaitQueue* queue;
      Waiter slot;
      bool await_ready() {
        if (!queue->items_.empty() && queue->waiters_.empty()) {
          slot.value = std::move(queue->items_.front());
          queue->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        slot.handle = h;
        queue->waiters_.push_back(&slot);
      }
      T await_resume() {
        assert(slot.value.has_value());
        return std::move(*slot.value);
      }
    };
    return Awaiter{this, {}};
  }

  // Non-blocking retrieval.
  std::optional<T> TryGet() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiter_count() const { return waiters_.size(); }
  std::size_t peak_depth() const { return peak_depth_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> value;
  };

  Scheduler* sched_;
  std::deque<T> items_;
  // Raw pointers into awaiter objects living in suspended coroutine frames;
  // stable until the coroutine resumes.
  std::deque<Waiter*> waiters_;
  std::size_t peak_depth_ = 0;
};

}  // namespace wimpy::sim

#endif  // WIMPY_SIM_WAIT_QUEUE_H_
