// CPU model: a fair-share server over measured DMIPS.
//
// A node's CPU is a pool of `total_dmips()` million-instructions-per-second
// shared among runnable tasks, where one task can never exceed one hardware
// thread's `dmips_per_thread`. This reproduces both measured behaviours the
// paper leans on: single-thread speed ratios (Dhrystone, sysbench 1-thread)
// and whole-node throughput ratios (~100x Dell vs Edison).
#ifndef WIMPY_HW_CPU_H_
#define WIMPY_HW_CPU_H_

#include "hw/profile.h"
#include "sim/fair_share.h"
#include "sim/task.h"

namespace wimpy::hw {

class CpuModel {
 public:
  CpuModel(sim::Scheduler* sched, const CpuSpec& spec);

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  // Executes `minstr` million Dhrystone-equivalent instructions, sharing
  // the CPU with all concurrent work on this node.
  sim::Task<void> Execute(double minstr);

  // Wall time `minstr` would take on an otherwise idle thread.
  Duration IdealThreadTime(double minstr) const {
    return minstr / spec_.dmips_per_thread;
  }

  const CpuSpec& spec() const { return spec_; }
  double total_dmips() const { return spec_.total_dmips(); }
  int vcores() const { return spec_.hardware_threads(); }
  double busy_fraction() const { return server_.busy_fraction(); }
  double AverageBusyFraction() const {
    return server_.AverageBusyFraction();
  }
  std::size_t runnable_tasks() const { return server_.active_jobs(); }

  sim::FairShareServer& server() { return server_; }

 private:
  CpuSpec spec_;
  sim::FairShareServer server_;
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_CPU_H_
