// Network interface model: independent transmit and receive fair-share
// channels at the measured link bandwidth.
//
// Actual end-to-end transfers are orchestrated by net::Fabric, which
// serialises a flow through the sender's tx channel, the fabric bottleneck
// and the receiver's rx channel. The NIC exposes the two endpoint channels
// plus per-direction accounting for the utilisation reports.
#ifndef WIMPY_HW_NIC_H_
#define WIMPY_HW_NIC_H_

#include "hw/profile.h"
#include "sim/fair_share.h"

namespace wimpy::hw {

class NicModel {
 public:
  NicModel(sim::Scheduler* sched, const NicSpec& spec);

  NicModel(const NicModel&) = delete;
  NicModel& operator=(const NicModel&) = delete;

  sim::FairShareServer& tx() { return tx_; }
  sim::FairShareServer& rx() { return rx_; }

  const NicSpec& spec() const { return spec_; }
  BytesPerSecond bandwidth() const { return spec_.bandwidth; }
  Duration endpoint_latency() const { return spec_.endpoint_latency; }

  // Busy fraction of the busier direction (what a monitoring tool reports).
  double busy_fraction() const;

  void AddBytesSent(Bytes n) { bytes_sent_ += n; }
  void AddBytesReceived(Bytes n) { bytes_received_ += n; }
  Bytes bytes_sent() const { return bytes_sent_; }
  Bytes bytes_received() const { return bytes_received_; }

 private:
  NicSpec spec_;
  sim::FairShareServer tx_;
  sim::FairShareServer rx_;
  Bytes bytes_sent_ = 0;
  Bytes bytes_received_ = 0;
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_NIC_H_
