// Hardware profiles: the calibrated capacity and power description of one
// server model.
//
// Every number in the built-in profiles (profiles.h) is taken from the
// paper's Section 3/4 single-node measurements, so cluster-level behaviour
// emerges from measured component capacities rather than nameplate specs —
// the paper's central observation is precisely that the two differ by an
// order of magnitude for CPU.
#ifndef WIMPY_HW_PROFILE_H_
#define WIMPY_HW_PROFILE_H_

#include <string>

#include "common/units.h"

namespace wimpy::hw {

// CPU capacity in measured Dhrystone MIPS (DMIPS). CPU work demands across
// the library are expressed in millions of Dhrystone-equivalent
// instructions, so a demand of D executes in D / dmips seconds on an
// otherwise idle thread.
struct CpuSpec {
  int cores = 1;
  int threads_per_core = 1;
  double clock_hz = 1e9;           // nameplate, for capacity-planning math
  double dmips_per_thread = 1000;  // measured single-thread throughput
  // Fraction of an extra full thread contributed by each SMT sibling.
  // Total throughput = dmips_per_thread * cores *
  //                    (1 + smt_yield * (threads_per_core - 1)).
  double smt_yield = 0.0;

  int hardware_threads() const { return cores * threads_per_core; }
  double total_dmips() const {
    return dmips_per_thread * cores *
           (1.0 + smt_yield * (threads_per_core - 1));
  }
};

struct MemorySpec {
  Bytes total = 0;
  BytesPerSecond peak_bandwidth = 0;        // all threads driving
  BytesPerSecond per_thread_bandwidth = 0;  // single-thread achievable
};

struct StorageSpec {
  Bytes capacity = 0;
  BytesPerSecond write_direct = 0;    // dd oflag=dsync
  BytesPerSecond write_buffered = 0;  // dd through page cache
  BytesPerSecond read_direct = 0;     // dd after cache flush
  BytesPerSecond read_buffered = 0;   // dd from page cache
  Duration write_latency = 0;         // ioping
  Duration read_latency = 0;          // ioping
};

struct NicSpec {
  BytesPerSecond bandwidth = 0;
  // One-endpoint contribution to RTT/2; the measured ping between two nodes
  // is the sum of both endpoints' latencies (plus switch hops in net/).
  Duration endpoint_latency = 0;
};

// Whole-node power envelope plus the component weights that map component
// utilisations onto the idle..busy dynamic range:
//   P = idle + (busy - idle) * min(1, sum_i weight_i * util_i).
struct PowerSpec {
  Watts idle = 0;
  Watts busy = 0;
  // The Edison USB Ethernet adapter draws ~1 W regardless of load and is
  // *included* in idle/busy above (the paper includes it too). Stored
  // separately so the adapter-power ablation bench can subtract it.
  Watts constant_adapter = 0;
  double cpu_weight = 0.65;
  double memory_weight = 0.10;
  double storage_weight = 0.10;
  double nic_weight = 0.15;
};

struct HardwareProfile {
  std::string name;
  CpuSpec cpu;
  MemorySpec memory;
  StorageSpec storage;
  NicSpec nic;
  PowerSpec power;
  double unit_cost_usd = 0;  // per node, incl. amortised switch/cabling
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_PROFILE_H_
