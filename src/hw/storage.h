// Storage device model calibrated from the dd/ioping measurements
// (paper Table 5).
//
// The device is one shared channel: an operation's demand is expressed in
// *device-seconds* (bytes / mode-rate), so concurrent operations slow each
// other down proportionally regardless of mode. Small random accesses pay
// the measured per-request latency on top.
#ifndef WIMPY_HW_STORAGE_H_
#define WIMPY_HW_STORAGE_H_

#include "hw/profile.h"
#include "sim/fair_share.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace wimpy::hw {

class StorageDevice {
 public:
  StorageDevice(sim::Scheduler* sched, const StorageSpec& spec);

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  // Sequential transfers (dd semantics); `buffered` selects the page-cache
  // rate vs the direct/dsync rate.
  sim::Task<void> Read(Bytes bytes, bool buffered = true);
  sim::Task<void> Write(Bytes bytes, bool buffered = true);

  // Small random access (ioping semantics): measured latency plus the
  // transfer of `bytes` at the direct rate.
  sim::Task<void> RandomRead(Bytes bytes);
  sim::Task<void> RandomWrite(Bytes bytes);

  // Wall time of an uncontended sequential transfer.
  Duration IdealTime(Bytes bytes, bool write, bool buffered) const;

  double busy_fraction() const { return channel_.busy_fraction(); }
  sim::FairShareServer& channel() { return channel_; }
  double AverageBusyFraction() const {
    return channel_.AverageBusyFraction();
  }
  const StorageSpec& spec() const { return spec_; }

  // Bytes moved in either direction since construction (for reports).
  Bytes bytes_read() const { return bytes_read_; }
  Bytes bytes_written() const { return bytes_written_; }

 private:
  BytesPerSecond Rate(bool write, bool buffered) const;

  sim::Scheduler* sched_;
  StorageSpec spec_;
  // Demand unit: device-seconds; capacity is 1 device-second per second.
  sim::FairShareServer channel_;
  Bytes bytes_read_ = 0;
  Bytes bytes_written_ = 0;
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_STORAGE_H_
