#include "hw/storage.h"

#include <cassert>

namespace wimpy::hw {

StorageDevice::StorageDevice(sim::Scheduler* sched, const StorageSpec& spec)
    : sched_(sched), spec_(spec), channel_(sched, 1.0, 1.0, "disk") {
  assert(spec.write_direct > 0 && spec.write_buffered > 0);
  assert(spec.read_direct > 0 && spec.read_buffered > 0);
}

BytesPerSecond StorageDevice::Rate(bool write, bool buffered) const {
  if (write) return buffered ? spec_.write_buffered : spec_.write_direct;
  return buffered ? spec_.read_buffered : spec_.read_direct;
}

Duration StorageDevice::IdealTime(Bytes bytes, bool write,
                                  bool buffered) const {
  return static_cast<double>(bytes) / Rate(write, buffered);
}

sim::Task<void> StorageDevice::Read(Bytes bytes, bool buffered) {
  bytes_read_ += bytes;
  co_await channel_.Serve(IdealTime(bytes, /*write=*/false, buffered));
}

sim::Task<void> StorageDevice::Write(Bytes bytes, bool buffered) {
  bytes_written_ += bytes;
  co_await channel_.Serve(IdealTime(bytes, /*write=*/true, buffered));
}

sim::Task<void> StorageDevice::RandomRead(Bytes bytes) {
  bytes_read_ += bytes;
  const Duration demand =
      spec_.read_latency + IdealTime(bytes, /*write=*/false,
                                     /*buffered=*/false);
  co_await channel_.Serve(demand);
}

sim::Task<void> StorageDevice::RandomWrite(Bytes bytes) {
  bytes_written_ += bytes;
  const Duration demand =
      spec_.write_latency + IdealTime(bytes, /*write=*/true,
                                      /*buffered=*/false);
  co_await channel_.Serve(demand);
}

}  // namespace wimpy::hw
