#include "hw/server_node.h"

#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace wimpy::hw {

ServerNode::ServerNode(sim::Scheduler* sched, const HardwareProfile& profile,
                       int id)
    : sched_(sched),
      profile_(profile),
      id_(id),
      name_(profile.name + "-" + std::to_string(id)),
      cpu_(sched, profile.cpu),
      memory_(sched, profile.memory),
      storage_(sched, profile.storage),
      nic_(sched, profile.nic),
      power_(sched, profile.power, &cpu_.server(), &memory_.bus(),
             &storage_.channel(), &nic_.tx(), &nic_.rx()) {}

void ServerNode::PublishMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  registry->AddGauge(prefix + ".cpu_busy",
                     [this] { return cpu_.busy_fraction(); });
  registry->AddGauge(prefix + ".mem_used",
                     [this] { return memory_.used_fraction(); });
  registry->AddGauge(prefix + ".nic_busy",
                     [this] { return nic_.busy_fraction(); });
  registry->AddGauge(prefix + ".storage_busy",
                     [this] { return storage_.busy_fraction(); });
  registry->AddGauge(prefix + ".power_w",
                     [this] { return power_.current_watts(); });
  registry->AddCounter(prefix + ".joules",
                       [this] { return power_.CumulativeJoules(); });
}

void ServerNode::PublishTelemetry(obs::Telemetry* telemetry,
                                  const std::string& prefix) {
  telemetry->AddProbe(prefix + ".cpu_busy",
                      [this] { return cpu_.busy_fraction(); });
  telemetry->AddProbe(prefix + ".power_w",
                      [this] { return power_.current_watts(); });
}

void ServerNode::ObserveEnergy(obs::EnergyAttributor* attributor) {
  if (attributor == nullptr) return;
  power_.SetPowerListener(
      attributor->ObserveNode(sched_, id_, power_.current_watts()));
}

}  // namespace wimpy::hw
