#include "hw/server_node.h"

namespace wimpy::hw {

ServerNode::ServerNode(sim::Scheduler* sched, const HardwareProfile& profile,
                       int id)
    : sched_(sched),
      profile_(profile),
      id_(id),
      name_(profile.name + "-" + std::to_string(id)),
      cpu_(sched, profile.cpu),
      memory_(sched, profile.memory),
      storage_(sched, profile.storage),
      nic_(sched, profile.nic),
      power_(sched, profile.power, &cpu_.server(), &memory_.bus(),
             &storage_.channel(), &nic_.tx(), &nic_.rx()) {}

}  // namespace wimpy::hw
