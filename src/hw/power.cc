#include "hw/power.h"

#include <algorithm>

namespace wimpy::hw {

NodePowerModel::NodePowerModel(sim::Scheduler* sched, const PowerSpec& spec,
                               sim::FairShareServer* cpu,
                               sim::FairShareServer* memory_bus,
                               sim::FairShareServer* storage,
                               sim::FairShareServer* nic_tx,
                               sim::FairShareServer* nic_rx)
    : sched_(sched), spec_(spec), current_watts_(spec.idle) {
  watts_history_.Set(sched_->now(), current_watts_);
  cpu->SetUsageListener([this](double u) {
    cpu_util_ = u;
    Update();
  });
  memory_bus->SetUsageListener([this](double u) {
    memory_util_ = u;
    Update();
  });
  storage->SetUsageListener([this](double u) {
    storage_util_ = u;
    Update();
  });
  nic_tx->SetUsageListener([this](double u) {
    nic_tx_util_ = u;
    Update();
  });
  nic_rx->SetUsageListener([this](double u) {
    nic_rx_util_ = u;
    Update();
  });
}

Watts NodePowerModel::Compute() const {
  const double nic_util = std::max(nic_tx_util_, nic_rx_util_);
  const double mix = spec_.cpu_weight * cpu_util_ * cpu_dynamic_scale_ +
                     spec_.memory_weight * memory_util_ +
                     spec_.storage_weight * storage_util_ +
                     spec_.nic_weight * nic_util;
  return spec_.idle + (spec_.busy - spec_.idle) * std::min(1.0, mix);
}

void NodePowerModel::Update() {
  const Watts w = Compute();
  if (w == current_watts_) return;
  current_watts_ = w;
  watts_history_.Set(sched_->now(), w);
  if (power_listener_) power_listener_(sched_->now(), w);
}

void NodePowerModel::SetCpuDynamicScale(double scale) {
  cpu_dynamic_scale_ = scale;
  Update();
}

Joules NodePowerModel::CumulativeJoules() const {
  return watts_history_.IntegralUntil(sched_->now());
}

Watts NodePowerModel::AverageWatts() const {
  return watts_history_.AverageUntil(sched_->now());
}

}  // namespace wimpy::hw
