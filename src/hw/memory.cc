#include "hw/memory.h"

#include <cassert>

namespace wimpy::hw {

MemoryModel::MemoryModel(sim::Scheduler* sched, const MemorySpec& spec)
    : spec_(spec),
      bus_(sched, spec.peak_bandwidth, spec.per_thread_bandwidth, "membus"),
      capacity_mb_(sched, ToMb(spec.total)) {}

std::int64_t MemoryModel::ToMb(Bytes bytes) {
  // Round up so tiny reservations still consume a grant.
  return (bytes + MB(1) - 1) / MB(1);
}

sim::Task<void> MemoryModel::Transfer(Bytes bytes) {
  co_await bus_.Serve(static_cast<double>(bytes));
}

sim::Task<void> MemoryModel::Reserve(Bytes bytes) {
  const std::int64_t mb = ToMb(bytes);
  co_await capacity_mb_.Acquire(mb);
  used_ += mb * MB(1);
}

bool MemoryModel::TryReserve(Bytes bytes) {
  const std::int64_t mb = ToMb(bytes);
  if (!capacity_mb_.TryAcquire(mb)) return false;
  used_ += mb * MB(1);
  return true;
}

void MemoryModel::Free(Bytes bytes) {
  const std::int64_t mb = ToMb(bytes);
  assert(used_ >= mb * MB(1));
  used_ -= mb * MB(1);
  capacity_mb_.Release(mb);
}

}  // namespace wimpy::hw
