// Memory model: capacity grants plus a shared-bandwidth bus.
//
// Capacity is a semaphore in megabytes — long-lived reservations such as
// YARN containers, memcached slabs and OS baseline usage acquire grants.
// Bandwidth is a fair-share server calibrated to the sysbench saturation
// behaviour of Section 4.2 (per-thread rate below saturation, shared peak
// beyond it).
#ifndef WIMPY_HW_MEMORY_H_
#define WIMPY_HW_MEMORY_H_

#include "hw/profile.h"
#include "sim/fair_share.h"
#include "sim/semaphore.h"
#include "sim/task.h"

namespace wimpy::hw {

class MemoryModel {
 public:
  MemoryModel(sim::Scheduler* sched, const MemorySpec& spec);

  MemoryModel(const MemoryModel&) = delete;
  MemoryModel& operator=(const MemoryModel&) = delete;

  // Streams `bytes` through the memory bus (sysbench memory semantics).
  sim::Task<void> Transfer(Bytes bytes);

  // Capacity grants, in whole megabytes. Waits until available.
  sim::Task<void> Reserve(Bytes bytes);
  bool TryReserve(Bytes bytes);
  void Free(Bytes bytes);

  Bytes total() const { return spec_.total; }
  Bytes used() const { return used_; }
  double used_fraction() const {
    return spec_.total == 0
               ? 0.0
               : static_cast<double>(used_) / static_cast<double>(spec_.total);
  }
  double bus_busy_fraction() const { return bus_.busy_fraction(); }

  const MemorySpec& spec() const { return spec_; }
  sim::FairShareServer& bus() { return bus_; }

 private:
  static std::int64_t ToMb(Bytes bytes);

  MemorySpec spec_;
  sim::FairShareServer bus_;
  sim::Semaphore capacity_mb_;
  Bytes used_ = 0;
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_MEMORY_H_
