#include "hw/profiles.h"

#include <map>
#include <mutex>

namespace wimpy::hw {

HardwareProfile EdisonProfile() {
  HardwareProfile p;
  p.name = "edison";

  // §4.1: 632.3 DMIPS per thread; 2 Atom-class cores at 500 MHz, no SMT.
  p.cpu.cores = 2;
  p.cpu.threads_per_core = 1;
  p.cpu.clock_hz = 500e6;
  p.cpu.dmips_per_thread = 632.3;
  p.cpu.smt_yield = 0.0;

  // §4.2: saturates at 2.2 GB/s with 2 threads; 1 GB LPDDR3 at 800 MHz.
  p.memory.total = GB(1);
  p.memory.peak_bandwidth = GBps(2.2);
  p.memory.per_thread_bandwidth = GBps(1.1);

  // Table 5 (8 GB microSD).
  p.storage.capacity = GB(8);
  p.storage.write_direct = MBps(4.5);
  p.storage.write_buffered = MBps(9.3);
  p.storage.read_direct = MBps(19.5);
  p.storage.read_buffered = MBps(737);
  p.storage.write_latency = Milliseconds(18.0);
  p.storage.read_latency = Milliseconds(7.0);

  // §4.4: 100 Mbps USB adapter; Edison<->Edison ping 1.3 ms.
  p.nic.bandwidth = Mbps(100);
  p.nic.endpoint_latency = Milliseconds(0.65);

  // Table 3, with-adapter row. 35 nodes: 49.0 W idle, 58.8 W busy.
  p.power.idle = 1.40;
  p.power.busy = 1.68;
  p.power.constant_adapter = 1.0;

  // §6: $68 module+breakout, $15 adapter, $27 microSD kit, $10 amortised
  // switch/cables.
  p.unit_cost_usd = 120.0;
  return p;
}

HardwareProfile DellR620Profile() {
  HardwareProfile p;
  p.name = "dell-r620";

  // §4.1: 11383 DMIPS per thread (18x Edison); 6 cores x 2 SMT at 2 GHz.
  // The smt_yield of 0.85 reproduces the paper's measured ~100x whole-node
  // gap over one Edison (126351 / 1264.6 = 99.9).
  p.cpu.cores = 6;
  p.cpu.threads_per_core = 2;
  p.cpu.clock_hz = 2e9;
  p.cpu.dmips_per_thread = 11383.0;
  p.cpu.smt_yield = 0.85;

  // §4.2: 36 GB/s peak, saturating around 12 threads.
  p.memory.total = GB(16);
  p.memory.peak_bandwidth = GBps(36);
  p.memory.per_thread_bandwidth = GBps(3);

  // Table 5 (1 TB 15K SAS).
  p.storage.capacity = GB(1000);
  p.storage.write_direct = MBps(24.0);
  p.storage.write_buffered = MBps(83.2);
  p.storage.read_direct = MBps(86.1);
  p.storage.read_buffered = GBps(3.1);
  p.storage.write_latency = Milliseconds(5.04);
  p.storage.read_latency = Milliseconds(0.829);

  // §4.4: 1 Gbps integrated NIC; Dell<->Dell ping 0.24 ms.
  p.nic.bandwidth = Gbps(1);
  p.nic.endpoint_latency = Milliseconds(0.12);

  // Table 3: 52 W idle, 109 W busy.
  p.power.idle = 52.0;
  p.power.busy = 109.0;
  p.power.constant_adapter = 0.0;

  p.unit_cost_usd = 2500.0;
  return p;
}

HardwareProfile RaspberryPi2Profile() {
  HardwareProfile p;
  p.name = "raspberry-pi-2";

  // Table 1 row: 4 x 900 MHz, 1 GB. DMIPS figure is the commonly cited
  // ~1.57 DMIPS/MHz for Cortex-A7.
  p.cpu.cores = 4;
  p.cpu.threads_per_core = 1;
  p.cpu.clock_hz = 900e6;
  p.cpu.dmips_per_thread = 1413.0;
  p.cpu.smt_yield = 0.0;

  p.memory.total = GB(1);
  p.memory.peak_bandwidth = GBps(1.6);
  p.memory.per_thread_bandwidth = GBps(0.8);

  p.storage.capacity = GB(16);
  p.storage.write_direct = MBps(6.0);
  p.storage.write_buffered = MBps(12.0);
  p.storage.read_direct = MBps(21.0);
  p.storage.read_buffered = MBps(600);
  p.storage.write_latency = Milliseconds(15.0);
  p.storage.read_latency = Milliseconds(6.0);

  p.nic.bandwidth = Mbps(100);
  p.nic.endpoint_latency = Milliseconds(0.5);

  p.power.idle = 1.8;
  p.power.busy = 3.7;
  p.power.constant_adapter = 0.0;

  p.unit_cost_usd = 55.0;
  return p;
}

namespace {

// The registry is read concurrently by replication workers (see
// docs/parallel.md), so its one-time initialization must be race-free
// under concurrent *first* access from any entry point. The mutex and map
// share one never-destroyed instance whose built-in profiles are installed
// via std::call_once before any caller can observe the map; mutations and
// reads after that serialize on the mutex.
struct Registry {
  std::mutex mu;
  std::map<std::string, HardwareProfile> map;
};

Registry& GetRegistry() {
  static std::once_flag init;
  static Registry* registry = new Registry;
  std::call_once(init, [] {
    for (const auto& p :
         {EdisonProfile(), DellR620Profile(), RaspberryPi2Profile()}) {
      registry->map[p.name] = p;
    }
  });
  return *registry;
}

}  // namespace

void ProfileRegistry::Register(const HardwareProfile& profile) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.map[profile.name] = profile;
}

StatusOr<HardwareProfile> ProfileRegistry::Get(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.map.find(name);
  if (it == r.map.end()) {
    return Status::NotFound("no hardware profile named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ProfileRegistry::Names() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  for (const auto& [name, profile] : r.map) names.push_back(name);
  return names;
}

}  // namespace wimpy::hw
