#include "hw/dvfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wimpy::hw {

DvfsConfig DefaultDvfsConfig(GovernorPolicy policy) {
  DvfsConfig config;
  config.policy = policy;
  for (double f : {1.0, 0.85, 0.70, 0.55, 0.40}) {
    // V roughly tracks f down to a floor; dynamic power ~ V^2 f.
    const double scale = std::max(0.25, f * f * f);
    config.pstates.push_back(PState{f, scale});
  }
  return config;
}

DvfsGovernor::DvfsGovernor(ServerNode* node, DvfsConfig config)
    : node_(node), config_(std::move(config)) {
  assert(!config_.pstates.empty());
}

DvfsGovernor::~DvfsGovernor() { Stop(); }

void DvfsGovernor::Start() {
  if (running_) return;
  running_ = true;
  switch (config_.policy) {
    case GovernorPolicy::kPerformance:
      ApplyState(0);
      return;  // pinned; no sampling needed
    case GovernorPolicy::kPowersave:
      ApplyState(static_cast<int>(config_.pstates.size()) - 1);
      return;
    case GovernorPolicy::kOndemand:
      Sample();
      return;
  }
}

void DvfsGovernor::Stop() {
  running_ = false;
  if (pending_ != 0) {
    node_->scheduler().Cancel(pending_);
    pending_ = 0;
  }
}

void DvfsGovernor::ApplyState(int state) {
  state = std::clamp(state, 0,
                     static_cast<int>(config_.pstates.size()) - 1);
  if (applied_ && state == state_) return;
  if (applied_ && state != state_) ++transitions_;
  applied_ = true;
  state_ = state;
  const PState& p = config_.pstates[static_cast<std::size_t>(state)];
  const CpuSpec& spec = node_->cpu().spec();
  node_->cpu().server().SetRates(spec.total_dmips() * p.frequency_scale,
                                 spec.dmips_per_thread * p.frequency_scale);
  node_->power().SetCpuDynamicScale(p.dynamic_power_scale);
}

void DvfsGovernor::Sample() {
  pending_ = 0;
  if (!running_) return;
  const double util = node_->cpu().busy_fraction();
  if (util >= config_.up_threshold) {
    // Race to idle: jump straight to the top state.
    ApplyState(0);
  } else if (util < config_.down_threshold) {
    ApplyState(state_ + 1);
  }
  pending_ = node_->scheduler().ScheduleAfter(config_.sample_period,
                                              [this] { Sample(); });
}

}  // namespace wimpy::hw
