#include "hw/nic.h"

#include <algorithm>
#include <cassert>

namespace wimpy::hw {

NicModel::NicModel(sim::Scheduler* sched, const NicSpec& spec)
    : spec_(spec),
      tx_(sched, spec.bandwidth, spec.bandwidth, "nic-tx"),
      rx_(sched, spec.bandwidth, spec.bandwidth, "nic-rx") {
  assert(spec.bandwidth > 0);
}

double NicModel::busy_fraction() const {
  return std::max(tx_.busy_fraction(), rx_.busy_fraction());
}

}  // namespace wimpy::hw
