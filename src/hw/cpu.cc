#include "hw/cpu.h"

namespace wimpy::hw {

CpuModel::CpuModel(sim::Scheduler* sched, const CpuSpec& spec)
    : spec_(spec),
      server_(sched, spec.total_dmips(), spec.dmips_per_thread, "cpu") {}

sim::Task<void> CpuModel::Execute(double minstr) {
  co_await server_.Serve(minstr);
}

}  // namespace wimpy::hw
