// A complete simulated server: CPU + memory + storage + NIC + power meter.
//
// ServerNode is the unit the cluster layer composes. All workload layers
// consume resources exclusively through a node's component models, so the
// power meter sees every byte and instruction.
#ifndef WIMPY_HW_SERVER_NODE_H_
#define WIMPY_HW_SERVER_NODE_H_

#include <memory>
#include <string>

#include "hw/cpu.h"
#include "hw/memory.h"
#include "hw/nic.h"
#include "hw/power.h"
#include "hw/profile.h"
#include "hw/storage.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace wimpy::obs {
class EnergyAttributor;
class MetricsRegistry;
class Telemetry;
}  // namespace wimpy::obs

namespace wimpy::hw {

class ServerNode {
 public:
  ServerNode(sim::Scheduler* sched, const HardwareProfile& profile, int id);

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  const HardwareProfile& profile() const { return profile_; }
  sim::Scheduler& scheduler() { return *sched_; }

  CpuModel& cpu() { return cpu_; }
  MemoryModel& memory() { return memory_; }
  StorageDevice& storage() { return storage_; }
  NicModel& nic() { return nic_; }
  NodePowerModel& power() { return power_; }

  // Convenience: executes CPU work expressed in million instructions.
  sim::Task<void> Compute(double minstr) { return cpu_.Execute(minstr); }

  // Registers this node's utilisation/power probes under
  // `<prefix>.cpu_busy|mem_used|nic_busy|storage_busy|power_w|joules`
  // (see docs/observability.md). Probes borrow the node: don't sample
  // the registry after the node is destroyed.
  void PublishMetrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

  // Same probes into the online telemetry plane (obs/telemetry.h):
  // per-tick gauges `<prefix>.cpu_busy|power_w` feed rollup windows,
  // alert rules, and the NodeHealth power/utilisation terms. Same
  // borrow contract as PublishMetrics.
  void PublishTelemetry(obs::Telemetry* telemetry, const std::string& prefix);

  // Subscribes `attributor` to this node's power meter so span energy
  // attribution (obs/energy.h) sees every level change of P(t). Null is
  // a no-op; the attributor must outlive the node's power activity.
  void ObserveEnergy(obs::EnergyAttributor* attributor);

 private:
  sim::Scheduler* sched_;
  HardwareProfile profile_;
  int id_;
  std::string name_;
  CpuModel cpu_;
  MemoryModel memory_;
  StorageDevice storage_;
  NicModel nic_;
  NodePowerModel power_;
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_SERVER_NODE_H_
