// Node power model and energy metering.
//
// The paper measures whole-node power at two operating points (Table 3,
// idle vs busy) and reports cluster energy as the time integral of measured
// power. We reproduce that with a linear-in-utilisation model:
//
//   P(t) = idle + (busy - idle) * min(1, sum_i w_i * u_i(t))
//
// where u_i are the instantaneous busy fractions of CPU, memory bus,
// storage channel and NIC, and w_i are the profile's component weights
// (CPU-dominated, reflecting that high-end CPUs drive most of the dynamic
// range). Energy is integrated exactly over the piecewise-constant P(t).
#ifndef WIMPY_HW_POWER_H_
#define WIMPY_HW_POWER_H_

#include <functional>

#include "common/stats.h"
#include "hw/profile.h"
#include "sim/fair_share.h"
#include "sim/scheduler.h"

namespace wimpy::hw {

class NodePowerModel {
 public:
  // Subscribes to the four component servers' usage listeners. The power
  // model must outlive the servers' use of the callbacks (in practice both
  // live inside the same ServerNode).
  NodePowerModel(sim::Scheduler* sched, const PowerSpec& spec,
                 sim::FairShareServer* cpu, sim::FairShareServer* memory_bus,
                 sim::FairShareServer* storage, sim::FairShareServer* nic_tx,
                 sim::FairShareServer* nic_rx);

  NodePowerModel(const NodePowerModel&) = delete;
  NodePowerModel& operator=(const NodePowerModel&) = delete;

  Watts current_watts() const { return current_watts_; }
  Watts idle_watts() const { return spec_.idle; }
  Watts busy_watts() const { return spec_.busy; }

  // Energy consumed from construction until now.
  Joules CumulativeJoules() const;

  // Average power over the whole simulated history.
  Watts AverageWatts() const;

  // Scales the CPU's contribution to the dynamic power range (DVFS: lower
  // voltage/frequency shrinks CPU dynamic power; other components keep
  // their full range — the paper's proportionality critique).
  void SetCpuDynamicScale(double scale);
  double cpu_dynamic_scale() const { return cpu_dynamic_scale_; }

  // Observes every change of the piecewise-constant P(t): called with
  // (simulated time, new watts) exactly when the level changes, which is
  // all a consumer needs to integrate energy exactly between changes
  // (obs::EnergyAttributor). One listener; null detaches.
  void SetPowerListener(std::function<void(SimTime, Watts)> listener) {
    power_listener_ = std::move(listener);
  }

  const PowerSpec& spec() const { return spec_; }

 private:
  void Update();
  Watts Compute() const;

  sim::Scheduler* sched_;
  PowerSpec spec_;
  double cpu_util_ = 0;
  double memory_util_ = 0;
  double storage_util_ = 0;
  double nic_tx_util_ = 0;
  double nic_rx_util_ = 0;
  double cpu_dynamic_scale_ = 1.0;
  Watts current_watts_;
  TimeWeightedAverage watts_history_;
  std::function<void(SimTime, Watts)> power_listener_;
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_POWER_H_
