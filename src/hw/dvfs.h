// Dynamic voltage/frequency scaling (DVFS) governor.
//
// The paper's introduction argues that DVFS-based energy proportionality
// underdelivers: CPU dynamic power shrinks with V²f, but memory, disk,
// motherboard (and here, the USB Ethernet adapter) keep drawing constant
// power, so whole-node savings are modest (§1 cites ≤30% as the best
// case). This module makes that claim testable: attach a governor to a
// node, run a workload at partial utilisation, and compare joules against
// the fixed-frequency baseline (bench_ablations).
//
// Model: a P-state scales CPU capacity (and per-thread speed) by
// `frequency_scale` and the CPU's share of the node's dynamic power range
// by `dynamic_power_scale` (≈ scale³ for combined V²f scaling, clamped by
// practical voltage floors).
#ifndef WIMPY_HW_DVFS_H_
#define WIMPY_HW_DVFS_H_

#include <vector>

#include "hw/server_node.h"
#include "sim/scheduler.h"

namespace wimpy::hw {

struct PState {
  double frequency_scale = 1.0;     // of nominal capacity
  double dynamic_power_scale = 1.0; // of the CPU dynamic power range
};

// The classic Linux trio.
enum class GovernorPolicy {
  kPerformance,  // pin the highest P-state
  kPowersave,    // pin the lowest P-state
  kOndemand,     // sample utilisation; jump up fast, step down slowly
};

struct DvfsConfig {
  std::vector<PState> pstates;  // ordered fastest -> slowest
  GovernorPolicy policy = GovernorPolicy::kOndemand;
  Duration sample_period = Milliseconds(100);
  double up_threshold = 0.80;    // utilisation that forces the top state
  double down_threshold = 0.30;  // below this, step one state slower
};

// A typical 5-state ladder: 100/85/70/55/40 % frequency with cubic power
// scaling floored at 25%.
DvfsConfig DefaultDvfsConfig(GovernorPolicy policy);

class DvfsGovernor {
 public:
  // Attaches to a node; Start() begins sampling. The governor adjusts the
  // node's CPU rates and its power model's dynamic-range scale.
  DvfsGovernor(ServerNode* node, DvfsConfig config);
  ~DvfsGovernor();

  DvfsGovernor(const DvfsGovernor&) = delete;
  DvfsGovernor& operator=(const DvfsGovernor&) = delete;

  void Start();
  void Stop();

  int current_pstate() const { return state_; }
  std::int64_t transitions() const { return transitions_; }

 private:
  void Sample();
  void ApplyState(int state);

  ServerNode* node_;
  DvfsConfig config_;
  int state_ = 0;
  bool applied_ = false;
  bool running_ = false;
  sim::EventId pending_ = 0;
  std::int64_t transitions_ = 0;
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_DVFS_H_
