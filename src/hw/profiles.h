// Built-in calibrated hardware profiles and the extensible registry.
#ifndef WIMPY_HW_PROFILES_H_
#define WIMPY_HW_PROFILES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "hw/profile.h"

namespace wimpy::hw {

// Intel Edison compute module + microSD board + 100 Mbps USB Ethernet
// adapter, as deployed in the paper's 35-node cluster.
HardwareProfile EdisonProfile();

// Dell PowerEdge R620: Xeon E5-2620 (6 cores, HT, 2 GHz), 16 GB, 1 GbE,
// 1 TB 15K SAS.
HardwareProfile DellR620Profile();

// Raspberry Pi 2 Model B, the mobile-class reference from the related-work
// table; used by the examples to show how to evaluate new hardware.
HardwareProfile RaspberryPi2Profile();

// Global name -> profile registry. The built-ins above are pre-registered
// under "edison", "dell-r620" and "raspberry-pi-2".
class ProfileRegistry {
 public:
  // Registers or replaces a profile under profile.name.
  static void Register(const HardwareProfile& profile);

  static StatusOr<HardwareProfile> Get(const std::string& name);

  static std::vector<std::string> Names();
};

}  // namespace wimpy::hw

#endif  // WIMPY_HW_PROFILES_H_
