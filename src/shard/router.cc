#include "shard/router.h"

#include <algorithm>
#include <cassert>

namespace wimpy::shard {

Router::Router(const RingConfig& config, const std::vector<int>& node_ids)
    : ring_(config) {
  for (int id : node_ids) ring_.AddNode(id);
  const std::size_t shards = static_cast<std::size_t>(ring_.shards());
  serving_.resize(shards);
  migrating_.assign(shards, 0);
  dirty_.assign(shards, 0);
  for (int s = 0; s < ring_.shards(); ++s) SnapshotServing(s);
}

void Router::SnapshotServing(int shard) {
  ServingState& state = serving_[static_cast<std::size_t>(shard)];
  const std::vector<int>& pref = ring_.Preference(shard);
  state.length = std::min(ring_.chain_length(), kMaxChain);
  for (int i = 0; i < state.length; ++i) state.chain[i] = pref[i];
}

std::vector<Router::ShardMove> Router::PlanMoves() const {
  // A shard needs migration when its target chain contains a node its
  // serving chain does not: that node must receive the shard's data from
  // the serving primary before the cutover. Shards whose chain merely
  // reorders (primary demoted to replica, etc.) already hold the data and
  // commit without movement.
  std::vector<ShardMove> moves;
  for (int s = 0; s < ring_.shards(); ++s) {
    const Chain old_chain = ServingChain(s);
    const std::vector<int>& pref = ring_.Preference(s);
    const int new_len = std::min(ring_.chain_length(), kMaxChain);
    for (int i = 0; i < new_len; ++i) {
      const int member = pref[i];
      const bool held = std::find(old_chain.begin(), old_chain.end(),
                                  member) != old_chain.end();
      if (!held) {
        moves.push_back(ShardMove{s, old_chain.length > 0
                                         ? old_chain.nodes[0]
                                         : -1,
                                  member});
      }
    }
  }
  return moves;
}

void Router::MarkMigrating(const std::vector<ShardMove>& moves) {
  for (const ShardMove& move : moves) {
    std::uint8_t& flag = migrating_[static_cast<std::size_t>(move.shard)];
    if (flag == 0) {
      flag = 1;
      ++pending_;
    }
  }
  // Shards whose chain changed without data movement cut over right away.
  for (int s = 0; s < ring_.shards(); ++s) {
    if (migrating_[static_cast<std::size_t>(s)]) continue;
    SnapshotServing(s);
  }
}

std::vector<Router::ShardMove> Router::Join(int node_id) {
  assert(pending_ == 0 && "membership change while migration in flight");
  ring_.AddNode(node_id);
  std::vector<ShardMove> moves = PlanMoves();
  MarkMigrating(moves);
  return moves;
}

std::vector<Router::ShardMove> Router::Leave(int node_id) {
  assert(pending_ == 0 && "membership change while migration in flight");
  ring_.RemoveNode(node_id);
  std::vector<ShardMove> moves = PlanMoves();
  MarkMigrating(moves);
  return moves;
}

void Router::Commit(int shard) {
  std::uint8_t& flag = migrating_[static_cast<std::size_t>(shard)];
  assert(flag != 0 && "commit of a shard that is not migrating");
  flag = 0;
  --pending_;
  ++commits_;
  dirty_[static_cast<std::size_t>(shard)] = 0;
  SnapshotServing(shard);
}

std::int64_t Router::TakeDirty(int shard) {
  std::int64_t& counter = dirty_[static_cast<std::size_t>(shard)];
  const std::int64_t value = counter;
  counter = 0;
  return value;
}

}  // namespace wimpy::shard
