// Live shard migration: background data movement for a membership change.
//
// Given a router's migration plan, the migrator streams each moving
// shard's resident bytes from the serving primary to every incoming owner
// over the fabric in fixed-size batches (paying CPU on both ends and a
// buffered log append at the sink), then runs catch-up passes sized by
// the writes that arrived while the bulk copy ran, and finally commits
// the cutover on the router — all while the request path keeps routing to
// the old owners. Concurrency across shards is bounded by a semaphore so
// rebalancing stays off the critical path instead of flooding the
// oversubscribed uplinks (the Qureshi & Koubaa failure mode).
//
// Tracing: when handed a tracer, the whole rebalance forms one causal
// tree — a "migration" root span with per-shard "shard_move" children on
// their own tracks (the exporter renders cross-track flow arrows), each
// wrapping its "migrate_batch"/"catchup" fabric transfers and a "cutover"
// instant — so migration traffic decomposes in tools/trace_analyze.py
// with no profiler changes.
#ifndef WIMPY_SHARD_MIGRATOR_H_
#define WIMPY_SHARD_MIGRATOR_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "obs/context.h"
#include "shard/router.h"
#include "sim/process.h"
#include "sim/semaphore.h"
#include "sim/task.h"

namespace wimpy::obs {
class Tracer;
}  // namespace wimpy::obs

namespace wimpy::shard {

struct MigratorConfig {
  // Resident data per shard (streamed in full to each incoming owner).
  Bytes shard_bytes = 4 * 1024 * 1024;
  // Fabric transfer granularity for the bulk copy.
  Bytes batch_bytes = 256 * 1024;
  // Catch-up bytes shipped per dirty write recorded during the copy.
  Bytes write_delta_bytes = 1024;
  // Catch-up rounds before forcing the cutover (each round streams the
  // deltas the previous one admitted; convergence is geometric as long
  // as the stream outruns the write rate).
  int max_catchup_rounds = 4;
  // Shards migrated concurrently (the off-critical-path knob).
  int concurrent_shards = 2;
  // Copy CPU on source and sink, million instructions per MiB streamed.
  double copy_cpu_minstr_per_mb = 2.0;
};

struct MigrationStats {
  int shards_moved = 0;       // shards committed by this run
  int transfers = 0;          // fabric transfers issued (bulk + catch-up)
  std::int64_t bulk_bytes = 0;
  std::int64_t catchup_bytes = 0;
  int catchup_rounds = 0;
  SimTime started = 0;
  SimTime finished = 0;
  bool done = false;
  Duration duration() const { return finished - started; }
};

class Migrator {
 public:
  // Borrows everything; `cluster` resolves node ids to hardware for the
  // copy CPU/storage costs and supplies the fabric.
  Migrator(cluster::Cluster* cluster, Router* router,
           const MigratorConfig& config);

  Migrator(const Migrator&) = delete;
  Migrator& operator=(const Migrator&) = delete;

  // Drives `moves` to completion and fills `*stats` (which must outlive
  // the process). Spawn with sim::Spawn; completion is observable via
  // stats->done or ProcessRef::Join. `tracer` may be null.
  sim::Process Run(std::vector<Router::ShardMove> moves, obs::Tracer* tracer,
                   MigrationStats* stats);

  const MigratorConfig& config() const { return config_; }

 private:
  // All moves of one shard: the shard streams to each incoming owner,
  // catches up, then commits once.
  struct ShardPlan {
    int shard = -1;
    int from = -1;
    std::vector<int> targets;
  };

  sim::Task<void> StreamBytes(int from, int to, Bytes bytes,
                              const obs::TraceHandle& span, const char* name,
                              MigrationStats* stats);
  sim::Process MoveShard(ShardPlan plan, obs::TraceHandle parent,
                         MigrationStats* stats);

  cluster::Cluster* cluster_;
  Router* router_;
  MigratorConfig config_;
  sim::Semaphore slots_;
};

}  // namespace wimpy::shard

#endif  // WIMPY_SHARD_MIGRATOR_H_
