#include "shard/ring.h"

#include <algorithm>
#include <cassert>

namespace wimpy::shard {

namespace {

// splitmix64 finalizer: well-mixed, dependency-free, stable across
// platforms (the same mixer the Rng seeder uses).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t PointHash(std::uint64_t salt, int node, int replica) {
  return Mix64(salt ^ Mix64(static_cast<std::uint64_t>(node) *
                                0x100000001b3ULL +
                            static_cast<std::uint64_t>(replica)));
}

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

Ring::Ring(const RingConfig& config) : config_(config) {
  assert(config_.vnodes_per_node > 0);
  assert(IsPowerOfTwo(config_.shards));
  assert(config_.replication >= 1);
  int log2 = 0;
  while ((1 << log2) < config_.shards) ++log2;
  shift_ = 64 - log2;
  prefs_.assign(static_cast<std::size_t>(config_.shards), {});
}

bool Ring::has_node(int node_id) const {
  return std::binary_search(members_.begin(), members_.end(), node_id);
}

void Ring::AddNode(int node_id) {
  assert(node_id >= 0);
  assert(!has_node(node_id) && "node already on the ring");
  members_.insert(
      std::lower_bound(members_.begin(), members_.end(), node_id), node_id);
  Rebuild();
}

void Ring::RemoveNode(int node_id) {
  assert(has_node(node_id) && "node not on the ring");
  members_.erase(
      std::lower_bound(members_.begin(), members_.end(), node_id));
  Rebuild();
}

int Ring::chain_length() const {
  return std::min(config_.replication, node_count());
}

void Ring::Rebuild() {
  points_.clear();
  points_.reserve(members_.size() *
                  static_cast<std::size_t>(config_.vnodes_per_node));
  for (int node : members_) {
    for (int r = 0; r < config_.vnodes_per_node; ++r) {
      points_.emplace_back(PointHash(config_.salt, node, r), node);
    }
  }
  // Sort by (hash, node): the node tiebreak makes the map independent of
  // insertion order even on (astronomically unlikely) hash collisions.
  std::sort(points_.begin(), points_.end());

  const int max_id = members_.empty() ? 0 : members_.back() + 1;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(max_id), 0);
  for (int s = 0; s < config_.shards; ++s) {
    std::vector<int>& pref = prefs_[static_cast<std::size_t>(s)];
    pref.clear();
    if (members_.empty()) continue;
    pref.reserve(members_.size());
    std::fill(seen.begin(), seen.end(), 0);
    const std::uint64_t position = static_cast<std::uint64_t>(s) << shift_;
    std::size_t idx =
        static_cast<std::size_t>(
            std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(position, -1)) -
            points_.begin());
    for (std::size_t walked = 0;
         walked < points_.size() && pref.size() < members_.size();
         ++walked, ++idx) {
      if (idx == points_.size()) idx = 0;  // wrap
      const int node = points_[idx].second;
      if (seen[static_cast<std::size_t>(node)]) continue;
      seen[static_cast<std::size_t>(node)] = 1;
      pref.push_back(node);
    }
  }
}

std::vector<int> Ring::MovedPrimaries(const Ring& before, const Ring& after) {
  assert(before.shards() == after.shards());
  std::vector<int> moved;
  for (int s = 0; s < before.shards(); ++s) {
    if (before.PrimaryOf(s) != after.PrimaryOf(s)) moved.push_back(s);
  }
  return moved;
}

}  // namespace wimpy::shard
