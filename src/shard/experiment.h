// Sharded KV/web-tier scale-out experiment (docs/sharding.md).
//
// Where kv::KvExperiment reproduces FAWN on one rack behind one flat
// fabric, this experiment is the ROADMAP's million-user scale-out rig: a
// store tier spread over a rack → aggregation → core hierarchy
// (net/topology.h) with configurable oversubscription, fronted by the
// consistent-hash shard router, with optional mid-run membership churn
// (a node joining or gracefully leaving) driving live migration while
// the open-loop load keeps flowing. The report carries the throughput /
// p99 / queries-per-joule triple plus the rebalance cost and the
// link-utilisation evidence for the cross-rack bandwidth cliffs the flat
// fabric hides.
#ifndef WIMPY_SHARD_EXPERIMENT_H_
#define WIMPY_SHARD_EXPERIMENT_H_

#include <cstdint>

#include "common/units.h"
#include "hw/profile.h"
#include "kv/store.h"
#include "load/openloop.h"
#include "shard/migrator.h"
#include "shard/ring.h"

namespace wimpy::obs {
class EnergyAttributor;
class MetricsRegistry;
class Telemetry;
class Tracer;
}  // namespace wimpy::obs

namespace wimpy::shard {

// Mid-run membership scenario. kJoin brings the provisioned spare node
// into the ring at the window midpoint; kLeave gracefully drains the
// highest-numbered ring member (it serves until every shard hands off).
enum class Churn { kNone, kJoin, kLeave };

struct ShardExperimentConfig {
  hw::HardwareProfile node_profile;  // defaulted to Edison in the ctor
  int racks = 3;
  int nodes_per_rack = 4;
  // Provisioned-but-idle nodes outside the ring (round-robin across
  // racks, after the members); the join scenario's target.
  int spare_nodes = 1;
  int client_machines = 4;  // Dell-class generators in a core-attached room
  // Topology knobs (net/topology.h): rack uplink =
  // nodes_per_rack * NIC / rack_oversubscription, and so on up.
  double rack_oversubscription = 4.0;
  double core_oversubscription = 1.0;
  int racks_per_pod = 2;
  RingConfig ring;  // shards, vnodes, chain replication factor
  MigratorConfig migration;
  kv::KvConfig store;
  double get_fraction = 0.90;
  Churn churn = Churn::kNone;
  std::uint64_t seed = 20260808;
  // Observability sinks (borrowed, may be null; see kv/experiment.h for
  // the sampling contract).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::EnergyAttributor* energy = nullptr;
  int trace_sample_every = 64;
  // Online telemetry plane (obs/telemetry.h; null = zero overhead).
  // Beyond the kv wiring (SLO stream, queue probe, burn-rate/shed/p99
  // rules, NodeHealth), a Measure adds migration-lag probes
  // (`migration.inflight|shards_moved|catchup_bytes` over the live
  // MigrationStats — the NodeHealth lag term) and a
  // `net.max_uplink_busy` probe with a hottest-uplink saturation rule.
  // One Telemetry per Measure call; borrowed, must outlive it.
  obs::Telemetry* telemetry = nullptr;
  // Open-loop load shape (docs/openloop.md): arrival model/burstiness,
  // client-side admission gate, SLO bound. `openloop.arrival.rate` is
  // overridden by Measure's target_qps. The default (Poisson, unbounded,
  // no SLO) reproduces the legacy generator draw-for-draw, so golden
  // traces and BENCH_shard.json stay valid.
  load::OpenLoopConfig openloop;

  ShardExperimentConfig();
  int ring_nodes() const { return racks * nodes_per_rack; }
};

struct ShardReport {
  double target_qps = 0;
  // Queries that *arrived* in the window (all eventually complete in an
  // open-loop sim, so this tracks the offered load).
  double achieved_qps = 0;
  // Queries that arrived AND completed inside the window — the number
  // that actually bends when oversubscribed uplinks saturate and the
  // backlog grows.
  double goodput_qps = 0;
  std::int64_t done = 0;
  std::int64_t failed = 0;  // routing found no healthy owner
  double error_rate = 0;
  Duration mean_latency = 0;
  Duration p99_latency = 0;
  Watts store_power = 0;  // ring members + spares (the provisioned tier)
  double queries_per_joule = 0;
  // Chain-replication hops that crossed a rack boundary / all such hops.
  double cross_rack_replica_fraction = 0;
  // Time-averaged busy fraction of the hottest rack uplink and pod->core
  // link — where the oversubscription cliff shows up.
  double max_rack_uplink_busy = 0;
  double max_core_link_busy = 0;
  MigrationStats migration;  // zeroed when churn == kNone
  std::uint64_t executed_events = 0;
  // Coordinated-omission-free measurement (docs/openloop.md): latency from
  // the intended arrival rather than dispatch, client-side sheds, and
  // SLO-conditioned efficiency. Zero when config.openloop leaves the
  // defaults (no gate, no SLO).
  Duration p99_intended_latency = 0;
  std::int64_t shed = 0;
  double slo_good_fraction = 0;      // under-SLO completions / offered
  double slo_goodput_per_joule = 0;  // under-SLO completions / window ∫P dt
};

class ShardExperiment {
 public:
  explicit ShardExperiment(ShardExperimentConfig config)
      : config_(std::move(config)) {}

  // Open-loop Poisson load at `target_qps` for `measure` seconds after a
  // 2 s warm-up; churn (if any) fires at the window midpoint.
  ShardReport Measure(double target_qps, Duration measure = Seconds(12));

  const ShardExperimentConfig& config() const { return config_; }

 private:
  ShardExperimentConfig config_;
};

}  // namespace wimpy::shard

#endif  // WIMPY_SHARD_EXPERIMENT_H_
