#include "shard/experiment.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "hw/profiles.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "obs/energy.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "shard/router.h"
#include "sim/process.h"

namespace wimpy::shard {

namespace {

net::HierarchicalTopologyConfig TopologyConfig(
    const ShardExperimentConfig& config) {
  net::HierarchicalTopologyConfig topo;
  topo.racks = config.racks;
  topo.racks_per_pod = config.racks_per_pod;
  topo.nodes_per_rack = config.nodes_per_rack;
  topo.node_bandwidth = config.node_profile.nic.bandwidth;
  topo.rack_oversubscription = config.rack_oversubscription;
  topo.core_oversubscription = config.core_oversubscription;
  return topo;
}

struct ShardTestbed {
  explicit ShardTestbed(const ShardExperimentConfig& config)
      : fabric(&sched),
        topo(&fabric, TopologyConfig(config)),
        clstr(&sched, &fabric),
        rng(config.seed) {
    // Clients live in their own room hanging off the core switch, like
    // the kv testbed's client room — only now the path to any store
    // crosses core → agg → rack, so client traffic and replication
    // traffic contend for the same oversubscribed uplinks.
    topo.AttachToCore("client-room", Gbps(10), Milliseconds(0.02));

    // Ring members rack by rack (store index == fabric node id because
    // stores are created first), then the provisioned spares round-robin
    // across racks, then the load generators.
    std::vector<hw::ServerNode*> store_nodes;
    for (int r = 0; r < config.racks; ++r) {
      auto rack_nodes = clstr.AddNodes(config.node_profile,
                                       config.nodes_per_rack, "shard-store",
                                       topo.RackGroup(r));
      store_nodes.insert(store_nodes.end(), rack_nodes.begin(),
                         rack_nodes.end());
    }
    for (int s = 0; s < config.spare_nodes; ++s) {
      auto spare = clstr.AddNodes(config.node_profile, 1, "shard-store",
                                  topo.RackGroup(s % config.racks));
      store_nodes.push_back(spare[0]);
    }
    auto client_nodes = clstr.AddNodes(hw::DellR620Profile(),
                                       config.client_machines, "client",
                                       "client-room");

    for (auto* node : store_nodes) {
      stores.push_back(std::make_unique<kv::KvNode>(node, &fabric,
                                                    config.store,
                                                    rng.Next()));
    }
    for (auto* node : client_nodes) client_ids.push_back(node->id());

    std::vector<int> members;
    for (int i = 0; i < config.ring_nodes(); ++i) members.push_back(i);
    router = std::make_unique<Router>(config.ring, members);
    migrator = std::make_unique<Migrator>(&clstr, router.get(),
                                          config.migration);

    tracer = config.tracer;
    metrics = config.metrics;
    energy = config.energy;
    trace_sample_every = std::max(1, config.trace_sample_every);
    if (energy != nullptr) {
      // The whole provisioned store tier is observed (members + spares):
      // an idle spare still burns idle watts, which is exactly the
      // provisioning cost the scale-out bench wants visible.
      for (auto& store : stores) store->node().ObserveEnergy(energy);
    }
    if (metrics != nullptr) {
      for (std::size_t i = 0; i < stores.size(); ++i) {
        stores[i]->node().PublishMetrics(metrics,
                                         "shard" + std::to_string(i));
      }
      fabric.PublishMetrics(metrics, "net");
    }
    telemetry = config.telemetry;
    if (telemetry != nullptr) {
      for (std::size_t i = 0; i < stores.size(); ++i) {
        stores[i]->node().PublishTelemetry(telemetry,
                                           "shard" + std::to_string(i));
      }
      obs::NodeHealthConfig health_config;
      health_config.power_cap_w = config.node_profile.power.busy +
                                  config.node_profile.power.constant_adapter;
      // The lag input is a 0/1 in-migration flag: an active churn
      // handoff costs the full lag weight.
      health_config.lag_cap = 1.0;
      health = std::make_unique<obs::NodeHealth>(telemetry, health_config);
      for (std::size_t i = 0; i < stores.size(); ++i) {
        const std::string node = "shard" + std::to_string(i);
        obs::NodeHealthInputs inputs;
        inputs.utilization = node + ".cpu_busy";
        inputs.power = node + ".power_w";
        inputs.queue_depth = "gate.queue_depth";
        inputs.shed = "slo.shed";
        // Churn hurts every member's score while handoffs are in
        // flight: catch-up lag is a cluster-wide signal here.
        inputs.lag = "migration.inflight";
        health->AddNode(static_cast<int>(i), std::move(inputs));
      }
      if (metrics != nullptr) health->PublishMetrics(metrics, "health");
      if (tracer != nullptr) health->EmitTraceInstants(tracer);
    }
  }

  int StoreNodeId(int store_index) const {
    return stores[static_cast<std::size_t>(store_index)]->node().id();
  }

  // 1-in-N query trace sampling (same contract as the kv/web testbeds:
  // the counter lives outside the random streams, so tracing on/off
  // never changes simulated behaviour).
  obs::TraceHandle StartTrace() {
    const std::uint64_t query = query_counter_++;
    if (tracer == nullptr ||
        query % static_cast<std::uint64_t>(trace_sample_every) != 0) {
      return {};
    }
    obs::TraceHandle handle;
    handle.tracer = tracer;
    handle.sched = &sched;
    handle.track = static_cast<std::int32_t>(query & 0x7fffffff);
    handle.ctx.trace_id = tracer->NewTraceId();
    return handle;
  }

  sim::Scheduler sched;
  net::Fabric fabric;
  net::HierarchicalTopology topo;
  cluster::Cluster clstr;
  Rng rng;
  std::vector<std::unique_ptr<kv::KvNode>> stores;
  std::vector<int> client_ids;
  std::unique_ptr<Router> router;
  std::unique_ptr<Migrator> migrator;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::EnergyAttributor* energy = nullptr;
  obs::Telemetry* telemetry = nullptr;
  std::unique_ptr<obs::NodeHealth> health;
  int trace_sample_every = 64;
  std::uint64_t query_counter_ = 0;
};

struct ShardWindow {
  SimTime start = 0;
  SimTime end = 0;
  std::int64_t done = 0;
  std::int64_t completed_in_window = 0;
  std::int64_t failed = 0;
  std::int64_t replica_hops = 0;
  std::int64_t cross_rack_replica_hops = 0;
  OnlineStats latency;
  PercentileTracker percentiles;
};

// First healthy member of the shard's serving chain; when the whole
// chain is down, fall back to the target ring's preference order (the
// same walk the kv experiment does). -1 when every store is down.
int RouteToHealthy(ShardTestbed& tb, int shard) {
  const Router::Chain chain = tb.router->ServingChain(shard);
  for (int member : chain) {
    if (!tb.stores[static_cast<std::size_t>(member)]->failed()) {
      return member;
    }
  }
  for (int member : tb.router->Preference(shard)) {
    if (!tb.stores[static_cast<std::size_t>(member)]->failed()) {
      return member;
    }
  }
  return -1;
}

using ShardGate = load::AdmissionGate<Rng>;

sim::Process OneQuery(ShardTestbed& tb, const ShardExperimentConfig& config,
                      ShardWindow& window, load::OpenLoopRecorder& recorder,
                      ShardGate& gate, SimTime intended, Rng rng) {
  const SimTime started = tb.sched.now();
  const int shard = tb.router->ShardOf(rng.Next());
  const int serving = RouteToHealthy(tb, shard);
  // Root span of the query's trace tree (arg = shard); the "shard_hop"
  // child brackets the whole routed interaction with the owner chain, so
  // trace_analyze decomposes time spent inside each shard — and, via the
  // nested req/reply/repl net hops, across racks — without changes.
  obs::CausalSpan query_span(tb.StartTrace(), "query",
                             obs::Category::kRequest, shard);
  if (serving < 0) query_span.Instant("route_failed");
  const int client = tb.client_ids[rng.NextBelow(tb.client_ids.size())];
  const Bytes value = DrawnBytes(
      rng.LogNormalMeanStd(
          static_cast<double>(config.store.value_size_mean),
          static_cast<double>(config.store.value_size_stddev)),
      64);
  const bool ok = serving >= 0;
  if (ok) {
    kv::KvNode* store = tb.stores[static_cast<std::size_t>(serving)].get();
    obs::CausalSpan hop(query_span.handle(), "shard_hop",
                        obs::Category::kNet, store->node().id());
    if (rng.Bernoulli(config.get_fraction)) {
      obs::CausalSpan op(hop.handle(), "get", obs::Category::kRequest,
                         store->node().id());
      obs::ScopedResidency res(tb.energy, store->node().id(), op.handle(),
                               "get");
      co_await store->Get(client, value, op.handle());
    } else {
      // Writes to a migrating shard are counted at routing time so the
      // migrator can size its catch-up passes.
      tb.router->OnWrite(shard);
      {
        obs::CausalSpan op(hop.handle(), "put", obs::Category::kRequest,
                           store->node().id());
        obs::ScopedResidency res(tb.energy, store->node().id(),
                                 op.handle(), "put");
        co_await store->Put(client, value, op.handle());
      }
      // Chain replication along the healthy remainder of the serving
      // chain, counting rack-boundary crossings for the report.
      const Router::Chain chain = tb.router->ServingChain(shard);
      int upstream = serving;
      for (int member : chain) {
        if (member == serving) continue;
        kv::KvNode* replica =
            tb.stores[static_cast<std::size_t>(member)].get();
        if (replica->failed()) continue;
        ++window.replica_hops;
        if (tb.fabric.GroupIdOf(tb.StoreNodeId(upstream)) !=
            tb.fabric.GroupIdOf(replica->node().id())) {
          ++window.cross_rack_replica_hops;
        }
        {
          obs::CausalSpan op(hop.handle(), "replicate",
                             obs::Category::kRequest, replica->node().id());
          obs::ScopedResidency res(tb.energy, replica->node().id(),
                                   op.handle(), "replicate");
          co_await replica->ApplyReplicatedWrite(tb.StoreNodeId(upstream),
                                                 value, op.handle());
        }
        upstream = member;
      }
    }
  }
  const SimTime finished = tb.sched.now();
  if (started >= window.start && started < window.end) {
    if (ok) {
      ++window.done;
      // Goodput: the backlog from saturated uplinks pushes completions
      // past the window edge, so this is the counter that bends.
      if (finished < window.end) ++window.completed_in_window;
      window.latency.Add(finished - started);
      window.percentiles.Add(finished - started);
    } else {
      ++window.failed;
    }
  }
  // Honest accounting: windowed by intended arrival, latency from it too.
  recorder.OnComplete(intended, started, finished, ok);
  // A completion frees a dispatch slot; the queue head (if any) inherits
  // it and still measures from its own intended arrival.
  if (auto next = gate.OnComplete()) {
    sim::Spawn(tb.sched, OneQuery(tb, config, window, recorder, gate,
                                  next->intended, std::move(next->payload)));
  }
}

sim::Process Arrivals(ShardTestbed& tb, const ShardExperimentConfig& config,
                      ShardWindow& window, load::OpenLoopRecorder& recorder,
                      ShardGate& gate, double qps, Rng rng) {
  load::ArrivalConfig shape = config.openloop.arrival;
  shape.rate = qps;
  load::ArrivalProcess arrivals(shape);
  while (tb.sched.now() < window.end) {
    co_await sim::Delay(tb.sched, arrivals.NextGap(rng));
    if (tb.sched.now() >= window.end) break;
    const SimTime intended = tb.sched.now();
    Rng child = rng.Fork();
    switch (gate.Admit()) {
      case load::Admission::kDispatch:
        sim::Spawn(tb.sched, OneQuery(tb, config, window, recorder, gate,
                                      intended, std::move(child)));
        break;
      case load::Admission::kQueue:
        gate.Enqueue(intended, std::move(child));
        break;
      case load::Admission::kShed:
        recorder.OnShed(intended);
        break;
    }
  }
}

}  // namespace

ShardExperimentConfig::ShardExperimentConfig()
    : node_profile(hw::EdisonProfile()) {}

ShardReport ShardExperiment::Measure(double target_qps, Duration measure) {
  ShardTestbed tb(config_);
  ShardWindow window;
  window.start = Seconds(2);
  window.end = window.start + measure;

  MigrationStats migration;
  if (config_.churn != Churn::kNone) {
    tb.sched.ScheduleAt(window.start + measure / 2, [this, &tb,
                                                     &migration] {
      std::vector<Router::ShardMove> moves;
      if (config_.churn == Churn::kJoin) {
        // The first provisioned spare joins the ring.
        moves = tb.router->Join(config_.ring_nodes());
      } else {
        // Graceful drain of the highest-numbered member: it keeps
        // serving its shards until each one commits its handoff.
        moves = tb.router->Leave(tb.router->ring().members().back());
      }
      if (tb.tracer != nullptr) {
        tb.tracer->InstantAt(tb.sched.now(),
                             config_.churn == Churn::kJoin ? "churn_join"
                                                           : "churn_leave",
                             obs::Category::kApp,
                             static_cast<std::int64_t>(moves.size()));
      }
      sim::Spawn(tb.sched, tb.migrator->Run(std::move(moves), tb.tracer,
                                            &migration));
    });
  }

  Joules epoch = 0;
  tb.sched.ScheduleAt(window.start, [&] {
    epoch = tb.clstr.CumulativeJoules({"shard-store"});
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_start",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->BeginWindow();
  });
  Joules spent = 0;
  tb.sched.ScheduleAt(window.end, [&] {
    spent = tb.clstr.CumulativeJoules({"shard-store"}) - epoch;
    if (tb.metrics != nullptr) tb.metrics->Stop();
    if (tb.telemetry != nullptr) tb.telemetry->Stop();
    if (tb.tracer != nullptr) {
      tb.tracer->InstantAt(tb.sched.now(), "measure_end",
                           obs::Category::kApp, 0);
    }
    if (tb.energy != nullptr) tb.energy->EndWindow();
  });

  load::OpenLoopRecorder recorder(window.start, window.end,
                                  config_.openloop.slo);
  ShardGate gate(config_.openloop);
  if (tb.telemetry != nullptr) {
    obs::Telemetry* telemetry = tb.telemetry;
    recorder.set_stream(obs::SloStreamInto(telemetry, "slo"));
    telemetry->AddProbe("gate.queue_depth", [&gate] {
      return static_cast<double>(gate.queue_depth());
    });
    // Live migration-lag probes over the stats the migrator fills
    // in-place during churn; `inflight` (1 while a started migration has
    // not committed its last cutover) is the NodeHealth lag term.
    telemetry->AddProbe("migration.inflight", [&migration] {
      return migration.started > 0.0 && !migration.done ? 1.0 : 0.0;
    });
    telemetry->AddProbe("migration.shards_moved", [&migration] {
      return static_cast<double>(migration.shards_moved);
    });
    telemetry->AddProbe("migration.catchup_bytes", [&migration] {
      return static_cast<double>(migration.catchup_bytes);
    });
    telemetry->AddProbe("net.max_uplink_busy", [&tb] {
      double busy = 0.0;
      for (int r = 0; r < tb.topo.racks(); ++r) {
        busy = std::max(busy, tb.fabric.GroupLinkAverageBusyFraction(
                                  tb.topo.RackGroup(r),
                                  tb.topo.AggGroup(tb.topo.PodOfRack(r))));
      }
      return busy;
    });
    obs::ThresholdRule uplink;
    uplink.name = "uplink_saturated";
    uplink.metric = "net.max_uplink_busy";
    uplink.agg = obs::Agg::kMax;
    uplink.threshold = 0.90;
    uplink.window = Seconds(4);
    telemetry->AddThresholdRule(uplink);
    if (config_.openloop.slo > 0.0) {
      obs::BurnRateRule burn;
      burn.name = "slo_burn";
      burn.good_metric = "slo.good";
      burn.total_metric = "slo.offered";
      burn.slo_target = 0.9;
      burn.burn_threshold = 1.0;
      burn.short_window = Seconds(2);
      burn.long_window = Seconds(8);
      telemetry->AddBurnRateRule(burn);
      obs::ThresholdRule sheds;
      sheds.name = "shed_spike";
      sheds.metric = "slo.shed";
      sheds.agg = obs::Agg::kRate;
      sheds.threshold = 1.0;
      sheds.window = Seconds(2);
      telemetry->AddThresholdRule(sheds);
    }
    telemetry->Start(&tb.sched, tb.tracer);
  }
  if (tb.metrics != nullptr) tb.metrics->Start(&tb.sched, Seconds(1));
  sim::Spawn(tb.sched, Arrivals(tb, config_, window, recorder, gate,
                                target_qps, tb.rng.Fork()));
  tb.sched.Run();
  if (tb.metrics != nullptr) {
    tb.metrics->SampleNow();
    tb.metrics->Detach();
  }

  ShardReport report;
  report.target_qps = target_qps;
  report.achieved_qps = static_cast<double>(window.done) / measure;
  report.goodput_qps =
      static_cast<double>(window.completed_in_window) / measure;
  report.done = window.done;
  report.failed = window.failed;
  report.error_rate =
      window.done + window.failed == 0
          ? 0.0
          : static_cast<double>(window.failed) /
                static_cast<double>(window.done + window.failed);
  report.mean_latency = window.latency.mean();
  report.p99_latency =
      window.percentiles.empty() ? 0.0 : window.percentiles.Percentile(0.99);
  report.store_power = spent / measure;
  report.queries_per_joule =
      spent > 0 ? static_cast<double>(window.done) / spent : 0;
  report.cross_rack_replica_fraction =
      window.replica_hops == 0
          ? 0.0
          : static_cast<double>(window.cross_rack_replica_hops) /
                static_cast<double>(window.replica_hops);
  for (int r = 0; r < tb.topo.racks(); ++r) {
    report.max_rack_uplink_busy =
        std::max(report.max_rack_uplink_busy,
                 tb.fabric.GroupLinkAverageBusyFraction(
                     tb.topo.RackGroup(r),
                     tb.topo.AggGroup(tb.topo.PodOfRack(r))));
  }
  for (int p = 0; p < tb.topo.pods(); ++p) {
    report.max_core_link_busy =
        std::max(report.max_core_link_busy,
                 tb.fabric.GroupLinkAverageBusyFraction(
                     tb.topo.AggGroup(p),
                     net::HierarchicalTopology::CoreGroup()));
  }
  report.migration = migration;
  report.executed_events = tb.sched.executed_events();
  report.p99_intended_latency =
      recorder.intended_percentiles().empty()
          ? 0.0
          : recorder.intended_percentiles().Percentile(0.99);
  report.shed = recorder.shed();
  report.slo_good_fraction = recorder.SloGoodFraction();
  report.slo_goodput_per_joule = recorder.SloGoodputPerJoule(spent);
  return report;
}

}  // namespace wimpy::shard
