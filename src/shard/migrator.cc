#include "shard/migrator.h"

#include <algorithm>
#include <cassert>

#include "net/fabric.h"
#include "obs/tracer.h"

namespace wimpy::shard {

namespace {

// Migration spans live on their own track family, far above the
// request-sampling tracks (which are small query counters), so the
// rebalance timeline renders as its own lane group in Perfetto.
constexpr std::int32_t kMigrationTrackBase = 1 << 30;

}  // namespace

Migrator::Migrator(cluster::Cluster* cluster, Router* router,
                   const MigratorConfig& config)
    : cluster_(cluster),
      router_(router),
      config_(config),
      slots_(&cluster->scheduler(), std::max(1, config.concurrent_shards)) {
  assert(config_.shard_bytes > 0);
  assert(config_.batch_bytes > 0);
}

sim::Task<void> Migrator::StreamBytes(int from, int to, Bytes bytes,
                                      const obs::TraceHandle& span,
                                      const char* name,
                                      MigrationStats* stats) {
  net::Fabric& fabric = cluster_->fabric();
  const double minstr_per_byte =
      config_.copy_cpu_minstr_per_mb / (1024.0 * 1024.0);
  Bytes remaining = bytes;
  while (remaining > 0) {
    const Bytes batch = std::min<Bytes>(config_.batch_bytes, remaining);
    remaining -= batch;
    const double copy_minstr = minstr_per_byte * static_cast<double>(batch);
    // Source reads and frames the batch...
    co_await cluster_->node(from)->cpu().Execute(copy_minstr);
    // ...it rides the fabric (traced as a net child span)...
    co_await fabric.Transfer(from, to, batch, span, name);
    // ...and the sink applies it: CPU plus a buffered log append.
    co_await cluster_->node(to)->cpu().Execute(copy_minstr);
    co_await cluster_->node(to)->storage().Write(batch, /*buffered=*/true);
    ++stats->transfers;
  }
}

sim::Process Migrator::MoveShard(ShardPlan plan, obs::TraceHandle parent,
                                 MigrationStats* stats) {
  co_await slots_.Acquire();
  {
    // Own track per shard: the exporter draws a flow arrow from the
    // migration root to each shard_move lane.
    obs::CausalSpan move(parent,
                         kMigrationTrackBase + 1 + plan.shard,
                         "shard_move", obs::Category::kApp, plan.shard);
    if (plan.from >= 0) {
      // Bulk copy: the full shard image to every incoming owner.
      for (int target : plan.targets) {
        co_await StreamBytes(plan.from, target, config_.shard_bytes,
                             move.handle(), "migrate_batch", stats);
        stats->bulk_bytes += config_.shard_bytes;
      }
      // Catch-up: writes that landed on the old owner while we copied.
      for (int round = 0; round < config_.max_catchup_rounds; ++round) {
        const std::int64_t dirty = router_->TakeDirty(plan.shard);
        if (dirty == 0) break;
        const Bytes delta = dirty * config_.write_delta_bytes;
        ++stats->catchup_rounds;
        for (int target : plan.targets) {
          co_await StreamBytes(plan.from, target, delta, move.handle(),
                               "catchup", stats);
          stats->catchup_bytes += delta;
        }
      }
    }
    // Cutover: an atomic (single simulated instant) routing-table swap —
    // no co_await between the final dirty drain and the commit, so no
    // write can slip between them.
    router_->Commit(plan.shard);
    ++stats->shards_moved;
    move.Instant("cutover", plan.shard);
  }
  slots_.Release();
}

sim::Process Migrator::Run(std::vector<Router::ShardMove> moves,
                           obs::Tracer* tracer, MigrationStats* stats) {
  sim::Scheduler& sched = cluster_->scheduler();
  stats->started = sched.now();

  // Group the plan by shard (plans arrive shard-ordered from the router;
  // the grouping keeps that order, so spawn order — and therefore the
  // trace — is deterministic).
  std::vector<ShardPlan> plans;
  for (const Router::ShardMove& move : moves) {
    if (plans.empty() || plans.back().shard != move.shard) {
      plans.push_back(ShardPlan{move.shard, move.from, {}});
    }
    plans.back().targets.push_back(move.to);
  }

  obs::TraceHandle root_handle;
  if (tracer != nullptr) {
    root_handle.tracer = tracer;
    root_handle.sched = &sched;
    root_handle.track = kMigrationTrackBase;
    root_handle.ctx.trace_id = tracer->NewTraceId();
  }
  {
    obs::CausalSpan root(root_handle, "migration", obs::Category::kApp,
                         static_cast<std::int64_t>(plans.size()));
    std::vector<sim::ProcessRef> children;
    children.reserve(plans.size());
    for (const ShardPlan& plan : plans) {
      children.push_back(
          sim::Spawn(sched, MoveShard(plan, root.handle(), stats)));
    }
    for (sim::ProcessRef& child : children) co_await child.Join();
  }
  stats->finished = sched.now();
  stats->done = true;
}

}  // namespace wimpy::shard
