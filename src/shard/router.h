// Migration-aware shard router: the front end between clients and the
// sharded store tier.
//
// The router owns a `Ring` (the *target* map) plus a per-shard *serving*
// chain table. In steady state the two agree and every lookup is two flat
// array reads. A membership change (`Join`/`Leave`) rebuilds the ring and
// returns a migration plan — the set of (shard, from, to) data movements
// needed — but routing keeps answering from the old serving chains until
// the migrator calls `Commit(shard)` for each handed-off shard. That is
// the live-rebalancing contract: reads and writes keep flowing to the old
// owner for the whole copy + catch-up, and the cutover is a single
// simulated-instant table swap with zero failed requests.
//
// Writes that land on a migrating shard are counted (`OnWrite`) so the
// migrator can size its catch-up passes; `TakeDirty` reads-and-resets the
// counter per catch-up round.
#ifndef WIMPY_SHARD_ROUTER_H_
#define WIMPY_SHARD_ROUTER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "shard/ring.h"

namespace wimpy::shard {

// Upper bound on the serving-chain length the router snapshots (a chain
// replication factor beyond this is clamped by Ring::chain_length
// long before the array matters).
inline constexpr int kMaxChain = 8;

class Router {
 public:
  // One required data movement: `shard`'s contents stream from the old
  // primary `from` to the incoming owner `to`.
  struct ShardMove {
    int shard = -1;
    int from = -1;
    int to = -1;
  };

  // A view into the serving-chain table (primary first).
  struct Chain {
    const int* nodes = nullptr;
    int length = 0;
    const int* begin() const { return nodes; }
    const int* end() const { return nodes + length; }
  };

  // Builds the ring over `node_ids` and seeds the serving chains from it.
  Router(const RingConfig& config, const std::vector<int>& node_ids);

  // --- serve path (O(1), allocation-free) -------------------------------
  int ShardOf(std::uint64_t key_hash) const { return ring_.ShardOf(key_hash); }
  Chain ServingChain(int shard) const {
    const ServingState& s = serving_[static_cast<std::size_t>(shard)];
    return Chain{s.chain.data(), s.length};
  }
  int PrimaryOf(int shard) const {
    const ServingState& s = serving_[static_cast<std::size_t>(shard)];
    return s.length == 0 ? -1 : s.chain[0];
  }
  // Target-ring preference list (failover walk beyond the chain).
  const std::vector<int>& Preference(int shard) const {
    return ring_.Preference(shard);
  }

  // --- membership & migration lifecycle ---------------------------------
  // Adds/removes a node and returns the migration plan, ordered by shard.
  // Serving chains are untouched; each shard cuts over on Commit. A
  // leaving node must keep serving its shards until they commit (graceful
  // drain) — only `set_failed`-style crashes bypass the router. At most
  // one membership change may be in flight (asserted).
  std::vector<ShardMove> Join(int node_id);
  std::vector<ShardMove> Leave(int node_id);

  // Cutover: the shard's serving chain becomes the target ring's chain.
  void Commit(int shard);

  bool migrating(int shard) const {
    return migrating_[static_cast<std::size_t>(shard)] != 0;
  }
  int pending_migrations() const { return pending_; }
  const Ring& ring() const { return ring_; }

  // --- write tracking for catch-up --------------------------------------
  // Called by the store front end for every write routed to `shard`;
  // counts only while the shard is migrating.
  void OnWrite(int shard) {
    if (migrating_[static_cast<std::size_t>(shard)]) {
      ++dirty_[static_cast<std::size_t>(shard)];
    }
  }
  // Reads and resets the dirty-write counter.
  std::int64_t TakeDirty(int shard);

  // --- counters ----------------------------------------------------------
  std::int64_t commits() const { return commits_; }

 private:
  struct ServingState {
    std::array<int, kMaxChain> chain{};
    int length = 0;
  };

  void SnapshotServing(int shard);
  std::vector<ShardMove> PlanMoves() const;
  void MarkMigrating(const std::vector<ShardMove>& moves);

  Ring ring_;
  std::vector<ServingState> serving_;
  std::vector<std::uint8_t> migrating_;
  std::vector<std::int64_t> dirty_;
  int pending_ = 0;
  std::int64_t commits_ = 0;
};

}  // namespace wimpy::shard

#endif  // WIMPY_SHARD_ROUTER_H_
