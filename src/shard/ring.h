// Consistent-hash ring with virtual nodes and an O(1) id-indexed shard
// map (the scale-out router the ROADMAP's million-user item calls for).
//
// The key space is split into a fixed power-of-two number of *shards*;
// each shard is owned by a chain of R distinct nodes (primary first — the
// FAWN / Dynamo preference-list idea). Ownership is decided by a classic
// ketama ring: every node contributes `vnodes_per_node` points hashed
// from (salt, node, replica-index); a shard's owners are the first R
// distinct nodes met walking the ring clockwise from the shard's start
// position. The serve path never touches the ring itself: `ShardOf` is a
// single shift and `Preference`/`Chain` are flat-table lookups, in the
// style of the lean model layer (docs/scale.md) — no hashing of strings,
// no tree walks, no allocation.
//
// Determinism: the whole map is a pure function of (config, member set).
// Insertion order never matters, so the same seed and node set produce a
// byte-identical shard map at any --threads (pinned by
// tests/shard_ring_test.cc). Membership churn moves only the shards whose
// owners actually change — about K/N of them for one node joining or
// leaving a cluster of N (the consistent-hashing contract).
#ifndef WIMPY_SHARD_RING_H_
#define WIMPY_SHARD_RING_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace wimpy::shard {

struct RingConfig {
  // Virtual points per node; more points = smoother shard balance.
  int vnodes_per_node = 64;
  // Number of shards (fixed key-space partitions). Must be a power of
  // two so ShardOf is a shift.
  int shards = 256;
  // Owner-chain length R (chain replication factor). Clamped to the
  // member count when the ring is smaller.
  int replication = 1;
  // Hash salt: rings built with different salts place nodes differently
  // (an experiment seed can feed this without touching any Rng stream).
  std::uint64_t salt = 0x5EED5A17ULL;
};

class Ring {
 public:
  explicit Ring(const RingConfig& config);

  // Membership. Node ids are small dense application-level indices
  // (e.g. positions in a store vector). Adding an existing node or
  // removing an absent one is an error (asserted).
  void AddNode(int node_id);
  void RemoveNode(int node_id);
  bool has_node(int node_id) const;
  int node_count() const { return static_cast<int>(members_.size()); }
  // Sorted member ids.
  const std::vector<int>& members() const { return members_; }

  int shards() const { return config_.shards; }
  int replication() const { return config_.replication; }
  // Effective owner-chain length: min(replication, node_count).
  int chain_length() const;
  const RingConfig& config() const { return config_; }

  // O(1): top log2(shards) bits of the key hash.
  int ShardOf(std::uint64_t key_hash) const {
    return static_cast<int>(key_hash >> shift_);
  }

  // Full preference list for a shard: every member, in ring order from
  // the shard's position. Entry 0 is the primary; the first
  // chain_length() entries are the owner chain; the tail is the failover
  // order. Empty when the ring has no members.
  const std::vector<int>& Preference(int shard) const {
    return prefs_[static_cast<std::size_t>(shard)];
  }
  // Primary owner, or -1 on an empty ring.
  int PrimaryOf(int shard) const {
    const auto& pref = Preference(shard);
    return pref.empty() ? -1 : pref[0];
  }

  // Shards whose primary owner differs between two rings of identical
  // geometry (the key-movement measure the churn test pins).
  static std::vector<int> MovedPrimaries(const Ring& before,
                                         const Ring& after);

 private:
  void Rebuild();

  RingConfig config_;
  int shift_;                  // 64 - log2(shards)
  std::vector<int> members_;   // sorted
  // (point hash, node) sorted by hash — rebuilt on membership change.
  std::vector<std::pair<std::uint64_t, int>> points_;
  // [shard] -> distinct members in ring order (flat, serve-path table).
  std::vector<std::vector<int>> prefs_;
};

}  // namespace wimpy::shard

#endif  // WIMPY_SHARD_RING_H_
