#include "net/topology.h"

#include <algorithm>
#include <cassert>

#include "net/fabric.h"

namespace wimpy::net {

HierarchicalTopology::HierarchicalTopology(
    Fabric* fabric, const HierarchicalTopologyConfig& config)
    : fabric_(fabric), config_(config) {
  assert(fabric != nullptr);
  assert(config_.racks > 0);
  assert(config_.racks_per_pod > 0);
  assert(config_.nodes_per_rack > 0);
  assert(config_.node_bandwidth > 0);
  assert(config_.rack_oversubscription >= 1.0);
  assert(config_.core_oversubscription >= 1.0);

  rack_uplink_bw_ = config_.nodes_per_rack * config_.node_bandwidth /
                    config_.rack_oversubscription;
  const int pods =
      (config_.racks + config_.racks_per_pod - 1) / config_.racks_per_pod;

  rack_groups_.reserve(static_cast<std::size_t>(config_.racks));
  for (int r = 0; r < config_.racks; ++r) {
    rack_groups_.push_back("rack" + std::to_string(r));
  }
  agg_groups_.reserve(static_cast<std::size_t>(pods));
  for (int p = 0; p < pods; ++p) {
    agg_groups_.push_back("agg" + std::to_string(p));
  }

  // Access layer: each rack's ToR uplink into its pod's aggregation
  // switch, thinned by the rack oversubscription ratio.
  for (int r = 0; r < config_.racks; ++r) {
    fabric_->SetGroupLink(RackGroup(r), AggGroup(PodOfRack(r)),
                          rack_uplink_bw_, config_.rack_uplink_latency);
  }
  // Aggregation layer: each pod's uplink to the core, thinned again.
  for (int p = 0; p < pods; ++p) {
    fabric_->SetGroupLink(AggGroup(p), CoreGroup(),
                          pod_uplink_bandwidth(p),
                          config_.core_link_latency);
  }

  // Routes: same-pod rack pairs bounce off the aggregation switch;
  // cross-pod pairs ride agg → core → agg.
  for (int i = 0; i < config_.racks; ++i) {
    for (int j = i + 1; j < config_.racks; ++j) {
      const int pi = PodOfRack(i);
      const int pj = PodOfRack(j);
      if (pi == pj) {
        fabric_->SetGroupPath(RackGroup(i), RackGroup(j), {AggGroup(pi)});
      } else {
        fabric_->SetGroupPath(RackGroup(i), RackGroup(j),
                              {AggGroup(pi), CoreGroup(), AggGroup(pj)});
      }
    }
  }
}

int HierarchicalTopology::RacksInPod(int pod) const {
  const int first = pod * config_.racks_per_pod;
  return std::min(config_.racks_per_pod, config_.racks - first);
}

BytesPerSecond HierarchicalTopology::pod_uplink_bandwidth(int pod) const {
  return RacksInPod(pod) * rack_uplink_bw_ / config_.core_oversubscription;
}

void HierarchicalTopology::AttachToCore(const std::string& group,
                                        BytesPerSecond bandwidth,
                                        Duration latency) {
  fabric_->SetGroupLink(group, CoreGroup(), bandwidth, latency);
  // The new room reaches every rack through core → pod agg, and other
  // attached rooms through the core switch alone.
  for (int r = 0; r < config_.racks; ++r) {
    fabric_->SetGroupPath(group, RackGroup(r),
                          {CoreGroup(), AggGroup(PodOfRack(r))});
  }
  for (const std::string& other : attached_) {
    fabric_->SetGroupPath(group, other, {CoreGroup()});
  }
  attached_.push_back(group);
}

}  // namespace wimpy::net
