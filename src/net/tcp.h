// TCP connection model: handshake latency, ephemeral ports, accept
// backlog, and SYN-drop retry with exponential backoff.
//
// These are precisely the OS-level resources the paper identifies as the
// web-service bottleneck ("throughput is limited by the ability to create
// new TCP ports and new threads") and the mechanism behind the Dell
// cluster's 1 s / 3 s / 7 s delay-distribution spikes (dropped SYNs
// retransmitted after 1, 2, 4 seconds — Figure 11).
#ifndef WIMPY_NET_TCP_H_
#define WIMPY_NET_TCP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/fabric.h"
#include "obs/context.h"
#include "sim/semaphore.h"
#include "sim/task.h"

namespace wimpy::obs {
class MetricsRegistry;
}  // namespace wimpy::obs

namespace wimpy::sim {
class BatchTimerQueue;
}  // namespace wimpy::sim

namespace wimpy::net {

struct TcpConfig {
  // Client-side ephemeral port pool (after the paper's expanded
  // ip_local_port_range tuning).
  int ephemeral_ports = 28232;
  // Simultaneous established connections a host sustains (fd limit after
  // the paper's raised descriptor limits).
  int max_connections = 4096;
  // Pending-connection (SYN/accept) queue depth.
  int listen_backlog = 512;
  // SYN retransmission schedule: base, then doubling (1 s, 2 s, 4 s...).
  Duration syn_retry_base = Seconds(1.0);
  int syn_max_retries = 3;
  // Closed sockets linger in TIME_WAIT, still occupying a connection slot.
  // High connection churn against a bounded fd pool is the Dell cluster's
  // web bottleneck in the paper; larger server counts dilute it.
  Duration time_wait = Seconds(0);
};

// Per-host TCP state. One per simulated server/client machine.
class TcpHost {
 public:
  TcpHost(Fabric* fabric, int node_id, const TcpConfig& config);
  ~TcpHost();

  TcpHost(const TcpHost&) = delete;
  TcpHost& operator=(const TcpHost&) = delete;

  int node_id() const { return node_id_; }
  Fabric& fabric() { return *fabric_; }
  const TcpConfig& config() const { return config_; }

  // Server-side admission: a SYN occupies one backlog slot until the
  // connection is accepted (established) or rejected.
  bool TryEnterBacklog();
  void LeaveBacklog();

  // Established-connection slots.
  bool TryOpenConnectionSlot();
  void CloseConnectionSlot();

  // Client-side ephemeral ports.
  bool TryAllocatePort();
  void ReleasePort();

  std::int64_t ports_in_use() const { return ports_in_use_; }
  std::int64_t connections_open() const { return connections_open_; }
  std::int64_t backlog_depth() const { return backlog_depth_; }
  std::int64_t syn_drops() const { return syn_drops_; }
  void CountSynDrop() { ++syn_drops_; }

  // Registers this host's connection-resource probes under
  // `<prefix>.ports|conns|backlog|syn_drops` (see docs/observability.md).
  void PublishMetrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

 private:
  Fabric* fabric_;
  int node_id_;
  TcpConfig config_;
  std::int64_t ports_in_use_ = 0;
  std::int64_t connections_open_ = 0;
  std::int64_t backlog_depth_ = 0;
  std::int64_t syn_drops_ = 0;
  // Every TIME_WAIT expiry uses the same fixed delay, so the expirations
  // form a FIFO — one batch queue replaces one engine event per close
  // (lazily created on the first TIME_WAIT close).
  std::unique_ptr<sim::BatchTimerQueue> time_wait_timers_;
};

// Outcome of a connection attempt, including how long the client spent in
// SYN backoff — the quantity Figures 10/11 histogram.
struct ConnectResult {
  Status status;
  Duration connect_delay = 0;
  int retries = 0;
};

// An established client->server connection.
class TcpConnection {
 public:
  // Creates an unconnected connection object; call Connect() next.
  TcpConnection(TcpHost* client, TcpHost* server);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Performs the handshake with SYN-drop retry. On success the connection
  // is established; on failure (port exhaustion, retries exhausted) the
  // status says why.
  //
  // With `hold_backlog` the accepted connection keeps its backlog slot
  // until the server's accept loop processes it and calls
  // server->LeaveBacklog() — the real dynamics of an accept queue that
  // drains at the server's accept rate rather than at wire speed. Server
  // models (web::WebServer::AcceptWork) use this; simple peers leave the
  // default.
  //
  // With a non-null `trace`, the handshake is recorded as a causal
  // "connect" span under it (category kNet), with one "syn_retry"
  // instant per retransmitted SYN — how the 1 s / 2 s / 4 s backoff
  // spikes show up on a request's critical path.
  sim::Task<ConnectResult> Connect(bool hold_backlog = false,
                                   const obs::TraceHandle& trace = {});

  // Request/response exchange on an established connection: sends
  // `request_bytes` upstream, then `response_bytes` downstream.
  sim::Task<void> Exchange(Bytes request_bytes, Bytes response_bytes);

  // One-way payload.
  sim::Task<void> Send(Bytes bytes);

  void Close();
  bool established() const { return established_; }

 private:
  TcpHost* client_;
  TcpHost* server_;
  bool port_held_ = false;
  bool established_ = false;
};

}  // namespace wimpy::net

#endif  // WIMPY_NET_TCP_H_
