// Hierarchical datacenter topology builder: rack → aggregation → core.
//
// The flat fabric models one room with one uplink; real scale-out clusters
// (and the paper's cost model in §6) hang many racks off aggregation
// switches with a configurable *oversubscription ratio* — the ToR uplink
// carries only 1/k of the sum of its member NICs, and the pod-to-core hop
// thins again. This builder lays that tree onto a Fabric: it creates the
// rack/aggregation/core groups, sizes every uplink from the node NIC
// bandwidth and the two oversubscription knobs, and declares the
// multi-hop group paths (Fabric::SetGroupPath) so a cross-pod flow
// occupies both rack uplinks and the core hop concurrently. Node
// placement stays with the caller (cluster::Cluster::AddNodes into
// `RackGroup(i)`).
#ifndef WIMPY_NET_TOPOLOGY_H_
#define WIMPY_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace wimpy::net {

class Fabric;

struct HierarchicalTopologyConfig {
  int racks = 3;
  int racks_per_pod = 2;  // racks per aggregation switch
  int nodes_per_rack = 4;
  // Per-node NIC bandwidth; feeds the uplink-capacity math.
  BytesPerSecond node_bandwidth = 0;
  // ToR uplink = nodes_per_rack * node_bandwidth / rack_oversubscription.
  double rack_oversubscription = 4.0;
  // Pod uplink = (sum of the pod's rack uplinks) / core_oversubscription.
  double core_oversubscription = 1.0;
  Duration rack_uplink_latency = Microseconds(5);
  Duration core_link_latency = Microseconds(20);
};

class HierarchicalTopology {
 public:
  // Builds all groups, links, and paths on `fabric` (borrowed; must
  // outlive the topology). Group names: "rack<i>", "agg<p>", "core".
  HierarchicalTopology(Fabric* fabric,
                       const HierarchicalTopologyConfig& config);

  HierarchicalTopology(const HierarchicalTopology&) = delete;
  HierarchicalTopology& operator=(const HierarchicalTopology&) = delete;

  const std::string& RackGroup(int rack) const {
    return rack_groups_[static_cast<std::size_t>(rack)];
  }
  const std::string& AggGroup(int pod) const {
    return agg_groups_[static_cast<std::size_t>(pod)];
  }
  static const char* CoreGroup() { return "core"; }

  int racks() const { return config_.racks; }
  int pods() const { return static_cast<int>(agg_groups_.size()); }
  int PodOfRack(int rack) const { return rack / config_.racks_per_pod; }

  // Attaches an external group (a client room, a storage pool) directly
  // to the core switch with its own access link, and declares paths from
  // it to every rack and every previously attached group.
  void AttachToCore(const std::string& group, BytesPerSecond bandwidth,
                    Duration latency);

  BytesPerSecond rack_uplink_bandwidth() const { return rack_uplink_bw_; }
  // Uplink of pod `pod` to the core (pods may be unevenly filled).
  BytesPerSecond pod_uplink_bandwidth(int pod) const;

  const HierarchicalTopologyConfig& config() const { return config_; }

 private:
  int RacksInPod(int pod) const;

  Fabric* fabric_;
  HierarchicalTopologyConfig config_;
  std::vector<std::string> rack_groups_;
  std::vector<std::string> agg_groups_;
  std::vector<std::string> attached_;  // core-attached external groups
  BytesPerSecond rack_uplink_bw_ = 0;
};

}  // namespace wimpy::net

#endif  // WIMPY_NET_TOPOLOGY_H_
