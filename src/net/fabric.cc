#include "net/fabric.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::net {

namespace {

// Loopback cost: in-kernel copy, effectively instant at this fidelity.
constexpr Duration kLoopbackLatency = Microseconds(20);

sim::Process ServeOne(sim::FairShareServer* server, double demand) {
  co_await server->Serve(demand);
}

}  // namespace

Fabric::Fabric(sim::Scheduler* sched) : sched_(sched) {
  assert(sched != nullptr);
}

void Fabric::AddNode(hw::ServerNode* node, const std::string& group) {
  assert(node != nullptr);
  const bool inserted =
      endpoints_.emplace(node->id(), Endpoint{node, group}).second;
  assert(inserted && "duplicate node id in fabric");
  (void)inserted;
}

Fabric::GroupKey Fabric::MakeKey(const std::string& a,
                                 const std::string& b) {
  return a <= b ? GroupKey{a, b} : GroupKey{b, a};
}

void Fabric::SetGroupLink(const std::string& a, const std::string& b,
                          BytesPerSecond bandwidth, Duration latency) {
  assert(bandwidth > 0);
  GroupLink link;
  link.forward = std::make_unique<sim::FairShareServer>(
      sched_, bandwidth, bandwidth, "link:" + a + ">" + b);
  link.backward = std::make_unique<sim::FairShareServer>(
      sched_, bandwidth, bandwidth, "link:" + b + ">" + a);
  link.latency = latency;
  links_[MakeKey(a, b)] = std::move(link);
}

bool Fabric::HasNode(int node_id) const {
  return endpoints_.count(node_id) > 0;
}

const Fabric::Endpoint& Fabric::Lookup(int node_id) const {
  auto it = endpoints_.find(node_id);
  assert(it != endpoints_.end() && "node not registered in fabric");
  return it->second;
}

const std::string& Fabric::GroupOf(int node_id) const {
  return Lookup(node_id).group;
}

const Fabric::GroupLink* Fabric::FindLink(const std::string& a,
                                          const std::string& b) const {
  auto it = links_.find(MakeKey(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

sim::FairShareServer* Fabric::LinkChannel(
    const std::string& src_group, const std::string& dst_group) const {
  const GroupLink* link = FindLink(src_group, dst_group);
  if (link == nullptr) return nullptr;
  // forward serves the lexicographically-ordered direction.
  const bool is_forward = MakeKey(src_group, dst_group).first == src_group;
  return is_forward ? link->forward.get() : link->backward.get();
}

Duration Fabric::Latency(int src_id, int dst_id) const {
  if (src_id == dst_id) return kLoopbackLatency;
  const Endpoint& src = Lookup(src_id);
  const Endpoint& dst = Lookup(dst_id);
  Duration latency = src.node->nic().endpoint_latency() +
                     dst.node->nic().endpoint_latency();
  if (src.group != dst.group) {
    const GroupLink* link = FindLink(src.group, dst.group);
    if (link != nullptr) latency += link->latency;
  }
  return latency;
}

sim::Task<void> Fabric::Transfer(int src_id, int dst_id, Bytes bytes) {
  if (bytes <= 0) co_return;
  if (src_id == dst_id) {
    co_await sim::Delay(*sched_, kLoopbackLatency);
    co_return;
  }
  const Endpoint& src = Lookup(src_id);
  const Endpoint& dst = Lookup(dst_id);
  src.node->nic().AddBytesSent(bytes);
  dst.node->nic().AddBytesReceived(bytes);

  co_await sim::Delay(*sched_, Latency(src_id, dst_id));

  std::vector<sim::FairShareServer*> segments;
  segments.push_back(&src.node->nic().tx());
  if (src.group != dst.group) {
    sim::FairShareServer* link = LinkChannel(src.group, dst.group);
    if (link != nullptr) segments.push_back(link);
  }
  segments.push_back(&dst.node->nic().rx());

  // The flow occupies every segment concurrently; it completes when the
  // slowest segment has pumped all bytes. This approximates min-rate
  // fair-shared flows without per-chunk simulation.
  const double demand = static_cast<double>(bytes);
  std::vector<sim::ProcessRef> refs;
  refs.reserve(segments.size());
  for (auto* segment : segments) {
    refs.push_back(sim::Spawn(*sched_, ServeOne(segment, demand)));
  }
  for (auto& ref : refs) co_await ref.Join();
}

sim::Task<void> Fabric::Transfer(int src_id, int dst_id, Bytes bytes,
                                 const obs::TraceHandle& trace,
                                 const char* name) {
  obs::CausalSpan span(trace, name, obs::Category::kNet, bytes);
  co_await Transfer(src_id, dst_id, bytes);
}

sim::Task<void> Fabric::RoundTrip(int src_id, int dst_id) {
  co_await sim::Delay(*sched_, Rtt(src_id, dst_id));
}

double Fabric::GroupLinkBusyFraction(const std::string& a,
                                     const std::string& b) const {
  const GroupLink* link = FindLink(a, b);
  if (link == nullptr) return 0.0;
  return std::max(link->forward->busy_fraction(),
                  link->backward->busy_fraction());
}

void Fabric::PublishMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  // links_ is an ordered map, so probe registration order (and therefore
  // CSV column order) is deterministic.
  for (auto& [key, link] : links_) {
    GroupLink* l = &link;
    registry->AddGauge(
        prefix + ".link." + key.first + "-" + key.second, [l] {
          return std::max(l->forward->busy_fraction(),
                          l->backward->busy_fraction());
        });
  }
}

}  // namespace wimpy::net
