#include "net/fabric.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::net {

namespace {

// Loopback cost: in-kernel copy, effectively instant at this fidelity.
constexpr Duration kLoopbackLatency = Microseconds(20);

// Awaits service of the same demand on every collected segment
// concurrently; the slowest segment's completion resumes the awaiting
// coroutine. Lives in the Transfer coroutine frame across the suspension,
// so the join state needs no heap and no spawned helper processes.
// Capacity: two endpoint NICs plus up to kMaxPathHops aggregate links.
struct SegmentJoin {
  std::array<sim::FairShareServer*, 2 + Fabric::kMaxPathHops> segments;
  int count = 0;
  double demand = 0;
  std::uint32_t remaining = 0;

  void Add(sim::FairShareServer* s) { segments[count++] = s; }

  bool await_ready() const { return count == 0; }
  void await_suspend(std::coroutine_handle<> h) {
    remaining = static_cast<std::uint32_t>(count);
    for (int i = 0; i < count; ++i) {
      segments[i]->ServeJoined(demand, &remaining, h);
    }
  }
  void await_resume() const {}
};

}  // namespace

Fabric::Fabric(sim::Scheduler* sched) : sched_(sched) {
  assert(sched != nullptr);
}

int Fabric::InternGroup(const std::string& name) {
  const int found = FindGroup(name);
  if (found >= 0) return found;
  group_names_.push_back(name);
  const int id = static_cast<int>(group_names_.size()) - 1;
  RebuildLinkTables();  // G changed; tables are G×G
  return id;
}

int Fabric::FindGroup(const std::string& name) const {
  // Linear scan: a fabric has a handful of rooms/racks, and this only runs
  // at topology-build time or in cold query paths.
  for (std::size_t i = 0; i < group_names_.size(); ++i) {
    if (group_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Fabric::AddNode(hw::ServerNode* node, const std::string& group) {
  assert(node != nullptr);
  const int id = node->id();
  assert(id >= 0 && "fabric node ids must be non-negative");
  if (static_cast<std::size_t>(id) >= endpoints_.size()) {
    endpoints_.resize(static_cast<std::size_t>(id) + 1);
  }
  assert(endpoints_[id].node == nullptr && "duplicate node id in fabric");
  endpoints_[static_cast<std::size_t>(id)] =
      Endpoint{node, InternGroup(group)};
}

void Fabric::SetGroupLink(const std::string& a, const std::string& b,
                          BytesPerSecond bandwidth, Duration latency) {
  assert(bandwidth > 0);
  // Canonical pair order is lexicographic by NAME (not by interned id):
  // published gauge names and channel direction must not depend on the
  // order groups happened to be interned.
  const std::string& ka = a <= b ? a : b;
  const std::string& kb = a <= b ? b : a;
  const int ga = InternGroup(ka);
  const int gb = InternGroup(kb);
  GroupLink* link = FindLink(ga, gb);
  if (link == nullptr) {
    links_.push_back(std::make_unique<GroupLink>());
    link = links_.back().get();
    link->a = ga;
    link->b = gb;
  }
  link->forward = std::make_unique<sim::FairShareServer>(
      sched_, bandwidth, bandwidth, "link:" + a + ">" + b);
  link->backward = std::make_unique<sim::FairShareServer>(
      sched_, bandwidth, bandwidth, "link:" + b + ">" + a);
  link->latency = latency;
  RebuildLinkTables();
  // Links configured after PublishMetrics still get their gauge: the
  // closure reads through the stable GroupLink*, so a later SetGroupLink
  // replacing the channels is tracked automatically as well.
  PublishLink(link);
}

void Fabric::SetGroupPath(const std::string& a, const std::string& b,
                          const std::vector<std::string>& via) {
  assert(a != b && "a group path must join two distinct groups");
  assert(static_cast<int>(via.size()) + 1 <= kMaxPathHops &&
         "group path exceeds kMaxPathHops hops");
  // Canonical orientation by name, like SetGroupLink: one stored route per
  // unordered pair, replayed into both table directions.
  std::vector<std::string> groups;
  groups.reserve(via.size() + 2);
  if (a <= b) {
    groups.push_back(a);
    groups.insert(groups.end(), via.begin(), via.end());
    groups.push_back(b);
  } else {
    groups.push_back(b);
    groups.insert(groups.end(), via.rbegin(), via.rend());
    groups.push_back(a);
  }
  for (const std::string& g : groups) InternGroup(g);
  for (GroupPath& path : paths_) {
    if (path.groups.front() == groups.front() &&
        path.groups.back() == groups.back()) {
      path.groups = std::move(groups);
      RebuildLinkTables();
      return;
    }
  }
  paths_.push_back(GroupPath{std::move(groups)});
  RebuildLinkTables();
}

Fabric::GroupLink* Fabric::FindLink(int a, int b) {
  for (auto& link : links_) {
    if ((link->a == a && link->b == b) || (link->a == b && link->b == a)) {
      return link.get();
    }
  }
  return nullptr;
}

const Fabric::GroupLink* Fabric::FindLink(int a, int b) const {
  return const_cast<Fabric*>(this)->FindLink(a, b);
}

void Fabric::RebuildLinkTables() {
  const std::size_t g = group_names_.size();
  channels_.assign(g * g, nullptr);
  link_latencies_.assign(g * g, 0);
  for (const auto& link : links_) {
    const std::size_t fwd = static_cast<std::size_t>(link->a) * g +
                            static_cast<std::size_t>(link->b);
    const std::size_t bwd = static_cast<std::size_t>(link->b) * g +
                            static_cast<std::size_t>(link->a);
    channels_[fwd] = link->forward.get();
    channels_[bwd] = link->backward.get();
    link_latencies_[fwd] = link->latency;
    link_latencies_[bwd] = link->latency;
  }
  // Resolve multi-hop routes against the fresh direct tables. Hops whose
  // link is not configured yet resolve to nseg == 0 (direct fallback) and
  // are re-resolved on the next rebuild — topology builders may declare
  // paths and links in any order.
  path_table_.assign(g * g, PathEntry{});
  for (const GroupPath& path : paths_) {
    PathEntry fwd;
    PathEntry bwd;
    bool complete = true;
    const int hops = static_cast<int>(path.groups.size()) - 1;
    for (int h = 0; h < hops; ++h) {
      const int x = FindGroup(path.groups[static_cast<std::size_t>(h)]);
      const int y = FindGroup(path.groups[static_cast<std::size_t>(h) + 1]);
      const std::size_t fi =
          static_cast<std::size_t>(x) * g + static_cast<std::size_t>(y);
      const std::size_t bi =
          static_cast<std::size_t>(y) * g + static_cast<std::size_t>(x);
      if (channels_[fi] == nullptr) {
        complete = false;
        break;
      }
      fwd.segs[static_cast<std::size_t>(fwd.nseg++)] = channels_[fi];
      fwd.latency += link_latencies_[fi];
      bwd.segs[static_cast<std::size_t>(hops - 1 - h)] = channels_[bi];
      ++bwd.nseg;
      bwd.latency += link_latencies_[bi];
    }
    if (!complete) continue;
    const int src = FindGroup(path.groups.front());
    const int dst = FindGroup(path.groups.back());
    path_table_[static_cast<std::size_t>(src) * g +
                static_cast<std::size_t>(dst)] = fwd;
    path_table_[static_cast<std::size_t>(dst) * g +
                static_cast<std::size_t>(src)] = bwd;
  }
}

bool Fabric::HasNode(int node_id) const {
  return node_id >= 0 &&
         static_cast<std::size_t>(node_id) < endpoints_.size() &&
         endpoints_[static_cast<std::size_t>(node_id)].node != nullptr;
}

const Fabric::Endpoint& Fabric::Lookup(int node_id) const {
  assert(HasNode(node_id) && "node not registered in fabric");
  return endpoints_[static_cast<std::size_t>(node_id)];
}

const std::string& Fabric::GroupOf(int node_id) const {
  return group_names_[static_cast<std::size_t>(Lookup(node_id).group)];
}

int Fabric::GroupIdOf(int node_id) const { return Lookup(node_id).group; }

Duration Fabric::Latency(int src_id, int dst_id) const {
  if (src_id == dst_id) return kLoopbackLatency;
  const Endpoint& src = Lookup(src_id);
  const Endpoint& dst = Lookup(dst_id);
  Duration latency = src.node->nic().endpoint_latency() +
                     dst.node->nic().endpoint_latency();
  if (src.group != dst.group) {
    const std::size_t idx = static_cast<std::size_t>(src.group) *
                                group_names_.size() +
                            static_cast<std::size_t>(dst.group);
    latency += path_table_[idx].nseg > 0 ? path_table_[idx].latency
                                         : link_latencies_[idx];
  }
  return latency;
}

sim::Task<void> Fabric::Transfer(int src_id, int dst_id, Bytes bytes) {
  if (bytes <= 0) co_return;
  if (src_id == dst_id) {
    co_await sim::Delay(*sched_, kLoopbackLatency);
    co_return;
  }
  const Endpoint& src = Lookup(src_id);
  const Endpoint& dst = Lookup(dst_id);
  src.node->nic().AddBytesSent(bytes);
  dst.node->nic().AddBytesReceived(bytes);

  Duration latency = src.node->nic().endpoint_latency() +
                     dst.node->nic().endpoint_latency();
  // The flow occupies every segment concurrently; it completes when the
  // slowest segment has pumped all bytes. This approximates min-rate
  // fair-shared flows without per-chunk simulation. At most two NIC
  // channels plus kMaxPathHops aggregate links — joined inline, so the
  // steady-state path allocates nothing here.
  SegmentJoin join;
  join.demand = static_cast<double>(bytes);
  join.Add(&src.node->nic().tx());
  if (src.group != dst.group) {
    const std::size_t idx =
        static_cast<std::size_t>(src.group) * group_names_.size() +
        static_cast<std::size_t>(dst.group);
    const PathEntry& path = path_table_[idx];
    if (path.nseg > 0) {
      for (int i = 0; i < path.nseg; ++i) join.Add(path.segs[i]);
      latency += path.latency;
    } else if (channels_[idx] != nullptr) {
      join.Add(channels_[idx]);
      latency += link_latencies_[idx];
    }
  }
  join.Add(&dst.node->nic().rx());
  co_await sim::Delay(*sched_, latency);
  co_await join;
}

sim::Task<void> Fabric::Transfer(int src_id, int dst_id, Bytes bytes,
                                 const obs::TraceHandle& trace,
                                 const char* name) {
  obs::CausalSpan span(trace, name, obs::Category::kNet, bytes);
  co_await Transfer(src_id, dst_id, bytes);
}

sim::Task<void> Fabric::RoundTrip(int src_id, int dst_id) {
  co_await sim::Delay(*sched_, Rtt(src_id, dst_id));
}

double Fabric::GroupLinkBusyFraction(const std::string& a,
                                     const std::string& b) const {
  const int ga = FindGroup(a);
  const int gb = FindGroup(b);
  if (ga < 0 || gb < 0) return 0.0;
  const GroupLink* link = FindLink(ga, gb);
  if (link == nullptr) return 0.0;
  return std::max(link->forward->busy_fraction(),
                  link->backward->busy_fraction());
}

double Fabric::GroupLinkAverageBusyFraction(const std::string& a,
                                            const std::string& b) const {
  const int ga = FindGroup(a);
  const int gb = FindGroup(b);
  if (ga < 0 || gb < 0) return 0.0;
  const GroupLink* link = FindLink(ga, gb);
  if (link == nullptr) return 0.0;
  return std::max(link->forward->AverageBusyFraction(),
                  link->backward->AverageBusyFraction());
}

void Fabric::PublishLink(GroupLink* link) {
  if (metrics_registry_ == nullptr || link->published) return;
  link->published = true;
  // The closure reads through the stable GroupLink*, so a later
  // SetGroupLink that replaces the channel servers is tracked without
  // re-registration.
  metrics_registry_->AddGauge(metrics_prefix_ + ".link." +
                                  group_names_[link->a] + "-" +
                                  group_names_[link->b],
                              [link] {
                                return std::max(
                                    link->forward->busy_fraction(),
                                    link->backward->busy_fraction());
                              });
}

void Fabric::PublishMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  metrics_registry_ = registry;
  metrics_prefix_ = prefix;
  // Probe registration order (and therefore CSV column order) must stay
  // deterministic and name-sorted, exactly as when links_ was an ordered
  // map keyed by name pair. Links configured after this call append in
  // SetGroupLink order (see PublishLink).
  std::vector<GroupLink*> sorted;
  sorted.reserve(links_.size());
  for (const auto& link : links_) sorted.push_back(link.get());
  std::sort(sorted.begin(), sorted.end(),
            [this](const GroupLink* x, const GroupLink* y) {
              const std::string& xa = group_names_[x->a];
              const std::string& ya = group_names_[y->a];
              if (xa != ya) return xa < ya;
              return group_names_[x->b] < group_names_[y->b];
            });
  for (GroupLink* l : sorted) PublishLink(l);
}

}  // namespace wimpy::net
