#include "net/fabric.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wimpy::net {

namespace {

// Loopback cost: in-kernel copy, effectively instant at this fidelity.
constexpr Duration kLoopbackLatency = Microseconds(20);

// Awaits service of the same demand on every collected segment
// concurrently; the slowest segment's completion resumes the awaiting
// coroutine. Lives in the Transfer coroutine frame across the suspension,
// so the join state needs no heap and no spawned helper processes.
struct SegmentJoin {
  std::array<sim::FairShareServer*, 3> segments;
  int count = 0;
  double demand = 0;
  std::uint32_t remaining = 0;

  void Add(sim::FairShareServer* s) { segments[count++] = s; }

  bool await_ready() const { return count == 0; }
  void await_suspend(std::coroutine_handle<> h) {
    remaining = static_cast<std::uint32_t>(count);
    for (int i = 0; i < count; ++i) {
      segments[i]->ServeJoined(demand, &remaining, h);
    }
  }
  void await_resume() const {}
};

}  // namespace

Fabric::Fabric(sim::Scheduler* sched) : sched_(sched) {
  assert(sched != nullptr);
}

int Fabric::InternGroup(const std::string& name) {
  const int found = FindGroup(name);
  if (found >= 0) return found;
  group_names_.push_back(name);
  const int id = static_cast<int>(group_names_.size()) - 1;
  RebuildLinkTables();  // G changed; tables are G×G
  return id;
}

int Fabric::FindGroup(const std::string& name) const {
  // Linear scan: a fabric has a handful of rooms/racks, and this only runs
  // at topology-build time or in cold query paths.
  for (std::size_t i = 0; i < group_names_.size(); ++i) {
    if (group_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Fabric::AddNode(hw::ServerNode* node, const std::string& group) {
  assert(node != nullptr);
  const int id = node->id();
  assert(id >= 0 && "fabric node ids must be non-negative");
  if (static_cast<std::size_t>(id) >= endpoints_.size()) {
    endpoints_.resize(static_cast<std::size_t>(id) + 1);
  }
  assert(endpoints_[id].node == nullptr && "duplicate node id in fabric");
  endpoints_[static_cast<std::size_t>(id)] =
      Endpoint{node, InternGroup(group)};
}

void Fabric::SetGroupLink(const std::string& a, const std::string& b,
                          BytesPerSecond bandwidth, Duration latency) {
  assert(bandwidth > 0);
  // Canonical pair order is lexicographic by NAME (not by interned id):
  // published gauge names and channel direction must not depend on the
  // order groups happened to be interned.
  const std::string& ka = a <= b ? a : b;
  const std::string& kb = a <= b ? b : a;
  const int ga = InternGroup(ka);
  const int gb = InternGroup(kb);
  GroupLink* link = FindLink(ga, gb);
  if (link == nullptr) {
    links_.push_back(std::make_unique<GroupLink>());
    link = links_.back().get();
    link->a = ga;
    link->b = gb;
  }
  link->forward = std::make_unique<sim::FairShareServer>(
      sched_, bandwidth, bandwidth, "link:" + a + ">" + b);
  link->backward = std::make_unique<sim::FairShareServer>(
      sched_, bandwidth, bandwidth, "link:" + b + ">" + a);
  link->latency = latency;
  RebuildLinkTables();
}

Fabric::GroupLink* Fabric::FindLink(int a, int b) {
  for (auto& link : links_) {
    if ((link->a == a && link->b == b) || (link->a == b && link->b == a)) {
      return link.get();
    }
  }
  return nullptr;
}

const Fabric::GroupLink* Fabric::FindLink(int a, int b) const {
  return const_cast<Fabric*>(this)->FindLink(a, b);
}

void Fabric::RebuildLinkTables() {
  const std::size_t g = group_names_.size();
  channels_.assign(g * g, nullptr);
  link_latencies_.assign(g * g, 0);
  for (const auto& link : links_) {
    const std::size_t fwd = static_cast<std::size_t>(link->a) * g +
                            static_cast<std::size_t>(link->b);
    const std::size_t bwd = static_cast<std::size_t>(link->b) * g +
                            static_cast<std::size_t>(link->a);
    channels_[fwd] = link->forward.get();
    channels_[bwd] = link->backward.get();
    link_latencies_[fwd] = link->latency;
    link_latencies_[bwd] = link->latency;
  }
}

bool Fabric::HasNode(int node_id) const {
  return node_id >= 0 &&
         static_cast<std::size_t>(node_id) < endpoints_.size() &&
         endpoints_[static_cast<std::size_t>(node_id)].node != nullptr;
}

const Fabric::Endpoint& Fabric::Lookup(int node_id) const {
  assert(HasNode(node_id) && "node not registered in fabric");
  return endpoints_[static_cast<std::size_t>(node_id)];
}

const std::string& Fabric::GroupOf(int node_id) const {
  return group_names_[static_cast<std::size_t>(Lookup(node_id).group)];
}

int Fabric::GroupIdOf(int node_id) const { return Lookup(node_id).group; }

Duration Fabric::Latency(int src_id, int dst_id) const {
  if (src_id == dst_id) return kLoopbackLatency;
  const Endpoint& src = Lookup(src_id);
  const Endpoint& dst = Lookup(dst_id);
  Duration latency = src.node->nic().endpoint_latency() +
                     dst.node->nic().endpoint_latency();
  if (src.group != dst.group) {
    latency += link_latencies_[static_cast<std::size_t>(src.group) *
                                   group_names_.size() +
                               static_cast<std::size_t>(dst.group)];
  }
  return latency;
}

sim::Task<void> Fabric::Transfer(int src_id, int dst_id, Bytes bytes) {
  if (bytes <= 0) co_return;
  if (src_id == dst_id) {
    co_await sim::Delay(*sched_, kLoopbackLatency);
    co_return;
  }
  const Endpoint& src = Lookup(src_id);
  const Endpoint& dst = Lookup(dst_id);
  src.node->nic().AddBytesSent(bytes);
  dst.node->nic().AddBytesReceived(bytes);

  Duration latency = src.node->nic().endpoint_latency() +
                     dst.node->nic().endpoint_latency();
  sim::FairShareServer* link = nullptr;
  if (src.group != dst.group) {
    const std::size_t idx =
        static_cast<std::size_t>(src.group) * group_names_.size() +
        static_cast<std::size_t>(dst.group);
    link = channels_[idx];
    latency += link_latencies_[idx];
  }
  co_await sim::Delay(*sched_, latency);

  // The flow occupies every segment concurrently; it completes when the
  // slowest segment has pumped all bytes. This approximates min-rate
  // fair-shared flows without per-chunk simulation. At most three segments
  // (src NIC tx, aggregate link channel, dst NIC rx) — joined inline, so
  // the steady-state path allocates nothing here.
  SegmentJoin join;
  join.demand = static_cast<double>(bytes);
  join.Add(&src.node->nic().tx());
  if (link != nullptr) join.Add(link);
  join.Add(&dst.node->nic().rx());
  co_await join;
}

sim::Task<void> Fabric::Transfer(int src_id, int dst_id, Bytes bytes,
                                 const obs::TraceHandle& trace,
                                 const char* name) {
  obs::CausalSpan span(trace, name, obs::Category::kNet, bytes);
  co_await Transfer(src_id, dst_id, bytes);
}

sim::Task<void> Fabric::RoundTrip(int src_id, int dst_id) {
  co_await sim::Delay(*sched_, Rtt(src_id, dst_id));
}

double Fabric::GroupLinkBusyFraction(const std::string& a,
                                     const std::string& b) const {
  const int ga = FindGroup(a);
  const int gb = FindGroup(b);
  if (ga < 0 || gb < 0) return 0.0;
  const GroupLink* link = FindLink(ga, gb);
  if (link == nullptr) return 0.0;
  return std::max(link->forward->busy_fraction(),
                  link->backward->busy_fraction());
}

void Fabric::PublishMetrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  // Probe registration order (and therefore CSV column order) must stay
  // deterministic and name-sorted, exactly as when links_ was an ordered
  // map keyed by name pair.
  std::vector<GroupLink*> sorted;
  sorted.reserve(links_.size());
  for (const auto& link : links_) sorted.push_back(link.get());
  std::sort(sorted.begin(), sorted.end(),
            [this](const GroupLink* x, const GroupLink* y) {
              const std::string& xa = group_names_[x->a];
              const std::string& ya = group_names_[y->a];
              if (xa != ya) return xa < ya;
              return group_names_[x->b] < group_names_[y->b];
            });
  for (GroupLink* l : sorted) {
    registry->AddGauge(
        prefix + ".link." + group_names_[l->a] + "-" + group_names_[l->b],
        [l] {
          return std::max(l->forward->busy_fraction(),
                          l->backward->busy_fraction());
        });
  }
}

}  // namespace wimpy::net
