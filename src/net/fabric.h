// Network fabric: endpoint NICs plus aggregate inter-group links.
//
// Topology model (paper §3, §4.4, §5.1.2): every node's NIC is a pair of
// fair-share channels (hw::NicModel); nodes are placed in *groups* (a rack
// or machine room with a non-blocking top-of-rack switch); traffic between
// groups additionally traverses a shared aggregate link of configured
// bandwidth — e.g. the single 1 Gbps uplink between the client room and the
// Edison room that caps aggregate web throughput in the paper's fairness
// discussion.
//
// A transfer completes when its last byte clears the slowest path segment;
// each segment is an independent fair-share server, which reproduces
// per-flow bandwidth sharing and aggregate bottleneck saturation.
//
// Beyond single links, a *group path* (SetGroupPath) routes traffic between
// two groups through intermediate groups — rack → aggregation → core — so a
// hierarchical datacenter tree (net/topology.h) composes from pairwise
// links: a cross-pod flow occupies both rack uplinks and the core hop
// concurrently and its bandwidth is the min fair share across all of them,
// which is exactly how oversubscription bites.
//
// Layout: group names are interned into dense integer ids at topology-build
// time; endpoints live in a flat vector indexed by node id (sparse ids leave
// holes) and the directed link channel / latency for any group pair is a
// G×G table lookup. The steady-state Transfer path therefore does no string
// hashing, no ordered-map walks, and no heap allocation.
#ifndef WIMPY_NET_FABRIC_H_
#define WIMPY_NET_FABRIC_H_

#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hw/server_node.h"
#include "obs/context.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/task.h"

namespace wimpy::obs {
class MetricsRegistry;
}  // namespace wimpy::obs

namespace wimpy::net {

class Fabric {
 public:
  explicit Fabric(sim::Scheduler* sched);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Registers a node in a group. Node ids must be unique across the fabric.
  void AddNode(hw::ServerNode* node, const std::string& group);

  // Configures the shared aggregate link between two groups (both
  // directions share one set of duplex channels, like a switch uplink).
  // Calling again replaces the previous configuration.
  void SetGroupLink(const std::string& a, const std::string& b,
                    BytesPerSecond bandwidth, Duration latency);

  // Routes a<->b traffic through the intermediate groups `via` (in a->b
  // order): the flow traverses link(a, via[0]), link(via[0], via[1]), ...,
  // link(via.back(), b), occupying every hop concurrently. All hops must
  // already be configured with SetGroupLink by the time traffic flows (the
  // path is re-resolved whenever the topology changes, so call order
  // doesn't matter). At most kMaxPathHops hops. Calling again replaces the
  // previous path for the pair; an empty `via` restores direct routing.
  void SetGroupPath(const std::string& a, const std::string& b,
                    const std::vector<std::string>& via);

  static constexpr int kMaxPathHops = 4;

  bool HasNode(int node_id) const;
  const std::string& GroupOf(int node_id) const;

  // Dense interned id of the node's group (assigned in first-seen order at
  // topology-build time). Id-indexed callers (KV routing tables, per-node
  // probes) key off this instead of the group name.
  int GroupIdOf(int node_id) const;

  // One-way propagation latency between two nodes: both endpoint latencies
  // plus the group link's latency when crossing groups. Loopback is ~free.
  Duration Latency(int src_id, int dst_id) const;
  Duration Rtt(int src_id, int dst_id) const {
    return 2.0 * Latency(src_id, dst_id);
  }

  // Moves `bytes` from src to dst; completes when the last byte arrives.
  // Loopback transfers only pay a negligible fixed cost.
  sim::Task<void> Transfer(int src_id, int dst_id, Bytes bytes);

  // Traced transfer: same semantics, wrapped in a causal child span
  // named `name` (category kNet, arg = bytes) under `trace` — the
  // message "carries the context header". Null handle = plain Transfer.
  sim::Task<void> Transfer(int src_id, int dst_id, Bytes bytes,
                           const obs::TraceHandle& trace, const char* name);

  // Small control message pair (SYN/ACK, ping): pays RTT, no bandwidth.
  sim::Task<void> RoundTrip(int src_id, int dst_id);

  // Instantaneous utilisation of the group link (0 if none configured).
  double GroupLinkBusyFraction(const std::string& a,
                               const std::string& b) const;

  // Time-averaged utilisation of the group link's busier direction since
  // construction (0 if none configured). The report-level counterpart of
  // the instantaneous gauge: where the oversubscription cliff shows up.
  double GroupLinkAverageBusyFraction(const std::string& a,
                                      const std::string& b) const;

  // Registers one busy-fraction gauge per configured group link, named
  // `<prefix>.link.<a>-<b>` (see docs/observability.md). Links configured
  // *after* this call are published too, at SetGroupLink time (appended
  // after the existing columns); links present now are registered
  // name-sorted, so a fully built topology keeps its deterministic column
  // order.
  void PublishMetrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

  sim::Scheduler& scheduler() { return *sched_; }

 private:
  struct Endpoint {
    hw::ServerNode* node = nullptr;
    int group = -1;  // interned group id
  };
  struct GroupLink {
    int a = -1;  // canonical pair: group_names_[a] <= group_names_[b]
    int b = -1;
    std::unique_ptr<sim::FairShareServer> forward;   // a->b
    std::unique_ptr<sim::FairShareServer> backward;  // b->a
    Duration latency = 0;
    bool published = false;  // gauge already registered
  };
  // A multi-hop route between two groups: the full group sequence
  // [a, via..., b], stored by name so it survives re-interning and link
  // replacement. Resolved into the flat path table on every rebuild.
  struct GroupPath {
    std::vector<std::string> groups;
  };
  // Resolved directed route: up to kMaxPathHops link channels a flow
  // occupies concurrently, plus the summed hop latency. nseg == 0 means
  // "no multi-hop path; use the direct link table".
  struct PathEntry {
    std::array<sim::FairShareServer*, kMaxPathHops> segs{};
    int nseg = 0;
    Duration latency = 0;
  };

  // Returns the dense id for a group name, interning it on first use.
  int InternGroup(const std::string& name);
  // Id of an already-interned group, or -1.
  int FindGroup(const std::string& name) const;
  const Endpoint& Lookup(int node_id) const;
  GroupLink* FindLink(int a, int b);
  const GroupLink* FindLink(int a, int b) const;
  // Registers the link's busy-fraction gauge with the stored registry (a
  // no-op before PublishMetrics has been called).
  void PublishLink(GroupLink* link);
  // Re-derives the G×G directed channel/latency tables from links_ and
  // re-resolves paths_ into path_table_. Called whenever a group, link,
  // or path is added — build time only.
  void RebuildLinkTables();

  sim::Scheduler* sched_;
  std::vector<std::string> group_names_;  // indexed by group id
  std::vector<Endpoint> endpoints_;       // indexed by node id, with holes
  // unique_ptr so gauge closures and the flat tables can hold stable
  // pointers across vector growth and link replacement.
  std::vector<std::unique_ptr<GroupLink>> links_;
  // Directed [src_group * G + dst_group] tables; nullptr / 0 where the
  // pair has no configured aggregate link.
  std::vector<sim::FairShareServer*> channels_;
  std::vector<Duration> link_latencies_;
  // Configured multi-hop routes (by name) and the resolved directed
  // [src_group * G + dst_group] table derived from them.
  std::vector<GroupPath> paths_;
  std::vector<PathEntry> path_table_;
  // Set by PublishMetrics so links configured later self-register.
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  std::string metrics_prefix_;
};

}  // namespace wimpy::net

#endif  // WIMPY_NET_FABRIC_H_
