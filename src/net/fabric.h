// Network fabric: endpoint NICs plus aggregate inter-group links.
//
// Topology model (paper §3, §4.4, §5.1.2): every node's NIC is a pair of
// fair-share channels (hw::NicModel); nodes are placed in *groups* (a rack
// or machine room with a non-blocking top-of-rack switch); traffic between
// groups additionally traverses a shared aggregate link of configured
// bandwidth — e.g. the single 1 Gbps uplink between the client room and the
// Edison room that caps aggregate web throughput in the paper's fairness
// discussion.
//
// A transfer completes when its last byte clears the slowest path segment;
// each segment is an independent fair-share server, which reproduces
// per-flow bandwidth sharing and aggregate bottleneck saturation.
#ifndef WIMPY_NET_FABRIC_H_
#define WIMPY_NET_FABRIC_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hw/server_node.h"
#include "obs/context.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/task.h"

namespace wimpy::obs {
class MetricsRegistry;
}  // namespace wimpy::obs

namespace wimpy::net {

class Fabric {
 public:
  explicit Fabric(sim::Scheduler* sched);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Registers a node in a group. Node ids must be unique across the fabric.
  void AddNode(hw::ServerNode* node, const std::string& group);

  // Configures the shared aggregate link between two groups (both
  // directions share one set of duplex channels, like a switch uplink).
  // Calling again replaces the previous configuration.
  void SetGroupLink(const std::string& a, const std::string& b,
                    BytesPerSecond bandwidth, Duration latency);

  bool HasNode(int node_id) const;
  const std::string& GroupOf(int node_id) const;

  // One-way propagation latency between two nodes: both endpoint latencies
  // plus the group link's latency when crossing groups. Loopback is ~free.
  Duration Latency(int src_id, int dst_id) const;
  Duration Rtt(int src_id, int dst_id) const {
    return 2.0 * Latency(src_id, dst_id);
  }

  // Moves `bytes` from src to dst; completes when the last byte arrives.
  // Loopback transfers only pay a negligible fixed cost.
  sim::Task<void> Transfer(int src_id, int dst_id, Bytes bytes);

  // Traced transfer: same semantics, wrapped in a causal child span
  // named `name` (category kNet, arg = bytes) under `trace` — the
  // message "carries the context header". Null handle = plain Transfer.
  sim::Task<void> Transfer(int src_id, int dst_id, Bytes bytes,
                           const obs::TraceHandle& trace, const char* name);

  // Small control message pair (SYN/ACK, ping): pays RTT, no bandwidth.
  sim::Task<void> RoundTrip(int src_id, int dst_id);

  // Instantaneous utilisation of the group link (0 if none configured).
  double GroupLinkBusyFraction(const std::string& a,
                               const std::string& b) const;

  // Registers one busy-fraction gauge per configured group link, named
  // `<prefix>.link.<a>-<b>` (see docs/observability.md). Call after all
  // SetGroupLink calls; links added later are not published.
  void PublishMetrics(obs::MetricsRegistry* registry,
                      const std::string& prefix);

  sim::Scheduler& scheduler() { return *sched_; }

 private:
  struct Endpoint {
    hw::ServerNode* node;
    std::string group;
  };
  struct GroupLink {
    std::unique_ptr<sim::FairShareServer> forward;   // a->b
    std::unique_ptr<sim::FairShareServer> backward;  // b->a
    Duration latency;
  };
  using GroupKey = std::pair<std::string, std::string>;

  static GroupKey MakeKey(const std::string& a, const std::string& b);
  const Endpoint& Lookup(int node_id) const;
  // Returns the directed link channel for src_group -> dst_group, or
  // nullptr when unconstrained.
  sim::FairShareServer* LinkChannel(const std::string& src_group,
                                    const std::string& dst_group) const;
  const GroupLink* FindLink(const std::string& a,
                            const std::string& b) const;

  sim::Scheduler* sched_;
  std::map<int, Endpoint> endpoints_;
  std::map<GroupKey, GroupLink> links_;
};

}  // namespace wimpy::net

#endif  // WIMPY_NET_FABRIC_H_
