#include "net/tcp.h"

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/batch_timer.h"

namespace wimpy::net {

TcpHost::TcpHost(Fabric* fabric, int node_id, const TcpConfig& config)
    : fabric_(fabric), node_id_(node_id), config_(config) {}

TcpHost::~TcpHost() = default;

bool TcpHost::TryEnterBacklog() {
  if (backlog_depth_ >= config_.listen_backlog) return false;
  ++backlog_depth_;
  return true;
}

void TcpHost::LeaveBacklog() {
  if (backlog_depth_ > 0) --backlog_depth_;
}

bool TcpHost::TryOpenConnectionSlot() {
  if (connections_open_ >= config_.max_connections) return false;
  ++connections_open_;
  return true;
}

void TcpHost::CloseConnectionSlot() {
  if (config_.time_wait > 0) {
    // The slot stays occupied through TIME_WAIT. Expirations all use the
    // same fixed delay, so they drain in close order — a batch timer
    // queue coalesces same-tick expiries into one engine event.
    if (!time_wait_timers_) {
      time_wait_timers_ = std::make_unique<sim::BatchTimerQueue>(
          &fabric_->scheduler(), config_.time_wait);
    }
    time_wait_timers_->Arm([this] {
      if (connections_open_ > 0) --connections_open_;
    });
    return;
  }
  if (connections_open_ > 0) --connections_open_;
}

bool TcpHost::TryAllocatePort() {
  if (ports_in_use_ >= config_.ephemeral_ports) return false;
  ++ports_in_use_;
  return true;
}

void TcpHost::ReleasePort() {
  if (ports_in_use_ > 0) --ports_in_use_;
}

void TcpHost::PublishMetrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) {
  registry->AddGauge(prefix + ".ports", [this] {
    return static_cast<double>(ports_in_use_);
  });
  registry->AddGauge(prefix + ".conns", [this] {
    return static_cast<double>(connections_open_);
  });
  registry->AddGauge(prefix + ".backlog", [this] {
    return static_cast<double>(backlog_depth_);
  });
  registry->AddCounter(prefix + ".syn_drops", [this] {
    return static_cast<double>(syn_drops_);
  });
}

TcpConnection::TcpConnection(TcpHost* client, TcpHost* server)
    : client_(client), server_(server) {}

TcpConnection::~TcpConnection() { Close(); }

sim::Task<ConnectResult> TcpConnection::Connect(
    bool hold_backlog, const obs::TraceHandle& trace) {
  ConnectResult result;
  sim::Scheduler& sched = client_->fabric().scheduler();
  const SimTime started = sched.now();
  obs::CausalSpan span(trace, "connect", obs::Category::kNet);

  if (!client_->TryAllocatePort()) {
    result.status = Status::ResourceExhausted("client ephemeral ports");
    co_return result;
  }
  port_held_ = true;

  Duration backoff = client_->config().syn_retry_base;
  for (int attempt = 0;; ++attempt) {
    // SYN travels to the server; if the backlog has room the handshake
    // completes after one RTT.
    if (server_->TryEnterBacklog()) {
      co_await client_->fabric().RoundTrip(client_->node_id(),
                                           server_->node_id());
      if (!server_->TryOpenConnectionSlot()) {
        // Accepted at SYN level but no descriptors left: connection reset.
        server_->LeaveBacklog();
        result.status =
            Status::ResourceExhausted("server connection slots");
        result.connect_delay = sched.now() - started;
        co_return result;
      }
      if (!hold_backlog) server_->LeaveBacklog();
      established_ = true;
      result.status = Status::Ok();
      result.connect_delay = sched.now() - started;
      result.retries = attempt;
      co_return result;
    }

    // SYN dropped silently; the client retransmits after the backoff.
    server_->CountSynDrop();
    span.Instant("syn_retry", attempt);
    if (attempt >= client_->config().syn_max_retries) {
      result.status = Status::Unavailable("connection timed out");
      result.connect_delay = sched.now() - started;
      result.retries = attempt;
      co_return result;
    }
    co_await sim::Delay(sched, backoff);
    backoff *= 2.0;
    result.retries = attempt + 1;
  }
}

sim::Task<void> TcpConnection::Exchange(Bytes request_bytes,
                                        Bytes response_bytes) {
  co_await client_->fabric().Transfer(client_->node_id(),
                                      server_->node_id(), request_bytes);
  co_await client_->fabric().Transfer(server_->node_id(),
                                      client_->node_id(), response_bytes);
}

sim::Task<void> TcpConnection::Send(Bytes bytes) {
  co_await client_->fabric().Transfer(client_->node_id(),
                                      server_->node_id(), bytes);
}

void TcpConnection::Close() {
  if (established_) {
    server_->CloseConnectionSlot();
    established_ = false;
  }
  if (port_held_) {
    // tcp_tw_reuse is on (paper tuning): the port returns immediately.
    client_->ReleasePort();
    port_held_ = false;
  }
}

}  // namespace wimpy::net
