#!/usr/bin/env bash
# Exports a Chrome trace + metrics CSV from bench_fig4_7_web_light,
# bench_fig10_11_delay_hist, and bench_fig12_17_mr_timelines (the last
# also pins that cross-track flow arrows are present — MapReduce task
# attempts live on per-node tracks under the job span) and
# validates them: the trace must be parseable JSON in trace-event format
# (every event carries ph/ts/name/pid/tid/cat, instants carry the scope
# key, ts is monotonic per (pid, tid) track, span begins/ends balance,
# causal ids are consistent, and cross-track flow arrows come in matched
# s/f pairs with shared string ids) and the CSV must be well-formed long
# format (docs/observability.md). The trace is also folded through
# tools/flamegraph.py as a smoke test of the flame-graph pipeline.
#
# A third section exercises the causal-tracing path end to end:
# bench_kv_queries_per_joule at --seed=77 exports a trace plus the
# --trace-summary roll-up CSV, tools/trace_analyze.py runs over both, and
# the output is diffed against the checked-in golden
# (tests/data/trace_analyze_kv_seed77.txt) — the same golden ctest pins.
#
# A fourth section runs bench_scale_macro --determinism at 100k simulated
# connections (both workloads) at --threads=1 and 8 and requires
# byte-identical stats + golden-trace prefixes (docs/scale.md).
#
# A fifth section validates the sharded scale-out exports
# (bench_shard_scaleout, docs/sharding.md): the seed-77 trace must pass
# the schema/causal-id validation, contain shard_hop routing spans AND
# migration spans (shard_move) from the churn cells, and reproduce the
# trace_analyze.py golden (tests/data/trace_analyze_shard_seed77.txt);
# --determinism output must be byte-identical at --threads=1 vs 8.
#
# A sixth section validates the telemetry plane (docs/telemetry.md):
# the kv bench with --telemetry/--alerts at --seed=77 must emit alert and
# node-health instants on the trace, health.* metric columns, schema-valid
# rollup + alert CSVs with the alerts matching a checked-in golden, and
# both CSVs byte-identical at --threads=1 vs 8 (run unconditionally); the
# telemetry-enabled trace is smoke-tested through flamegraph.py and
# trace_analyze.py, which must ignore the new instant categories.
#
# A seventh section validates the open-loop SLO surface (docs/openloop.md):
# the --slo-ms trace-summary schema (base header unchanged, under_slo
# column appended with 0/1 values, slo_goodput_per_joule roll-up printed)
# and bench_slo_openloop --determinism byte-identical at --threads=1 vs 8.
#
# Usage:
#   cmake -B build -S . && cmake --build build -j
#   tools/check_trace.sh
#   BUILD_DIR=out tools/check_trace.sh
#   CHECK_DETERMINISM=1 tools/check_trace.sh   # also run --threads=1 vs 8
#
# CHECK_DETERMINISM re-runs each bench at two worker-thread counts with the
# same seed and requires byte-identical exports (the contract obs tests
# pin at unit level; this checks it end to end, ~3x the runtime).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCHES=(bench_fig4_7_web_light bench_fig10_11_delay_hist
         bench_fig12_17_mr_timelines)
for name in "${BENCHES[@]}" bench_kv_queries_per_joule bench_scale_macro \
            bench_shard_scaleout bench_slo_openloop; do
  if [[ ! -x "${BUILD_DIR}/bench/${name}" ]]; then
    echo "error: ${BUILD_DIR}/bench/${name} not found; build it first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
done

WORK="$(mktemp -d /tmp/wimpy_trace.XXXXXX)"
trap 'rm -rf "${WORK}"' EXIT

validate_trace() {
  python3 - "$1" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

events = doc["traceEvents"]
assert events, "traceEvents is empty"
last_ts = {}
phases = set()
categories = set()
for e in events:
    for key in ("ph", "ts", "name", "pid", "tid", "cat"):
        assert key in e, f"event missing {key!r}: {e}"
    phases.add(e["ph"])
    categories.add(e["cat"])
    if e["ph"] == "i":
        assert e.get("s") == "t", f"instant without scope: {e}"
    track = (e["pid"], e["tid"])
    prev = last_ts.get(track)
    assert prev is None or e["ts"] >= prev, \
        f"ts went backwards on track {track}: {prev} -> {e['ts']}"
    last_ts[track] = e["ts"]

begins = sum(1 for e in events if e["ph"] == "B")
ends = sum(1 for e in events if e["ph"] == "E")
assert begins == ends, f"unbalanced spans: {begins} B vs {ends} E"

# Causal identity (docs/observability.md): span B/E events may carry
# args.trace/span/parent; every causal child's parent id must be another
# span id of the same trace (or an unsampled enclosing span is absent —
# only the root may be parentless), and ids are never self-referential.
causal = 0
spans_by_trace = {}
for e in events:
    if e["ph"] not in ("B", "E"):
        continue
    args = e.get("args", {})
    if args.get("trace", 0) == 0 or args.get("span", 0) == 0:
        continue
    causal += 1
    assert args["span"] != args.get("parent", 0), f"self-parent: {e}"
    if e["ph"] == "B":
        spans_by_trace.setdefault(args["trace"], set()).add(args["span"])
orphans = 0
for e in events:
    if e["ph"] != "B":
        continue
    args = e.get("args", {})
    parent = args.get("parent", 0)
    if args.get("trace", 0) == 0 or parent == 0:
        continue
    if parent not in spans_by_trace.get(args["trace"], set()):
        orphans += 1
assert orphans == 0, f"{orphans} causal spans with unknown parent ids"

# Flow arrows: every s (start) pairs with exactly one f (finish) on the
# same string id, the finish binds to its enclosing slice (bp == "e"),
# and both endpoints share pid and ts (they mark one causal edge).
flows = {}
for e in events:
    if e["ph"] in ("s", "f"):
        assert "id" in e, f"flow event without id: {e}"
        flows.setdefault(e["id"], []).append(e)
for fid, pair in flows.items():
    kinds = sorted(p["ph"] for p in pair)
    assert kinds == ["f", "s"], f"unpaired flow {fid}: {kinds}"
    f_ev = next(p for p in pair if p["ph"] == "f")
    s_ev = next(p for p in pair if p["ph"] == "s")
    assert f_ev.get("bp") == "e", f"flow finish without bp=e: {f_ev}"
    assert f_ev["pid"] == s_ev["pid"] and f_ev["ts"] == s_ev["ts"], \
        f"flow endpoints disagree: {s_ev} vs {f_ev}"
    assert f_ev["tid"] != s_ev["tid"], f"flow within one track: {fid}"

horizon_closed = sum(1 for e in events
                     if e.get("args", {}).get("closed_at_horizon"))
print(f"trace OK: {len(events)} events on {len(last_ts)} tracks, "
      f"phases {sorted(phases)}, categories {sorted(categories)}, "
      f"{begins} balanced spans, {causal} causal span events, "
      f"{len(flows)} flow arrows, {horizon_closed} closed at horizon")
EOF
}

validate_metrics() {
  # Metrics CSV: exact header, every row 4 comma-separated fields.
  head -n 1 "$1" | grep -qx 'series,time_s,metric,value' \
    || { echo "error: bad metrics CSV header" >&2; exit 1; }
  local rows bad
  rows="$(tail -n +2 "$1" | wc -l)"
  bad="$(tail -n +2 "$1" | awk -F, 'NF != 4' | head -n 3)"
  if [[ -n "${bad}" ]]; then
    echo "error: malformed metrics CSV rows:" >&2
    echo "${bad}" >&2
    exit 1
  fi
  echo "metrics OK: ${rows} rows"
}

check_bench() {
  local name="$1"
  local bin="${BUILD_DIR}/bench/${name}"
  local trace="${WORK}/${name}.trace.json"
  local metrics="${WORK}/${name}.metrics.csv"
  echo "== ${name} =="
  echo "running ${bin} with --trace/--metrics export..."
  "${bin}" --replications=1 --trace="${trace}" --metrics="${metrics}" \
    > "${WORK}/${name}.stdout.txt"
  validate_trace "${trace}"
  validate_metrics "${metrics}"

  # MapReduce task attempts run on per-node tracks under the job span, so
  # its export must contain cross-track flow arrows — the guard that the
  # exporter's s/f emission didn't silently go dead (web/kv request trees
  # stay on one track each and legitimately carry none).
  if [[ "${name}" == "bench_fig12_17_mr_timelines" ]]; then
    local n_flows
    n_flows="$(grep -c '"ph":"s"' "${trace}" || true)"
    if [[ "${n_flows}" -eq 0 ]]; then
      echo "error: ${name} trace has no flow arrows" >&2
      exit 1
    fi
    echo "flow arrows OK: ${n_flows} cross-track causal edges"
  fi

  # Fold the trace for a flame graph; any non-empty output means the span
  # nesting survived the round trip (goldens pin exact values in ctest).
  local folded="${WORK}/${name}.folded"
  python3 tools/flamegraph.py "${trace}" -o "${folded}"
  [[ -s "${folded}" ]] \
    || { echo "error: flamegraph.py produced no folded stacks" >&2; exit 1; }
  echo "flamegraph OK: $(wc -l < "${folded}") folded stacks"

  if [[ "${CHECK_DETERMINISM:-0}" != "0" ]]; then
    echo "re-running at --threads=1 and --threads=8 (same seed)..."
    for t in 1 8; do
      "${bin}" --replications=2 --threads="${t}" \
        --trace="${WORK}/${name}.trace_t${t}.json" \
        --metrics="${WORK}/${name}.metrics_t${t}.csv" > /dev/null
    done
    cmp "${WORK}/${name}.trace_t1.json" "${WORK}/${name}.trace_t8.json" \
      || { echo "error: trace differs across --threads" >&2; exit 1; }
    cmp "${WORK}/${name}.metrics_t1.csv" "${WORK}/${name}.metrics_t8.csv" \
      || { echo "error: metrics differ across --threads" >&2; exit 1; }
    echo "determinism OK: exports byte-identical at --threads=1 and 8"
  fi
}

for name in "${BENCHES[@]}"; do
  check_bench "${name}"
done

# --- causal tracing + critical-path/joule profiler golden ---------------
# bench_kv_queries_per_joule at a pinned seed exports the causal trace and
# the --trace-summary roll-up; trace_analyze.py over both must reproduce
# the checked-in golden byte for byte (same pin as ctest's
# tools_trace_analyze_kv_seed77_golden).
kv_bin="${BUILD_DIR}/bench/bench_kv_queries_per_joule"
kv_trace="${WORK}/kv77.trace.json"
kv_summary="${WORK}/kv77.summary.csv"
echo "== bench_kv_queries_per_joule (causal golden, --seed=77) =="
"${kv_bin}" --replications=1 --threads=1 --seed=77 \
  --trace="${kv_trace}" --trace-summary="${kv_summary}" \
  > "${WORK}/kv77.stdout.txt"
validate_trace "${kv_trace}"
head -n 1 "${kv_summary}" \
  | grep -qx 'series,trace_id,root,begin_s,latency_s,spans,complete,joules' \
  || { echo "error: bad trace-summary CSV header" >&2; exit 1; }
echo "trace summary OK: $(($(wc -l < "${kv_summary}") - 1)) rows"
python3 tools/trace_analyze.py "${kv_trace}" --summary "${kv_summary}" \
  -o "${WORK}/kv77.analysis.txt"
diff -u tests/data/trace_analyze_kv_seed77.txt "${WORK}/kv77.analysis.txt" \
  || { echo "error: trace_analyze.py output drifted from golden" >&2; \
       exit 1; }
echo "trace_analyze OK: output matches tests/data/trace_analyze_kv_seed77.txt"

if [[ "${CHECK_DETERMINISM:-0}" != "0" ]]; then
  echo "re-running causal exports at --threads=8 (same seed)..."
  "${kv_bin}" --replications=1 --threads=8 --seed=77 \
    --trace="${WORK}/kv77.trace_t8.json" \
    --trace-summary="${WORK}/kv77.summary_t8.csv" > /dev/null
  cmp "${kv_trace}" "${WORK}/kv77.trace_t8.json" \
    || { echo "error: causal trace differs across --threads" >&2; exit 1; }
  cmp "${kv_summary}" "${WORK}/kv77.summary_t8.csv" \
    || { echo "error: trace summary differs across --threads" >&2; exit 1; }
  echo "determinism OK: causal trace + summary byte-identical at --threads=1 and 8"
fi

# --- large-N determinism: macro bench at 100k connections ----------------
# bench_scale_macro --determinism prints per-replication final stats plus a
# golden-trace prefix, a pure function of (cells, seed, reps). At the macro
# scale (100k simulated connections, web-heavy and KV workloads) the output
# must be byte-identical across worker-thread counts — the end-to-end guard
# that the pooled/interned steady-state model layer (docs/scale.md)
# preserves the bit-identical-at-any---threads contract.
macro_bin="${BUILD_DIR}/bench/bench_scale_macro"
echo "== bench_scale_macro (large-N determinism, 100k connections) =="
for t in 1 8; do
  "${macro_bin}" --determinism --connections=100000 --reps=2 --seed=77 \
    --threads="${t}" > "${WORK}/macro_det_t${t}.txt"
done
cmp "${WORK}/macro_det_t1.txt" "${WORK}/macro_det_t8.txt" \
  || { echo "error: macro determinism output differs across --threads" >&2; \
       exit 1; }
echo "determinism OK: 100k-connection stats + trace prefix byte-identical" \
     "at --threads=1 and 8 ($(wc -l < "${WORK}/macro_det_t1.txt") lines)"

# --- sharded scale-out exports + migration spans + determinism ----------
# bench_shard_scaleout at the pinned seed: validate the causal trace,
# require both the routing spans (shard_hop) and the live-rebalance spans
# (shard_move, from the churn cells), and diff trace_analyze.py against
# the checked-in golden (same pin as ctest's
# tools_trace_analyze_shard_seed77_golden).
shard_bin="${BUILD_DIR}/bench/bench_shard_scaleout"
shard_trace="${WORK}/shard77.trace.json"
shard_summary="${WORK}/shard77.summary.csv"
echo "== bench_shard_scaleout (scale-out golden, --seed=77) =="
"${shard_bin}" --replications=1 --threads=1 --seed=77 \
  --trace="${shard_trace}" --trace-summary="${shard_summary}" \
  > "${WORK}/shard77.stdout.txt"
validate_trace "${shard_trace}"
for span in shard_hop shard_move migration migrate_batch cutover; do
  grep -q "\"name\":\"${span}\"" "${shard_trace}" \
    || { echo "error: shard trace has no ${span} spans" >&2; exit 1; }
done
echo "shard spans OK: routing + migration spans present"
python3 tools/trace_analyze.py "${shard_trace}" \
  --summary "${shard_summary}" -o "${WORK}/shard77.analysis.txt"
diff -u tests/data/trace_analyze_shard_seed77.txt \
  "${WORK}/shard77.analysis.txt" \
  || { echo "error: shard trace_analyze.py output drifted from golden" >&2; \
       exit 1; }
echo "trace_analyze OK: matches tests/data/trace_analyze_shard_seed77.txt"

# Determinism at any --threads is part of the sweep's contract (the ring
# map, migration schedule, and every report number are pure functions of
# the seed), so this one runs unconditionally.
echo "re-running --determinism at --threads=1 and 8 (same seed)..."
for t in 1 8; do
  "${shard_bin}" --determinism --replications=2 --seed=77 \
    --threads="${t}" > "${WORK}/shard_det_t${t}.txt"
done
cmp "${WORK}/shard_det_t1.txt" "${WORK}/shard_det_t8.txt" \
  || { echo "error: shard determinism output differs across --threads" >&2; \
       exit 1; }
echo "determinism OK: shard sweep stats + trace prefix byte-identical" \
     "at --threads=1 and 8 ($(wc -l < "${WORK}/shard_det_t1.txt") lines)"

if [[ "${CHECK_DETERMINISM:-0}" != "0" ]]; then
  echo "re-running shard exports at --threads=8 (same seed)..."
  "${shard_bin}" --replications=1 --threads=8 --seed=77 \
    --trace="${WORK}/shard77.trace_t8.json" \
    --trace-summary="${WORK}/shard77.summary_t8.csv" > /dev/null
  cmp "${shard_trace}" "${WORK}/shard77.trace_t8.json" \
    || { echo "error: shard trace differs across --threads" >&2; exit 1; }
  cmp "${shard_summary}" "${WORK}/shard77.summary_t8.csv" \
    || { echo "error: shard summary differs across --threads" >&2; exit 1; }
  echo "determinism OK: shard trace + summary byte-identical at --threads=1 and 8"
fi

# --- telemetry plane: rollups, alerts, node health (docs/telemetry.md) --
# bench_kv_queries_per_joule with --telemetry/--alerts at the pinned seed:
# the trace must carry alert + health instants, the metrics CSV the
# health.* columns, the telemetry CSV the 4-field rollup schema, and the
# alerts CSV the 7-field schema whose seed-77 content matches the
# checked-in golden. Both new exports must be byte-identical across
# worker-thread counts (this runs unconditionally — the alert instants
# are the whole point of the determinism contract). The telemetry-enabled
# trace is also pushed through flamegraph.py and trace_analyze.py as the
# pipeline smoke test that the new instant categories are ignored.
tel_csv="${WORK}/kv77.telemetry.csv"
alerts_csv="${WORK}/kv77.alerts.csv"
tel_trace="${WORK}/kv77_tel.trace.json"
tel_metrics="${WORK}/kv77_tel.metrics.csv"
echo "== telemetry plane (--seed=77, --slo-ms=8) =="
"${kv_bin}" --replications=1 --threads=1 --seed=77 --slo-ms=8 \
  --trace="${tel_trace}" --metrics="${tel_metrics}" \
  --telemetry="${tel_csv}" --alerts="${alerts_csv}" \
  > "${WORK}/kv77_tel.stdout.txt"
validate_trace "${tel_trace}"
validate_metrics "${tel_metrics}"
for cat in alert health; do
  grep -q "\"cat\":\"${cat}\"" "${tel_trace}" \
    || { echo "error: telemetry trace has no ${cat} instants" >&2; exit 1; }
done
grep -q ',health\.' "${tel_metrics}" \
  || { echo "error: metrics CSV has no health.* columns" >&2; exit 1; }
echo "instants OK: $(grep -c '"cat":"alert"' "${tel_trace}") alert," \
     "$(grep -c '"cat":"health"' "${tel_trace}") health;" \
     "$(grep -c ',health\.' "${tel_metrics}") health metric rows"

head -n 1 "${tel_csv}" | grep -qx 'series,time_s,metric,value' \
  || { echo "error: bad telemetry CSV header" >&2; exit 1; }
bad="$(tail -n +2 "${tel_csv}" | awk -F, 'NF != 4' | head -n 3)"
if [[ -n "${bad}" ]]; then
  echo "error: malformed telemetry CSV rows:" >&2
  echo "${bad}" >&2
  exit 1
fi
echo "telemetry CSV OK: $(($(wc -l < "${tel_csv}") - 1)) rollup rows"

head -n 1 "${alerts_csv}" \
  | grep -qx 'series,time_s,rule,metric,value,threshold,window_s' \
  || { echo "error: bad alerts CSV header" >&2; exit 1; }
bad="$(tail -n +2 "${alerts_csv}" | awk -F, 'NF != 7' | head -n 3)"
if [[ -n "${bad}" ]]; then
  echo "error: malformed alerts CSV rows:" >&2
  echo "${bad}" >&2
  exit 1
fi
diff -u tests/data/alerts_kv_seed77.csv "${alerts_csv}" \
  || { echo "error: alerts CSV drifted from golden" >&2; exit 1; }
echo "alerts OK: matches tests/data/alerts_kv_seed77.csv" \
     "($(($(wc -l < "${alerts_csv}") - 1)) firings)"

# Pipeline smoke: the alert/health instants must not break or leak into
# the span-based analyzers.
python3 tools/flamegraph.py "${tel_trace}" -o "${WORK}/kv77_tel.folded"
[[ -s "${WORK}/kv77_tel.folded" ]] \
  || { echo "error: flamegraph.py choked on telemetry trace" >&2; exit 1; }
python3 tools/trace_analyze.py "${tel_trace}" \
  -o "${WORK}/kv77_tel.analysis.txt"
[[ -s "${WORK}/kv77_tel.analysis.txt" ]] \
  || { echo "error: trace_analyze.py choked on telemetry trace" >&2; exit 1; }
echo "pipeline OK: flamegraph + trace_analyze ignore alert/health instants"

echo "re-running telemetry exports at --threads=8 (same seed)..."
"${kv_bin}" --replications=1 --threads=8 --seed=77 --slo-ms=8 \
  --telemetry="${WORK}/kv77.telemetry_t8.csv" \
  --alerts="${WORK}/kv77.alerts_t8.csv" > /dev/null
cmp "${tel_csv}" "${WORK}/kv77.telemetry_t8.csv" \
  || { echo "error: telemetry CSV differs across --threads" >&2; exit 1; }
cmp "${alerts_csv}" "${WORK}/kv77.alerts_t8.csv" \
  || { echo "error: alerts CSV differs across --threads" >&2; exit 1; }
echo "determinism OK: telemetry + alerts byte-identical at --threads=1 and 8"

# --- open-loop SLO surface: --slo-ms schema + sweep determinism ---------
# The --slo-ms flag must append exactly one under_slo column (0/1) to the
# trace-summary CSV — the default header is pinned above, so existing
# consumers never see it — and print the slo_goodput_per_joule roll-up
# re-derived from exports alone (docs/openloop.md).
slo_summary="${WORK}/kv77_slo.summary.csv"
echo "== --slo-ms trace-summary schema (--seed=77, --slo-ms=8) =="
"${kv_bin}" --replications=1 --threads=1 --seed=77 --slo-ms=8 \
  --trace-summary="${slo_summary}" > "${WORK}/kv77_slo.stdout.txt"
head -n 1 "${slo_summary}" | grep -qx \
  'series,trace_id,root,begin_s,latency_s,spans,complete,joules,under_slo' \
  || { echo "error: bad --slo-ms trace-summary header" >&2; exit 1; }
bad="$(tail -n +2 "${slo_summary}" \
  | awk -F, 'NF != 9 || ($9 != 0 && $9 != 1)' | head -n 3)"
if [[ -n "${bad}" ]]; then
  echo "error: malformed under_slo rows:" >&2
  echo "${bad}" >&2
  exit 1
fi
grep -q 'slo_goodput_per_joule=' "${WORK}/kv77_slo.stdout.txt" \
  || { echo "error: --slo-ms did not print the SLO roll-up" >&2; exit 1; }
under="$(tail -n +2 "${slo_summary}" | awk -F, '$9 == 1' | wc -l)"
total="$(($(wc -l < "${slo_summary}") - 1))"
echo "under_slo column OK: ${under}/${total} rows within the 8 ms bound"

# The open-loop sweep itself (arrival schedules, gate, recorder, energy
# roll-up) is a pure function of the seed at any --threads.
slo_bin="${BUILD_DIR}/bench/bench_slo_openloop"
echo "== bench_slo_openloop (open-loop sweep determinism, --seed=77) =="
for t in 1 8; do
  "${slo_bin}" --determinism --replications=2 --seed=77 \
    --threads="${t}" > "${WORK}/slo_det_t${t}.txt"
done
cmp "${WORK}/slo_det_t1.txt" "${WORK}/slo_det_t8.txt" \
  || { echo "error: open-loop determinism output differs across --threads" >&2; \
       exit 1; }
echo "determinism OK: open-loop sweep stats byte-identical" \
     "at --threads=1 and 8 ($(wc -l < "${WORK}/slo_det_t1.txt") lines)"

echo "OK: trace and metrics exports validate"
