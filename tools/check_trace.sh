#!/usr/bin/env bash
# Exports a Chrome trace + metrics CSV from bench_fig4_7_web_light and
# bench_fig10_11_delay_hist (one original + one newly converted bench) and
# validates them: the trace must be parseable JSON in trace-event format
# (every event carries ph/ts/name/pid/tid/cat, instants carry the scope
# key, ts is monotonic per (pid, tid) track, span begins/ends balance) and
# the CSV must be well-formed long format (docs/observability.md). The
# trace is also folded through tools/flamegraph.py as a smoke test of the
# flame-graph pipeline.
#
# Usage:
#   cmake -B build -S . && cmake --build build -j
#   tools/check_trace.sh
#   BUILD_DIR=out tools/check_trace.sh
#   CHECK_DETERMINISM=1 tools/check_trace.sh   # also run --threads=1 vs 4
#
# CHECK_DETERMINISM re-runs each bench at two worker-thread counts with the
# same seed and requires byte-identical exports (the contract obs tests
# pin at unit level; this checks it end to end, ~3x the runtime).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCHES=(bench_fig4_7_web_light bench_fig10_11_delay_hist)
for name in "${BENCHES[@]}"; do
  if [[ ! -x "${BUILD_DIR}/bench/${name}" ]]; then
    echo "error: ${BUILD_DIR}/bench/${name} not found; build it first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
done

WORK="$(mktemp -d /tmp/wimpy_trace.XXXXXX)"
trap 'rm -rf "${WORK}"' EXIT

validate_trace() {
  python3 - "$1" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

events = doc["traceEvents"]
assert events, "traceEvents is empty"
last_ts = {}
phases = set()
categories = set()
for e in events:
    for key in ("ph", "ts", "name", "pid", "tid", "cat"):
        assert key in e, f"event missing {key!r}: {e}"
    phases.add(e["ph"])
    categories.add(e["cat"])
    if e["ph"] == "i":
        assert e.get("s") == "t", f"instant without scope: {e}"
    track = (e["pid"], e["tid"])
    prev = last_ts.get(track)
    assert prev is None or e["ts"] >= prev, \
        f"ts went backwards on track {track}: {prev} -> {e['ts']}"
    last_ts[track] = e["ts"]

begins = sum(1 for e in events if e["ph"] == "B")
ends = sum(1 for e in events if e["ph"] == "E")
assert begins == ends, f"unbalanced spans: {begins} B vs {ends} E"
print(f"trace OK: {len(events)} events on {len(last_ts)} tracks, "
      f"phases {sorted(phases)}, categories {sorted(categories)}, "
      f"{begins} balanced spans")
EOF
}

validate_metrics() {
  # Metrics CSV: exact header, every row 4 comma-separated fields.
  head -n 1 "$1" | grep -qx 'series,time_s,metric,value' \
    || { echo "error: bad metrics CSV header" >&2; exit 1; }
  local rows bad
  rows="$(tail -n +2 "$1" | wc -l)"
  bad="$(tail -n +2 "$1" | awk -F, 'NF != 4' | head -n 3)"
  if [[ -n "${bad}" ]]; then
    echo "error: malformed metrics CSV rows:" >&2
    echo "${bad}" >&2
    exit 1
  fi
  echo "metrics OK: ${rows} rows"
}

check_bench() {
  local name="$1"
  local bin="${BUILD_DIR}/bench/${name}"
  local trace="${WORK}/${name}.trace.json"
  local metrics="${WORK}/${name}.metrics.csv"
  echo "== ${name} =="
  echo "running ${bin} with --trace/--metrics export..."
  "${bin}" --replications=1 --trace="${trace}" --metrics="${metrics}" \
    > "${WORK}/${name}.stdout.txt"
  validate_trace "${trace}"
  validate_metrics "${metrics}"

  # Fold the trace for a flame graph; any non-empty output means the span
  # nesting survived the round trip (goldens pin exact values in ctest).
  local folded="${WORK}/${name}.folded"
  python3 tools/flamegraph.py "${trace}" -o "${folded}"
  [[ -s "${folded}" ]] \
    || { echo "error: flamegraph.py produced no folded stacks" >&2; exit 1; }
  echo "flamegraph OK: $(wc -l < "${folded}") folded stacks"

  if [[ "${CHECK_DETERMINISM:-0}" != "0" ]]; then
    echo "re-running at --threads=1 and --threads=4 (same seed)..."
    for t in 1 4; do
      "${bin}" --replications=2 --threads="${t}" \
        --trace="${WORK}/${name}.trace_t${t}.json" \
        --metrics="${WORK}/${name}.metrics_t${t}.csv" > /dev/null
    done
    cmp "${WORK}/${name}.trace_t1.json" "${WORK}/${name}.trace_t4.json" \
      || { echo "error: trace differs across --threads" >&2; exit 1; }
    cmp "${WORK}/${name}.metrics_t1.csv" "${WORK}/${name}.metrics_t4.csv" \
      || { echo "error: metrics differ across --threads" >&2; exit 1; }
    echo "determinism OK: exports byte-identical at --threads=1 and 4"
  fi
}

for name in "${BENCHES[@]}"; do
  check_bench "${name}"
done

echo "OK: trace and metrics exports validate"
