#!/usr/bin/env python3
"""Critical-path/joule profiler over causal trace exports.

Reads a Chrome trace-event JSON written by obs::WriteChromeTrace
(--trace exports) and optionally the per-trace roll-up CSV written by
obs::WriteTraceSummaryCsv (--trace-summary exports), rebuilds each
sampled request/job's span tree from the causal ids the events carry
(args.trace/span/parent), and reports per root-span-name aggregates:

  * trace counts (and how many were cut by the run horizon),
  * latency statistics of the root span,
  * the critical-path latency decomposition — for every trace, a
    backward walk from the root's end attributes each instant of the
    root's latency to exactly one span (the deepest child still
    running), so the per-name totals answer "where did the time go"
    (Table 7's db/cache/serve split, a MapReduce job's map vs reduce
    vs shuffle time),
  * attributed joules per trace when a summary CSV is given.

The walk mirrors src/obs/critical_path.cc exactly, including its
tie-breaks (bottleneck child = latest effective end, ties toward the
later begin then the larger span id), and all floats render with the
same %.9g contract as the C++ exporters — so for a fixed --seed the
output is byte-stable and a ctest golden pins the two implementations
against each other.

Usage:
    trace_analyze.py TRACE.json [--summary SUMMARY.csv] [-o OUT]
"""

import argparse
import json
import sys


def num(v):
    """C++ exporter float contract: printf %.9g."""
    return "%.9g" % v


class Span:
    __slots__ = ("span_id", "parent_id", "name", "begin", "end",
                 "complete", "children")

    def __init__(self, span_id, parent_id, name, begin):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.begin = begin
        self.end = begin
        self.complete = False
        self.children = []


def build_trees(events):
    """Rebuilds {trace_id: [Span...]} per pid from one export's events.

    Returns {pid: {trace_id: (spans, root_index)}} with spans sorted by
    (begin, span_id) and children as indices — the same shape
    obs::BuildTraceTrees produces. Exporter-synthesized closes
    (closed_at_horizon) end the span but leave it marked incomplete,
    matching the C++ builder's handling of the in-memory log.
    """
    per_pid = {}
    for e in events:
        if e.get("ph") not in ("B", "E"):
            continue
        # Telemetry-plane instants (cat "alert"/"health") are point
        # events outside any causal span tree; skip them explicitly so
        # a future durationed form can never masquerade as a span.
        if e.get("cat") in ("alert", "health"):
            continue
        args = e.get("args", {})
        trace_id = args.get("trace", 0)
        span_id = args.get("span", 0)
        if trace_id == 0 or span_id == 0:
            continue
        pid = e.get("pid", 0)
        ts = float(e.get("ts", 0.0)) / 1e6  # simulated seconds
        traces = per_pid.setdefault(pid, {})
        spans = traces.setdefault(trace_id, {})
        if e["ph"] == "B":
            spans[span_id] = Span(span_id, args.get("parent", 0),
                                  e.get("name", "?"), ts)
        else:
            span = spans.get(span_id)
            if span is not None:
                span.end = ts
                span.complete = args.get("closed_at_horizon", 0) == 0

    out = {}
    for pid, traces in per_pid.items():
        built = {}
        for trace_id, by_id in traces.items():
            spans = sorted(by_id.values(),
                           key=lambda s: (s.begin, s.span_id))
            index = {s.span_id: i for i, s in enumerate(spans)}
            root = None
            for i, s in enumerate(spans):
                parent = index.get(s.parent_id)
                if s.parent_id != 0 and parent is not None:
                    spans[parent].children.append(i)
                elif root is None:
                    root = i
            built[trace_id] = (spans, root)
        out[pid] = built
    return out


def critical_path(spans, root):
    """Mirror of obs::CriticalPath: [(span_index, begin, end)] tiling
    [root.begin, root.end] in forward time order."""
    segments = []

    def walk(si, until):
        s = spans[si]
        t = min(until, s.end)
        while t > s.begin:
            best = None
            best_ce = 0.0
            for ci in s.children:
                c = spans[ci]
                if c.begin >= t:
                    continue
                ce = min(c.end, t)
                if ce <= s.begin:
                    continue
                b = None if best is None else spans[best]
                if (b is None or ce > best_ce or
                        (ce == best_ce and
                         (c.begin > b.begin or
                          (c.begin == b.begin and c.span_id > b.span_id)))):
                    best = ci
                    best_ce = ce
            if best is None:
                segments.append((si, s.begin, t))
                return
            if best_ce < t:
                segments.append((si, best_ce, t))
            walk(best, best_ce)
            t = max(spans[best].begin, s.begin)

    if spans:
        walk(root, spans[root].end)
    segments.reverse()
    return segments


def read_summary(path):
    """{(series, trace_id): joules} from a --trace-summary CSV."""
    joules = {}
    with open(path, "r", encoding="utf-8") as f:
        header = f.readline().strip()
        expected = "series,trace_id,root,begin_s,latency_s,spans,complete,joules"
        if header != expected:
            sys.exit(f"error: unexpected summary header: {header}")
        for line in f:
            parts = line.strip().split(",")
            if len(parts) != 8:
                sys.exit(f"error: malformed summary row: {line.strip()}")
            joules[(int(parts[0]), int(parts[1]))] = float(parts[7])
    return joules


def analyze(doc, joules_by_trace):
    lines = []
    trees = build_trees(doc.get("traceEvents", []))
    for pid in sorted(trees):
        # Group this export's traces by root-span name.
        groups = {}
        for trace_id in sorted(trees[pid]):
            spans, root = trees[pid][trace_id]
            if root is None:
                continue
            groups.setdefault(spans[root].name, []).append(trace_id)
        lines.append(f"pid {pid}: {sum(len(g) for g in groups.values())} "
                     f"traces, {len(groups)} root name(s)")
        for name in sorted(groups):
            ids = groups[name]
            complete = 0
            latency_sum = 0.0
            latency_min = None
            latency_max = None
            decomp = {}
            joules_sum = 0.0
            joules_n = 0
            for trace_id in ids:
                spans, root = trees[pid][trace_id]
                r = spans[root]
                latency = r.end - r.begin
                latency_sum += latency
                latency_min = (latency if latency_min is None
                               else min(latency_min, latency))
                latency_max = (latency if latency_max is None
                               else max(latency_max, latency))
                if all(s.complete for s in spans):
                    complete += 1
                for si, begin, end in critical_path(spans, root):
                    decomp[spans[si].name] = (
                        decomp.get(spans[si].name, 0.0) + (end - begin))
                j = joules_by_trace.get((pid, trace_id))
                if j is not None:
                    joules_sum += j
                    joules_n += 1
            n = len(ids)
            lines.append(f'  root "{name}": count={n} complete={complete}')
            lines.append(
                f"    latency_s mean={num(latency_sum / n)} "
                f"min={num(latency_min)} max={num(latency_max)}")
            total = sum(decomp.values())
            for span_name in sorted(decomp):
                share = 100.0 * decomp[span_name] / total if total > 0 else 0.0
                lines.append(
                    f"    critical_path {span_name}: "
                    f"{num(decomp[span_name])} s ({num(share)}%)")
            if joules_n > 0:
                lines.append(
                    f"    joules mean={num(joules_sum / joules_n)} "
                    f"per_trace_n={joules_n}")
    return "\n".join(lines) + ("\n" if lines else "")


def main():
    parser = argparse.ArgumentParser(
        description="Per-trace critical-path/joule analysis of a causal "
                    "trace export.")
    parser.add_argument("input", help="Chrome trace JSON (--trace export)")
    parser.add_argument("--summary", default=None,
                        help="per-trace roll-up CSV (--trace-summary "
                             "export) for the joules column")
    parser.add_argument("-o", "--output", default="-",
                        help="output file (default stdout)")
    args = parser.parse_args()

    with open(args.input, "r", encoding="utf-8") as f:
        doc = json.load(f)
    joules = read_summary(args.summary) if args.summary else {}

    text = analyze(doc, joules)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)


if __name__ == "__main__":
    main()
