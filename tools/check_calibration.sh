#!/usr/bin/env bash
# Runs the MapReduce timeline bench and prints measured-vs-paper runtime
# and energy side by side, for calibration passes on the job cost
# constants in src/mapreduce/jobs.cc.
set -u
cd "$(dirname "$0")/.."
BIN=build/bench/bench_fig12_17_mr_timelines
if [[ ! -x "$BIN" ]]; then
  echo "build first: cmake --build build" >&2
  exit 1
fi
"$BIN" | grep -E "^== |runtime"
