#!/usr/bin/env python3
"""Folds the repo's observability exports into flame-graph input.

Reads either a Chrome trace-event JSON written by obs::WriteChromeTrace
(--trace exports) or a metrics CSV written by obs::WriteMetricsCsv
(--metrics exports) and emits folded-stack lines compatible with
flamegraph.pl / speedscope / inferno:

    pid0;map;spill 182934
    pid0;reduce;shuffle 96002
    ...

Trace mode reconstructs the span stack per (pid, tid) timeline from the
B/E events and charges each stack its *exclusive* simulated microseconds
(children are charged separately under the longer stack, which is what
folded format expects). Stacks aggregate across tids of the same pid, so
all map attempts of one replication fold together; the pid root frame
keeps replications/nodes apart.

Metrics mode folds each series' final sample per metric: the metric name
splits on '.' into component;counter frames rooted at series<i>
(e.g. series0;kv3;joules). Use --scale to keep sub-unit gauges visible
after integer rounding.

Output order is sorted, so for a fixed --seed the folded output is as
byte-stable as the export it came from (tests pin this).

Usage:
    flamegraph.py TRACE.json  [-o OUT]
    flamegraph.py METRICS.csv [-o OUT] [--scale=N]
    flamegraph.py --mode=trace|metrics FILE ...
"""

import argparse
import json
import sys


def fold_trace(doc):
    """Returns {stack: exclusive_us} from a Chrome trace-event dict."""
    folded = {}
    # Per-(pid, tid) stack of [name, begin_ts, child_time_us] frames.
    stacks = {}
    for event in doc.get("traceEvents", []):
        phase = event.get("ph")
        if phase not in ("B", "E"):
            continue
        # Telemetry-plane instants (alert firings, node-health samples)
        # are point events, not spans; they carry no durations to fold.
        # They are ph "i" so the phase filter already drops them, but be
        # explicit in case a future exporter gives them durations.
        if event.get("cat") in ("alert", "health"):
            continue
        key = (event.get("pid", 0), event.get("tid", 0))
        ts = float(event.get("ts", 0.0))
        if phase == "B":
            stacks.setdefault(key, []).append([event.get("name", "?"), ts, 0.0])
            continue
        stack = stacks.get(key)
        if not stack:  # unbalanced E: tolerate, the checker flags it
            print(f"warning: E without B on pid/tid {key}", file=sys.stderr)
            continue
        name, begin_ts, child_us = stack.pop()
        inclusive = ts - begin_ts
        exclusive = inclusive - child_us
        frames = [f"pid{key[0]}"] + [f[0] for f in stack] + [name]
        path = ";".join(frames)
        folded[path] = folded.get(path, 0.0) + exclusive
        if stack:
            stack[-1][2] += inclusive
    for key, stack in stacks.items():
        if stack:
            names = ">".join(f[0] for f in stack)
            print(f"warning: unclosed span(s) {names} on pid/tid {key}",
                  file=sys.stderr)
    return folded


def fold_metrics(lines, scale):
    """Returns {stack: scaled_final_value} from metrics-CSV lines."""
    final = {}
    for line in lines:
        line = line.strip()
        if not line or line.startswith("series,"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            print(f"warning: skipping malformed row: {line}",
                  file=sys.stderr)
            continue
        series, _time_s, metric, value = parts
        # Rows are time-ordered per series; the last write wins, which is
        # the final sample (for counters: the run total).
        stack = ";".join([f"series{series}"] + metric.split("."))
        final[stack] = float(value) * scale
    return final


def render(folded):
    lines = []
    for stack in sorted(folded):
        value = round(folded[stack])
        if value > 0:
            lines.append(f"{stack} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def main():
    parser = argparse.ArgumentParser(
        description="Fold obs trace/metrics exports for flame graphs.")
    parser.add_argument("input", help="Chrome trace JSON or metrics CSV")
    parser.add_argument("-o", "--output", default="-",
                        help="output file (default stdout)")
    parser.add_argument("--mode", choices=["auto", "trace", "metrics"],
                        default="auto",
                        help="input kind (default: by file extension)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="metrics mode: multiply values before "
                             "integer rounding (default 1)")
    args = parser.parse_args()

    mode = args.mode
    if mode == "auto":
        mode = "metrics" if args.input.endswith(".csv") else "trace"

    with open(args.input, "r", encoding="utf-8") as f:
        if mode == "trace":
            folded = fold_trace(json.load(f))
        else:
            folded = fold_metrics(f.readlines(), args.scale)

    text = render(folded)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)


if __name__ == "__main__":
    main()
