#!/usr/bin/env bash
# Runs the engine microbenchmarks and writes google-benchmark JSON to
# BENCH_engine.json (see docs/engine.md for how to read the numbers).
#
# Usage:
#   tools/run_engine_bench.sh                  # default: build/ -> BENCH_engine.json
#   BUILD_DIR=out OUT=/tmp/b.json REPS=5 tools/run_engine_bench.sh
#   FILTER='SchedulerEventThroughput' tools/run_engine_bench.sh
#
# Build the benchmark binary first (Release recommended for stable numbers):
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_engine.json}"
FILTER="${FILTER:-SchedulerEventThroughput|SchedulerCancelChurn|SchedulerResumeLaterHops|SchedulerDistinctTimes|SchedulerShortDelayServing|FairShareManyJobs|ParallelSweep}"
REPS="${REPS:-5}"

BIN="${BUILD_DIR}/bench/bench_engine_micro"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not found; build it first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

# Raw repetitions (not just aggregates) go into the JSON so consumers
# can use the best-of-REPS repetition: interference on a shared host
# only ever slows a repetition down, so the per-benchmark max is the
# most stable estimate of what the code can actually do
# (tools/check_bench_regression.sh compares on it).
"${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_report_aggregates_only=false \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json

echo "wrote ${OUT}"
