#!/usr/bin/env bash
# Runs a benchmark suite and writes google-benchmark JSON.
#
#   SUITE=engine (default): engine microbenchmarks -> BENCH_engine.json
#                           (see docs/engine.md for how to read the numbers)
#   SUITE=macro:            end-to-end replication bench (bench_scale_macro,
#                           whole-run throughput + peak RSS at 10k/100k
#                           connections) -> BENCH_macro.json (docs/scale.md)
#   SUITE=shard:            sharded scale-out sweep (bench_shard_scaleout,
#                           simulated goodput/p99/rebalance over replication
#                           x oversubscription) -> BENCH_shard.json
#                           (docs/sharding.md; deterministic, REPS unused)
#   SUITE=slo:              open-loop SLO sweep (bench_slo_openloop, arrival
#                           rate x burstiness x SLO, under-SLO goodput and
#                           slo_goodput_per_joule) -> BENCH_slo.json
#                           (docs/openloop.md; deterministic, REPS unused)
#
# Usage:
#   tools/run_engine_bench.sh                  # default: build/ -> BENCH_engine.json
#   BUILD_DIR=out OUT=/tmp/b.json REPS=5 tools/run_engine_bench.sh
#   FILTER='SchedulerEventThroughput' tools/run_engine_bench.sh
#   SUITE=macro REPS=3 tools/run_engine_bench.sh
#
# Build the benchmark binaries first (Release recommended for stable numbers):
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SUITE="${SUITE:-engine}"
REPS="${REPS:-5}"

if [[ "${SUITE}" == "macro" ]]; then
  OUT="${OUT:-BENCH_macro.json}"
  BIN="${BUILD_DIR}/bench/bench_scale_macro"
  if [[ ! -x "${BIN}" ]]; then
    echo "error: ${BIN} not found; build it first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
  # The macro bench emits raw repetitions itself (run_type "iteration");
  # items_per_second is whole replications per wall second, so best-of
  # consumers work the same way as for the micro suite.
  ARGS=(--reps="${REPS}" --json="${OUT}")
  if [[ -n "${FILTER:-}" ]]; then
    ARGS+=(--filter="${FILTER}")
  fi
  "${BIN}" "${ARGS[@]}"
  echo "wrote ${OUT}"
  exit 0
fi

if [[ "${SUITE}" == "shard" ]]; then
  OUT="${OUT:-BENCH_shard.json}"
  BIN="${BUILD_DIR}/bench/bench_shard_scaleout"
  if [[ ! -x "${BIN}" ]]; then
    echo "error: ${BIN} not found; build it first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
  # items_per_second is simulated in-window goodput qps — a pure function
  # of the seed, so one replication suffices and FILTER (used by targeted
  # regression re-runs) is a no-op: the whole sweep re-runs, cheaply.
  "${BIN}" --replications=1 --json="${OUT}"
  echo "wrote ${OUT}"
  exit 0
fi

if [[ "${SUITE}" == "slo" ]]; then
  OUT="${OUT:-BENCH_slo.json}"
  BIN="${BUILD_DIR}/bench/bench_slo_openloop"
  if [[ ! -x "${BIN}" ]]; then
    echo "error: ${BIN} not found; build it first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
  # items_per_second is simulated under-SLO completions per second
  # (coordinated-omission-free) — a pure function of the seed, so one
  # replication suffices and FILTER is a no-op like the shard suite.
  "${BIN}" --replications=1 --json="${OUT}"
  echo "wrote ${OUT}"
  exit 0
fi

OUT="${OUT:-BENCH_engine.json}"
FILTER="${FILTER:-SchedulerEventThroughput|SchedulerCancelChurn|SchedulerResumeLaterHops|SchedulerDistinctTimes|SchedulerShortDelayServing|FairShareManyJobs|ParallelSweep|RollupRecord|SketchMergeMany}"

BIN="${BUILD_DIR}/bench/bench_engine_micro"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not found; build it first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

# Raw repetitions (not just aggregates) go into the JSON so consumers
# can use the best-of-REPS repetition: interference on a shared host
# only ever slows a repetition down, so the per-benchmark max is the
# most stable estimate of what the code can actually do
# (tools/check_bench_regression.sh compares on it).
"${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_report_aggregates_only=false \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json

echo "wrote ${OUT}"
