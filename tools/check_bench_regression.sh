#!/usr/bin/env bash
# Re-runs the engine microbenchmarks (the four scheduler/fair-share
# families plus the BM_ParallelSweep replication runner) and compares mean
# throughput against the checked-in BENCH_engine.json. Exits nonzero if
# any benchmark regressed by more than THRESHOLD_PCT percent — the CI-able
# guard for the engine's performance envelope (docs/engine.md).
#
# Usage:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/check_bench_regression.sh
#   BUILD_DIR=out THRESHOLD_PCT=10 REPS=9 tools/check_bench_regression.sh
#
# Benchmarks present in only one of the two runs (e.g. newly added ones
# with no baseline yet) are reported but never fail the check.
#
# The comparison uses the median over REPS repetitions, but on shared or
# virtualized hosts (CPU steal, frequency scaling) run-to-run medians can
# still swing past 20%; raise REPS and/or THRESHOLD_PCT there, and treat
# a failure as "re-run before believing", not proof of a regression.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BASELINE="${BASELINE:-BENCH_engine.json}"
THRESHOLD_PCT="${THRESHOLD_PCT:-20}"
REPS="${REPS:-5}"

if [[ ! -f "${BASELINE}" ]]; then
  echo "error: baseline ${BASELINE} not found" >&2
  exit 1
fi

CURRENT="$(mktemp /tmp/bench_engine.XXXXXX.json)"
trap 'rm -f "${CURRENT}"' EXIT

BUILD_DIR="${BUILD_DIR}" OUT="${CURRENT}" REPS="${REPS}" \
  tools/run_engine_bench.sh

python3 - "${BASELINE}" "${CURRENT}" "${THRESHOLD_PCT}" <<'EOF'
import json
import sys

baseline_path, current_path, threshold_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])

def items_per_second(path):
    """run_name -> items/sec. Prefers the median aggregate (robust to the
    outlier repetitions shared/virtualized hosts produce), falls back to
    mean, then to raw iteration entries (REPS=1)."""
    with open(path) as f:
        data = json.load(f)
    by_rank = {}
    for b in data.get("benchmarks", []):
        ips = b.get("items_per_second")
        if ips is None:
            continue
        if b.get("run_type") == "aggregate":
            rank = {"median": 0, "mean": 1}.get(b.get("aggregate_name"))
            if rank is not None:
                by_rank.setdefault(b["run_name"], {})[rank] = ips
        else:
            by_rank.setdefault(b["name"], {}).setdefault(2, ips)
    return {name: ranks[min(ranks)] for name, ranks in by_rank.items()}

base = items_per_second(baseline_path)
curr = items_per_second(current_path)

failures = []
print(f"\n{'benchmark':44s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
for name in sorted(set(base) | set(curr)):
    if name not in base:
        print(f"{name:44s} {'(none)':>12s} {curr[name]:12.3e}    new")
        continue
    if name not in curr:
        print(f"{name:44s} {base[name]:12.3e} {'(none)':>12s}    gone")
        continue
    delta_pct = 100.0 * (curr[name] - base[name]) / base[name]
    verdict = "ok"
    if delta_pct < -threshold_pct:
        verdict = "REGRESSED"
        failures.append((name, delta_pct))
    print(f"{name:44s} {base[name]:12.3e} {curr[name]:12.3e} {delta_pct:+7.1f}% {verdict}")

if failures:
    print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
          f"{threshold_pct:.0f}% vs {baseline_path}:")
    for name, delta in failures:
        print(f"  {name}: {delta:+.1f}%")
    sys.exit(1)
print(f"\nOK: no benchmark regressed more than {threshold_pct:.0f}% "
      f"vs {baseline_path}.")
EOF
