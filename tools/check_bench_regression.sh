#!/usr/bin/env bash
# Re-runs the engine microbenchmarks (the scheduler/fair-share families,
# the wheel-vs-heap tier comparison, the short-delay serving loop, plus
# the BM_ParallelSweep replication runner) and compares mean
# throughput against the checked-in BENCH_engine.json. Exits nonzero if
# any benchmark regressed by more than THRESHOLD_PCT percent — the CI-able
# guard for the engine's performance envelope (docs/engine.md).
#
# Usage:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/check_bench_regression.sh
#   BUILD_DIR=out THRESHOLD_PCT=10 REPS=9 RUNS=3 tools/check_bench_regression.sh
#   OBS_THRESHOLD_PCT=5 SKIP_OBS_RUN=1 tools/check_bench_regression.sh
#   SKIP_MACRO=1 MACRO_REPS=3 MACRO_RUNS=2 tools/check_bench_regression.sh
#   SKIP_SHARD=1 tools/check_bench_regression.sh
#   SKIP_SLO=1 tools/check_bench_regression.sh
#
# After the engine microbenchmarks, the end-to-end macro suite
# (bench_scale_macro: whole-replication throughput at 10k/100k simulated
# connections, docs/scale.md) is gated the same way against the committed
# BENCH_macro.json; set SKIP_MACRO=1 to skip it. Then the sharded
# scale-out sweep (bench_shard_scaleout, docs/sharding.md) is gated
# against BENCH_shard.json with the same threshold; its items_per_second
# is simulated in-window goodput qps — deterministic for the pinned seed,
# so one run with no retries suffices and any >THRESHOLD_PCT delta is a
# real behavioral change (e.g. the oversubscription bend moving), not
# host noise. Set SKIP_SHARD=1 to skip it. The open-loop SLO sweep
# (bench_slo_openloop, docs/openloop.md) is gated the same deterministic
# way against BENCH_slo.json — its items_per_second is under-SLO
# completions per second, so a delta means the latency distribution or
# the admission/shedding behavior moved. Set SKIP_SLO=1 to skip it.
#
# Benchmarks present in only one of the two runs (e.g. newly added ones
# with no baseline yet) are reported but never fail the check.
#
# Observability contract (docs/observability.md): the hooks-disabled
# scheduler path (BM_SchedulerEventThroughput/100000) gets a stricter
# OBS_THRESHOLD_PCT check (default 2%) — an attached-but-absent tracer
# must stay in the noise — and the hooks-enabled variant's delta is
# reported alongside. Unless SKIP_OBS_RUN=1, the non-benchmark CI gates
# (tools/ci.sh: WIMPY_TSAN smoke plus the tools/check_trace.sh export
# validation — trace/metrics schema, causal ids, flow arrows, flamegraph
# folding, and the trace_analyze.py seed-77 golden) then run end to end.
#
# Defenses against shared-host noise (CPU steal, frequency scaling),
# which on some hosts swings results ±30% between invocations:
#   1. The comparison statistic is the best (max) repetition —
#      interference is one-sided, it only ever slows a repetition down,
#      so the max is the most stable estimate of code speed.
#   2. The suite runs RUNS times (default 2) in separate invocations and
#      the per-benchmark best across all of them is used, because
#      interference bursts can outlast a single invocation.
#   3. The gate uses host-normalized deltas: each benchmark is measured
#      against the median delta across the whole suite, so a uniform
#      machine-speed swing between the baseline capture and this run
#      cancels out. Raw deltas are printed alongside.
#   4. On failure, the failing benchmarks are re-run in up to RETRIES
#      (default 2) additional targeted invocations and the results
#      merged — the automated version of "re-run before believing",
#      sound because the baseline numbers were demonstrably achieved on
#      this machine, so a healthy benchmark can reach them again.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BASELINE="${BASELINE:-BENCH_engine.json}"
MACRO_BASELINE="${MACRO_BASELINE:-BENCH_macro.json}"
SHARD_BASELINE="${SHARD_BASELINE:-BENCH_shard.json}"
SLO_BASELINE="${SLO_BASELINE:-BENCH_slo.json}"
THRESHOLD_PCT="${THRESHOLD_PCT:-20}"
OBS_THRESHOLD_PCT="${OBS_THRESHOLD_PCT:-2}"
REPS="${REPS:-5}"
RUNS="${RUNS:-2}"
RETRIES="${RETRIES:-2}"
MACRO_REPS="${MACRO_REPS:-3}"
MACRO_RUNS="${MACRO_RUNS:-2}"

if [[ ! -f "${BASELINE}" ]]; then
  echo "error: baseline ${BASELINE} not found" >&2
  exit 1
fi

CURRENT_FILES=()
MACRO_FILES=()
SHARD_FILES=()
SLO_FILES=()
RETRY_FILTER="$(mktemp /tmp/bench_retry.XXXXXX)"
trap 'rm -f "${CURRENT_FILES[@]}" "${MACRO_FILES[@]}" "${SHARD_FILES[@]}" \
  "${SLO_FILES[@]}" "${RETRY_FILTER}"' EXIT
for run in $(seq "${RUNS}"); do
  echo "== suite invocation ${run}/${RUNS} =="
  f="$(mktemp /tmp/bench_engine.XXXXXX.json)"
  CURRENT_FILES+=("${f}")
  BUILD_DIR="${BUILD_DIR}" OUT="${f}" REPS="${REPS}" \
    tools/run_engine_bench.sh
done

# compare <baseline> <current>... — best-of/host-normalized gate shared by
# the engine and macro suites; the obs-contract section only engages when
# its benchmark names are present (i.e. the engine suite).
compare() {
  local baseline="$1"
  shift
  python3 - "${THRESHOLD_PCT}" "${OBS_THRESHOLD_PCT}" "${RETRY_FILTER}" \
    "${baseline}" "$@" <<'EOF'
import json
import sys

threshold_pct = float(sys.argv[1])
obs_threshold_pct = float(sys.argv[2])
retry_filter_path = sys.argv[3]
baseline_path = sys.argv[4]
current_paths = sys.argv[5:]

def items_per_second(paths):
    """run_name -> items/sec. Prefers the best (max) raw repetition
    across every file — interference on a shared host only ever slows a
    repetition down, so the per-benchmark max is the most stable
    estimate of code speed — and falls back to the median then mean
    aggregate for older baseline files that recorded aggregates only."""
    raw, agg = {}, {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            ips = b.get("items_per_second")
            if ips is None:
                continue
            if b.get("run_type") == "aggregate":
                rank = {"median": 0, "mean": 1}.get(b.get("aggregate_name"))
                if rank is not None:
                    slot = agg.setdefault(b["run_name"], {})
                    slot[rank] = max(slot.get(rank, 0.0), ips)
            else:
                name = b.get("run_name", b["name"])
                raw[name] = max(raw.get(name, 0.0), ips)
    out = {name: ranks[min(ranks)] for name, ranks in agg.items()}
    out.update(raw)
    return out

base = items_per_second([baseline_path])
curr = items_per_second(current_paths)

# Host-speed normalization: shared/virtualized hosts swing the entire
# suite up or down together between invocations. The median ratio across
# all common benchmarks estimates that swing; each benchmark is then
# gated on its delta relative to the suite median, which cancels uniform
# host noise while preserving anything benchmark-specific.
common = sorted(set(base) & set(curr))
ratios = sorted(curr[n] / base[n] for n in common)
host = ratios[len(ratios) // 2] if ratios else 1.0
host_pct = 100.0 * (host - 1.0)

failures = []
print(f"\nhost-speed factor (suite median delta): {host_pct:+.1f}%")
print(f"{'benchmark':44s} {'baseline':>12s} {'current':>12s} "
      f"{'raw':>8s} {'norm':>8s}")
for name in sorted(set(base) | set(curr)):
    if name not in base:
        print(f"{name:44s} {'(none)':>12s} {curr[name]:12.3e}    new")
        continue
    if name not in curr:
        print(f"{name:44s} {base[name]:12.3e} {'(none)':>12s}    gone")
        continue
    delta_pct = 100.0 * (curr[name] - base[name]) / base[name]
    norm_pct = 100.0 * (curr[name] / (base[name] * host) - 1.0)
    verdict = "ok"
    if norm_pct < -threshold_pct:
        verdict = "REGRESSED"
        failures.append((name, norm_pct))
    print(f"{name:44s} {base[name]:12.3e} {curr[name]:12.3e} "
          f"{delta_pct:+7.1f}% {norm_pct:+7.1f}% {verdict}")

# Observability overhead contract: the disabled paths must stay within
# the (stricter) obs threshold of the baseline after removing the host
# swing; on shared hosts these are the numbers to re-run before
# believing. Two disabled paths are pinned: the untraced scheduler loop
# (an attached-but-absent tracer) and the disabled telemetry plane's
# Record (a single branch, docs/telemetry.md).
obs_pairs = [
    ("BM_SchedulerEventThroughput/100000", "obs disabled-path"),
    ("BM_RollupRecordDisabled/100000", "telemetry disabled-path"),
]
for disabled, label in obs_pairs:
    if disabled in base and disabled in curr:
        norm_pct = 100.0 * (curr[disabled] / (base[disabled] * host) - 1.0)
        verdict = "ok" if norm_pct >= -obs_threshold_pct else "REGRESSED"
        print(f"\n{label} overhead ({disabled}): {norm_pct:+.1f}% "
              f"host-normalized (threshold -{obs_threshold_pct:.0f}%) "
              f"{verdict}")
        if verdict == "REGRESSED":
            failures.append((f"{disabled} [{label}]", norm_pct))
traced = "BM_SchedulerEventThroughputTraced/100000"
disabled = "BM_SchedulerEventThroughput/100000"
if disabled in curr and traced in curr:
    enabled_pct = 100.0 * (curr[traced] - curr[disabled]) / curr[disabled]
    print(f"obs enabled-vs-disabled delta ({traced}): {enabled_pct:+.1f}% "
          f"(informational: full per-event recording cost)")
tel_on = "BM_RollupRecord/100000"
tel_off = "BM_RollupRecordDisabled/100000"
if tel_on in curr and tel_off in curr:
    enabled_pct = 100.0 * (curr[tel_on] - curr[tel_off]) / curr[tel_off]
    print(f"telemetry enabled-vs-disabled delta ({tel_on}): "
          f"{enabled_pct:+.1f}% (informational: per-Record rollup+sketch "
          f"cost)")

if failures:
    print(f"\n{len(failures)} benchmark(s) regressed (host-normalized):")
    for name, delta in failures:
        print(f"  {name}: {delta:+.1f}%")
    # Emit a --benchmark_filter regex for a targeted re-run of just the
    # failing benchmarks. Statistic suffixes (/real_time etc.) are part
    # of the reported name but not of what the filter matches first, so
    # match the name with or without a trailing /component.
    suffixes = ("/real_time", "/manual_time", "/process_time")
    parts = []
    for name, _ in failures:
        if name.endswith("]"):  # synthetic entries like "[obs disabled-path]"
            name = name.split(" [")[0]
        for s in suffixes:
            if name.endswith(s):
                name = name[: -len(s)]
        parts.append(name + "(/|$)")
    with open(retry_filter_path, "w") as f:
        f.write("|".join(sorted(set(parts))))
    sys.exit(1)
print(f"\nOK: no benchmark regressed more than {threshold_pct:.0f}% "
      f"host-normalized vs {baseline_path}.")
EOF
}

attempt=0
until compare "${BASELINE}" "${CURRENT_FILES[@]}"; do
  if (( attempt >= RETRIES )); then
    echo "FAIL: regressions persisted after ${RETRIES} targeted re-run(s)."
    exit 1
  fi
  attempt=$((attempt + 1))
  echo
  echo "== targeted re-run ${attempt}/${RETRIES}: $(cat "${RETRY_FILTER}") =="
  f="$(mktemp /tmp/bench_engine.XXXXXX.json)"
  CURRENT_FILES+=("${f}")
  BUILD_DIR="${BUILD_DIR}" OUT="${f}" REPS="${REPS}" \
    FILTER="$(cat "${RETRY_FILTER}")" tools/run_engine_bench.sh
done

# End-to-end macro gate: whole-replication throughput (1/wall) at 10k and
# 100k simulated connections vs the committed BENCH_macro.json — the
# steady-state model-layer performance envelope (docs/scale.md). Same
# best-of + host-normalized + targeted-retry machinery as above.
if [[ "${SKIP_MACRO:-0}" == "0" && -f "${MACRO_BASELINE}" ]]; then
  echo
  for run in $(seq "${MACRO_RUNS}"); do
    echo "== macro suite invocation ${run}/${MACRO_RUNS} (SKIP_MACRO=1 to skip) =="
    f="$(mktemp /tmp/bench_macro.XXXXXX.json)"
    MACRO_FILES+=("${f}")
    BUILD_DIR="${BUILD_DIR}" SUITE=macro OUT="${f}" REPS="${MACRO_REPS}" \
      tools/run_engine_bench.sh
  done
  attempt=0
  until compare "${MACRO_BASELINE}" "${MACRO_FILES[@]}"; do
    if (( attempt >= RETRIES )); then
      echo "FAIL: macro regressions persisted after ${RETRIES} targeted re-run(s)."
      exit 1
    fi
    attempt=$((attempt + 1))
    echo
    echo "== macro targeted re-run ${attempt}/${RETRIES}: $(cat "${RETRY_FILTER}") =="
    f="$(mktemp /tmp/bench_macro.XXXXXX.json)"
    MACRO_FILES+=("${f}")
    BUILD_DIR="${BUILD_DIR}" SUITE=macro OUT="${f}" REPS="${MACRO_REPS}" \
      FILTER="$(cat "${RETRY_FILTER}")" tools/run_engine_bench.sh
  done
fi

# Sharded scale-out gate: simulated goodput per cell vs the committed
# BENCH_shard.json. Deterministic for the pinned seed (the sim is a pure
# function of it), so a single run with no targeted retries — a delta
# here is a behavioral change in the router/migrator/topology, never
# host noise.
if [[ "${SKIP_SHARD:-0}" == "0" && -f "${SHARD_BASELINE}" ]]; then
  echo
  echo "== shard scale-out suite (SKIP_SHARD=1 to skip) =="
  f="$(mktemp /tmp/bench_shard.XXXXXX.json)"
  SHARD_FILES+=("${f}")
  BUILD_DIR="${BUILD_DIR}" SUITE=shard OUT="${f}" tools/run_engine_bench.sh
  if ! compare "${SHARD_BASELINE}" "${f}"; then
    echo "FAIL: shard scale-out sweep drifted from ${SHARD_BASELINE}."
    exit 1
  fi
fi

# Open-loop SLO gate: under-SLO goodput per cell vs the committed
# BENCH_slo.json. Deterministic like the shard sweep — a delta is a real
# change in tail latency, admission, or energy accounting.
if [[ "${SKIP_SLO:-0}" == "0" && -f "${SLO_BASELINE}" ]]; then
  echo
  echo "== open-loop SLO suite (SKIP_SLO=1 to skip) =="
  f="$(mktemp /tmp/bench_slo.XXXXXX.json)"
  SLO_FILES+=("${f}")
  BUILD_DIR="${BUILD_DIR}" SUITE=slo OUT="${f}" tools/run_engine_bench.sh
  if ! compare "${SLO_BASELINE}" "${f}"; then
    echo "FAIL: open-loop SLO sweep drifted from ${SLO_BASELINE}."
    exit 1
  fi
fi

if [[ "${SKIP_OBS_RUN:-0}" == "0" ]]; then
  echo
  echo "== non-benchmark CI gates (SKIP_OBS_RUN=1 to skip) =="
  BUILD_DIR="${BUILD_DIR}" tools/ci.sh
fi
