#!/usr/bin/env bash
# Single CI entry point for the repo's non-benchmark gates
# (docs/parallel.md, docs/observability.md):
#
#   1. WIMPY_TSAN smoke — configures/builds a -fsanitize=thread tree and
#      runs the concurrency-sensitive tests (the replication sweep runner
#      and the hw profile registry) under TSan, the guard for the
#      "bit-identical at any --threads" machinery actually being
#      data-race-free.
#   2. tools/check_trace.sh — obs export validation: trace-event JSON
#      schema + causal ids + flow arrows, metrics CSV shape, flamegraph
#      folding, the trace_analyze.py seed-77 golden, and (with
#      CHECK_DETERMINISM=1) byte-identical exports across --threads.
#
# tools/check_bench_regression.sh calls this after its performance gate;
# it can also run standalone.
#
# Usage:
#   tools/ci.sh
#   BUILD_DIR=out tools/ci.sh            # tree used by check_trace.sh
#   SKIP_TSAN=1 tools/ci.sh              # skip the sanitizer build
#   TSAN_BUILD_DIR=build-tsan tools/ci.sh
#   CHECK_DETERMINISM=1 tools/ci.sh      # forwarded to check_trace.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
TSAN_TESTS="${TSAN_TESTS:-replication|profiles_concurrency}"

if [[ "${SKIP_TSAN:-0}" == "0" ]]; then
  echo "== WIMPY_TSAN smoke (SKIP_TSAN=1 to skip) =="
  if [[ ! -f "${TSAN_BUILD_DIR}/CMakeCache.txt" ]]; then
    cmake -B "${TSAN_BUILD_DIR}" -S . -DWIMPY_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  # Only the concurrency-sensitive test binaries: a full TSan build of
  # every bench would dominate CI time without adding coverage.
  cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" \
    --target sim_replication_test hw_profiles_concurrency_test
  (cd "${TSAN_BUILD_DIR}" && ctest -R "${TSAN_TESTS}" --output-on-failure)
  echo "TSan smoke OK"
else
  echo "== WIMPY_TSAN smoke skipped (SKIP_TSAN=1) =="
fi

echo
echo "== observability export checks =="
BUILD_DIR="${BUILD_DIR}" tools/check_trace.sh

echo
echo "OK: ci.sh gates passed"
