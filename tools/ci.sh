#!/usr/bin/env bash
# Single CI entry point for the repo's non-benchmark gates
# (docs/parallel.md, docs/observability.md):
#
#   1. WIMPY_TSAN smoke — configures/builds a -fsanitize=thread tree and
#      runs the concurrency-sensitive tests (the replication sweep runner
#      and the hw profile registry) under TSan, the guard for the
#      "bit-identical at any --threads" machinery actually being
#      data-race-free.
#   2. WIMPY_ASAN smoke — configures/builds a -fsanitize=address,undefined
#      tree and runs the model-layer tests that exercise the pooled
#      steady-state request path (coroutine frame pool, ring buffers,
#      interned-id fabric tables — docs/scale.md). The frame pool disables
#      itself under ASan so every coroutine frame goes through the real
#      allocator and gets poisoned/unpoisoned individually.
#   3. tools/check_trace.sh — obs export validation: trace-event JSON
#      schema + causal ids + flow arrows, metrics CSV shape, flamegraph
#      folding, the trace_analyze.py seed-77 golden, and (with
#      CHECK_DETERMINISM=1) byte-identical exports across --threads.
#
# tools/check_bench_regression.sh calls this after its performance gate;
# it can also run standalone.
#
# Usage:
#   tools/ci.sh
#   BUILD_DIR=out tools/ci.sh            # tree used by check_trace.sh
#   SKIP_TSAN=1 SKIP_ASAN=1 tools/ci.sh  # skip the sanitizer builds
#   TSAN_BUILD_DIR=build-tsan ASAN_BUILD_DIR=build-asan tools/ci.sh
#   CHECK_DETERMINISM=1 tools/ci.sh      # forwarded to check_trace.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
TSAN_TESTS="${TSAN_TESTS:-replication|profiles_concurrency}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
# Exact names: only the binaries the smoke build compiles.
ASAN_TESTS="${ASAN_TESTS:-^(sim_scheduler_test|sim_process_test|sim_semaphore_test|sim_fair_share_test|net_fabric_test|net_tcp_test|web_service_test|kv_store_test)\$}"

if [[ "${SKIP_TSAN:-0}" == "0" ]]; then
  echo "== WIMPY_TSAN smoke (SKIP_TSAN=1 to skip) =="
  if [[ ! -f "${TSAN_BUILD_DIR}/CMakeCache.txt" ]]; then
    cmake -B "${TSAN_BUILD_DIR}" -S . -DWIMPY_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  # Only the concurrency-sensitive test binaries: a full TSan build of
  # every bench would dominate CI time without adding coverage.
  cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" \
    --target sim_replication_test hw_profiles_concurrency_test
  (cd "${TSAN_BUILD_DIR}" && ctest -R "${TSAN_TESTS}" --output-on-failure)
  echo "TSan smoke OK"
else
  echo "== WIMPY_TSAN smoke skipped (SKIP_TSAN=1) =="
fi

if [[ "${SKIP_ASAN:-0}" == "0" ]]; then
  echo
  echo "== WIMPY_ASAN smoke (SKIP_ASAN=1 to skip) =="
  if [[ ! -f "${ASAN_BUILD_DIR}/CMakeCache.txt" ]]; then
    cmake -B "${ASAN_BUILD_DIR}" -S . -DWIMPY_ASAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  # The model-layer tests that cover the pooled steady-state request path
  # (scheduler, coroutine frames, semaphores, fair-share, fabric, TCP,
  # web serve, KV store) — the code where pooling bugs would hide.
  cmake --build "${ASAN_BUILD_DIR}" -j "$(nproc)" --target \
    sim_scheduler_test sim_process_test sim_semaphore_test \
    sim_fair_share_test net_fabric_test net_tcp_test web_service_test \
    kv_store_test
  (cd "${ASAN_BUILD_DIR}" && ctest -R "${ASAN_TESTS}" --output-on-failure)
  echo "ASan smoke OK"
else
  echo "== WIMPY_ASAN smoke skipped (SKIP_ASAN=1) =="
fi

echo
echo "== observability export checks =="
BUILD_DIR="${BUILD_DIR}" tools/check_trace.sh

echo
echo "OK: ci.sh gates passed"
