# Empty dependencies file for bench_diurnal_energy.
# This may be replaced when dependencies are built.
