file(REMOVE_RECURSE
  "CMakeFiles/bench_diurnal_energy.dir/bench_diurnal_energy.cc.o"
  "CMakeFiles/bench_diurnal_energy.dir/bench_diurnal_energy.cc.o.d"
  "bench_diurnal_energy"
  "bench_diurnal_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diurnal_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
