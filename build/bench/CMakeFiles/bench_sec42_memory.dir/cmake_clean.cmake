file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_memory.dir/bench_sec42_memory.cc.o"
  "CMakeFiles/bench_sec42_memory.dir/bench_sec42_memory.cc.o.d"
  "bench_sec42_memory"
  "bench_sec42_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
