file(REMOVE_RECURSE
  "CMakeFiles/bench_reproduction_summary.dir/bench_reproduction_summary.cc.o"
  "CMakeFiles/bench_reproduction_summary.dir/bench_reproduction_summary.cc.o.d"
  "bench_reproduction_summary"
  "bench_reproduction_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reproduction_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
