# Empty dependencies file for bench_reproduction_summary.
# This may be replaced when dependencies are built.
