file(REMOVE_RECURSE
  "CMakeFiles/bench_dvfs_proportionality.dir/bench_dvfs_proportionality.cc.o"
  "CMakeFiles/bench_dvfs_proportionality.dir/bench_dvfs_proportionality.cc.o.d"
  "bench_dvfs_proportionality"
  "bench_dvfs_proportionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvfs_proportionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
