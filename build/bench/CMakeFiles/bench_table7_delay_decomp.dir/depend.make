# Empty dependencies file for bench_table7_delay_decomp.
# This may be replaced when dependencies are built.
