file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_delay_decomp.dir/bench_table7_delay_decomp.cc.o"
  "CMakeFiles/bench_table7_delay_decomp.dir/bench_table7_delay_decomp.cc.o.d"
  "bench_table7_delay_decomp"
  "bench_table7_delay_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_delay_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
