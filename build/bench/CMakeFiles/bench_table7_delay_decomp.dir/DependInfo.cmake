
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table7_delay_decomp.cc" "bench/CMakeFiles/bench_table7_delay_decomp.dir/bench_table7_delay_decomp.cc.o" "gcc" "bench/CMakeFiles/bench_table7_delay_decomp.dir/bench_table7_delay_decomp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/wimpy_web.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wimpy_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wimpy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wimpy_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wimpy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
