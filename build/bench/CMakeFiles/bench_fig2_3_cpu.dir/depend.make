# Empty dependencies file for bench_fig2_3_cpu.
# This may be replaced when dependencies are built.
