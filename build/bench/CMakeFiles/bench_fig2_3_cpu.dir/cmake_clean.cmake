file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_cpu.dir/bench_fig2_3_cpu.cc.o"
  "CMakeFiles/bench_fig2_3_cpu.dir/bench_fig2_3_cpu.cc.o.d"
  "bench_fig2_3_cpu"
  "bench_fig2_3_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
