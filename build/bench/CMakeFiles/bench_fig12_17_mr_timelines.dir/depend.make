# Empty dependencies file for bench_fig12_17_mr_timelines.
# This may be replaced when dependencies are built.
