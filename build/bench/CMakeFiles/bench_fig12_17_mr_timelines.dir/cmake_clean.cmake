file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_17_mr_timelines.dir/bench_fig12_17_mr_timelines.cc.o"
  "CMakeFiles/bench_fig12_17_mr_timelines.dir/bench_fig12_17_mr_timelines.cc.o.d"
  "bench_fig12_17_mr_timelines"
  "bench_fig12_17_mr_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_17_mr_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
