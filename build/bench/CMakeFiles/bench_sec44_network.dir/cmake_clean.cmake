file(REMOVE_RECURSE
  "CMakeFiles/bench_sec44_network.dir/bench_sec44_network.cc.o"
  "CMakeFiles/bench_sec44_network.dir/bench_sec44_network.cc.o.d"
  "bench_sec44_network"
  "bench_sec44_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
