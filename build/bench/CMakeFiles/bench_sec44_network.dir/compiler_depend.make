# Empty compiler generated dependencies file for bench_sec44_network.
# This may be replaced when dependencies are built.
