file(REMOVE_RECURSE
  "CMakeFiles/bench_proportionality.dir/bench_proportionality.cc.o"
  "CMakeFiles/bench_proportionality.dir/bench_proportionality.cc.o.d"
  "bench_proportionality"
  "bench_proportionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proportionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
