# Empty compiler generated dependencies file for bench_proportionality.
# This may be replaced when dependencies are built.
