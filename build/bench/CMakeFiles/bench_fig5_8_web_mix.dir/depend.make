# Empty dependencies file for bench_fig5_8_web_mix.
# This may be replaced when dependencies are built.
