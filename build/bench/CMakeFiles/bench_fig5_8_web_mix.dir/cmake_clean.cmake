file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_8_web_mix.dir/bench_fig5_8_web_mix.cc.o"
  "CMakeFiles/bench_fig5_8_web_mix.dir/bench_fig5_8_web_mix.cc.o.d"
  "bench_fig5_8_web_mix"
  "bench_fig5_8_web_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_8_web_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
