# Empty compiler generated dependencies file for bench_fig6_9_web_heavy.
# This may be replaced when dependencies are built.
