file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_9_web_heavy.dir/bench_fig6_9_web_heavy.cc.o"
  "CMakeFiles/bench_fig6_9_web_heavy.dir/bench_fig6_9_web_heavy.cc.o.d"
  "bench_fig6_9_web_heavy"
  "bench_fig6_9_web_heavy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_9_web_heavy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
