# Empty dependencies file for bench_kv_queries_per_joule.
# This may be replaced when dependencies are built.
