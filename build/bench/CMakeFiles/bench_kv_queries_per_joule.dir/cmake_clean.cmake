file(REMOVE_RECURSE
  "CMakeFiles/bench_kv_queries_per_joule.dir/bench_kv_queries_per_joule.cc.o"
  "CMakeFiles/bench_kv_queries_per_joule.dir/bench_kv_queries_per_joule.cc.o.d"
  "bench_kv_queries_per_joule"
  "bench_kv_queries_per_joule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kv_queries_per_joule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
