file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_delay_hist.dir/bench_fig10_11_delay_hist.cc.o"
  "CMakeFiles/bench_fig10_11_delay_hist.dir/bench_fig10_11_delay_hist.cc.o.d"
  "bench_fig10_11_delay_hist"
  "bench_fig10_11_delay_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_delay_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
