file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_tco.dir/bench_table10_tco.cc.o"
  "CMakeFiles/bench_table10_tco.dir/bench_table10_tco.cc.o.d"
  "bench_table10_tco"
  "bench_table10_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
