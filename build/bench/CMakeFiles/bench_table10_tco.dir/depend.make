# Empty dependencies file for bench_table10_tco.
# This may be replaced when dependencies are built.
