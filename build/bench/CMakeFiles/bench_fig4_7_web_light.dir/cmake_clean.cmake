file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_7_web_light.dir/bench_fig4_7_web_light.cc.o"
  "CMakeFiles/bench_fig4_7_web_light.dir/bench_fig4_7_web_light.cc.o.d"
  "bench_fig4_7_web_light"
  "bench_fig4_7_web_light.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_7_web_light.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
