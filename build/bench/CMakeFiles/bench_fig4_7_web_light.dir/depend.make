# Empty dependencies file for bench_fig4_7_web_light.
# This may be replaced when dependencies are built.
