
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpu.cc" "src/hw/CMakeFiles/wimpy_hw.dir/cpu.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/cpu.cc.o.d"
  "/root/repo/src/hw/dvfs.cc" "src/hw/CMakeFiles/wimpy_hw.dir/dvfs.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/dvfs.cc.o.d"
  "/root/repo/src/hw/memory.cc" "src/hw/CMakeFiles/wimpy_hw.dir/memory.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/memory.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/hw/CMakeFiles/wimpy_hw.dir/nic.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/nic.cc.o.d"
  "/root/repo/src/hw/power.cc" "src/hw/CMakeFiles/wimpy_hw.dir/power.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/power.cc.o.d"
  "/root/repo/src/hw/profiles.cc" "src/hw/CMakeFiles/wimpy_hw.dir/profiles.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/profiles.cc.o.d"
  "/root/repo/src/hw/server_node.cc" "src/hw/CMakeFiles/wimpy_hw.dir/server_node.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/server_node.cc.o.d"
  "/root/repo/src/hw/storage.cc" "src/hw/CMakeFiles/wimpy_hw.dir/storage.cc.o" "gcc" "src/hw/CMakeFiles/wimpy_hw.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wimpy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
