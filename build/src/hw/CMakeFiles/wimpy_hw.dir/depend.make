# Empty dependencies file for wimpy_hw.
# This may be replaced when dependencies are built.
