file(REMOVE_RECURSE
  "CMakeFiles/wimpy_hw.dir/cpu.cc.o"
  "CMakeFiles/wimpy_hw.dir/cpu.cc.o.d"
  "CMakeFiles/wimpy_hw.dir/dvfs.cc.o"
  "CMakeFiles/wimpy_hw.dir/dvfs.cc.o.d"
  "CMakeFiles/wimpy_hw.dir/memory.cc.o"
  "CMakeFiles/wimpy_hw.dir/memory.cc.o.d"
  "CMakeFiles/wimpy_hw.dir/nic.cc.o"
  "CMakeFiles/wimpy_hw.dir/nic.cc.o.d"
  "CMakeFiles/wimpy_hw.dir/power.cc.o"
  "CMakeFiles/wimpy_hw.dir/power.cc.o.d"
  "CMakeFiles/wimpy_hw.dir/profiles.cc.o"
  "CMakeFiles/wimpy_hw.dir/profiles.cc.o.d"
  "CMakeFiles/wimpy_hw.dir/server_node.cc.o"
  "CMakeFiles/wimpy_hw.dir/server_node.cc.o.d"
  "CMakeFiles/wimpy_hw.dir/storage.cc.o"
  "CMakeFiles/wimpy_hw.dir/storage.cc.o.d"
  "libwimpy_hw.a"
  "libwimpy_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
