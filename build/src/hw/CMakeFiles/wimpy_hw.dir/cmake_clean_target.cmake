file(REMOVE_RECURSE
  "libwimpy_hw.a"
)
