file(REMOVE_RECURSE
  "libwimpy_common.a"
)
