file(REMOVE_RECURSE
  "CMakeFiles/wimpy_common.dir/csv.cc.o"
  "CMakeFiles/wimpy_common.dir/csv.cc.o.d"
  "CMakeFiles/wimpy_common.dir/histogram.cc.o"
  "CMakeFiles/wimpy_common.dir/histogram.cc.o.d"
  "CMakeFiles/wimpy_common.dir/logging.cc.o"
  "CMakeFiles/wimpy_common.dir/logging.cc.o.d"
  "CMakeFiles/wimpy_common.dir/random.cc.o"
  "CMakeFiles/wimpy_common.dir/random.cc.o.d"
  "CMakeFiles/wimpy_common.dir/stats.cc.o"
  "CMakeFiles/wimpy_common.dir/stats.cc.o.d"
  "CMakeFiles/wimpy_common.dir/status.cc.o"
  "CMakeFiles/wimpy_common.dir/status.cc.o.d"
  "CMakeFiles/wimpy_common.dir/table.cc.o"
  "CMakeFiles/wimpy_common.dir/table.cc.o.d"
  "CMakeFiles/wimpy_common.dir/units.cc.o"
  "CMakeFiles/wimpy_common.dir/units.cc.o.d"
  "libwimpy_common.a"
  "libwimpy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
