# Empty dependencies file for wimpy_common.
# This may be replaced when dependencies are built.
