
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/compute.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/compute.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/compute.cc.o.d"
  "/root/repo/src/mapreduce/hdfs.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/hdfs.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/hdfs.cc.o.d"
  "/root/repo/src/mapreduce/job.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/job.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/job.cc.o.d"
  "/root/repo/src/mapreduce/jobs.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/jobs.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/jobs.cc.o.d"
  "/root/repo/src/mapreduce/tera_pipeline.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/tera_pipeline.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/tera_pipeline.cc.o.d"
  "/root/repo/src/mapreduce/testbed.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/testbed.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/testbed.cc.o.d"
  "/root/repo/src/mapreduce/textgen.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/textgen.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/textgen.cc.o.d"
  "/root/repo/src/mapreduce/yarn.cc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/yarn.cc.o" "gcc" "src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/yarn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/wimpy_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wimpy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wimpy_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wimpy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
