# Empty dependencies file for wimpy_mapreduce.
# This may be replaced when dependencies are built.
