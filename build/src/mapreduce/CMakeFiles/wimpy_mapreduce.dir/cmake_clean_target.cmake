file(REMOVE_RECURSE
  "libwimpy_mapreduce.a"
)
