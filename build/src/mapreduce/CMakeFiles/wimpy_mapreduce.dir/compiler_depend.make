# Empty compiler generated dependencies file for wimpy_mapreduce.
# This may be replaced when dependencies are built.
