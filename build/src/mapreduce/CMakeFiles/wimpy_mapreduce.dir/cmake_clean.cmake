file(REMOVE_RECURSE
  "CMakeFiles/wimpy_mapreduce.dir/compute.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/compute.cc.o.d"
  "CMakeFiles/wimpy_mapreduce.dir/hdfs.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/hdfs.cc.o.d"
  "CMakeFiles/wimpy_mapreduce.dir/job.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/job.cc.o.d"
  "CMakeFiles/wimpy_mapreduce.dir/jobs.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/jobs.cc.o.d"
  "CMakeFiles/wimpy_mapreduce.dir/tera_pipeline.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/tera_pipeline.cc.o.d"
  "CMakeFiles/wimpy_mapreduce.dir/testbed.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/testbed.cc.o.d"
  "CMakeFiles/wimpy_mapreduce.dir/textgen.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/textgen.cc.o.d"
  "CMakeFiles/wimpy_mapreduce.dir/yarn.cc.o"
  "CMakeFiles/wimpy_mapreduce.dir/yarn.cc.o.d"
  "libwimpy_mapreduce.a"
  "libwimpy_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
