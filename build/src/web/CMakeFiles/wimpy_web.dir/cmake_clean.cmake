file(REMOVE_RECURSE
  "CMakeFiles/wimpy_web.dir/backend.cc.o"
  "CMakeFiles/wimpy_web.dir/backend.cc.o.d"
  "CMakeFiles/wimpy_web.dir/catalog.cc.o"
  "CMakeFiles/wimpy_web.dir/catalog.cc.o.d"
  "CMakeFiles/wimpy_web.dir/service.cc.o"
  "CMakeFiles/wimpy_web.dir/service.cc.o.d"
  "CMakeFiles/wimpy_web.dir/warmup.cc.o"
  "CMakeFiles/wimpy_web.dir/warmup.cc.o.d"
  "CMakeFiles/wimpy_web.dir/web_server.cc.o"
  "CMakeFiles/wimpy_web.dir/web_server.cc.o.d"
  "CMakeFiles/wimpy_web.dir/workload.cc.o"
  "CMakeFiles/wimpy_web.dir/workload.cc.o.d"
  "libwimpy_web.a"
  "libwimpy_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
