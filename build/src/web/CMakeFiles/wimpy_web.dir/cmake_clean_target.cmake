file(REMOVE_RECURSE
  "libwimpy_web.a"
)
