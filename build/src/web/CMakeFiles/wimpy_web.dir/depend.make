# Empty dependencies file for wimpy_web.
# This may be replaced when dependencies are built.
