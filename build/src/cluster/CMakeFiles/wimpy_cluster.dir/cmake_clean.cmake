file(REMOVE_RECURSE
  "CMakeFiles/wimpy_cluster.dir/cluster.cc.o"
  "CMakeFiles/wimpy_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/wimpy_cluster.dir/metrics.cc.o"
  "CMakeFiles/wimpy_cluster.dir/metrics.cc.o.d"
  "libwimpy_cluster.a"
  "libwimpy_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
