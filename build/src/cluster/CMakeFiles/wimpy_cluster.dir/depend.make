# Empty dependencies file for wimpy_cluster.
# This may be replaced when dependencies are built.
