file(REMOVE_RECURSE
  "libwimpy_cluster.a"
)
