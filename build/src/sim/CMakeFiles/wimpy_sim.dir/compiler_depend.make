# Empty compiler generated dependencies file for wimpy_sim.
# This may be replaced when dependencies are built.
