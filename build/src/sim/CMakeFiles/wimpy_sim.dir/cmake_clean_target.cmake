file(REMOVE_RECURSE
  "libwimpy_sim.a"
)
