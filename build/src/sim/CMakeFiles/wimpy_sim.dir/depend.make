# Empty dependencies file for wimpy_sim.
# This may be replaced when dependencies are built.
