file(REMOVE_RECURSE
  "CMakeFiles/wimpy_sim.dir/fair_share.cc.o"
  "CMakeFiles/wimpy_sim.dir/fair_share.cc.o.d"
  "CMakeFiles/wimpy_sim.dir/scheduler.cc.o"
  "CMakeFiles/wimpy_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/wimpy_sim.dir/semaphore.cc.o"
  "CMakeFiles/wimpy_sim.dir/semaphore.cc.o.d"
  "libwimpy_sim.a"
  "libwimpy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
