# Empty dependencies file for wimpy_net.
# This may be replaced when dependencies are built.
