file(REMOVE_RECURSE
  "libwimpy_net.a"
)
