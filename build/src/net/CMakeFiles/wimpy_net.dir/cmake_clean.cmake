file(REMOVE_RECURSE
  "CMakeFiles/wimpy_net.dir/fabric.cc.o"
  "CMakeFiles/wimpy_net.dir/fabric.cc.o.d"
  "CMakeFiles/wimpy_net.dir/tcp.cc.o"
  "CMakeFiles/wimpy_net.dir/tcp.cc.o.d"
  "libwimpy_net.a"
  "libwimpy_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
