# Empty dependencies file for wimpy_kernels.
# This may be replaced when dependencies are built.
