file(REMOVE_RECURSE
  "libwimpy_kernels.a"
)
