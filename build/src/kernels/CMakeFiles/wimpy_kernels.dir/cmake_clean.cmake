file(REMOVE_RECURSE
  "CMakeFiles/wimpy_kernels.dir/dhrystone.cc.o"
  "CMakeFiles/wimpy_kernels.dir/dhrystone.cc.o.d"
  "CMakeFiles/wimpy_kernels.dir/sysbench.cc.o"
  "CMakeFiles/wimpy_kernels.dir/sysbench.cc.o.d"
  "libwimpy_kernels.a"
  "libwimpy_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
