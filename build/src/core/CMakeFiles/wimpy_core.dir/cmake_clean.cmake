file(REMOVE_RECURSE
  "CMakeFiles/wimpy_core.dir/capacity.cc.o"
  "CMakeFiles/wimpy_core.dir/capacity.cc.o.d"
  "CMakeFiles/wimpy_core.dir/diurnal.cc.o"
  "CMakeFiles/wimpy_core.dir/diurnal.cc.o.d"
  "CMakeFiles/wimpy_core.dir/experiments.cc.o"
  "CMakeFiles/wimpy_core.dir/experiments.cc.o.d"
  "CMakeFiles/wimpy_core.dir/hybrid.cc.o"
  "CMakeFiles/wimpy_core.dir/hybrid.cc.o.d"
  "CMakeFiles/wimpy_core.dir/powerdown.cc.o"
  "CMakeFiles/wimpy_core.dir/powerdown.cc.o.d"
  "CMakeFiles/wimpy_core.dir/proportionality.cc.o"
  "CMakeFiles/wimpy_core.dir/proportionality.cc.o.d"
  "CMakeFiles/wimpy_core.dir/report.cc.o"
  "CMakeFiles/wimpy_core.dir/report.cc.o.d"
  "CMakeFiles/wimpy_core.dir/tco.cc.o"
  "CMakeFiles/wimpy_core.dir/tco.cc.o.d"
  "libwimpy_core.a"
  "libwimpy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
