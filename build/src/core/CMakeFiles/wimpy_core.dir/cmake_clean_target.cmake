file(REMOVE_RECURSE
  "libwimpy_core.a"
)
