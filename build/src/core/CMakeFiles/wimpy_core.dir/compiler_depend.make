# Empty compiler generated dependencies file for wimpy_core.
# This may be replaced when dependencies are built.
