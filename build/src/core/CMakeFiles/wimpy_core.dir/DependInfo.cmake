
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capacity.cc" "src/core/CMakeFiles/wimpy_core.dir/capacity.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/capacity.cc.o.d"
  "/root/repo/src/core/diurnal.cc" "src/core/CMakeFiles/wimpy_core.dir/diurnal.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/diurnal.cc.o.d"
  "/root/repo/src/core/experiments.cc" "src/core/CMakeFiles/wimpy_core.dir/experiments.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/experiments.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/wimpy_core.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/hybrid.cc.o.d"
  "/root/repo/src/core/powerdown.cc" "src/core/CMakeFiles/wimpy_core.dir/powerdown.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/powerdown.cc.o.d"
  "/root/repo/src/core/proportionality.cc" "src/core/CMakeFiles/wimpy_core.dir/proportionality.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/proportionality.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/wimpy_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/report.cc.o.d"
  "/root/repo/src/core/tco.cc" "src/core/CMakeFiles/wimpy_core.dir/tco.cc.o" "gcc" "src/core/CMakeFiles/wimpy_core.dir/tco.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/wimpy_web.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wimpy_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wimpy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wimpy_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wimpy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
