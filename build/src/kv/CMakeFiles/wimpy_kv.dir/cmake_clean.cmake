file(REMOVE_RECURSE
  "CMakeFiles/wimpy_kv.dir/experiment.cc.o"
  "CMakeFiles/wimpy_kv.dir/experiment.cc.o.d"
  "CMakeFiles/wimpy_kv.dir/store.cc.o"
  "CMakeFiles/wimpy_kv.dir/store.cc.o.d"
  "libwimpy_kv.a"
  "libwimpy_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimpy_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
