file(REMOVE_RECURSE
  "libwimpy_kv.a"
)
