# Empty dependencies file for wimpy_kv.
# This may be replaced when dependencies are built.
