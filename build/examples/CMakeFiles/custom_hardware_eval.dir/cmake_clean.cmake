file(REMOVE_RECURSE
  "CMakeFiles/custom_hardware_eval.dir/custom_hardware_eval.cpp.o"
  "CMakeFiles/custom_hardware_eval.dir/custom_hardware_eval.cpp.o.d"
  "custom_hardware_eval"
  "custom_hardware_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_hardware_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
