# Empty dependencies file for custom_hardware_eval.
# This may be replaced when dependencies are built.
