
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_hardware_eval.cpp" "examples/CMakeFiles/custom_hardware_eval.dir/custom_hardware_eval.cpp.o" "gcc" "examples/CMakeFiles/custom_hardware_eval.dir/custom_hardware_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wimpy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/wimpy_web.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/wimpy_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/wimpy_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wimpy_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wimpy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wimpy_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wimpy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wimpy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
