file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_cluster.dir/mapreduce_cluster.cpp.o"
  "CMakeFiles/mapreduce_cluster.dir/mapreduce_cluster.cpp.o.d"
  "mapreduce_cluster"
  "mapreduce_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
